//! Drive the three routing stages manually and inspect the intermediate
//! artifacts: global congestion/overflow, panel segments, layer colours,
//! track assignment bad ends, and the final checked geometry.
//!
//! Run with: `cargo run --release --example stage_by_stage`

use mebl_assign::{assign_tracks, extract_panels, TrackConfig};
use mebl_detailed::{route_detailed, DetailedConfig};
use mebl_geom::Point;
use mebl_global::{route_circuit, GlobalConfig};
use mebl_netlist::{BenchmarkSpec, GenerateConfig};
use mebl_stitch::{StitchConfig, StitchPlan};
use std::collections::HashSet;
use std::time::Instant;

fn main() {
    let circuit = BenchmarkSpec::by_name("S5378")
        .expect("known benchmark")
        .generate(&GenerateConfig {
            seed: 7,
            net_scale: 0.3,
            ..GenerateConfig::default()
        });
    let plan = StitchPlan::new(circuit.outline(), StitchConfig::default());
    println!(
        "== input: {} nets on {}x{} tracks, {} stitching lines",
        circuit.net_count(),
        circuit.outline().width(),
        circuit.outline().height(),
        plan.lines().len()
    );

    // Stage 1: global routing (eqs. 1-3).
    let t = Instant::now();
    let global = route_circuit(&circuit, &plan, &GlobalConfig::default());
    println!(
        "\n== global routing: {:?} on a {}x{} tile graph ({:.3}s)",
        global.metrics,
        global.graph.cols(),
        global.graph.rows(),
        t.elapsed().as_secs_f64()
    );

    // Stage 2a: panel extraction.
    let panels = extract_panels(&global);
    println!(
        "== panels: {} vertical segments in {} column panels, {} horizontal in {} row panels",
        panels.vertical_count(),
        panels.columns.iter().filter(|c| !c.is_empty()).count(),
        panels.horizontal_count(),
        panels.rows.iter().filter(|r| !r.is_empty()).count()
    );

    // Stage 2b: layer + track assignment (eq. 4, Fig. 11).
    let t = Instant::now();
    let tracks = assign_tracks(
        &panels,
        &global.graph,
        &plan,
        circuit.layer_count(),
        &TrackConfig::default(),
    );
    println!(
        "== track assignment: {} segments placed, {} nets ripped up, {} bad ends remain ({:.3}s)",
        tracks.segments.len(),
        tracks.failed_nets.len(),
        tracks.bad_ends,
        t.elapsed().as_secs_f64()
    );
    let doglegged = tracks
        .segments
        .iter()
        .filter(|s| s.pieces.len() > 1)
        .count();
    println!("   ({doglegged} segments use doglegs to dodge stitch unfriendly regions)");

    // Stage 3: detailed routing (eq. 10).
    let t = Instant::now();
    let detailed = route_detailed(&circuit, &plan, &global.graph, &tracks, &DetailedConfig::default());
    println!(
        "== detailed routing: {}/{} nets routed ({:.3}s)",
        detailed.routed_count,
        circuit.net_count(),
        t.elapsed().as_secs_f64()
    );

    // Check.
    let mut totals = mebl_stitch::Violations::default();
    for (i, geom) in detailed.geometry.iter().enumerate() {
        if !detailed.routed[i] {
            continue;
        }
        let pins: HashSet<Point> = circuit.nets()[i].pins().iter().map(|p| p.position).collect();
        totals.merge(&mebl_stitch::check_geometry(&plan, geom, |p| pins.contains(&p)));
    }
    println!(
        "== final check: wl {}, vias {}, #VV {} (off-pin {}), #SP {}, vertical violations {}",
        totals.wirelength,
        totals.via_count,
        totals.via_violations,
        totals.via_violations_off_pin,
        totals.short_polygons,
        totals.vertical_violations
    );
    assert!(totals.hard_clean(), "the stitch-aware flow is always legal");
}
