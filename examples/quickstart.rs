//! Quickstart: route a benchmark circuit with the stitch-aware framework
//! and print the paper-style report.
//!
//! Run with: `cargo run --release --example quickstart`

use mebl_netlist::{BenchmarkSpec, GenerateConfig};
use mebl_route::{Router, RouterConfig};

fn main() {
    // Generate a scaled-down synthetic S9234 (MCNC suite, Table I).
    let spec = BenchmarkSpec::by_name("S9234").expect("known benchmark");
    let circuit = spec.generate(&GenerateConfig {
        seed: 42,
        net_scale: 0.25,
        ..GenerateConfig::default()
    });
    println!(
        "circuit {}: {} nets, {} pins, grid {}x{} tracks, {} layers",
        circuit.name(),
        circuit.net_count(),
        circuit.pin_count(),
        circuit.outline().width(),
        circuit.outline().height(),
        circuit.layer_count()
    );

    // Route with the full stitch-aware flow (global routing -> layer/track
    // assignment -> detailed routing, all MEBL-aware).
    let router = Router::new(RouterConfig::stitch_aware());
    let outcome = router.route(&circuit);

    println!("stitch lines at x = {:?}", outcome.plan.lines());
    println!("stitch-aware : {}", outcome.report);

    // Compare with the conventional baseline.
    let baseline = Router::new(RouterConfig::baseline()).route(&circuit);
    println!("baseline     : {}", baseline.report);

    let reduction = if baseline.report.short_polygons > 0 {
        100.0 * (1.0 - outcome.report.short_polygons as f64 / baseline.report.short_polygons as f64)
    } else {
        0.0
    };
    println!("short polygons reduced by {reduction:.1}%");
    assert!(outcome.report.hard_clean(), "no hard MEBL violations");
}
