//! The MEBL data-preparation path: render a layout clip to grey levels,
//! dither it with error diffusion, and measure how badly a stitch-cut
//! short polygon prints compared to a healthy wire (paper Figs. 3–4).
//!
//! Run with: `cargo run --example rasterization`

use mebl_raster::{defect_score, render, FRect};

fn main() {
    // A wire approaches the stitching line from the left. The right beam
    // writes the remainder with an overlay error of 0.45 pixel.
    let overlay_error = 0.45;

    println!("feature length sweep at overlay error {overlay_error} px:");
    println!("{:>8} {:>12} {:>10}", "len(px)", "defect", "verdict");
    for len in [2, 3, 4, 6, 10, 20, 40] {
        let stub = FRect::new(0.0, 1.0 + overlay_error, len as f64, 2.0 + overlay_error);
        let gray = render(&[stub], 48, 5);
        let score = defect_score(&gray, &gray.dither());
        let verdict = if score > 0.3 {
            "severe (short polygon)"
        } else if score > 0.0 {
            "distorted"
        } else {
            "clean"
        };
        println!("{len:>8} {score:>12.3} {verdict:>10}");
    }

    // Perfectly aligned features print cleanly at any size.
    let aligned = FRect::new(0.0, 1.0, 40.0, 2.0);
    let gray = render(&[aligned], 48, 5);
    assert_eq!(defect_score(&gray, &gray.dither()), 0.0);
    println!("\naligned wire: defect 0.000 — overlay error is what makes stitch cuts dangerous,");
    println!("and error diffusion makes *small* cut-off polygons lose a large pixel fraction.");
    println!("This is why the router forbids via-landing line ends near stitching lines.");
}
