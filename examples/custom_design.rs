//! Route a hand-built design, inspect violations net by net, and write an
//! SVG of the result — the workflow of a downstream user bringing their
//! own netlist.
//!
//! Run with: `cargo run --release --example custom_design`

use mebl_geom::{Layer, Point, Rect};
use mebl_netlist::{Circuit, Net, Pin};
use mebl_route::{Router, RouterConfig};
use std::collections::HashSet;

fn pin(x: i32, y: i32) -> Pin {
    Pin::new(Point::new(x, y), Layer::new(0))
}

fn main() {
    // A 75x60-track block with three stitching lines (x = 15, 30, 45, 60).
    let outline = Rect::new(0, 0, 74, 59);
    let nets = vec![
        // A bus crossing all stitching lines.
        Net::new("bus0", vec![pin(2, 10), pin(72, 10)]),
        Net::new("bus1", vec![pin(2, 12), pin(72, 12)]),
        Net::new("bus2", vec![pin(2, 14), pin(72, 14)]),
        // Nets that turn right next to a stitching line — short-polygon
        // bait for a stitch-oblivious router.
        Net::new("turn0", vec![pin(13, 25), pin(40, 45)]),
        Net::new("turn1", vec![pin(28, 30), pin(55, 50)]),
        Net::new("turn2", vec![pin(44, 20), pin(70, 40)]),
        // A multi-pin net.
        Net::new("clk", vec![pin(5, 55), pin(35, 3), pin(70, 55), pin(37, 30)]),
        // A pin sitting exactly on a stitching line: the unavoidable via
        // violation the paper tolerates at fixed pins.
        Net::new("fixed", vec![pin(30, 40), pin(30, 55)]),
    ];
    let circuit = Circuit::new("custom", outline, 3, nets);

    let outcome = Router::new(RouterConfig::stitch_aware()).route(&circuit);
    println!("{}", outcome.report);

    // Per-net violation breakdown.
    println!("\nper-net check:");
    for (i, net) in circuit.nets().iter().enumerate() {
        if !outcome.detailed.routed[i] {
            println!("  {:<6} UNROUTED", net.name());
            continue;
        }
        let pins: HashSet<Point> = net.pins().iter().map(|p| p.position).collect();
        let v = mebl_stitch::check_geometry(&outcome.plan, &outcome.detailed.geometry[i], |p| {
            pins.contains(&p)
        });
        println!(
            "  {:<6} wl {:>4}  vias {:>2}  #VV {}  #SP {}  hard_clean {}",
            net.name(),
            v.wirelength,
            v.via_count,
            v.via_violations,
            v.short_polygons,
            v.hard_clean()
        );
    }

    let svg = mebl_viz::layout_svg(&circuit, &outcome.plan, &outcome.detailed.geometry, 8.0);
    std::fs::create_dir_all("target/figs").expect("mkdir");
    std::fs::write("target/figs/custom_design.svg", svg).expect("write svg");
    println!("\nwrote target/figs/custom_design.svg");
}
