//! Deterministic parallel execution for the MEBL routing flow.
//!
//! The pool runs closures over slices with scoped threads
//! ([`std::thread::scope`]) and a lock-free chunk cursor, then reduces
//! every result **in input order**. The reduction order — and therefore
//! the output — is a pure function of the input, never of worker count
//! or OS scheduling. Stages that route against a snapshot and commit
//! sequentially (see `DESIGN.md` §9) stay bit-identical for any
//! `--threads` value.
//!
//! Design constraints, enforced by `xtask lint`:
//! - zero dependencies; scoped `std` threads only, no detached spawns;
//! - no panics in library code — worker panics are *propagated* to the
//!   caller via [`std::panic::resume_unwind`], never silently swallowed
//!   (the one sanctioned recovery point is [`supervise`], which turns a
//!   panic into a typed `Err` for service supervision);
//! - clock-free: scheduling uses an atomic cursor, not timers.
//!
//! Cancellation is cooperative and stays with the caller: closures are
//! expected to check their `CancelToken` (crate `mebl-control`) at item
//! boundaries and return cheap placeholder results once cancelled, so a
//! latched budget drains the fan-out instead of deadlocking it.

#![forbid(unsafe_code)]

use std::sync::atomic::{AtomicUsize, Ordering};

/// Worker chunks are sized for roughly this many chunks per worker, so
/// the atomic cursor load-balances uneven items without shrinking
/// chunks to single elements. Chunk *boundaries* never influence
/// results — only which worker computes them.
const CHUNKS_PER_WORKER: usize = 4;

/// A fixed-width scoped thread pool.
///
/// `Pool` is plain configuration data (`Copy`, `Eq`): it owns no OS
/// threads. Each combinator call spawns scoped workers that terminate
/// before the call returns, so borrowing the surrounding stage state
/// (`&Circuit`, `&DetailedGrid`, …) needs no `Arc` and leaks nothing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Pool {
    workers: usize,
}

impl Default for Pool {
    fn default() -> Self {
        Self::serial()
    }
}

impl Pool {
    /// Pool with exactly `workers` workers (clamped to at least 1).
    #[must_use]
    pub fn new(workers: usize) -> Self {
        Self {
            workers: workers.max(1),
        }
    }

    /// Single-worker pool: combinators run inline on the caller thread.
    #[must_use]
    pub fn serial() -> Self {
        Self { workers: 1 }
    }

    /// Pool sized to the machine's available parallelism (1 if that
    /// cannot be determined).
    #[must_use]
    pub fn available() -> Self {
        let n = std::thread::available_parallelism().map_or(1, |n| n.get());
        Self::new(n)
    }

    /// Number of workers this pool fans out to.
    #[must_use]
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Whether combinators run inline without spawning threads.
    #[must_use]
    pub fn is_serial(&self) -> bool {
        self.workers == 1
    }

    /// Maps `f` over `items`, returning results in input order.
    ///
    /// Equivalent to `items.iter().enumerate().map(..).collect()` for
    /// every worker count; `f` gets the item index so callers can keep
    /// index-addressed side tables.
    pub fn par_map_indexed<T, R, F>(&self, items: &[T], f: F) -> Vec<R>
    where
        T: Sync,
        R: Send,
        F: Fn(usize, &T) -> R + Sync,
    {
        self.par_map_with(items, || (), |(), i, item| f(i, item))
    }

    /// Maps `f` over `items` with a per-worker scratch context.
    ///
    /// `init` runs once per worker (once total in serial mode) and the
    /// resulting context is threaded through every call that worker
    /// makes. The contract that keeps output thread-count-invariant:
    /// `f` must leave the context in an equivalent state after each
    /// item (route on a snapshot clone, then roll back), so it never
    /// matters which worker — or how many — processed an item.
    pub fn par_map_with<T, R, C, I, F>(&self, items: &[T], init: I, f: F) -> Vec<R>
    where
        T: Sync,
        R: Send,
        I: Fn() -> C + Sync,
        F: Fn(&mut C, usize, &T) -> R + Sync,
    {
        let n = items.len();
        let workers = self.workers.min(n);
        if workers <= 1 {
            let mut ctx = init();
            return items
                .iter()
                .enumerate()
                .map(|(i, item)| f(&mut ctx, i, item))
                .collect();
        }

        let chunk = (n / (workers * CHUNKS_PER_WORKER)).max(1);
        let cursor = AtomicUsize::new(0);
        let mut parts: Vec<(usize, Vec<R>)> = std::thread::scope(|scope| {
            let mut handles = Vec::with_capacity(workers);
            for _ in 0..workers {
                handles.push(scope.spawn(|| {
                    let mut ctx = init();
                    let mut out: Vec<(usize, Vec<R>)> = Vec::new();
                    loop {
                        let start = cursor.fetch_add(chunk, Ordering::Relaxed);
                        if start >= n {
                            break;
                        }
                        let end = (start + chunk).min(n);
                        let mut part = Vec::with_capacity(end - start);
                        for (i, item) in items.iter().enumerate().take(end).skip(start) {
                            part.push(f(&mut ctx, i, item));
                        }
                        out.push((start, part));
                    }
                    out
                }));
            }
            let mut all: Vec<(usize, Vec<R>)> = Vec::new();
            let mut panicked = None;
            for handle in handles {
                match handle.join() {
                    Ok(worker_parts) => all.extend(worker_parts),
                    // Keep joining the remaining workers so the scope
                    // drains cleanly, then re-raise the first panic.
                    Err(payload) => panicked = panicked.or(Some(payload)),
                }
            }
            if let Some(payload) = panicked {
                std::panic::resume_unwind(payload);
            }
            all
        });

        parts.sort_unstable_by_key(|&(start, _)| start);
        let mut ordered = Vec::with_capacity(n);
        for (_, part) in parts {
            ordered.extend(part);
        }
        ordered
    }

    /// Maps `f` over fixed-size chunks of `items` (the last chunk may
    /// be shorter), returning per-chunk results in input order.
    ///
    /// The chunk size is caller-fixed, independent of worker count, so
    /// chunk boundaries — which *are* visible to `f` — are themselves
    /// deterministic. A `chunk_size` of 0 is treated as 1.
    pub fn par_chunks<T, R, F>(&self, items: &[T], chunk_size: usize, f: F) -> Vec<R>
    where
        T: Sync,
        R: Send,
        F: Fn(usize, &[T]) -> R + Sync,
    {
        let chunk_size = chunk_size.max(1);
        let chunks: Vec<&[T]> = items.chunks(chunk_size).collect();
        self.par_map_with(&chunks, || (), |(), i, part| f(i, part))
    }
}

/// Runs `f(role)` for every role in `0..roles` concurrently and joins
/// them all before returning.
///
/// Role 0 runs on the caller's thread; roles `1..roles` run on scoped
/// threads. This is the workspace's primitive for *heterogeneous*
/// long-lived concurrency — an acceptor loop plus a worker pool, a
/// server plus a client harness — where [`Pool`]'s homogeneous data
/// parallelism does not fit. Threads stay scoped (nothing outlives the
/// call) and panics propagate: if any role panics, `run_scoped` panics
/// after every other role has been joined, re-raising the first
/// payload.
///
/// Roles typically coordinate through shared state that tells the
/// others to finish (a latch, a closed queue); `run_scoped` itself
/// imposes no protocol beyond "all roles return".
/// Runs `f`, converting a panic into `Err` with the panic message.
///
/// This is the workspace's *only* sanctioned panic boundary: the rest
/// of this crate propagates worker panics to the caller, but a service
/// worker pool must survive one bad job. Supervision lives here — not
/// in each caller — so `catch_unwind` stays confined behind the pool
/// abstraction and the service layer deals only in a typed result.
pub fn supervise<T>(f: impl FnOnce() -> T) -> Result<T, String> {
    match std::panic::catch_unwind(std::panic::AssertUnwindSafe(f)) {
        Ok(value) => Ok(value),
        Err(payload) => Err(panic_message(payload.as_ref())),
    }
}

/// Best-effort extraction of a panic payload's message.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(text) = payload.downcast_ref::<&str>() {
        (*text).to_string()
    } else if let Some(text) = payload.downcast_ref::<String>() {
        text.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

pub fn run_scoped<F>(roles: usize, f: F)
where
    F: Fn(usize) + Sync,
{
    if roles <= 1 {
        if roles == 1 {
            f(0);
        }
        return;
    }
    let f = &f;
    std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(roles - 1);
        for role in 1..roles {
            handles.push(scope.spawn(move || f(role)));
        }
        // Role 0 may itself panic; catch it so the scoped roles still
        // get joined (they would be joined by scope teardown anyway,
        // but explicit joins let us prefer role 0's payload and keep
        // the re-raise deterministic).
        let own = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| f(0)));
        let mut panicked = own.err();
        for handle in handles {
            if let Err(payload) = handle.join() {
                panicked = panicked.or(Some(payload));
            }
        }
        if let Some(payload) = panicked {
            std::panic::resume_unwind(payload);
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::panic::{catch_unwind, AssertUnwindSafe};
    use std::sync::atomic::AtomicU64;

    #[test]
    fn clamps_to_at_least_one_worker() {
        assert_eq!(Pool::new(0).workers(), 1);
        assert!(Pool::new(0).is_serial());
        assert!(Pool::default().is_serial());
        assert!(Pool::available().workers() >= 1);
    }

    #[test]
    fn map_preserves_input_order_for_every_worker_count() {
        let items: Vec<u64> = (0..1000).collect();
        let expected: Vec<u64> = items.iter().map(|&x| x * x + 1).collect();
        for workers in [1, 2, 3, 4, 8, 16, 1000, 2000] {
            let got = Pool::new(workers).par_map_indexed(&items, |_, &x| x * x + 1);
            assert_eq!(got, expected, "workers = {workers}");
        }
    }

    #[test]
    fn map_passes_the_item_index() {
        let items = ["a", "b", "c", "d", "e"];
        for workers in [1, 2, 5] {
            let got = Pool::new(workers).par_map_indexed(&items, |i, s| format!("{i}{s}"));
            assert_eq!(got, ["0a", "1b", "2c", "3d", "4e"], "workers = {workers}");
        }
    }

    #[test]
    fn empty_and_singleton_inputs() {
        let empty: Vec<u32> = Vec::new();
        assert!(Pool::new(8).par_map_indexed(&empty, |_, &x| x).is_empty());
        assert_eq!(Pool::new(8).par_map_indexed(&[7u32], |_, &x| x + 1), [8]);
    }

    #[test]
    fn chunks_are_fixed_size_and_ordered() {
        let items: Vec<u32> = (0..10).collect();
        for workers in [1, 3, 8] {
            let got = Pool::new(workers).par_chunks(&items, 4, |i, part| (i, part.to_vec()));
            assert_eq!(
                got,
                [
                    (0, vec![0, 1, 2, 3]),
                    (1, vec![4, 5, 6, 7]),
                    (2, vec![8, 9]),
                ],
                "workers = {workers}"
            );
        }
        // Chunk size 0 is treated as 1 rather than dividing by zero.
        let got = Pool::new(2).par_chunks(&[1u32, 2], 0, |_, part| part.len());
        assert_eq!(got, [1, 1]);
    }

    #[test]
    fn per_worker_context_sees_every_item_exactly_once() {
        // Sum via per-worker accumulators: contexts are worker-local,
        // so the global sum over all contexts must equal the serial sum
        // regardless of how items were distributed.
        let items: Vec<u64> = (1..=500).collect();
        let total = AtomicU64::new(0);
        struct Acc<'a> {
            local: u64,
            total: &'a AtomicU64,
        }
        impl Drop for Acc<'_> {
            fn drop(&mut self) {
                self.total.fetch_add(self.local, Ordering::Relaxed);
            }
        }
        for workers in [1, 4] {
            total.store(0, Ordering::Relaxed);
            let results = Pool::new(workers).par_map_with(
                &items,
                || Acc {
                    local: 0,
                    total: &total,
                },
                |acc, _, &x| {
                    acc.local += x;
                    x
                },
            );
            assert_eq!(results, items, "workers = {workers}");
            assert_eq!(total.load(Ordering::Relaxed), 500 * 501 / 2);
        }
    }

    #[test]
    fn run_scoped_runs_every_role_once() {
        for roles in [0, 1, 2, 5] {
            let seen: Vec<AtomicU64> = (0..roles).map(|_| AtomicU64::new(0)).collect();
            run_scoped(roles, |role| {
                seen[role].fetch_add(1, Ordering::Relaxed);
            });
            for (role, count) in seen.iter().enumerate() {
                assert_eq!(count.load(Ordering::Relaxed), 1, "roles={roles} role={role}");
            }
        }
    }

    #[test]
    fn run_scoped_propagates_role_panics() {
        // A spawned role panicking must not leave role 0 unjoined (and
        // vice versa) — both directions surface as a caller panic.
        for bad_role in [0, 2] {
            let result = catch_unwind(AssertUnwindSafe(|| {
                run_scoped(3, |role| {
                    assert!(role != bad_role, "bad role");
                });
            }));
            assert!(result.is_err(), "bad_role = {bad_role}");
        }
    }

    #[test]
    fn supervise_passes_values_and_types_panics() {
        assert_eq!(supervise(|| 41 + 1), Ok(42));
        assert_eq!(
            supervise(|| -> u32 { panic!("boom") }),
            Err("boom".to_string())
        );
        assert_eq!(
            supervise(|| -> u32 { panic!("formatted {}", 7) }),
            Err("formatted 7".to_string())
        );
        let odd = supervise(|| -> u32 { std::panic::panic_any(1234u64) });
        assert_eq!(odd, Err("non-string panic payload".to_string()));
    }

    #[test]
    fn worker_panics_propagate_to_the_caller() {
        let items: Vec<u32> = (0..64).collect();
        for workers in [1, 4] {
            let result = catch_unwind(AssertUnwindSafe(|| {
                Pool::new(workers).par_map_indexed(&items, |_, &x| {
                    assert!(x != 13, "poisoned item");
                    x
                })
            }));
            assert!(result.is_err(), "workers = {workers}");
        }
    }
}
