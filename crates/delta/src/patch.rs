//! Rip-up, re-route and outcome patching.

use crate::closure::affected_nets;
use crate::edit::{apply_edits, CircuitEdit, DeltaError, EditPlan};
use mebl_assign::TrackResult;
use mebl_geom::RouteGeometry;
use mebl_global::GlobalRoute;
use mebl_netlist::{Circuit, CircuitIssue};
use mebl_route::{
    build_report, CancelToken, RouterConfig, RoutingOutcome, StageTimings, Stopwatch,
};
use mebl_stitch::StitchPlan;

/// Result of a delta routing run.
#[derive(Debug, Clone)]
pub struct DeltaOutcome {
    /// The edited circuit the patched outcome describes.
    pub circuit: Circuit,
    /// The patched outcome: preserved nets byte-identical to the prior
    /// run, affected nets freshly routed.
    pub outcome: RoutingOutcome,
    /// Indices (in the edited circuit) of the nets that were ripped up
    /// and re-routed. Empty for an empty edit list.
    pub rerouted: Vec<usize>,
}

/// Applies `edits` to `base` and patches `prior` into an outcome for
/// the edited circuit, re-routing only the affected-net closure.
///
/// The undo side is exact by construction: global demands and detailed
/// occupancy are pure functions of the per-net routes, so "rip up net
/// i" is simply "do not re-apply net i's prior state" — preserved nets
/// re-apply their prior routes and geometry untouched, and the
/// re-route runs against exactly the occupancy a from-scratch route
/// would see after routing the preserved nets first.
///
/// An **empty** edit list short-circuits: the prior outcome comes back
/// as a clone, bit-identical, with nothing re-routed.
///
/// # Errors
///
/// [`DeltaError`] on an invalid edit list, a stitch-plan mismatch
/// between `config` and `prior`, or a prior outcome whose shape does
/// not match `base`.
pub fn route_delta(
    base: &Circuit,
    prior: &RoutingOutcome,
    edits: &[CircuitEdit],
    config: &RouterConfig,
) -> Result<DeltaOutcome, DeltaError> {
    delta_impl(base, prior, edits, config, None)
}

/// [`route_delta`] with an external interrupt composed into the budget
/// token, mirroring `Router::try_route_under` — a service daemon can
/// cancel an in-flight delta job the same way it cancels a full route.
///
/// # Errors
///
/// Same contract as [`route_delta`].
pub fn route_delta_under(
    base: &Circuit,
    prior: &RoutingOutcome,
    edits: &[CircuitEdit],
    config: &RouterConfig,
    interrupt: &CancelToken,
) -> Result<DeltaOutcome, DeltaError> {
    delta_impl(base, prior, edits, config, Some(interrupt))
}

fn delta_impl(
    base: &Circuit,
    prior: &RoutingOutcome,
    edits: &[CircuitEdit],
    config: &RouterConfig,
    interrupt: Option<&CancelToken>,
) -> Result<DeltaOutcome, DeltaError> {
    let n = base.net_count();
    if prior.global.routes.len() != n {
        return Err(DeltaError::PriorMismatch(format!(
            "{} global routes for {} nets",
            prior.global.routes.len(),
            n
        )));
    }
    if prior.detailed.geometry.len() != n || prior.detailed.routed.len() != n {
        return Err(DeltaError::PriorMismatch(format!(
            "detailed result covers {} nets, circuit has {}",
            prior.detailed.geometry.len(),
            n
        )));
    }
    let plan = StitchPlan::new(base.outline(), config.stitch);
    if plan != prior.plan {
        return Err(DeltaError::PlanMismatch);
    }

    if edits.is_empty() {
        return Ok(DeltaOutcome {
            circuit: base.clone(),
            outcome: prior.clone(),
            rerouted: Vec::new(),
        });
    }

    let start = Stopwatch::start();
    let edit_plan = apply_edits(base, edits)?;
    let issues = edit_plan.circuit.validate(plan.lines());
    if issues.iter().any(CircuitIssue::is_error) {
        return Err(DeltaError::InvalidCircuit(issues));
    }
    let rerouted = affected_nets(prior, &edit_plan);

    let m = edit_plan.circuit.net_count();
    let mut is_affected = vec![false; m];
    for &i in &rerouted {
        is_affected[i] = true;
    }

    let mut global_preserved: Vec<Option<GlobalRoute>> = vec![None; m];
    let mut detailed_preserved: Vec<Option<(bool, RouteGeometry)>> = vec![None; m];
    for (new, origin) in edit_plan.origin.iter().enumerate() {
        let Some(old) = origin else { continue };
        if is_affected[new] {
            continue;
        }
        global_preserved[new] = Some(prior.global.routes[*old].clone());
        detailed_preserved[new] = Some((
            prior.detailed.routed[*old],
            prior.detailed.geometry[*old].clone(),
        ));
    }

    let budget = config.budget;
    let token = match interrupt {
        Some(outer) => budget.arm_under(outer),
        None => budget.arm(),
    };
    let mut timings = StageTimings::default();

    let t = Stopwatch::start();
    let mut global_config = config.global.clone();
    global_config.cancel = budget.stage_scope(&token);
    global_config.pool = config.pool;
    let global = mebl_global::route_incremental(
        &edit_plan.circuit,
        &plan,
        &global_config,
        &global_preserved,
    );
    timings.global = t.elapsed();

    let t = Stopwatch::start();
    let tracks = remap_tracks(&prior.tracks, n, &edit_plan, &is_affected);
    timings.assignment = t.elapsed();

    let t = Stopwatch::start();
    let mut detailed_config = config.detailed.clone();
    detailed_config.cancel = budget.stage_scope(&token);
    detailed_config.pool = config.pool;
    let detailed = mebl_detailed::route_incremental(
        &edit_plan.circuit,
        &plan,
        &detailed_config,
        &detailed_preserved,
    );
    timings.detailed = t.elapsed();

    let t = Stopwatch::start();
    let mut report = build_report(&edit_plan.circuit, &plan, &detailed, start.elapsed());
    timings.check = t.elapsed();
    report.elapsed = start.elapsed();

    let degradations = token.take_degradations();
    Ok(DeltaOutcome {
        outcome: RoutingOutcome {
            plan,
            global,
            tracks,
            detailed,
            report,
            timings,
            degradations,
            parallelism: config.pool.workers(),
        },
        circuit: edit_plan.circuit,
        rerouted,
    })
}

/// Carries the prior track assignment over to the edited circuit:
/// segments of surviving, unaffected nets are remapped to their new net
/// indices; everything belonging to a removed or re-routed net is
/// dropped. The auditor never reads the track stage (detailed geometry
/// is the authoritative output), so `bad_ends` is carried over as-is.
fn remap_tracks(
    prior: &TrackResult,
    base_nets: usize,
    plan: &EditPlan,
    is_affected: &[bool],
) -> TrackResult {
    let mut base_to_new: Vec<Option<usize>> = vec![None; base_nets];
    for (new, origin) in plan.origin.iter().enumerate() {
        if let Some(old) = origin {
            if !is_affected[new] {
                base_to_new[*old] = Some(new);
            }
        }
    }
    let mut out = TrackResult {
        bad_ends: prior.bad_ends,
        timed_out: prior.timed_out,
        ..TrackResult::default()
    };
    for seg in &prior.segments {
        if let Some(Some(new)) = base_to_new.get(seg.net) {
            let mut seg = seg.clone();
            seg.net = *new;
            out.segments.push(seg);
        }
    }
    for &old in &prior.failed_nets {
        if let Some(Some(new)) = base_to_new.get(old) {
            out.failed_nets.insert(*new);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use mebl_geom::{Layer, Point, Rect};
    use mebl_netlist::{Circuit, Net, Pin};
    use mebl_route::Router;

    fn pin(x: i32, y: i32, l: u8) -> Pin {
        Pin::new(Point::new(x, y), Layer::new(l))
    }

    fn circuit() -> Circuit {
        Circuit::new(
            "t",
            Rect::new(0, 0, 79, 79),
            4,
            vec![
                Net::new("a", vec![pin(2, 30, 0), pin(70, 30, 0)]),
                Net::new("b", vec![pin(2, 70, 0), pin(70, 70, 0)]),
                Net::new("c", vec![pin(40, 2, 1), pin(40, 60, 1)]),
            ],
        )
    }

    #[test]
    fn empty_edit_list_is_bit_identical() {
        let c = circuit();
        let config = RouterConfig::stitch_aware();
        let prior = Router::new(config.clone()).route(&c);
        let delta = route_delta(&c, &prior, &[], &config).unwrap();
        assert!(delta.rerouted.is_empty());
        assert_eq!(delta.circuit, c);
        assert_eq!(delta.outcome.detailed.geometry, prior.detailed.geometry);
        assert_eq!(delta.outcome.detailed.routed, prior.detailed.routed);
        assert_eq!(delta.outcome.global.routes, prior.global.routes);
        assert_eq!(delta.outcome.report, prior.report);
    }

    #[test]
    fn preserved_nets_stay_byte_identical_after_an_edit() {
        let c = circuit();
        let config = RouterConfig::stitch_aware();
        let prior = Router::new(config.clone()).route(&c);
        let edits = vec![CircuitEdit::AddNet {
            name: "d".into(),
            pins: vec![pin(10, 50, 0), pin(60, 55, 0)],
        }];
        let delta = route_delta(&c, &prior, &edits, &config).unwrap();
        assert_eq!(delta.circuit.net_count(), 4);
        for old in 0..3 {
            if delta.rerouted.contains(&old) {
                continue;
            }
            assert_eq!(
                delta.outcome.detailed.geometry[old],
                prior.detailed.geometry[old]
            );
        }
        assert!(delta.rerouted.contains(&3));
        assert!(delta.outcome.detailed.routed[3]);
    }

    #[test]
    fn plan_mismatch_is_typed() {
        let c = circuit();
        let config = RouterConfig::stitch_aware();
        let prior = Router::new(config.clone()).route(&c);
        let mut other = config.clone();
        other.stitch.period = 20;
        let e = route_delta(&c, &prior, &[], &other).unwrap_err();
        assert_eq!(e, DeltaError::PlanMismatch);
    }

    #[test]
    fn prior_mismatch_is_typed() {
        let c = circuit();
        let config = RouterConfig::stitch_aware();
        let prior = Router::new(config.clone()).route(&c);
        let smaller = Circuit::new(
            "t",
            Rect::new(0, 0, 79, 79),
            4,
            vec![Net::new("a", vec![pin(2, 30, 0), pin(70, 30, 0)])],
        );
        let e = route_delta(&smaller, &prior, &[], &config).unwrap_err();
        assert!(matches!(e, DeltaError::PriorMismatch(_)));
    }
}
