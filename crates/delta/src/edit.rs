//! The typed edit vocabulary and its sequential application semantics.

use mebl_geom::{Coord, Point, Rect};
use mebl_netlist::{Circuit, CircuitIssue, Net, Pin};
use std::fmt;

/// One typed change to a circuit.
///
/// Edits are applied **sequentially**: each edit is validated against
/// the circuit state produced by the edits before it, so e.g. a net
/// added by an earlier edit can be moved or removed by a later one, and
/// a blockage may not be dropped onto a pin that still exists at that
/// point in the sequence.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CircuitEdit {
    /// Add a new net with the given pins.
    AddNet {
        /// Name of the new net; must not collide with a live net.
        name: String,
        /// Pin list (at least two, inside the outline and layer stack).
        pins: Vec<Pin>,
    },
    /// Remove a live net (and free every resource it occupied).
    RemoveNet {
        /// Name of the net to remove.
        name: String,
    },
    /// Translate every pin of a live net by `(dx, dy)` pitches.
    MoveNet {
        /// Name of the net to move.
        name: String,
        /// x displacement in pitches.
        dx: Coord,
        /// y displacement in pitches.
        dy: Coord,
    },
    /// Add an all-layer keep-out rectangle.
    AddBlockage {
        /// The keep-out rectangle; must lie inside the outline and must
        /// not cover any live pin.
        rect: Rect,
    },
    /// Remove an existing blockage (matched exactly by rectangle).
    RemoveBlockage {
        /// The rectangle of the blockage to remove.
        rect: Rect,
    },
}

/// Why an edit list (or a delta run) was rejected.
#[derive(Debug, Clone, PartialEq)]
pub enum DeltaError {
    /// An edit referenced a net name that does not exist at that point
    /// in the sequence.
    UnknownNet(String),
    /// `AddNet` reused a name that is still live.
    DuplicateNet(String),
    /// `AddNet` supplied fewer than two pins.
    TooFewPins(String),
    /// A pin (added or moved) would land outside the chip outline.
    PinOutsideOutline {
        /// Net the pin belongs to.
        net: String,
        /// Offending pin position.
        pin: Point,
    },
    /// An added pin's layer is at or above the layer stack height.
    PinLayerOutOfStack {
        /// Net the pin belongs to.
        net: String,
        /// Offending layer index.
        layer: u8,
    },
    /// A pin (added or moved) would land inside a live blockage.
    PinCoveredByBlockage {
        /// Net the pin belongs to.
        net: String,
        /// Offending pin position.
        pin: Point,
    },
    /// `RemoveBlockage` named a rectangle that is not a live blockage.
    UnknownBlockage(Rect),
    /// `AddBlockage` duplicated a live blockage exactly.
    DuplicateBlockage(Rect),
    /// `AddBlockage` lies (partly) outside the chip outline.
    BlockageOutsideOutline(Rect),
    /// `AddBlockage` would cover a pin of a live net.
    BlockageCoversPin {
        /// The offending rectangle.
        rect: Rect,
        /// A net whose pin it covers.
        net: String,
    },
    /// The routing configuration's stitch plan differs from the plan
    /// the prior outcome was produced under, so preserved geometry
    /// would be checked against the wrong lines.
    PlanMismatch,
    /// The prior outcome does not describe the base circuit (net-count
    /// or geometry-shape mismatch).
    PriorMismatch(String),
    /// The edited circuit failed pre-flight validation.
    InvalidCircuit(Vec<CircuitIssue>),
}

impl fmt::Display for DeltaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DeltaError::UnknownNet(name) => write!(f, "edit references unknown net '{name}'"),
            DeltaError::DuplicateNet(name) => {
                write!(f, "cannot add net '{name}': the name is already in use")
            }
            DeltaError::TooFewPins(name) => {
                write!(f, "added net '{name}' needs at least two pins")
            }
            DeltaError::PinOutsideOutline { net, pin } => {
                write!(f, "net '{net}': pin ({}, {}) outside outline", pin.x, pin.y)
            }
            DeltaError::PinLayerOutOfStack { net, layer } => {
                write!(f, "net '{net}': pin layer {layer} above the stack")
            }
            DeltaError::PinCoveredByBlockage { net, pin } => write!(
                f,
                "net '{net}': pin ({}, {}) lands inside a blockage",
                pin.x, pin.y
            ),
            DeltaError::UnknownBlockage(r) => {
                write!(f, "no blockage {r} to remove")
            }
            DeltaError::DuplicateBlockage(r) => {
                write!(f, "blockage {r} already exists")
            }
            DeltaError::BlockageOutsideOutline(r) => {
                write!(f, "blockage {r} outside outline")
            }
            DeltaError::BlockageCoversPin { rect, net } => {
                write!(f, "blockage {rect} covers a pin of net '{net}'")
            }
            DeltaError::PlanMismatch => write!(
                f,
                "stitch plan of the configuration differs from the prior outcome's plan"
            ),
            DeltaError::PriorMismatch(what) => {
                write!(f, "prior outcome does not match the base circuit: {what}")
            }
            DeltaError::InvalidCircuit(issues) => {
                write!(f, "edited circuit failed validation ({} issues)", issues.len())
            }
        }
    }
}

impl std::error::Error for DeltaError {}

/// The result of applying an edit list: the edited circuit plus the
/// provenance bookkeeping the closure and patch stages need.
#[derive(Debug, Clone)]
pub struct EditPlan {
    /// The edited circuit. Surviving nets keep their original relative
    /// order; added nets are appended in edit order.
    pub circuit: Circuit,
    /// For each net of the edited circuit, its index in the base
    /// circuit — `None` for nets added by the edit list.
    pub origin: Vec<Option<usize>>,
    /// For each net of the edited circuit, whether an edit touched it
    /// directly (added or moved). Dirty nets always re-route.
    pub dirty: Vec<bool>,
    /// Blockage rectangles added (and not re-removed) by the edit list.
    pub added_blockages: Vec<Rect>,
}

struct NetState {
    net: Net,
    origin: Option<usize>,
    dirty: bool,
}

/// Applies `edits` to `base` sequentially, validating each edit against
/// the intermediate state.
///
/// # Errors
///
/// Returns the first [`DeltaError`] encountered, leaving no partial
/// state behind; an `Err` means no edit was applied.
pub fn apply_edits(base: &Circuit, edits: &[CircuitEdit]) -> Result<EditPlan, DeltaError> {
    let outline = base.outline();
    let layer_count = base.layer_count();
    let mut nets: Vec<NetState> = base
        .nets()
        .iter()
        .enumerate()
        .map(|(i, n)| NetState {
            net: n.clone(),
            origin: Some(i),
            dirty: false,
        })
        .collect();
    let mut blockages: Vec<Rect> = base.blockages().to_vec();
    let mut added_blockages: Vec<Rect> = Vec::new();

    let check_pin = |name: &str, pin: &Pin, blockages: &[Rect]| -> Result<(), DeltaError> {
        if !outline.contains(pin.position) {
            return Err(DeltaError::PinOutsideOutline {
                net: name.to_string(),
                pin: pin.position,
            });
        }
        if pin.layer.index() >= layer_count {
            return Err(DeltaError::PinLayerOutOfStack {
                net: name.to_string(),
                layer: pin.layer.index(),
            });
        }
        if blockages.iter().any(|b| b.contains(pin.position)) {
            return Err(DeltaError::PinCoveredByBlockage {
                net: name.to_string(),
                pin: pin.position,
            });
        }
        Ok(())
    };

    for edit in edits {
        match edit {
            CircuitEdit::AddNet { name, pins } => {
                if nets.iter().any(|s| s.net.name() == name) {
                    return Err(DeltaError::DuplicateNet(name.clone()));
                }
                if pins.len() < 2 {
                    return Err(DeltaError::TooFewPins(name.clone()));
                }
                for pin in pins {
                    check_pin(name, pin, &blockages)?;
                }
                nets.push(NetState {
                    net: Net::new(name.clone(), pins.clone()),
                    origin: None,
                    dirty: true,
                });
            }
            CircuitEdit::RemoveNet { name } => {
                let pos = nets
                    .iter()
                    .position(|s| s.net.name() == name)
                    .ok_or_else(|| DeltaError::UnknownNet(name.clone()))?;
                nets.remove(pos);
            }
            CircuitEdit::MoveNet { name, dx, dy } => {
                let pos = nets
                    .iter()
                    .position(|s| s.net.name() == name)
                    .ok_or_else(|| DeltaError::UnknownNet(name.clone()))?;
                let moved: Vec<Pin> = nets[pos]
                    .net
                    .pins()
                    .iter()
                    .map(|p| {
                        Pin::new(
                            Point::new(
                                p.position.x.saturating_add(*dx),
                                p.position.y.saturating_add(*dy),
                            ),
                            p.layer,
                        )
                    })
                    .collect();
                for pin in &moved {
                    check_pin(name, pin, &blockages)?;
                }
                nets[pos].net = Net::new(name.clone(), moved);
                nets[pos].dirty = true;
            }
            CircuitEdit::AddBlockage { rect } => {
                if !outline.contains_rect(*rect) {
                    return Err(DeltaError::BlockageOutsideOutline(*rect));
                }
                if blockages.contains(rect) {
                    return Err(DeltaError::DuplicateBlockage(*rect));
                }
                if let Some(s) = nets
                    .iter()
                    .find(|s| s.net.pins().iter().any(|p| rect.contains(p.position)))
                {
                    return Err(DeltaError::BlockageCoversPin {
                        rect: *rect,
                        net: s.net.name().to_string(),
                    });
                }
                blockages.push(*rect);
                added_blockages.push(*rect);
            }
            CircuitEdit::RemoveBlockage { rect } => {
                let pos = blockages
                    .iter()
                    .position(|b| b == rect)
                    .ok_or(DeltaError::UnknownBlockage(*rect))?;
                blockages.remove(pos);
                // An add-then-remove pair inside one edit list cancels
                // out and must not widen the affected-net closure.
                if let Some(p) = added_blockages.iter().position(|b| b == rect) {
                    added_blockages.remove(p);
                }
            }
        }
    }

    let origin: Vec<Option<usize>> = nets.iter().map(|s| s.origin).collect();
    let dirty: Vec<bool> = nets.iter().map(|s| s.dirty).collect();
    let circuit = Circuit::with_blockages(
        base.name().to_string(),
        outline,
        layer_count,
        nets.into_iter().map(|s| s.net).collect(),
        blockages,
    );
    Ok(EditPlan {
        circuit,
        origin,
        dirty,
        added_blockages,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use mebl_geom::Layer;

    fn pin(x: Coord, y: Coord, l: u8) -> Pin {
        Pin::new(Point::new(x, y), Layer::new(l))
    }

    fn base() -> Circuit {
        Circuit::with_blockages(
            "t",
            Rect::new(0, 0, 59, 59),
            4,
            vec![
                Net::new("a", vec![pin(0, 0, 0), pin(20, 20, 0)]),
                Net::new("b", vec![pin(5, 40, 0), pin(40, 5, 0)]),
            ],
            vec![Rect::new(50, 50, 55, 55)],
        )
    }

    #[test]
    fn add_remove_move_track_provenance() {
        let edits = vec![
            CircuitEdit::AddNet {
                name: "c".into(),
                pins: vec![pin(1, 1, 0), pin(10, 10, 0)],
            },
            CircuitEdit::RemoveNet { name: "a".into() },
            CircuitEdit::MoveNet {
                name: "b".into(),
                dx: 2,
                dy: -1,
            },
        ];
        let plan = apply_edits(&base(), &edits).unwrap();
        assert_eq!(plan.circuit.net_count(), 2);
        assert_eq!(plan.circuit.nets()[0].name(), "b");
        assert_eq!(plan.circuit.nets()[0].pins()[0].position, Point::new(7, 39));
        assert_eq!(plan.circuit.nets()[1].name(), "c");
        assert_eq!(plan.origin, vec![Some(1), None]);
        assert_eq!(plan.dirty, vec![true, true]);
    }

    #[test]
    fn sequential_semantics_see_earlier_edits() {
        // A net added earlier in the list can be removed later.
        let edits = vec![
            CircuitEdit::AddNet {
                name: "c".into(),
                pins: vec![pin(1, 1, 0), pin(10, 10, 0)],
            },
            CircuitEdit::RemoveNet { name: "c".into() },
        ];
        let plan = apply_edits(&base(), &edits).unwrap();
        assert_eq!(plan.circuit.net_count(), 2);
        assert_eq!(plan.dirty, vec![false, false]);
    }

    #[test]
    fn add_then_remove_blockage_cancels() {
        let r = Rect::new(30, 30, 33, 33);
        let edits = vec![
            CircuitEdit::AddBlockage { rect: r },
            CircuitEdit::RemoveBlockage { rect: r },
        ];
        let plan = apply_edits(&base(), &edits).unwrap();
        assert!(plan.added_blockages.is_empty());
        assert_eq!(plan.circuit.blockages().len(), 1);
    }

    #[test]
    fn edit_errors_are_typed() {
        let c = base();
        let e = apply_edits(&c, &[CircuitEdit::RemoveNet { name: "zz".into() }]).unwrap_err();
        assert_eq!(e, DeltaError::UnknownNet("zz".into()));

        let e = apply_edits(
            &c,
            &[CircuitEdit::AddNet {
                name: "a".into(),
                pins: vec![pin(1, 1, 0), pin(2, 2, 0)],
            }],
        )
        .unwrap_err();
        assert_eq!(e, DeltaError::DuplicateNet("a".into()));

        let e = apply_edits(
            &c,
            &[CircuitEdit::AddNet {
                name: "c".into(),
                pins: vec![pin(1, 1, 0)],
            }],
        )
        .unwrap_err();
        assert_eq!(e, DeltaError::TooFewPins("c".into()));

        let e = apply_edits(
            &c,
            &[CircuitEdit::MoveNet {
                name: "a".into(),
                dx: 1000,
                dy: 0,
            }],
        )
        .unwrap_err();
        assert!(matches!(e, DeltaError::PinOutsideOutline { .. }));

        let e = apply_edits(
            &c,
            &[CircuitEdit::AddNet {
                name: "c".into(),
                pins: vec![pin(1, 1, 9), pin(2, 2, 0)],
            }],
        )
        .unwrap_err();
        assert!(matches!(e, DeltaError::PinLayerOutOfStack { .. }));

        let e = apply_edits(
            &c,
            &[CircuitEdit::AddBlockage {
                rect: Rect::new(0, 0, 2, 2),
            }],
        )
        .unwrap_err();
        assert!(matches!(e, DeltaError::BlockageCoversPin { .. }));

        let e = apply_edits(
            &c,
            &[CircuitEdit::RemoveBlockage {
                rect: Rect::new(1, 1, 2, 2),
            }],
        )
        .unwrap_err();
        assert!(matches!(e, DeltaError::UnknownBlockage(_)));

        let e = apply_edits(
            &c,
            &[CircuitEdit::AddBlockage {
                rect: Rect::new(50, 50, 55, 55),
            }],
        )
        .unwrap_err();
        assert!(matches!(e, DeltaError::DuplicateBlockage(_)));

        let e = apply_edits(
            &c,
            &[CircuitEdit::AddNet {
                name: "c".into(),
                pins: vec![pin(51, 51, 0), pin(2, 2, 0)],
            }],
        )
        .unwrap_err();
        assert!(matches!(e, DeltaError::PinCoveredByBlockage { .. }));
    }

    #[test]
    fn failed_edit_list_applies_nothing() {
        let c = base();
        let edits = vec![
            CircuitEdit::AddNet {
                name: "c".into(),
                pins: vec![pin(1, 1, 0), pin(10, 10, 0)],
            },
            CircuitEdit::RemoveNet { name: "zz".into() },
        ];
        assert!(apply_edits(&c, &edits).is_err());
    }
}
