//! Affected-net closure: which nets must rip up and re-route.
//!
//! The closure is computed against the **prior** outcome's geometry,
//! indexed once into an [`RTree`] so blockage-overlap and pin-coverage
//! queries cost a tree descent instead of a scan over every segment of
//! every net. It must be *complete*: the auditor has no inter-net short
//! check, so a preserved net that actually conflicts with an edit would
//! ship silently. Three rules cover every conflict an edit can create:
//!
//! 1. **Dirty nets** (added or moved) have no or stale geometry.
//! 2. A preserved net whose geometry overlaps an **added blockage**
//!    (blockages are all-layer, so 2-D overlap suffices).
//! 3. A preserved net whose geometry covers a **pin cell** (exact
//!    x, y, layer) of a dirty net — the pin's owner must be able to
//!    occupy that cell.
//!
//! Prior-unrouted nets are also re-targeted: ripping nothing up, they
//! get the same second chance a from-scratch route of the edited
//! circuit would give them.

use crate::edit::EditPlan;
use mebl_geom::{RTree, Rect};
use mebl_route::RoutingOutcome;

/// One indexed piece of prior geometry: owning net (base index) plus
/// the layer span it occupies (`lo..=hi`; vias span two layers).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct GeomItem {
    net: u32,
    layer_lo: u8,
    layer_hi: u8,
}

/// Builds the spatial index over the prior outcome's routed geometry.
fn index_prior(prior: &RoutingOutcome) -> RTree<GeomItem> {
    let mut items: Vec<(Rect, GeomItem)> = Vec::new();
    for (net, geom) in prior.detailed.geometry.iter().enumerate() {
        for seg in geom.segments() {
            let l = seg.layer.index();
            items.push((
                Rect::from_intervals(seg.x_interval(), seg.y_interval()),
                GeomItem {
                    net: net as u32,
                    layer_lo: l,
                    layer_hi: l,
                },
            ));
        }
        for via in geom.vias() {
            items.push((
                Rect::new(via.x, via.y, via.x, via.y),
                GeomItem {
                    net: net as u32,
                    layer_lo: via.lower.index(),
                    layer_hi: via.upper().index(),
                },
            ));
        }
    }
    RTree::bulk_load(items)
}

/// Computes the set of nets (edited-circuit indices, sorted ascending)
/// that must be ripped up and re-routed.
pub fn affected_nets(prior: &RoutingOutcome, plan: &EditPlan) -> Vec<usize> {
    let n = plan.circuit.net_count();
    // Base-index -> edited-index for surviving nets.
    let base_nets = prior.detailed.geometry.len();
    let mut base_to_new: Vec<Option<usize>> = vec![None; base_nets];
    for (new, origin) in plan.origin.iter().enumerate() {
        if let Some(old) = origin {
            base_to_new[*old] = Some(new);
        }
    }

    let mut affected = vec![false; n];
    for (i, dirty) in plan.dirty.iter().enumerate() {
        if *dirty {
            affected[i] = true;
        }
    }
    // Rule: prior-unrouted surviving nets re-route (a scratch run of
    // the edited circuit would try them again too).
    for (old, new) in base_to_new.iter().enumerate() {
        if let Some(new) = new {
            if !prior.detailed.routed[old] {
                affected[*new] = true;
            }
        }
    }

    let tree = index_prior(prior);
    let mut hit = |item: &GeomItem| {
        if let Some(new) = base_to_new[item.net as usize] {
            affected[new] = true;
        }
    };

    // Rule: geometry under an added blockage.
    for rect in &plan.added_blockages {
        for (_, item) in tree.query(*rect) {
            hit(item);
        }
    }

    // Rule: geometry covering a dirty net's pin cell (layer-exact).
    for (i, net) in plan.circuit.nets().iter().enumerate() {
        if !plan.dirty[i] {
            continue;
        }
        for pin in net.pins() {
            let cell = Rect::new(pin.position.x, pin.position.y, pin.position.x, pin.position.y);
            let l = pin.layer.index();
            for (_, item) in tree.query(cell) {
                if item.layer_lo <= l && l <= item.layer_hi {
                    hit(item);
                }
            }
        }
    }

    (0..n).filter(|&i| affected[i]).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::edit::{apply_edits, CircuitEdit};
    use mebl_geom::{Layer, Point};
    use mebl_netlist::{Circuit, Net, Pin};
    use mebl_route::{Router, RouterConfig};

    fn pin(x: i32, y: i32, l: u8) -> Pin {
        Pin::new(Point::new(x, y), Layer::new(l))
    }

    #[test]
    fn blockage_overlap_pulls_net_into_closure() {
        // Net "a" runs along y=30; a blockage dropped on its corridor
        // must pull it into the closure, while far-away "b" stays out.
        let circuit = Circuit::new(
            "t",
            Rect::new(0, 0, 79, 79),
            4,
            vec![
                Net::new("a", vec![pin(2, 30, 0), pin(70, 30, 0)]),
                Net::new("b", vec![pin(2, 70, 0), pin(70, 70, 0)]),
            ],
        );
        let prior = Router::new(RouterConfig::stitch_aware()).route(&circuit);
        assert_eq!(prior.report.routed_nets, 2);

        let geom_a = &prior.detailed.geometry[0];
        // Pick a routed cell of "a" away from every pin so the blockage
        // is a legal edit.
        let pins: Vec<Point> = circuit
            .nets()
            .iter()
            .flat_map(|n| n.pins().iter().map(|p| p.position))
            .collect();
        let cell = geom_a
            .segments()
            .iter()
            .flat_map(|s| s.points())
            .map(|gp| Point::new(gp.x, gp.y))
            .find(|p| !pins.contains(p))
            .unwrap();
        let edits = vec![CircuitEdit::AddBlockage {
            rect: Rect::new(cell.x, cell.y, cell.x, cell.y),
        }];
        let plan = apply_edits(&circuit, &edits).unwrap();
        let affected = affected_nets(&prior, &plan);
        assert!(affected.contains(&0));
        assert!(!affected.contains(&1));
    }

    #[test]
    fn added_net_and_covered_pin_owner_both_in_closure() {
        let circuit = Circuit::new(
            "t",
            Rect::new(0, 0, 79, 79),
            4,
            vec![Net::new("a", vec![pin(2, 30, 0), pin(70, 30, 0)])],
        );
        let prior = Router::new(RouterConfig::stitch_aware()).route(&circuit);
        // Drop a new net's pin directly onto a's routed cell.
        let p = prior.detailed.geometry[0]
            .segments()
            .iter()
            .find(|s| s.layer.index() == 0)
            .map(|s| s.endpoints().0);
        let Some(p) = p else {
            // a routed entirely off layer 0: use its pin cell instead.
            panic!("expected some layer-0 geometry for a 2-pin layer-0 net");
        };
        let edits = vec![CircuitEdit::AddNet {
            name: "c".into(),
            pins: vec![pin(p.x, p.y, 0), pin(50, 60, 0)],
        }];
        let plan = apply_edits(&circuit, &edits).unwrap();
        let affected = affected_nets(&prior, &plan);
        assert_eq!(affected, vec![0, 1]);
    }

    #[test]
    fn removed_net_geometry_pulls_nothing() {
        let circuit = Circuit::new(
            "t",
            Rect::new(0, 0, 79, 79),
            4,
            vec![
                Net::new("a", vec![pin(2, 30, 0), pin(70, 30, 0)]),
                Net::new("b", vec![pin(2, 70, 0), pin(70, 70, 0)]),
            ],
        );
        let prior = Router::new(RouterConfig::stitch_aware()).route(&circuit);
        let plan =
            apply_edits(&circuit, &[CircuitEdit::RemoveNet { name: "a".into() }]).unwrap();
        // Removing a net dirties nothing that survives.
        assert!(affected_nets(&prior, &plan).is_empty());
    }
}
