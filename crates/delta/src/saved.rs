//! Line-based serialisation of a routing outcome.
//!
//! A saved outcome embeds the circuit it describes plus everything the
//! delta router needs to resume from it: per-net routed flags, global
//! routes (tile/edge ids) and detailed geometry. Derived state —
//! demands, metrics, utilisation maps, the report — is a pure function
//! of the routes and is **recomputed** on load, so the format stays
//! small and the round-trip stays canonical: serialising a parsed
//! outcome reproduces the input text byte for byte.
//!
//! ```text
//! meblout 1 <stitch|baseline>
//! stitch <period> <epsilon> <escape_width>
//! parallelism <n>
//! circuit-begin
//! <mebl-netlist text format>
//! circuit-end
//! net <i> <routed|unrouted>
//! gtiles <i> <tile-id>...
//! gedges <i> <a> <b> ...
//! seg <i> <layer> <track> <lo> <hi>
//! via <i> <x> <y> <lower-layer>
//! deg <stage> <kind> <net|-> <detail...>
//! ```
//!
//! The track-assignment stage is intentionally not serialised: detailed
//! geometry is the authoritative routed shape, the auditor never reads
//! track state, and a delta run re-derives occupancy from geometry
//! alone. Loaded outcomes carry an empty [`TrackResult`].

use mebl_geom::{Layer, RouteGeometry, Segment, Via};
use mebl_global::{GlobalConfig, GlobalRoute, TileId};
use mebl_netlist::{circuit_from_str, circuit_to_string, Circuit};
use mebl_route::{
    build_report, Degradation, DegradationKind, RouterConfig, RoutingOutcome, Stage,
    StageTimings,
};
use mebl_assign::TrackResult;
use mebl_detailed::DetailedResult;
use mebl_stitch::{StitchConfig, StitchPlan};
use std::fmt::Write as _;

/// A routing outcome bundled with the circuit it describes and the
/// configuration mode it was produced under.
#[derive(Debug, Clone)]
pub struct SavedOutcome {
    /// The routed circuit.
    pub circuit: Circuit,
    /// The outcome (tracks empty, timings zero after a round-trip).
    pub outcome: RoutingOutcome,
    /// `true` when the outcome came from the conventional baseline
    /// configuration rather than the stitch-aware one.
    pub baseline: bool,
}

impl SavedOutcome {
    /// The router configuration a delta run over this outcome should
    /// start from: the saved mode's preset with the saved stitch
    /// geometry installed.
    pub fn config(&self) -> RouterConfig {
        let mut config = if self.baseline {
            RouterConfig::baseline()
        } else {
            RouterConfig::stitch_aware()
        };
        config.stitch = self.stitch_config();
        // The period override contract couples tile size to the stitch
        // period (`mebl route --period`, `/route` `period`); restore the
        // same coupling so a saved override round-trips.
        config.global.tile_size = config.stitch.period;
        config
    }

    fn stitch_config(&self) -> StitchConfig {
        self.outcome.plan.config()
    }
}

/// Error produced when parsing a saved outcome.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseOutcomeError {
    /// 1-based line number of the offending line (0 = structural).
    pub line: usize,
    /// Human-readable description.
    pub message: String,
}

impl std::fmt::Display for ParseOutcomeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseOutcomeError {}

fn stage_name(stage: Stage) -> &'static str {
    match stage {
        Stage::Generate => "generate",
        Stage::Validate => "validate",
        Stage::Global => "global",
        Stage::Assign => "assign",
        Stage::Detailed => "detailed",
        Stage::Check => "check",
    }
}

fn stage_from(name: &str) -> Option<Stage> {
    Some(match name {
        "generate" => Stage::Generate,
        "validate" => Stage::Validate,
        "global" => Stage::Global,
        "assign" => Stage::Assign,
        "detailed" => Stage::Detailed,
        "check" => Stage::Check,
        _ => return None,
    })
}

fn kind_name(kind: DegradationKind) -> &'static str {
    match kind {
        DegradationKind::BudgetExhausted => "budget-exhausted",
        DegradationKind::InternalFallback => "internal-fallback",
        DegradationKind::ValidationWarning => "validation-warning",
        DegradationKind::SearchExhausted => "search-exhausted",
    }
}

fn kind_from(name: &str) -> Option<DegradationKind> {
    Some(match name {
        "budget-exhausted" => DegradationKind::BudgetExhausted,
        "internal-fallback" => DegradationKind::InternalFallback,
        "validation-warning" => DegradationKind::ValidationWarning,
        "search-exhausted" => DegradationKind::SearchExhausted,
        _ => return None,
    })
}

/// Serialises `saved` to the canonical text format.
pub fn outcome_to_string(saved: &SavedOutcome) -> String {
    let mut out = String::new();
    let mode = if saved.baseline { "baseline" } else { "stitch" };
    let _ = writeln!(out, "meblout 1 {mode}");
    let s = saved.stitch_config();
    let _ = writeln!(out, "stitch {} {} {}", s.period, s.epsilon, s.escape_width);
    let _ = writeln!(out, "parallelism {}", saved.outcome.parallelism);
    out.push_str("circuit-begin\n");
    out.push_str(&circuit_to_string(&saved.circuit));
    out.push_str("circuit-end\n");
    let detailed = &saved.outcome.detailed;
    for i in 0..saved.circuit.net_count() {
        let flag = if detailed.routed[i] { "routed" } else { "unrouted" };
        let _ = writeln!(out, "net {i} {flag}");
        let route = &saved.outcome.global.routes[i];
        if !route.tiles.is_empty() {
            let _ = write!(out, "gtiles {i}");
            for t in &route.tiles {
                let _ = write!(out, " {}", t.0);
            }
            out.push('\n');
        }
        if !route.edges.is_empty() {
            let _ = write!(out, "gedges {i}");
            for (a, b) in &route.edges {
                let _ = write!(out, " {} {}", a.0, b.0);
            }
            out.push('\n');
        }
        let geom = &detailed.geometry[i];
        for seg in geom.segments() {
            let _ = writeln!(
                out,
                "seg {i} {} {} {} {}",
                seg.layer.index(),
                seg.track,
                seg.span.lo(),
                seg.span.hi()
            );
        }
        for via in geom.vias() {
            let _ = writeln!(out, "via {i} {} {} {}", via.x, via.y, via.lower.index());
        }
    }
    for d in &saved.outcome.degradations {
        let net = d.net.map_or_else(|| "-".to_string(), |n| n.to_string());
        let detail = d.detail.replace('\n', " ");
        let _ = writeln!(
            out,
            "deg {} {} {} {}",
            stage_name(d.stage),
            kind_name(d.kind),
            net,
            detail
        );
    }
    out
}

/// Parses a saved outcome from the text format, recomputing all derived
/// state (graph, demands, metrics, report) from the stored routes.
///
/// # Errors
///
/// Returns [`ParseOutcomeError`] with the offending line number on any
/// syntax or consistency problem (unknown directive, out-of-range net
/// index, malformed numbers, truncated input).
pub fn outcome_from_str(text: &str) -> Result<SavedOutcome, ParseOutcomeError> {
    let err = |line: usize, message: String| ParseOutcomeError { line, message };

    let mut lines = text.lines().enumerate();
    let (_, header) = lines
        .next()
        .ok_or_else(|| err(0, "empty outcome file".to_string()))?;
    let mut tok = header.split_whitespace();
    if tok.next() != Some("meblout") {
        return Err(err(1, "missing 'meblout' header".to_string()));
    }
    if tok.next() != Some("1") {
        return Err(err(1, "unsupported outcome format version".to_string()));
    }
    let baseline = match tok.next() {
        Some("stitch") => false,
        Some("baseline") => true,
        other => {
            return Err(err(
                1,
                format!("bad mode {:?} (want stitch|baseline)", other.unwrap_or("")),
            ))
        }
    };

    let mut stitch: Option<StitchConfig> = None;
    let mut parallelism: usize = 1;
    let mut in_circuit = false;
    let mut circuit_buf = String::new();
    // Per-net state, sized once the circuit is known.
    let mut routed: Vec<bool> = Vec::new();
    let mut routes: Vec<GlobalRoute> = Vec::new();
    let mut geometry: Vec<RouteGeometry> = Vec::new();
    let mut degradations: Vec<Degradation> = Vec::new();
    let mut circuit: Option<Circuit> = None;

    for (idx, raw) in lines {
        let lineno = idx + 1;
        if in_circuit {
            if raw.trim() == "circuit-end" {
                in_circuit = false;
                let parsed = circuit_from_str(&circuit_buf)
                    .map_err(|e| err(lineno, format!("embedded circuit: {e}")))?;
                let n = parsed.net_count();
                routed = vec![false; n];
                routes = vec![GlobalRoute::default(); n];
                geometry = vec![RouteGeometry::default(); n];
                circuit = Some(parsed);
            } else {
                circuit_buf.push_str(raw);
                circuit_buf.push('\n');
            }
            continue;
        }
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut tok = line.split_whitespace();
        let directive = tok.next();
        // Every per-net directive starts with the net index; parse it
        // once the circuit defines the valid range.
        let net_index = |tok: &mut std::str::SplitWhitespace<'_>,
                             n: usize|
         -> Result<usize, ParseOutcomeError> {
            let i: usize = tok
                .next()
                .ok_or_else(|| err(lineno, "missing net index".to_string()))?
                .parse()
                .map_err(|_| err(lineno, "bad net index".to_string()))?;
            if i >= n {
                return Err(err(lineno, format!("net index {i} out of range (n={n})")));
            }
            Ok(i)
        };
        let num = |tok: &mut std::str::SplitWhitespace<'_>,
                   what: &str|
         -> Result<i64, ParseOutcomeError> {
            tok.next()
                .ok_or_else(|| err(lineno, format!("missing {what}")))?
                .parse()
                .map_err(|_| err(lineno, format!("bad {what}")))
        };
        match directive {
            Some("stitch") => {
                let period = num(&mut tok, "stitch period")? as i32;
                let epsilon = num(&mut tok, "stitch epsilon")? as i32;
                let escape_width = num(&mut tok, "stitch escape width")? as i32;
                if period <= 0 || epsilon < 0 || escape_width < epsilon {
                    return Err(err(lineno, "degenerate stitch geometry".to_string()));
                }
                stitch = Some(StitchConfig {
                    period,
                    epsilon,
                    escape_width,
                });
            }
            Some("parallelism") => {
                parallelism = num(&mut tok, "parallelism")?.max(1) as usize;
            }
            Some("circuit-begin") => {
                if circuit.is_some() {
                    return Err(err(lineno, "duplicate embedded circuit".to_string()));
                }
                in_circuit = true;
            }
            Some("net") => {
                let c = circuit
                    .as_ref()
                    .ok_or_else(|| err(lineno, "net state before circuit".to_string()))?;
                let i = net_index(&mut tok, c.net_count())?;
                match tok.next() {
                    Some("routed") => routed[i] = true,
                    Some("unrouted") => routed[i] = false,
                    _ => return Err(err(lineno, "want routed|unrouted".to_string())),
                }
            }
            Some("gtiles") => {
                let c = circuit
                    .as_ref()
                    .ok_or_else(|| err(lineno, "global route before circuit".to_string()))?;
                let i = net_index(&mut tok, c.net_count())?;
                for t in tok {
                    let id: u32 = t
                        .parse()
                        .map_err(|_| err(lineno, "bad tile id".to_string()))?;
                    routes[i].tiles.push(TileId(id));
                }
            }
            Some("gedges") => {
                let c = circuit
                    .as_ref()
                    .ok_or_else(|| err(lineno, "global route before circuit".to_string()))?;
                let i = net_index(&mut tok, c.net_count())?;
                while let Some(a) = tok.next() {
                    let a: u32 = a
                        .parse()
                        .map_err(|_| err(lineno, "bad edge tile id".to_string()))?;
                    let b: u32 = tok
                        .next()
                        .ok_or_else(|| err(lineno, "dangling edge tile id".to_string()))?
                        .parse()
                        .map_err(|_| err(lineno, "bad edge tile id".to_string()))?;
                    routes[i].edges.push((TileId(a), TileId(b)));
                }
            }
            Some("seg") => {
                let c = circuit
                    .as_ref()
                    .ok_or_else(|| err(lineno, "segment before circuit".to_string()))?;
                let i = net_index(&mut tok, c.net_count())?;
                let layer = num(&mut tok, "segment layer")?;
                if layer < 0 || layer >= i64::from(c.layer_count()) {
                    return Err(err(lineno, "segment layer out of stack".to_string()));
                }
                let layer = Layer::new(layer as u8);
                let track = num(&mut tok, "segment track")? as i32;
                let lo = num(&mut tok, "segment lo")? as i32;
                let hi = num(&mut tok, "segment hi")? as i32;
                if lo > hi {
                    return Err(err(lineno, "segment span reversed".to_string()));
                }
                let seg = if layer.is_horizontal() {
                    Segment::horizontal(layer, track, lo, hi)
                } else {
                    Segment::vertical(layer, track, lo, hi)
                };
                geometry[i].push_segment(seg);
            }
            Some("via") => {
                let c = circuit
                    .as_ref()
                    .ok_or_else(|| err(lineno, "via before circuit".to_string()))?;
                let i = net_index(&mut tok, c.net_count())?;
                let x = num(&mut tok, "via x")? as i32;
                let y = num(&mut tok, "via y")? as i32;
                let lower = num(&mut tok, "via layer")?;
                if lower < 0 || lower + 1 >= i64::from(c.layer_count()) {
                    return Err(err(lineno, "via layer out of stack".to_string()));
                }
                geometry[i].push_via(Via::new(x, y, Layer::new(lower as u8)));
            }
            Some("deg") => {
                let stage = tok
                    .next()
                    .and_then(stage_from)
                    .ok_or_else(|| err(lineno, "bad degradation stage".to_string()))?;
                let kind = tok
                    .next()
                    .and_then(kind_from)
                    .ok_or_else(|| err(lineno, "bad degradation kind".to_string()))?;
                let net = match tok.next() {
                    Some("-") => None,
                    Some(n) => Some(
                        n.parse::<usize>()
                            .map_err(|_| err(lineno, "bad degradation net".to_string()))?,
                    ),
                    None => return Err(err(lineno, "truncated degradation".to_string())),
                };
                let detail: Vec<&str> = tok.collect();
                degradations.push(Degradation::new(stage, kind, net, detail.join(" ")));
            }
            Some(other) => {
                return Err(err(lineno, format!("unknown directive '{other}'")));
            }
            None => continue,
        }
    }
    if in_circuit {
        return Err(err(0, "unterminated embedded circuit".to_string()));
    }
    let circuit = circuit.ok_or_else(|| err(0, "missing embedded circuit".to_string()))?;
    let stitch = stitch.ok_or_else(|| err(0, "missing stitch line".to_string()))?;

    let plan = StitchPlan::new(circuit.outline(), stitch);
    let mut global_config = if baseline {
        GlobalConfig::baseline()
    } else {
        GlobalConfig::default()
    };
    global_config.tile_size = stitch.period;
    global_config.pool = mebl_route::Pool::serial();
    let global = mebl_global::rebuild_result(&circuit, &plan, &global_config, routes);
    let routed_count = routed.iter().filter(|&&r| r).count();
    let detailed = DetailedResult {
        geometry,
        routed,
        routed_count,
    };
    let report = build_report(&circuit, &plan, &detailed, std::time::Duration::ZERO);
    let outcome = RoutingOutcome {
        plan,
        global,
        tracks: TrackResult::default(),
        detailed,
        report,
        timings: StageTimings::default(),
        degradations,
        parallelism,
    };
    Ok(SavedOutcome {
        circuit,
        outcome,
        baseline,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use mebl_route::Router;
    use mebl_netlist::{BenchmarkSpec, GenerateConfig};

    #[test]
    fn round_trip_is_canonical() {
        let circuit = BenchmarkSpec::by_name("S9234")
            .unwrap()
            .generate(&GenerateConfig::quick(11));
        let config = RouterConfig::stitch_aware();
        let outcome = Router::new(config).route(&circuit);
        let saved = SavedOutcome {
            circuit,
            outcome,
            baseline: false,
        };
        let text = outcome_to_string(&saved);
        let back = outcome_from_str(&text).unwrap();
        assert_eq!(back.circuit, saved.circuit);
        assert_eq!(back.outcome.detailed.routed, saved.outcome.detailed.routed);
        assert_eq!(
            back.outcome.detailed.geometry,
            saved.outcome.detailed.geometry
        );
        assert_eq!(back.outcome.global.routes, saved.outcome.global.routes);
        assert_eq!(
            back.outcome.global.metrics,
            saved.outcome.global.metrics
        );
        // Reports agree on everything but wall-clock.
        let mut a = back.outcome.report.clone();
        let mut b = saved.outcome.report.clone();
        a.elapsed = std::time::Duration::ZERO;
        b.elapsed = std::time::Duration::ZERO;
        assert_eq!(a, b);
        // And re-serialising the parsed outcome is byte-identical.
        assert_eq!(outcome_to_string(&back), text);
    }

    #[test]
    fn truncated_and_malformed_inputs_are_typed_errors() {
        assert!(outcome_from_str("").is_err());
        assert!(outcome_from_str("meblout 2 stitch\n").is_err());
        assert!(outcome_from_str("meblout 1 sideways\n").is_err());
        let e = outcome_from_str("meblout 1 stitch\nstitch 15 1 4\ncircuit-begin\ncircuit t 0 0 9 9 3\n")
            .unwrap_err();
        assert!(e.message.contains("unterminated"));
        let e = outcome_from_str(
            "meblout 1 stitch\nstitch 15 1 4\ncircuit-begin\ncircuit t 0 0 9 9 3\nnet a 0,0,0 5,5,0\ncircuit-end\nnet 7 routed\n",
        )
        .unwrap_err();
        assert!(e.message.contains("out of range"));
        let e = outcome_from_str(
            "meblout 1 stitch\nstitch 15 1 4\ncircuit-begin\ncircuit t 0 0 9 9 3\nnet a 0,0,0 5,5,0\ncircuit-end\nwibble\n",
        )
        .unwrap_err();
        assert!(e.message.contains("unknown directive"));
    }
}
