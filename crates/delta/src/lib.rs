//! Incremental (ECO) delta routing for the MEBL flow (DESIGN.md §14).
//!
//! A routed design rarely dies with its first tape-out of the day:
//! engineering change orders add a net, nudge a macro, drop a new
//! keep-out. Re-routing the whole chip for a one-net change wastes both
//! wall clock and stability — every unrelated net may move. This crate
//! patches a prior [`RoutingOutcome`] instead:
//!
//! 1. **Edits** — a typed [`CircuitEdit`] list (add/remove/move nets,
//!    add/remove blockages) is validated and applied sequentially
//!    ([`apply_edits`]), producing the edited circuit plus provenance
//!    (which new net was which base net).
//! 2. **Closure** — the affected-net set is computed against the prior
//!    geometry through an R-tree spatial index: directly edited nets,
//!    nets overlapping added blockages, nets sitting on a dirty net's
//!    pin cells, and previously-unrouted nets.
//! 3. **Patch** — only the closure is ripped up. The undo is exact
//!    because global demands and detailed occupancy are pure functions
//!    of the per-net routes: preserved state is re-applied verbatim and
//!    the closure re-routes against it under the normal budget and
//!    cancellation machinery ([`route_delta`]).
//!
//! The equivalence contract, enforced by the differential harness in
//! the test suite: a delta outcome audits strictly clean, is
//! bit-identical across worker-pool widths, stays within the scratch
//! router's quality bands, and an **empty** edit list reproduces the
//! prior outcome bit-identically.
//!
//! Outcomes round-trip through a canonical text format
//! ([`outcome_to_string`] / [`outcome_from_str`]) so a CLI run can
//! resume from a file and a service can resume from a cached handle.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod closure;
mod edit;
mod patch;
mod saved;

pub use closure::affected_nets;
pub use edit::{apply_edits, CircuitEdit, DeltaError, EditPlan};
pub use patch::{route_delta, route_delta_under, DeltaOutcome};
pub use saved::{outcome_from_str, outcome_to_string, ParseOutcomeError, SavedOutcome};

// Re-exported so delta callers can name the outcome type without a
// direct mebl-route dependency.
pub use mebl_route::RoutingOutcome;
