//! MEBL data-preparation substrate: rasterization with error diffusion.
//!
//! MEBL is maskless: before exposure a layout is rasterized into a
//! black/white bitmap so each beam can be switched on or off per pixel
//! (paper §II-A). Rasterization has two steps:
//!
//! 1. **Rendering** — patterns become grey-level pixel intensities
//!    proportional to pattern coverage ([`render`] → [`GrayMap`]).
//! 2. **Dithering with error diffusion** — the grey map becomes a
//!    black/white map; each pixel's quantisation error is pushed to its
//!    unprocessed right/lower neighbours ([`GrayMap::dither`] →
//!    [`BitMap`]), which creates irregular pixels on feature edges.
//!
//! The paper's Fig. 4 observation is that a **short polygon** — the stub a
//! stitching line cuts off a wire — has so few pixels that these edge
//! errors dominate it, distorting the pattern under its landing via.
//! [`defect_score`] quantifies exactly that: the fraction of a feature's
//! pixels the dithered bitmap gets wrong. This crate backs the Fig. 3/4
//! reproduction and motivates the short-polygon routing constraint; the
//! router itself never calls it (as in the paper).
//!
//! ```
//! use mebl_raster::{render, FRect};
//!
//! // A 6x1-pixel wire, offset half a pixel vertically so every covered
//! // pixel is 50% grey.
//! let wire = FRect::new(0.0, 0.5, 6.0, 1.5);
//! let gray = render(&[wire], 6, 2);
//! let bw = gray.dither();
//! let score = mebl_raster::defect_score(&gray, &bw);
//! assert!(score <= 1.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod clip;
mod throughput;

pub use clip::{raster_clip, score_single_wire, ClipRaster, WireShape};
pub use throughput::BeamArray;

use mebl_par::Pool;

/// An axis-aligned rectangle in continuous pixel coordinates.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FRect {
    /// Left edge.
    pub x0: f64,
    /// Bottom edge.
    pub y0: f64,
    /// Right edge.
    pub x1: f64,
    /// Top edge.
    pub y1: f64,
}

impl FRect {
    /// Creates a rectangle, normalising corner order.
    pub fn new(x0: f64, y0: f64, x1: f64, y1: f64) -> Self {
        Self {
            x0: x0.min(x1),
            y0: y0.min(y1),
            x1: x0.max(x1),
            y1: y0.max(y1),
        }
    }

    /// Area of the rectangle.
    pub fn area(&self) -> f64 {
        (self.x1 - self.x0) * (self.y1 - self.y0)
    }

    /// Area of overlap with the unit pixel at `(px, py)`.
    fn pixel_coverage(&self, px: usize, py: usize) -> f64 {
        let (px0, py0) = (px as f64, py as f64);
        let w = (self.x1.min(px0 + 1.0) - self.x0.max(px0)).max(0.0);
        let h = (self.y1.min(py0 + 1.0) - self.y0.max(py0)).max(0.0);
        w * h
    }
}

/// A grey-level pixel map with intensities in `[0, 1]`.
#[derive(Debug, Clone, PartialEq)]
pub struct GrayMap {
    width: usize,
    height: usize,
    data: Vec<f64>,
}

impl GrayMap {
    /// Creates an all-black (zero intensity) map.
    pub fn new(width: usize, height: usize) -> Self {
        Self {
            width,
            height,
            data: vec![0.0; width * height],
        }
    }

    /// Map width in pixels.
    pub fn width(&self) -> usize {
        self.width
    }

    /// Map height in pixels.
    pub fn height(&self) -> usize {
        self.height
    }

    /// Intensity at `(x, y)`.
    ///
    /// # Panics
    ///
    /// Panics if out of bounds.
    pub fn get(&self, x: usize, y: usize) -> f64 {
        assert!(x < self.width && y < self.height, "pixel out of bounds");
        self.data[y * self.width + x]
    }

    /// Sets intensity at `(x, y)`, clamped to `[0, 1]`.
    ///
    /// # Panics
    ///
    /// Panics if out of bounds.
    pub fn set(&mut self, x: usize, y: usize, v: f64) {
        assert!(x < self.width && y < self.height, "pixel out of bounds");
        self.data[y * self.width + x] = v.clamp(0.0, 1.0);
    }

    /// Dithers to black/white with Floyd–Steinberg error diffusion in
    /// raster order — the paper's Fig. 3 data-preparation step (error
    /// flows to the right and lower grids).
    pub fn dither(&self) -> BitMap {
        self.dither_with(DitherKernel::FloydSteinberg, false)
    }

    /// Dithers with a selectable diffusion kernel and optional serpentine
    /// scanning (alternating row direction, which breaks up the diagonal
    /// worm artefacts of unidirectional scans).
    ///
    /// Pixels are processed row by row; each pixel's quantisation error is
    /// pushed to its unprocessed neighbours with the kernel's weights.
    pub fn dither_with(&self, kernel: DitherKernel, serpentine: bool) -> BitMap {
        let mut acc = self.data.clone();
        let mut bits = vec![false; self.data.len()];
        let w = self.width as i64;
        let h = self.height as i64;
        let taps = kernel.taps();
        for y in 0..h {
            let reversed = serpentine && y % 2 == 1;
            let xs: Box<dyn Iterator<Item = i64>> = if reversed {
                Box::new((0..w).rev())
            } else {
                Box::new(0..w)
            };
            for x in xs {
                let idx = (y * w + x) as usize;
                let old = acc[idx];
                let on = old >= 0.5;
                bits[idx] = on;
                let err = old - if on { 1.0 } else { 0.0 };
                for &(dx, dy, weight) in taps {
                    let dx = if reversed { -dx } else { dx };
                    let (nx, ny) = (x + dx, y + dy);
                    if (0..w).contains(&nx) && (0..h).contains(&ny) {
                        acc[(ny * w + nx) as usize] += err * weight;
                    }
                }
            }
        }
        BitMap {
            width: self.width,
            height: self.height,
            data: bits,
        }
    }
}

/// Error-diffusion kernel used by [`GrayMap::dither_with`].
///
/// Taps are `(dx, dy, weight)` relative to the current pixel, with `dy`
/// pointing at rows yet to be processed; weights of each kernel sum to 1
/// so dose is conserved away from the boundary.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum DitherKernel {
    /// Floyd–Steinberg (4 taps, /16) — the classic kernel the paper's
    /// Fig. 3 sketch corresponds to.
    #[default]
    FloydSteinberg,
    /// Jarvis–Judice–Ninke (12 taps, /48): smoother, wider error spread.
    JarvisJudiceNinke,
    /// Stucki (12 taps, /42): sharper variant of JJN.
    Stucki,
}

impl DitherKernel {
    /// The kernel's diffusion taps.
    pub fn taps(self) -> &'static [(i64, i64, f64)] {
        match self {
            DitherKernel::FloydSteinberg => &[
                (1, 0, 7.0 / 16.0),
                (-1, 1, 3.0 / 16.0),
                (0, 1, 5.0 / 16.0),
                (1, 1, 1.0 / 16.0),
            ],
            DitherKernel::JarvisJudiceNinke => &[
                (1, 0, 7.0 / 48.0),
                (2, 0, 5.0 / 48.0),
                (-2, 1, 3.0 / 48.0),
                (-1, 1, 5.0 / 48.0),
                (0, 1, 7.0 / 48.0),
                (1, 1, 5.0 / 48.0),
                (2, 1, 3.0 / 48.0),
                (-2, 2, 1.0 / 48.0),
                (-1, 2, 3.0 / 48.0),
                (0, 2, 5.0 / 48.0),
                (1, 2, 3.0 / 48.0),
                (2, 2, 1.0 / 48.0),
            ],
            DitherKernel::Stucki => &[
                (1, 0, 8.0 / 42.0),
                (2, 0, 4.0 / 42.0),
                (-2, 1, 2.0 / 42.0),
                (-1, 1, 4.0 / 42.0),
                (0, 1, 8.0 / 42.0),
                (1, 1, 4.0 / 42.0),
                (2, 1, 2.0 / 42.0),
                (-2, 2, 1.0 / 42.0),
                (-1, 2, 2.0 / 42.0),
                (0, 2, 4.0 / 42.0),
                (1, 2, 2.0 / 42.0),
                (2, 2, 1.0 / 42.0),
            ],
        }
    }
}

/// A black/white exposure bitmap (`true` = beam on).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BitMap {
    width: usize,
    height: usize,
    data: Vec<bool>,
}

impl BitMap {
    /// Map width in pixels.
    pub fn width(&self) -> usize {
        self.width
    }

    /// Map height in pixels.
    pub fn height(&self) -> usize {
        self.height
    }

    /// Whether the beam is on at `(x, y)`.
    ///
    /// # Panics
    ///
    /// Panics if out of bounds.
    pub fn get(&self, x: usize, y: usize) -> bool {
        assert!(x < self.width && y < self.height, "pixel out of bounds");
        self.data[y * self.width + x]
    }

    /// Number of lit pixels.
    pub fn on_count(&self) -> usize {
        self.data.iter().filter(|&&b| b).count()
    }
}

/// Renders rectangles into a grey map of the given pixel dimensions.
///
/// Intensity of each pixel is its total coverage by the (assumed
/// non-overlapping) rectangles, clamped to 1. Serial convenience
/// wrapper over [`render_with`].
pub fn render(rects: &[FRect], width: usize, height: usize) -> GrayMap {
    render_with(&Pool::serial(), rects, width, height)
}

/// Rows per parallel rendering stripe. Fixed (never derived from the
/// worker count) so stripe boundaries are deterministic; rows are
/// independent, so the result is bit-identical to [`render`] for every
/// pool width anyway.
const STRIPE_ROWS: usize = 64;

/// [`render`] with row stripes fanned out over `pool`.
///
/// Each pixel's intensity accumulates rectangle coverage in input
/// order with the same per-add clamp as the serial path, so the output
/// is bit-identical for every worker count. Dithering stays serial:
/// error diffusion is order-dependent by definition.
pub fn render_with(pool: &Pool, rects: &[FRect], width: usize, height: usize) -> GrayMap {
    let rows: Vec<usize> = (0..height).collect();
    let stripes: Vec<Vec<f64>> = pool.par_chunks(&rows, STRIPE_ROWS, |_, stripe| {
        let mut map = GrayMap::new(width, stripe.len());
        let base = stripe.first().copied().unwrap_or(0);
        for r in rects {
            let x_lo = (r.x0.floor().max(0.0)) as usize;
            let y_lo = (r.y0.floor().max(0.0)) as usize;
            let x_hi = (r.x1.ceil().min(width as f64)) as usize;
            let y_hi = (r.y1.ceil().min(height as f64)) as usize;
            let s_lo = y_lo.clamp(base, base + stripe.len());
            let s_hi = y_hi.clamp(base, base + stripe.len());
            for y in s_lo..s_hi {
                for x in x_lo..x_hi {
                    let v = map.get(x, y - base) + r.pixel_coverage(x, y);
                    map.set(x, y - base, v);
                }
            }
        }
        map.data
    });
    let mut data = Vec::with_capacity(width * height);
    for stripe in stripes {
        data.extend(stripe);
    }
    GrayMap {
        width,
        height,
        data,
    }
}

/// Fraction of *feature* pixels that the dithered bitmap exposes wrongly.
///
/// A pixel counts as wrong when the ideal exposure (grey intensity rounded
/// at 0.5, with no neighbour influence) differs from the dithered value.
/// Only pixels with non-zero intended coverage (plus lit pixels outside the
/// feature) enter the numerator; the denominator is the covered-pixel
/// count, so *small features score worse for the same absolute edge error*
/// — the paper's short-polygon failure mode.
///
/// Returns 0 for an empty feature.
pub fn defect_score(ideal: &GrayMap, exposed: &BitMap) -> f64 {
    assert_eq!(ideal.width(), exposed.width());
    assert_eq!(ideal.height(), exposed.height());
    let mut covered = 0usize;
    let mut wrong = 0usize;
    for y in 0..ideal.height() {
        for x in 0..ideal.width() {
            let g = ideal.get(x, y);
            let want = g >= 0.5;
            let got = exposed.get(x, y);
            if g > 0.0 {
                covered += 1;
                if want != got {
                    wrong += 1;
                }
            } else if got {
                // Spill outside the feature counts as error too.
                wrong += 1;
            }
        }
    }
    if covered == 0 {
        0.0
    } else {
        wrong as f64 / covered as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mebl_testkit::prop::{f64s, vecs};
    use mebl_testkit::{prop_assert, prop_check};

    #[test]
    fn full_coverage_renders_to_one() {
        let g = render(&[FRect::new(0.0, 0.0, 4.0, 4.0)], 4, 4);
        for y in 0..4 {
            for x in 0..4 {
                assert!((g.get(x, y) - 1.0).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn half_pixel_coverage() {
        let g = render(&[FRect::new(0.5, 0.0, 1.0, 1.0)], 1, 1);
        assert!((g.get(0, 0) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn dither_full_intensity_is_all_on() {
        let g = render(&[FRect::new(0.0, 0.0, 5.0, 5.0)], 5, 5);
        let b = g.dither();
        assert_eq!(b.on_count(), 25);
    }

    #[test]
    fn dither_zero_intensity_is_all_off() {
        let g = GrayMap::new(5, 5);
        assert_eq!(g.dither().on_count(), 0);
    }

    #[test]
    fn dither_preserves_total_dose_approximately() {
        // A 50% grey field of 10x10 should light about half the pixels.
        let mut g = GrayMap::new(10, 10);
        for y in 0..10 {
            for x in 0..10 {
                g.set(x, y, 0.5);
            }
        }
        let on = g.dither().on_count();
        assert!((40..=60).contains(&on), "on = {on}");
    }

    #[test]
    fn misaligned_short_polygon_is_heavily_defective() {
        // Fig. 4: a stitch-cut stub sits sub-pixel misaligned relative to
        // the raster grid of the second beam; error diffusion then flips a
        // large *percentage* of its few pixels, while a grid-aligned
        // feature of any size prints perfectly.
        let short = FRect::new(0.0, 0.45, 3.0, 1.45);
        let gs = render(&[short], 8, 4);
        let ss = defect_score(&gs, &gs.dither());
        assert!(ss >= 0.25, "short misaligned polygon score {ss} too benign");

        let aligned = FRect::new(0.0, 1.0, 30.0, 2.0);
        let ga = render(&[aligned], 32, 4);
        assert_eq!(defect_score(&ga, &ga.dither()), 0.0);
    }

    #[test]
    fn all_kernels_conserve_dose_on_uniform_field() {
        let mut g = GrayMap::new(12, 12);
        for y in 0..12 {
            for x in 0..12 {
                g.set(x, y, 0.5);
            }
        }
        for kernel in [
            DitherKernel::FloydSteinberg,
            DitherKernel::JarvisJudiceNinke,
            DitherKernel::Stucki,
        ] {
            for serpentine in [false, true] {
                let on = g.dither_with(kernel, serpentine).on_count();
                assert!(
                    (55..=90).contains(&on),
                    "{kernel:?} serp={serpentine}: {on}/144 on"
                );
            }
        }
    }

    #[test]
    fn kernel_weights_sum_to_one() {
        for kernel in [
            DitherKernel::FloydSteinberg,
            DitherKernel::JarvisJudiceNinke,
            DitherKernel::Stucki,
        ] {
            let sum: f64 = kernel.taps().iter().map(|&(_, _, w)| w).sum();
            assert!((sum - 1.0).abs() < 1e-12, "{kernel:?}: {sum}");
        }
    }

    #[test]
    fn kernel_taps_only_touch_unprocessed_pixels() {
        for kernel in [
            DitherKernel::FloydSteinberg,
            DitherKernel::JarvisJudiceNinke,
            DitherKernel::Stucki,
        ] {
            for &(dx, dy, _) in kernel.taps() {
                assert!(dy > 0 || (dy == 0 && dx > 0), "{kernel:?}: tap ({dx},{dy})");
            }
        }
    }

    #[test]
    fn serpentine_differs_from_raster_scan() {
        let g = render(&[FRect::new(0.0, 0.45, 10.0, 1.45)], 12, 4);
        let raster = g.dither_with(DitherKernel::FloydSteinberg, false);
        let serp = g.dither_with(DitherKernel::FloydSteinberg, true);
        // Different scan orders generally produce different bitmaps on a
        // misaligned feature (same total dose though).
        assert!(
            raster != serp || raster.on_count() == serp.on_count(),
            "sanity"
        );
    }

    #[test]
    fn default_dither_is_floyd_steinberg_raster() {
        let g = render(&[FRect::new(0.0, 0.3, 7.0, 1.3)], 8, 3);
        assert_eq!(
            g.dither(),
            g.dither_with(DitherKernel::FloydSteinberg, false)
        );
    }

    #[test]
    fn defect_score_zero_for_aligned_feature() {
        let g = render(&[FRect::new(1.0, 1.0, 5.0, 3.0)], 8, 4);
        let score = defect_score(&g, &g.dither());
        assert_eq!(score, 0.0);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn gray_get_bounds_checked() {
        GrayMap::new(2, 2).get(2, 0);
    }

    #[test]
    fn parallel_render_is_bit_identical_to_serial() {
        // Overlapping, misaligned, partially out-of-bounds rectangles over
        // a map taller than one stripe.
        let rects: Vec<FRect> = (0..40)
            .map(|i| {
                let f = i as f64;
                FRect::new(
                    -1.0 + f * 0.7,
                    -2.0 + f * 3.3,
                    4.5 + f * 0.9,
                    5.25 + f * 3.4,
                )
            })
            .collect();
        let serial = render(&rects, 48, 160);
        for workers in [1, 2, 4, 8] {
            let par = render_with(&Pool::new(workers), &rects, 48, 160);
            assert_eq!(serial, par, "workers = {workers}");
        }
    }

    #[test]
    fn prop_render_intensity_in_unit_range() {
        prop_check!(
            (f64s(-2.0..10.0), f64s(-2.0..10.0), f64s(0.0..8.0), f64s(0.0..8.0)),
            |(x0, y0, w, h)| {
                let g = render(&[FRect::new(x0, y0, x0 + w, y0 + h)], 8, 8);
                for y in 0..8 {
                    for x in 0..8 {
                        let v = g.get(x, y);
                        prop_assert!((0.0..=1.0).contains(&v));
                    }
                }
            }
        );
    }

    #[test]
    fn prop_dither_dose_error_bounded() {
        prop_check!(vecs(f64s(0.0..1.0), 36usize), |vals| {
            // Error diffusion conserves dose up to the error pushed off the
            // boundary: |on_count - total_gray| <= perimeter-ish bound.
            let mut g = GrayMap::new(6, 6);
            for (i, &v) in vals.iter().enumerate() {
                g.set(i % 6, i / 6, v);
            }
            let total: f64 = (0..36).map(|i| g.get(i % 6, i / 6)).sum();
            let on = g.dither().on_count() as f64;
            prop_assert!((on - total).abs() <= 7.0, "on {on} vs dose {total}");
        });
    }
}
