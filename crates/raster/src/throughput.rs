//! MEBL throughput model (the paper's motivation, §I).
//!
//! Single-beam EBL cannot reach volume manufacturing because writing a
//! wafer pixel-by-pixel with one beam takes hours; MEBL's answer is
//! massive parallelism (thousands to millions of beams). This module
//! provides the first-order writing-time model behind that claim, so the
//! repository can quantify *why* stitching lines exist at all: the layout
//! is split into stripes written concurrently by different beams, and the
//! stripe boundaries are the stitching lines the router must respect.

/// A (simplified) multi-beam writer: identical beams exposing fixed-size
/// pixels at a common pixel clock.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BeamArray {
    /// Number of parallel beams.
    pub beams: u64,
    /// Pixels exposed per second per beam.
    pub pixel_rate_hz: f64,
    /// Pixel edge length in nanometres.
    pub pixel_nm: f64,
}

impl BeamArray {
    /// A single-beam Gaussian EBL tool (mask-shop class).
    pub fn single_beam() -> Self {
        Self {
            beams: 1,
            pixel_rate_hz: 50.0e6,
            pixel_nm: 16.0,
        }
    }

    /// A MAPPER-class massively parallel writer (\[20\]: ~13 000 beams).
    pub fn mapper_class() -> Self {
        Self {
            beams: 13_000,
            pixel_rate_hz: 50.0e6,
            pixel_nm: 16.0,
        }
    }

    /// Pixels in an exposure area of `area_mm2` square millimetres.
    pub fn pixels_for_area(&self, area_mm2: f64) -> f64 {
        let pixel_area_nm2 = self.pixel_nm * self.pixel_nm;
        area_mm2 * 1.0e12 / pixel_area_nm2
    }

    /// Seconds to write `area_mm2` with every beam busy (upper-bound
    /// throughput; ignores resist sensitivity, deflection settling and
    /// stage moves).
    ///
    /// # Panics
    ///
    /// Panics if the array has zero beams or a non-positive pixel rate.
    pub fn write_time_s(&self, area_mm2: f64) -> f64 {
        assert!(self.beams > 0, "no beams");
        assert!(self.pixel_rate_hz > 0.0, "non-positive pixel rate");
        self.pixels_for_area(area_mm2) / (self.beams as f64 * self.pixel_rate_hz)
    }

    /// Wafers per hour for a wafer of `wafer_area_mm2` (300 mm wafer ≈
    /// 70 685 mm²), ignoring overheads.
    pub fn wafers_per_hour(&self, wafer_area_mm2: f64) -> f64 {
        3600.0 / self.write_time_s(wafer_area_mm2)
    }

    /// Number of write stripes (and hence stitching-line count + 1) needed
    /// to cover `chip_width_nm` with stripes of `stripe_width_nm`.
    ///
    /// # Panics
    ///
    /// Panics if `stripe_width_nm <= 0`.
    pub fn stripes_for_width(chip_width_nm: f64, stripe_width_nm: f64) -> u64 {
        assert!(stripe_width_nm > 0.0, "stripe width must be positive");
        (chip_width_nm / stripe_width_nm).ceil().max(1.0) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const WAFER_300MM_MM2: f64 = 70_685.0;

    #[test]
    fn single_beam_is_hopelessly_slow() {
        let t = BeamArray::single_beam().write_time_s(WAFER_300MM_MM2);
        // ~2.76e14 pixels / 5e7 px/s ≈ 5.5e6 s ≈ two months per wafer.
        assert!(t > 1.0e6, "single beam: {t} s");
    }

    #[test]
    fn mapper_class_reaches_practical_throughput() {
        let mapper = BeamArray::mapper_class();
        let single = BeamArray::single_beam();
        let speedup =
            single.write_time_s(WAFER_300MM_MM2) / mapper.write_time_s(WAFER_300MM_MM2);
        assert!((speedup - 13_000.0).abs() < 1.0, "speedup {speedup}");
        assert!(mapper.wafers_per_hour(WAFER_300MM_MM2) > 0.0);
    }

    #[test]
    fn pixels_scale_with_area_and_pixel_size() {
        let a = BeamArray::single_beam();
        assert!((a.pixels_for_area(2.0) / a.pixels_for_area(1.0) - 2.0).abs() < 1e-9);
        let fine = BeamArray {
            pixel_nm: 8.0,
            ..BeamArray::single_beam()
        };
        // Halving the pixel edge quadruples the pixel count.
        assert!((fine.pixels_for_area(1.0) / a.pixels_for_area(1.0) - 4.0).abs() < 1e-9);
    }

    #[test]
    fn stripe_count_matches_router_setting() {
        // Paper setup: stripe width = 15 routing pitches. At a 72 nm pitch
        // a 1 mm-wide block needs ~926 stripes.
        let stripes = BeamArray::stripes_for_width(1.0e6, 15.0 * 72.0);
        assert_eq!(stripes, 926);
        assert_eq!(BeamArray::stripes_for_width(100.0, 1000.0), 1);
    }

    #[test]
    #[should_panic(expected = "no beams")]
    fn zero_beams_rejected() {
        let broken = BeamArray {
            beams: 0,
            ..BeamArray::single_beam()
        };
        let _ = broken.write_time_s(1.0);
    }
}
