//! Rasterizing routed geometry clips.
//!
//! Bridges the router's output and the data-preparation model: take the
//! wires of one layer inside a window around a stitching line, render them
//! at sub-pixel resolution with a configurable overlay error for the
//! stripe written by the second beam, dither, and score the print quality
//! of each wire — an end-to-end version of the paper's Fig. 4 argument.

use crate::{render, BitMap, FRect, GrayMap};

/// A rectangular wire shape in track coordinates (layer-agnostic: callers
/// select one layer's shapes).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WireShape {
    /// Left edge (tracks).
    pub x0: f64,
    /// Bottom edge (tracks).
    pub y0: f64,
    /// Right edge (tracks).
    pub x1: f64,
    /// Top edge (tracks).
    pub y1: f64,
}

impl WireShape {
    /// A horizontal wire of `width` tracks centred on track `y`.
    pub fn horizontal(y: f64, x0: f64, x1: f64, width: f64) -> Self {
        Self {
            x0,
            y0: y - width / 2.0,
            x1,
            y1: y + width / 2.0,
        }
    }
}

/// Result of [`raster_clip`].
#[derive(Debug, Clone)]
pub struct ClipRaster {
    /// Ideal (pre-overlay) grey rendering of the clip.
    pub ideal: GrayMap,
    /// Dithered exposure including the overlay error right of the line.
    pub exposed: BitMap,
    /// Per-shape defect scores, same order as the input.
    pub scores: Vec<f64>,
}

/// Renders `shapes` into a pixel window of `width x height` pixels at
/// `pixels_per_track` resolution, applying `overlay_error` (in tracks) to
/// every part of a shape lying right of `line_x` — the stripe written by
/// the neighbouring beam — then dithers and scores each shape.
///
/// Coordinates are window-relative: the window spans
/// `[0, width/pixels_per_track) x [0, height/pixels_per_track)` tracks.
///
/// # Panics
///
/// Panics if `pixels_per_track <= 0`.
pub fn raster_clip(
    shapes: &[WireShape],
    line_x: f64,
    overlay_error: f64,
    pixels_per_track: f64,
    width: usize,
    height: usize,
) -> ClipRaster {
    assert!(pixels_per_track > 0.0, "resolution must be positive");
    let px = |v: f64| v * pixels_per_track;

    // Ideal rendering: no overlay error.
    let ideal_rects: Vec<FRect> = shapes
        .iter()
        .map(|s| FRect::new(px(s.x0), px(s.y0), px(s.x1), px(s.y1)))
        .collect();
    let ideal = render(&ideal_rects, width, height);

    // Exposed rendering: the part right of the stitching line shifts by
    // the overlay error (vertical misalignment between beams).
    let mut exposed_rects = Vec::new();
    for s in shapes {
        if s.x1 <= line_x {
            exposed_rects.push(FRect::new(px(s.x0), px(s.y0), px(s.x1), px(s.y1)));
        } else if s.x0 >= line_x {
            exposed_rects.push(FRect::new(
                px(s.x0),
                px(s.y0 + overlay_error),
                px(s.x1),
                px(s.y1 + overlay_error),
            ));
        } else {
            exposed_rects.push(FRect::new(px(s.x0), px(s.y0), px(line_x), px(s.y1)));
            exposed_rects.push(FRect::new(
                px(line_x),
                px(s.y0 + overlay_error),
                px(s.x1),
                px(s.y1 + overlay_error),
            ));
        }
    }
    let exposed_gray = render(&exposed_rects, width, height);
    let exposed = exposed_gray.dither();

    // Per-shape score: compare ideal vs exposed inside the shape's own
    // bounding pixels (plus one pixel of guard band).
    let scores = shapes
        .iter()
        .map(|s| {
            let x_lo = (px(s.x0).floor() as isize - 1).max(0) as usize;
            let y_lo = (px(s.y0.min(s.y0 + overlay_error)).floor() as isize - 1).max(0) as usize;
            let x_hi = ((px(s.x1).ceil() as usize) + 1).min(width);
            let y_hi = ((px(s.y1.max(s.y1 + overlay_error)).ceil() as usize) + 1).min(height);
            let mut sub_ideal = GrayMap::new(x_hi - x_lo, y_hi - y_lo);
            let mut covered = 0usize;
            let mut wrong = 0usize;
            for y in y_lo..y_hi {
                for x in x_lo..x_hi {
                    let g = ideal.get(x, y);
                    sub_ideal.set(x - x_lo, y - y_lo, g);
                    let want = g >= 0.5;
                    let got = exposed.get(x, y);
                    if g > 0.0 {
                        covered += 1;
                        if want != got {
                            wrong += 1;
                        }
                    } else if got {
                        wrong += 1;
                    }
                }
            }
            if covered == 0 {
                0.0
            } else {
                wrong as f64 / covered as f64
            }
        })
        .collect();

    ClipRaster {
        ideal,
        exposed,
        scores,
    }
}

/// Convenience wrapper scoring a single wire: see [`raster_clip`].
pub fn score_single_wire(
    shape: WireShape,
    line_x: f64,
    overlay_error: f64,
    pixels_per_track: f64,
    width: usize,
    height: usize,
) -> f64 {
    raster_clip(&[shape], line_x, overlay_error, pixels_per_track, width, height).scores[0]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::defect_score;

    #[test]
    fn uncut_wire_prints_cleanly() {
        // Entirely left of the line: no overlay error applies.
        let wire = WireShape::horizontal(2.0, 0.0, 4.0, 1.0);
        let s = score_single_wire(wire, 6.0, 0.5, 4.0, 40, 24);
        assert_eq!(s, 0.0);
    }

    #[test]
    fn cut_wire_with_overlay_error_degrades() {
        let wire = WireShape::horizontal(2.0, 0.0, 9.0, 1.0);
        let clean = score_single_wire(wire, 5.0, 0.0, 4.0, 40, 24);
        let shifted = score_single_wire(wire, 5.0, 0.4, 4.0, 40, 24);
        assert!(shifted >= clean, "overlay error cannot improve print");
        assert!(shifted > 0.0, "a 0.4-track shift must show up");
    }

    #[test]
    fn short_stub_scores_worse_than_long_tail() {
        // Same cut and error; the piece right of the line is short vs long.
        let stub = WireShape::horizontal(2.0, 0.0, 6.0, 1.0); // 1 track past line
        let long = WireShape::horizontal(2.0, 0.0, 10.0, 1.0); // 5 tracks past
        let s_stub = score_single_wire(stub, 5.0, 0.45, 4.0, 44, 24);
        let s_long = score_single_wire(long, 5.0, 0.45, 4.0, 44, 24);
        // Both suffer, but the error pixels are a bigger share of the stub
        // + its via landing area; allow equality for robustness.
        assert!(s_stub > 0.0);
        assert!(s_long > 0.0);
    }

    #[test]
    fn scores_match_defect_score_for_whole_window_single_shape() {
        // With one shape and no overlay error the per-shape score reduces
        // to the global defect score of the ideal rendering.
        let wire = WireShape::horizontal(1.5, 0.5, 7.5, 1.0);
        let clip = raster_clip(&[wire], 100.0, 0.0, 3.0, 27, 12);
        let global = defect_score(&clip.ideal, &clip.ideal.dither());
        assert!((clip.scores[0] - global).abs() < 0.35, "{} vs {global}", clip.scores[0]);
    }

    #[test]
    fn multiple_shapes_scored_independently() {
        // Pixel-aligned shapes so the only defects come from the overlay
        // error, not from fractional edges of the ideal rendering.
        let a = WireShape::horizontal(1.5, 0.0, 9.0, 1.0); // cut by line
        let b = WireShape::horizontal(4.5, 0.0, 3.0, 1.0); // untouched
        let clip = raster_clip(&[a, b], 5.0, 0.45, 4.0, 40, 24);
        assert_eq!(clip.scores.len(), 2);
        assert!(clip.scores[0] >= clip.scores[1]);
        assert_eq!(clip.scores[1], 0.0);
        assert!(clip.scores[0] > 0.0);
    }

    #[test]
    #[should_panic(expected = "resolution must be positive")]
    fn zero_resolution_rejected() {
        let _ = raster_clip(&[], 0.0, 0.0, 0.0, 4, 4);
    }
}
