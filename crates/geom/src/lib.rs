//! Integer grid geometry for the MEBL stitch-aware routing stack.
//!
//! Everything in the routing stack works on a uniform track grid where one
//! unit equals one routing pitch. This crate provides the shared geometric
//! vocabulary: [`Point`], [`Interval`], [`Rect`], [`Layer`] (with its
//! preferred routing [`Orientation`]), wire [`Segment`]s, [`Via`]s and the
//! per-net [`RouteGeometry`] that the violation checker consumes.
//!
//! # Conventions
//!
//! * Coordinates are `i32` track indices; the origin is the lower-left
//!   corner of the chip.
//! * Even layer indices route **horizontally** (along x), odd indices route
//!   **vertically** (along y). Layer 0 is the lowest metal.
//! * Stitching lines (defined in `mebl-stitch`) are vertical `x = const`
//!   lines, so horizontal wires *cross* them and vertical wires may
//!   illegally *ride* them.
//!
//! # Examples
//!
//! ```
//! use mebl_geom::{Layer, Orientation, Point, Segment};
//!
//! let m1 = Layer::new(0);
//! assert_eq!(m1.orientation(), Orientation::Horizontal);
//!
//! let seg = Segment::horizontal(m1, 7, 2, 12);
//! assert_eq!(seg.len(), 10);
//! assert!(seg.contains_point(Point::new(5, 7)));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod interval;
mod layer;
mod point;
mod rect;
mod rtree;
mod wire;

pub use interval::Interval;
pub use layer::{Layer, Orientation};
pub use point::{GridPoint, Point};
pub use rect::Rect;
pub use rtree::RTree;
pub use wire::{RouteGeometry, Segment, Via};

/// Scalar coordinate type used across the stack (one unit = one pitch).
pub type Coord = i32;

/// Manhattan distance between two points.
///
/// ```
/// use mebl_geom::{manhattan, Point};
/// assert_eq!(manhattan(Point::new(0, 0), Point::new(3, 4)), 7);
/// ```
pub fn manhattan(a: Point, b: Point) -> u64 {
    (a.x.abs_diff(b.x) as u64) + (a.y.abs_diff(b.y) as u64)
}
