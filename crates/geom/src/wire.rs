//! Routed wire geometry: segments, vias and per-net collections.

use crate::{Coord, GridPoint, Interval, Layer, Orientation, Point};

/// A straight routed wire piece on a single layer.
///
/// A segment runs along its layer's preferred direction: the *track* is the
/// fixed coordinate (y for horizontal layers, x for vertical layers) and the
/// *span* is the varying coordinate range.
///
/// ```
/// use mebl_geom::{Layer, Point, Segment};
/// let h = Segment::horizontal(Layer::new(0), 3, 1, 6);
/// assert_eq!(h.endpoints(), (Point::new(1, 3), Point::new(6, 3)));
/// let v = Segment::vertical(Layer::new(1), 4, 0, 9);
/// assert_eq!(v.len(), 9);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Segment {
    /// Layer the segment is drawn on.
    pub layer: Layer,
    /// Fixed coordinate: y for horizontal segments, x for vertical ones.
    pub track: Coord,
    /// Varying coordinate range.
    pub span: Interval,
}

impl Segment {
    /// A horizontal segment at `y = track` covering `x in [x0, x1]`.
    ///
    /// # Panics
    ///
    /// Debug-panics if `layer` is not a horizontal layer.
    pub fn horizontal(layer: Layer, track: Coord, x0: Coord, x1: Coord) -> Self {
        debug_assert!(layer.is_horizontal(), "horizontal segment on V layer");
        Self {
            layer,
            track,
            span: Interval::new(x0, x1),
        }
    }

    /// A vertical segment at `x = track` covering `y in [y0, y1]`.
    ///
    /// # Panics
    ///
    /// Debug-panics if `layer` is not a vertical layer.
    pub fn vertical(layer: Layer, track: Coord, y0: Coord, y1: Coord) -> Self {
        debug_assert!(!layer.is_horizontal(), "vertical segment on H layer");
        Self {
            layer,
            track,
            span: Interval::new(y0, y1),
        }
    }

    /// Orientation inherited from the layer.
    pub fn orientation(&self) -> Orientation {
        self.layer.orientation()
    }

    /// `true` if the segment runs horizontally.
    pub fn is_horizontal(&self) -> bool {
        self.layer.is_horizontal()
    }

    /// Wirelength in pitches (span length).
    pub fn len(&self) -> u64 {
        self.span.len()
    }

    /// `true` for a zero-length (single point) segment.
    pub fn is_empty(&self) -> bool {
        self.span.is_point()
    }

    /// Both endpoints, lower span coordinate first.
    pub fn endpoints(&self) -> (Point, Point) {
        if self.is_horizontal() {
            (
                Point::new(self.span.lo(), self.track),
                Point::new(self.span.hi(), self.track),
            )
        } else {
            (
                Point::new(self.track, self.span.lo()),
                Point::new(self.track, self.span.hi()),
            )
        }
    }

    /// Endpoints with the layer attached.
    pub fn grid_endpoints(&self) -> (GridPoint, GridPoint) {
        let (a, b) = self.endpoints();
        (a.on_layer(self.layer), b.on_layer(self.layer))
    }

    /// Whether the 2-D point lies on the segment (layer ignored).
    pub fn contains_point(&self, p: Point) -> bool {
        if self.is_horizontal() {
            p.y == self.track && self.span.contains(p.x)
        } else {
            p.x == self.track && self.span.contains(p.y)
        }
    }

    /// For a horizontal segment: whether it strictly crosses the vertical
    /// line `x = line_x` (the line lies strictly inside the span, so the
    /// wire is genuinely cut into two pieces).
    ///
    /// Returns `false` for vertical segments.
    pub fn crosses_vertical_line(&self, line_x: Coord) -> bool {
        self.is_horizontal() && self.span.lo() < line_x && line_x < self.span.hi()
    }

    /// For a vertical segment: whether it rides the vertical line
    /// `x = line_x` — the MEBL *vertical routing violation*.
    ///
    /// Returns `false` for horizontal segments and for degenerate
    /// (zero-length) segments.
    pub fn rides_vertical_line(&self, line_x: Coord) -> bool {
        !self.is_horizontal() && !self.is_empty() && self.track == line_x
    }

    /// The x extent occupied by the segment.
    pub fn x_interval(&self) -> Interval {
        if self.is_horizontal() {
            self.span
        } else {
            Interval::point(self.track)
        }
    }

    /// The y extent occupied by the segment.
    pub fn y_interval(&self) -> Interval {
        if self.is_horizontal() {
            Interval::point(self.track)
        } else {
            self.span
        }
    }

    /// Iterates the grid points covered by the segment, in span order.
    pub fn points(&self) -> impl Iterator<Item = GridPoint> + '_ {
        let horizontal = self.is_horizontal();
        let track = self.track;
        let layer = self.layer;
        self.span.iter().map(move |c| {
            if horizontal {
                GridPoint::new(c, track, layer)
            } else {
                GridPoint::new(track, c, layer)
            }
        })
    }
}

/// A via connecting `lower` to `lower + 1` at `(x, y)`.
///
/// ```
/// use mebl_geom::{Layer, Via};
/// let v = Via::new(3, 4, Layer::new(0));
/// assert_eq!(v.upper(), Layer::new(1));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Via {
    /// x coordinate.
    pub x: Coord,
    /// y coordinate.
    pub y: Coord,
    /// Lower of the two connected layers.
    pub lower: Layer,
}

impl Via {
    /// Creates a via at `(x, y)` between `lower` and `lower + 1`.
    pub const fn new(x: Coord, y: Coord, lower: Layer) -> Self {
        Self { x, y, lower }
    }

    /// The upper connected layer.
    pub fn upper(&self) -> Layer {
        self.lower.above()
    }

    /// 2-D location.
    pub const fn point(&self) -> Point {
        Point::new(self.x, self.y)
    }

    /// Whether the via sits on the vertical line `x = line_x`
    /// (the MEBL *via violation* position).
    pub fn on_vertical_line(&self, line_x: Coord) -> bool {
        self.x == line_x
    }
}

/// The routed geometry of one net: wire segments plus vias.
///
/// ```
/// use mebl_geom::{Layer, RouteGeometry, Segment, Via};
/// let mut g = RouteGeometry::new();
/// g.push_segment(Segment::horizontal(Layer::new(0), 2, 0, 5));
/// g.push_via(Via::new(5, 2, Layer::new(0)));
/// g.push_segment(Segment::vertical(Layer::new(1), 5, 2, 8));
/// assert_eq!(g.wirelength(), 11);
/// assert_eq!(g.via_count(), 1);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RouteGeometry {
    segments: Vec<Segment>,
    vias: Vec<Via>,
}

impl RouteGeometry {
    /// An empty geometry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a wire segment.
    pub fn push_segment(&mut self, seg: Segment) {
        self.segments.push(seg);
    }

    /// Adds a via.
    pub fn push_via(&mut self, via: Via) {
        self.vias.push(via);
    }

    /// All wire segments.
    pub fn segments(&self) -> &[Segment] {
        &self.segments
    }

    /// All vias.
    pub fn vias(&self) -> &[Via] {
        &self.vias
    }

    /// Total wirelength in pitches.
    pub fn wirelength(&self) -> u64 {
        self.segments.iter().map(Segment::len).sum()
    }

    /// Number of vias.
    pub fn via_count(&self) -> usize {
        self.vias.len()
    }

    /// `true` when no segment or via has been recorded.
    pub fn is_empty(&self) -> bool {
        self.segments.is_empty() && self.vias.is_empty()
    }

    /// Whether any via lands on the 2-D point `p` touching layer `layer`.
    pub fn has_via_at(&self, p: Point, layer: Layer) -> bool {
        self.vias
            .iter()
            .any(|v| v.point() == p && (v.lower == layer || v.upper() == layer))
    }

    /// Merges another geometry into this one.
    pub fn extend(&mut self, other: RouteGeometry) {
        self.segments.extend(other.segments);
        self.vias.extend(other.vias);
    }
}

impl FromIterator<Segment> for RouteGeometry {
    fn from_iter<I: IntoIterator<Item = Segment>>(iter: I) -> Self {
        Self {
            segments: iter.into_iter().collect(),
            vias: Vec::new(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mebl_testkit::prop::{ints, vecs};
    use mebl_testkit::{prop_assert_eq, prop_check};

    #[test]
    fn horizontal_segment_geometry() {
        let s = Segment::horizontal(Layer::new(2), 5, 10, 3);
        assert_eq!(s.endpoints(), (Point::new(3, 5), Point::new(10, 5)));
        assert!(s.contains_point(Point::new(7, 5)));
        assert!(!s.contains_point(Point::new(7, 6)));
        assert_eq!(s.len(), 7);
        assert_eq!(s.x_interval(), Interval::new(3, 10));
        assert_eq!(s.y_interval(), Interval::point(5));
    }

    #[test]
    fn vertical_segment_geometry() {
        let s = Segment::vertical(Layer::new(1), 4, 2, 6);
        assert_eq!(s.endpoints(), (Point::new(4, 2), Point::new(4, 6)));
        assert!(s.contains_point(Point::new(4, 4)));
        assert_eq!(s.x_interval(), Interval::point(4));
    }

    #[test]
    fn crossing_is_strict() {
        let s = Segment::horizontal(Layer::new(0), 0, 2, 8);
        assert!(s.crosses_vertical_line(5));
        assert!(!s.crosses_vertical_line(2), "touching an endpoint is not a cut");
        assert!(!s.crosses_vertical_line(8));
        assert!(!s.crosses_vertical_line(9));
    }

    #[test]
    fn riding_detects_vertical_only() {
        let v = Segment::vertical(Layer::new(1), 5, 0, 3);
        assert!(v.rides_vertical_line(5));
        assert!(!v.rides_vertical_line(4));
        let h = Segment::horizontal(Layer::new(0), 5, 0, 3);
        assert!(!h.rides_vertical_line(5));
        let point_v = Segment::vertical(Layer::new(1), 5, 2, 2);
        assert!(!point_v.rides_vertical_line(5), "degenerate segments do not ride");
    }

    #[test]
    fn via_layers() {
        let v = Via::new(1, 1, Layer::new(3));
        assert_eq!(v.upper(), Layer::new(4));
        assert!(v.on_vertical_line(1));
        assert!(!v.on_vertical_line(2));
    }

    #[test]
    fn geometry_accumulates() {
        let mut g = RouteGeometry::new();
        assert!(g.is_empty());
        g.push_segment(Segment::horizontal(Layer::new(0), 0, 0, 4));
        g.push_via(Via::new(4, 0, Layer::new(0)));
        g.push_segment(Segment::vertical(Layer::new(1), 4, 0, 3));
        assert_eq!(g.wirelength(), 7);
        assert_eq!(g.via_count(), 1);
        assert!(g.has_via_at(Point::new(4, 0), Layer::new(0)));
        assert!(g.has_via_at(Point::new(4, 0), Layer::new(1)));
        assert!(!g.has_via_at(Point::new(4, 0), Layer::new(2)));
    }

    #[test]
    fn points_iterator_covers_span() {
        let s = Segment::vertical(Layer::new(1), 2, 5, 7);
        let pts: Vec<GridPoint> = s.points().collect();
        assert_eq!(
            pts,
            vec![
                GridPoint::new(2, 5, Layer::new(1)),
                GridPoint::new(2, 6, Layer::new(1)),
                GridPoint::new(2, 7, Layer::new(1)),
            ]
        );
    }

    #[test]
    fn prop_segment_points_match_contains() {
        let near = || ints(-20i32..20);
        prop_check!(
            (near(), near(), near(), ints(-25i32..25), ints(-25i32..25)),
            |(track, a, b, px, py)| {
                let s = Segment::horizontal(Layer::new(0), track, a, b);
                let p = Point::new(px, py);
                let on = s.points().any(|gp| gp.point() == p);
                prop_assert_eq!(on, s.contains_point(p));
            }
        );
    }

    #[test]
    fn prop_wirelength_is_sum_of_spans() {
        prop_check!(vecs((ints(0i32..30), ints(0i32..30)), 0..8), |spans| {
            let g: RouteGeometry = spans
                .iter()
                .map(|&(a, b)| Segment::horizontal(Layer::new(0), 0, a, b))
                .collect();
            let expect: u64 = spans.iter().map(|&(a, b)| a.abs_diff(b) as u64).sum();
            prop_assert_eq!(g.wirelength(), expect);
        });
    }
}
