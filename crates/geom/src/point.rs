//! 2-D and 3-D (layered) grid points.

use crate::{Coord, Layer};

/// A 2-D point on the track grid.
///
/// ```
/// use mebl_geom::Point;
/// let p = Point::new(3, 4);
/// assert_eq!(p.x, 3);
/// assert_eq!(p.y, 4);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct Point {
    /// Horizontal track coordinate.
    pub x: Coord,
    /// Vertical track coordinate.
    pub y: Coord,
}

impl Point {
    /// Creates a point from its coordinates.
    pub const fn new(x: Coord, y: Coord) -> Self {
        Self { x, y }
    }

    /// Attaches a layer, producing a [`GridPoint`].
    ///
    /// ```
    /// use mebl_geom::{Layer, Point};
    /// let gp = Point::new(1, 2).on_layer(Layer::new(0));
    /// assert_eq!(gp.layer, Layer::new(0));
    /// ```
    pub const fn on_layer(self, layer: Layer) -> GridPoint {
        GridPoint {
            x: self.x,
            y: self.y,
            layer,
        }
    }
}

impl std::fmt::Display for Point {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "({}, {})", self.x, self.y)
    }
}

impl From<(Coord, Coord)> for Point {
    fn from((x, y): (Coord, Coord)) -> Self {
        Self::new(x, y)
    }
}

/// A point on a specific routing layer (a 3-D routing grid node).
///
/// ```
/// use mebl_geom::{GridPoint, Layer};
/// let gp = GridPoint::new(5, 6, Layer::new(2));
/// assert_eq!(gp.point(), mebl_geom::Point::new(5, 6));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct GridPoint {
    /// Horizontal track coordinate.
    pub x: Coord,
    /// Vertical track coordinate.
    pub y: Coord,
    /// Routing layer.
    pub layer: Layer,
}

impl GridPoint {
    /// Creates a grid point.
    pub const fn new(x: Coord, y: Coord, layer: Layer) -> Self {
        Self { x, y, layer }
    }

    /// Drops the layer, returning the 2-D projection.
    pub const fn point(self) -> Point {
        Point::new(self.x, self.y)
    }
}

impl std::fmt::Display for GridPoint {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "({}, {}, M{})", self.x, self.y, self.layer.index())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn point_roundtrip_through_layer() {
        let p = Point::new(-3, 9);
        let gp = p.on_layer(Layer::new(1));
        assert_eq!(gp.point(), p);
        assert_eq!(gp.layer, Layer::new(1));
    }

    #[test]
    fn point_from_tuple() {
        let p: Point = (2, 7).into();
        assert_eq!(p, Point::new(2, 7));
    }

    #[test]
    fn display_is_nonempty() {
        assert_eq!(Point::new(1, 2).to_string(), "(1, 2)");
        assert_eq!(GridPoint::new(1, 2, Layer::new(0)).to_string(), "(1, 2, M0)");
    }

    #[test]
    fn ordering_is_lexicographic() {
        assert!(Point::new(0, 5) < Point::new(1, 0));
        assert!(Point::new(1, 0) < Point::new(1, 2));
    }
}
