//! Routing layers and preferred directions.

/// Preferred routing direction of a layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Orientation {
    /// Wires run along the x axis (constant y track).
    Horizontal,
    /// Wires run along the y axis (constant x track).
    Vertical,
}

impl Orientation {
    /// The other orientation.
    ///
    /// ```
    /// use mebl_geom::Orientation;
    /// assert_eq!(Orientation::Horizontal.flipped(), Orientation::Vertical);
    /// ```
    pub const fn flipped(self) -> Self {
        match self {
            Orientation::Horizontal => Orientation::Vertical,
            Orientation::Vertical => Orientation::Horizontal,
        }
    }

    /// `true` for [`Orientation::Horizontal`].
    pub const fn is_horizontal(self) -> bool {
        matches!(self, Orientation::Horizontal)
    }
}

impl std::fmt::Display for Orientation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Orientation::Horizontal => write!(f, "H"),
            Orientation::Vertical => write!(f, "V"),
        }
    }
}

/// A routing layer identified by its index.
///
/// Layer 0 is the lowest metal. The stack alternates preferred directions:
/// **even layers are horizontal, odd layers are vertical** — the convention
/// assumed throughout the stitch-aware router, where stitching lines are
/// vertical and therefore only constrain vertical layers and vias.
///
/// ```
/// use mebl_geom::{Layer, Orientation};
/// assert_eq!(Layer::new(0).orientation(), Orientation::Horizontal);
/// assert_eq!(Layer::new(1).orientation(), Orientation::Vertical);
/// assert_eq!(Layer::new(1).above(), Layer::new(2));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct Layer(u8);

impl Layer {
    /// Creates a layer from its index.
    pub const fn new(index: u8) -> Self {
        Self(index)
    }

    /// The layer index.
    pub const fn index(self) -> u8 {
        self.0
    }

    /// Preferred routing direction (even = horizontal, odd = vertical).
    pub const fn orientation(self) -> Orientation {
        if self.0.is_multiple_of(2) {
            Orientation::Horizontal
        } else {
            Orientation::Vertical
        }
    }

    /// `true` if this layer routes horizontally.
    pub const fn is_horizontal(self) -> bool {
        self.0.is_multiple_of(2)
    }

    /// The next layer up.
    ///
    /// # Panics
    ///
    /// Panics if the index would overflow `u8`.
    pub fn above(self) -> Layer {
        Layer(self.0.checked_add(1).expect("layer index overflow"))
    }

    /// The next layer down, or `None` on layer 0.
    pub fn below(self) -> Option<Layer> {
        self.0.checked_sub(1).map(Layer)
    }

    /// Iterates over all layers `0..count`.
    ///
    /// ```
    /// use mebl_geom::Layer;
    /// let v: Vec<u8> = Layer::stack(3).map(Layer::index).collect();
    /// assert_eq!(v, vec![0, 1, 2]);
    /// ```
    pub fn stack(count: u8) -> impl Iterator<Item = Layer> {
        (0..count).map(Layer)
    }
}

impl std::fmt::Display for Layer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "M{}", self.0)
    }
}

impl From<u8> for Layer {
    fn from(i: u8) -> Self {
        Layer(i)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alternating_orientations() {
        for i in 0..10u8 {
            let expect = if i % 2 == 0 {
                Orientation::Horizontal
            } else {
                Orientation::Vertical
            };
            assert_eq!(Layer::new(i).orientation(), expect);
        }
    }

    #[test]
    fn neighbours() {
        let m2 = Layer::new(2);
        assert_eq!(m2.above(), Layer::new(3));
        assert_eq!(m2.below(), Some(Layer::new(1)));
        assert_eq!(Layer::new(0).below(), None);
    }

    #[test]
    fn adjacent_layers_have_opposite_orientation() {
        for i in 0..9u8 {
            let a = Layer::new(i);
            assert_eq!(a.orientation().flipped(), a.above().orientation());
        }
    }

    #[test]
    fn stack_iterates_in_order() {
        let layers: Vec<Layer> = Layer::stack(4).collect();
        assert_eq!(
            layers,
            vec![Layer::new(0), Layer::new(1), Layer::new(2), Layer::new(3)]
        );
    }

    #[test]
    fn display() {
        assert_eq!(Layer::new(5).to_string(), "M5");
        assert_eq!(Orientation::Vertical.to_string(), "V");
    }
}
