//! Closed integer intervals.

use crate::Coord;

/// A closed (inclusive) integer interval `[lo, hi]` of track coordinates.
///
/// Intervals are used for wire spans, panel extents and segment overlap
/// tests. An interval always satisfies `lo <= hi`; a single point is the
/// degenerate interval `[p, p]`.
///
/// ```
/// use mebl_geom::Interval;
/// let a = Interval::new(2, 8);
/// let b = Interval::new(5, 12);
/// assert_eq!(a.intersect(b), Some(Interval::new(5, 8)));
/// assert_eq!(a.len(), 6);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Interval {
    lo: Coord,
    hi: Coord,
}

impl Interval {
    /// Creates the interval `[lo, hi]`, normalising argument order.
    ///
    /// ```
    /// use mebl_geom::Interval;
    /// assert_eq!(Interval::new(8, 2), Interval::new(2, 8));
    /// ```
    pub fn new(a: Coord, b: Coord) -> Self {
        if a <= b {
            Self { lo: a, hi: b }
        } else {
            Self { lo: b, hi: a }
        }
    }

    /// The degenerate single-point interval `[p, p]`.
    pub const fn point(p: Coord) -> Self {
        Self { lo: p, hi: p }
    }

    /// Lower endpoint.
    pub const fn lo(self) -> Coord {
        self.lo
    }

    /// Upper endpoint.
    pub const fn hi(self) -> Coord {
        self.hi
    }

    /// Number of unit steps spanned (`hi - lo`); a point interval has
    /// length 0.
    pub fn len(self) -> u64 {
        self.hi.abs_diff(self.lo) as u64
    }

    /// Whether the interval spans zero unit steps (i.e. is a point).
    /// Intervals always contain at least one coordinate, so this is the
    /// same as [`is_point`](Self::is_point).
    pub fn is_empty(self) -> bool {
        self.is_point()
    }

    /// Whether the interval is a single point.
    pub fn is_point(self) -> bool {
        self.lo == self.hi
    }

    /// Number of integer coordinates contained (`len() + 1`).
    pub fn count(self) -> u64 {
        self.len() + 1
    }

    /// Whether `v` lies inside the interval.
    pub fn contains(self, v: Coord) -> bool {
        self.lo <= v && v <= self.hi
    }

    /// Whether `other` is fully inside `self`.
    pub fn contains_interval(self, other: Interval) -> bool {
        self.lo <= other.lo && other.hi <= self.hi
    }

    /// Whether the two intervals share at least one coordinate.
    pub fn overlaps(self, other: Interval) -> bool {
        self.lo <= other.hi && other.lo <= self.hi
    }

    /// Intersection, if non-empty.
    pub fn intersect(self, other: Interval) -> Option<Interval> {
        let lo = self.lo.max(other.lo);
        let hi = self.hi.min(other.hi);
        (lo <= hi).then_some(Interval { lo, hi })
    }

    /// Smallest interval containing both operands.
    pub fn hull(self, other: Interval) -> Interval {
        Interval {
            lo: self.lo.min(other.lo),
            hi: self.hi.max(other.hi),
        }
    }

    /// Grows the interval by `amount` on each side.
    ///
    /// # Panics
    ///
    /// Panics in debug builds on coordinate overflow.
    pub fn expand(self, amount: Coord) -> Interval {
        Interval::new(self.lo - amount, self.hi + amount)
    }

    /// Clamps the interval to fit inside `bounds`, returning `None` if the
    /// intersection is empty.
    pub fn clamp_to(self, bounds: Interval) -> Option<Interval> {
        self.intersect(bounds)
    }

    /// Iterates over all contained coordinates in increasing order.
    ///
    /// ```
    /// use mebl_geom::Interval;
    /// let v: Vec<i32> = Interval::new(3, 5).iter().collect();
    /// assert_eq!(v, vec![3, 4, 5]);
    /// ```
    pub fn iter(self) -> impl Iterator<Item = Coord> {
        self.lo..=self.hi
    }
}

impl std::fmt::Display for Interval {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "[{}, {}]", self.lo, self.hi)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mebl_testkit::prop::ints;
    use mebl_testkit::{prop_assert, prop_assert_eq, prop_check};

    #[test]
    fn normalises_order() {
        let i = Interval::new(9, 4);
        assert_eq!((i.lo(), i.hi()), (4, 9));
    }

    #[test]
    fn point_interval() {
        let p = Interval::point(5);
        assert!(p.is_point());
        assert_eq!(p.len(), 0);
        assert_eq!(p.count(), 1);
        assert!(p.contains(5));
        assert!(!p.contains(4));
    }

    #[test]
    fn overlap_and_intersection_agree() {
        let a = Interval::new(0, 10);
        let b = Interval::new(10, 20);
        let c = Interval::new(11, 20);
        assert!(a.overlaps(b));
        assert_eq!(a.intersect(b), Some(Interval::point(10)));
        assert!(!a.overlaps(c));
        assert_eq!(a.intersect(c), None);
    }

    #[test]
    fn hull_covers_both() {
        let a = Interval::new(0, 2);
        let b = Interval::new(7, 9);
        assert_eq!(a.hull(b), Interval::new(0, 9));
    }

    #[test]
    fn expand_grows_both_sides() {
        assert_eq!(Interval::new(4, 6).expand(2), Interval::new(2, 8));
    }

    #[test]
    fn contains_interval_is_subset() {
        assert!(Interval::new(0, 10).contains_interval(Interval::new(3, 7)));
        assert!(!Interval::new(0, 10).contains_interval(Interval::new(3, 11)));
    }

    #[test]
    fn prop_intersection_commutes() {
        let coord = || ints(-100i32..100);
        prop_check!((coord(), coord(), coord(), coord()), |(a, b, c, d)| {
            let x = Interval::new(a, b);
            let y = Interval::new(c, d);
            prop_assert_eq!(x.intersect(y), y.intersect(x));
            prop_assert_eq!(x.overlaps(y), x.intersect(y).is_some());
        });
    }

    #[test]
    fn prop_intersection_inside_hull() {
        let coord = || ints(-100i32..100);
        prop_check!((coord(), coord(), coord(), coord()), |(a, b, c, d)| {
            let x = Interval::new(a, b);
            let y = Interval::new(c, d);
            let h = x.hull(y);
            prop_assert!(h.contains_interval(x));
            prop_assert!(h.contains_interval(y));
            if let Some(i) = x.intersect(y) {
                prop_assert!(x.contains_interval(i));
                prop_assert!(y.contains_interval(i));
            }
        });
    }

    #[test]
    fn prop_contains_matches_iter() {
        prop_check!((ints(-50i32..50), ints(-50i32..50), ints(-60i32..60)), |(a, b, v)| {
            let x = Interval::new(a, b);
            let by_iter = x.iter().any(|c| c == v);
            prop_assert_eq!(x.contains(v), by_iter);
        });
    }
}
