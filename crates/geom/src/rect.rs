//! Axis-aligned inclusive grid rectangles.

use crate::{Coord, Interval, Point};

/// An axis-aligned rectangle of grid coordinates, inclusive on all sides.
///
/// Used for chip outlines, global tiles and net bounding boxes.
///
/// ```
/// use mebl_geom::{Point, Rect};
/// let r = Rect::new(0, 0, 9, 4);
/// assert_eq!(r.width(), 10);
/// assert_eq!(r.height(), 5);
/// assert!(r.contains(Point::new(9, 4)));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Rect {
    xs: Interval,
    ys: Interval,
}

impl Rect {
    /// Creates a rectangle from corner coordinates (order-insensitive).
    pub fn new(x0: Coord, y0: Coord, x1: Coord, y1: Coord) -> Self {
        Self {
            xs: Interval::new(x0, x1),
            ys: Interval::new(y0, y1),
        }
    }

    /// Creates a rectangle from x and y extents.
    pub const fn from_intervals(xs: Interval, ys: Interval) -> Self {
        Self { xs, ys }
    }

    /// The degenerate rectangle covering a single point.
    pub fn from_point(p: Point) -> Self {
        Self {
            xs: Interval::point(p.x),
            ys: Interval::point(p.y),
        }
    }

    /// Horizontal extent.
    pub const fn xs(self) -> Interval {
        self.xs
    }

    /// Vertical extent.
    pub const fn ys(self) -> Interval {
        self.ys
    }

    /// Minimum x coordinate.
    pub const fn x0(self) -> Coord {
        self.xs.lo()
    }

    /// Minimum y coordinate.
    pub const fn y0(self) -> Coord {
        self.ys.lo()
    }

    /// Maximum x coordinate.
    pub const fn x1(self) -> Coord {
        self.xs.hi()
    }

    /// Maximum y coordinate.
    pub const fn y1(self) -> Coord {
        self.ys.hi()
    }

    /// Number of columns covered.
    pub fn width(self) -> u64 {
        self.xs.count()
    }

    /// Number of rows covered.
    pub fn height(self) -> u64 {
        self.ys.count()
    }

    /// Number of grid points covered.
    pub fn area(self) -> u64 {
        self.width() * self.height()
    }

    /// Whether the point lies inside the rectangle.
    pub fn contains(self, p: Point) -> bool {
        self.xs.contains(p.x) && self.ys.contains(p.y)
    }

    /// Whether `other` lies fully inside `self`.
    pub fn contains_rect(self, other: Rect) -> bool {
        self.xs.contains_interval(other.xs) && self.ys.contains_interval(other.ys)
    }

    /// Whether the two rectangles share at least one grid point.
    pub fn overlaps(self, other: Rect) -> bool {
        self.xs.overlaps(other.xs) && self.ys.overlaps(other.ys)
    }

    /// Intersection, if non-empty.
    pub fn intersect(self, other: Rect) -> Option<Rect> {
        Some(Rect {
            xs: self.xs.intersect(other.xs)?,
            ys: self.ys.intersect(other.ys)?,
        })
    }

    /// Smallest rectangle containing both operands.
    pub fn hull(self, other: Rect) -> Rect {
        Rect {
            xs: self.xs.hull(other.xs),
            ys: self.ys.hull(other.ys),
        }
    }

    /// Grows the rectangle by `amount` on every side.
    pub fn expand(self, amount: Coord) -> Rect {
        Rect {
            xs: self.xs.expand(amount),
            ys: self.ys.expand(amount),
        }
    }

    /// Extends the rectangle to include `p`.
    pub fn including(self, p: Point) -> Rect {
        self.hull(Rect::from_point(p))
    }

    /// Smallest rectangle covering all points, or `None` for an empty
    /// iterator.
    ///
    /// ```
    /// use mebl_geom::{Point, Rect};
    /// let bb = Rect::bounding([Point::new(1, 5), Point::new(4, 2)]).unwrap();
    /// assert_eq!(bb, Rect::new(1, 2, 4, 5));
    /// ```
    pub fn bounding<I: IntoIterator<Item = Point>>(points: I) -> Option<Rect> {
        let mut it = points.into_iter();
        let first = it.next()?;
        Some(it.fold(Rect::from_point(first), Rect::including))
    }
}

impl std::fmt::Display for Rect {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "[{}, {}]x[{}, {}]",
            self.x0(),
            self.x1(),
            self.y0(),
            self.y1()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mebl_testkit::prop::ints;
    use mebl_testkit::{prop_assert, prop_assert_eq, prop_check};

    #[test]
    fn corner_normalisation() {
        let r = Rect::new(5, 7, 1, 2);
        assert_eq!((r.x0(), r.y0(), r.x1(), r.y1()), (1, 2, 5, 7));
    }

    #[test]
    fn area_of_unit_rect_is_one() {
        let r = Rect::from_point(Point::new(3, 3));
        assert_eq!(r.area(), 1);
    }

    #[test]
    fn containment_edges_inclusive() {
        let r = Rect::new(0, 0, 4, 4);
        assert!(r.contains(Point::new(0, 0)));
        assert!(r.contains(Point::new(4, 4)));
        assert!(!r.contains(Point::new(5, 4)));
    }

    #[test]
    fn bounding_box_of_points() {
        let pts = [Point::new(2, 9), Point::new(-1, 3), Point::new(4, 4)];
        assert_eq!(Rect::bounding(pts), Some(Rect::new(-1, 3, 4, 9)));
        assert_eq!(Rect::bounding(std::iter::empty()), None);
    }

    #[test]
    fn intersect_disjoint_is_none() {
        let a = Rect::new(0, 0, 2, 2);
        let b = Rect::new(3, 3, 5, 5);
        assert_eq!(a.intersect(b), None);
        assert!(!a.overlaps(b));
    }

    #[test]
    fn prop_intersect_symmetric_and_contained() {
        let coord = || ints(-50i32..50);
        prop_check!(
            (coord(), coord(), coord(), coord(), coord(), coord(), coord(), coord()),
            |(ax, ay, bx, by, cx, cy, dx, dy)| {
                let r1 = Rect::new(ax, ay, bx, by);
                let r2 = Rect::new(cx, cy, dx, dy);
                prop_assert_eq!(r1.intersect(r2), r2.intersect(r1));
                if let Some(i) = r1.intersect(r2) {
                    prop_assert!(r1.contains_rect(i));
                    prop_assert!(r2.contains_rect(i));
                }
                let h = r1.hull(r2);
                prop_assert!(h.contains_rect(r1) && h.contains_rect(r2));
            }
        );
    }

    #[test]
    fn prop_contains_point_matches_intervals() {
        let coord = || ints(-50i32..50);
        prop_check!(
            (coord(), coord(), coord(), coord(), ints(-60i32..60), ints(-60i32..60)),
            |(ax, ay, bx, by, px, py)| {
                let r = Rect::new(ax, ay, bx, by);
                let p = Point::new(px, py);
                prop_assert_eq!(r.contains(p), r.xs().contains(px) && r.ys().contains(py));
            }
        );
    }
}
