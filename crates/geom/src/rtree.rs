//! A deterministic R-tree over inclusive grid rectangles.
//!
//! The spatial index behind delta-routing conflict detection and the
//! auditor's geometry queries. Zero dependencies, no `unsafe`, and —
//! critically for the workspace's byte-identical-output contract —
//! **fully deterministic**: the same sequence of operations always
//! produces the same tree shape, the same traversal order and the same
//! tie-breaking in [`RTree::nearest`], regardless of platform or thread
//! count. Every ordering decision falls back to item insertion index,
//! never to pointer values or hash order.
//!
//! Construction is either incremental ([`RTree::insert`], Guttman
//! quadratic split) or bulk via Sort-Tile-Recursive packing
//! ([`RTree::bulk_load`]): sort by center x, cut into vertical slices,
//! sort each slice by center y, pack fixed-size leaves, and repeat one
//! level up until a single root remains. STR yields near-optimal packing
//! for the static geometry sets the auditor indexes (a routed net's
//! segments, a circuit's blockages).
//!
//! ```
//! use mebl_geom::{Point, Rect, RTree};
//!
//! let tree = RTree::bulk_load(vec![
//!     (Rect::new(0, 0, 2, 2), "a"),
//!     (Rect::new(10, 10, 12, 12), "b"),
//! ]);
//! let hits = tree.query(Rect::new(1, 1, 5, 5));
//! assert_eq!(hits, vec![(Rect::new(0, 0, 2, 2), &"a")]);
//! assert_eq!(tree.nearest(Point::new(9, 9)).map(|(_, v)| *v), Some("b"));
//! ```

use crate::{Point, Rect};

/// Maximum entries per node before a split.
const MAX_ENTRIES: usize = 8;
/// Minimum entries per node; an underfull node is condensed away and its
/// contents reinserted.
const MIN_ENTRIES: usize = 3;

/// One arena node: a leaf holding item slots or an inner node holding
/// child node ids, plus the bounding box of everything below it.
#[derive(Debug, Clone)]
struct Node {
    /// Bounding box of the subtree; `None` only for an empty root leaf.
    mbr: Option<Rect>,
    /// Leaf nodes hold item indices, inner nodes hold node indices.
    children: Vec<usize>,
    /// Whether `children` are item slots (leaf) or node ids.
    leaf: bool,
}

impl Node {
    fn empty_leaf() -> Self {
        Node {
            mbr: None,
            children: Vec::new(),
            leaf: true,
        }
    }
}

/// A deterministic R-tree mapping [`Rect`] keys to values.
///
/// Duplicate rectangles are allowed; [`RTree::remove`] disambiguates by
/// value. See the module docs for the determinism contract.
#[derive(Debug, Clone)]
pub struct RTree<T> {
    /// Item slots; `None` marks a removed slot awaiting reuse.
    items: Vec<Option<(Rect, T)>>,
    /// Free item slots, reused LIFO so slot ids stay dense.
    free: Vec<usize>,
    nodes: Vec<Node>,
    root: usize,
    len: usize,
}

impl<T> Default for RTree<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> RTree<T> {
    /// An empty tree.
    pub fn new() -> Self {
        RTree {
            items: Vec::new(),
            free: Vec::new(),
            nodes: vec![Node::empty_leaf()],
            root: 0,
            len: 0,
        }
    }

    /// Number of stored items.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the tree holds nothing.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Builds a tree from `items` by Sort-Tile-Recursive packing.
    ///
    /// Item slot ids equal the input positions, so [`RTree::nearest`]
    /// tie-breaking and [`RTree::traversal`] fingerprints are functions
    /// of the input order alone.
    pub fn bulk_load(items: Vec<(Rect, T)>) -> Self {
        let mut tree = RTree::new();
        if items.is_empty() {
            return tree;
        }
        tree.len = items.len();
        let rects: Vec<Rect> = items.iter().map(|(r, _)| *r).collect();
        tree.items = items.into_iter().map(Some).collect();
        tree.nodes.clear();

        // Pack the leaf level from item slots, then pack node levels
        // until one node remains.
        let slots: Vec<usize> = (0..rects.len()).collect();
        let rect_of = |i: &usize| rects[*i];
        let mut level: Vec<usize> = str_pack(&slots, rect_of)
            .into_iter()
            .map(|(mbr, children)| push_node(&mut tree.nodes, mbr, children, true))
            .collect();
        while level.len() > 1 {
            let nodes = &tree.nodes;
            let packed = {
                let rect_of = |i: &usize| nodes[*i].mbr.unwrap_or(Rect::new(0, 0, 0, 0));
                str_pack(&level, rect_of)
            };
            level = packed
                .into_iter()
                .map(|(mbr, children)| push_node(&mut tree.nodes, mbr, children, false))
                .collect();
        }
        tree.root = level[0];
        tree
    }

    /// Inserts one item (Guttman: least-enlargement descent, quadratic
    /// split on overflow).
    pub fn insert(&mut self, rect: Rect, value: T) {
        let slot = match self.free.pop() {
            Some(s) => {
                self.items[s] = Some((rect, value));
                s
            }
            None => {
                self.items.push(Some((rect, value)));
                self.items.len() - 1
            }
        };
        self.len += 1;
        self.insert_slot(slot, rect);
    }

    /// Removes the first item equal to `(rect, value)`; returns whether
    /// anything was removed. Underfull nodes are condensed away and
    /// their surviving contents reinserted.
    pub fn remove(&mut self, rect: Rect, value: &T) -> bool
    where
        T: PartialEq,
    {
        let Some((leaf, pos, slot)) = self.find_leaf(self.root, rect, value) else {
            return false;
        };
        self.nodes[leaf].children.remove(pos);
        self.items[slot] = None;
        self.free.push(slot);
        self.len -= 1;
        self.condense(leaf);
        true
    }

    /// All items whose rectangle overlaps `window`, in deterministic
    /// traversal order.
    pub fn query(&self, window: Rect) -> Vec<(Rect, &T)> {
        let mut out = Vec::new();
        let mut stack = vec![self.root];
        while let Some(id) = stack.pop() {
            let node = &self.nodes[id];
            match node.mbr {
                Some(mbr) if mbr.overlaps(window) => {}
                _ => continue,
            }
            if node.leaf {
                for &slot in &node.children {
                    if let Some((r, v)) = &self.items[slot] {
                        if r.overlaps(window) {
                            out.push((*r, v));
                        }
                    }
                }
            } else {
                // Push in reverse so children pop in stored order.
                for &child in node.children.iter().rev() {
                    stack.push(child);
                }
            }
        }
        out
    }

    /// The stored item nearest to `p` by squared Euclidean distance to
    /// its rectangle (zero when `p` is inside). Ties resolve to the
    /// smallest item slot id — a pure function of operation history.
    pub fn nearest(&self, p: Point) -> Option<(Rect, &T)> {
        let mut best: Option<(u128, usize)> = None;
        let mut stack = vec![self.root];
        while let Some(id) = stack.pop() {
            let node = &self.nodes[id];
            let Some(mbr) = node.mbr else { continue };
            if let Some((bd, _)) = best {
                // Equal distances may still hide a smaller slot id, so
                // prune strictly-worse subtrees only.
                if dist2(mbr, p) > bd {
                    continue;
                }
            }
            if node.leaf {
                for &slot in &node.children {
                    if let Some((r, _)) = &self.items[slot] {
                        let d = dist2(*r, p);
                        if best.is_none_or(|(bd, bs)| (d, slot) < (bd, bs)) {
                            best = Some((d, slot));
                        }
                    }
                }
            } else {
                for &child in node.children.iter().rev() {
                    stack.push(child);
                }
            }
        }
        let (_, slot) = best?;
        self.items[slot].as_ref().map(|(r, v)| (*r, v))
    }

    /// Every item in deterministic pre-order traversal (the order
    /// [`RTree::query`] would report them for an all-covering window).
    /// This is the sequence fingerprint tests hash.
    pub fn traversal(&self) -> Vec<(Rect, &T)> {
        let mut out = Vec::new();
        let mut stack = vec![self.root];
        while let Some(id) = stack.pop() {
            let node = &self.nodes[id];
            if node.leaf {
                for &slot in &node.children {
                    if let Some((r, v)) = &self.items[slot] {
                        out.push((*r, v));
                    }
                }
            } else {
                for &child in node.children.iter().rev() {
                    stack.push(child);
                }
            }
        }
        out
    }

    // ---- internals ----------------------------------------------------

    /// Descends to the best leaf for `rect` and inserts `slot` there,
    /// splitting and propagating on overflow.
    fn insert_slot(&mut self, slot: usize, rect: Rect) {
        // Path of node ids from root to the chosen leaf.
        let mut path = vec![self.root];
        loop {
            let id = *path.last().unwrap_or(&self.root);
            if self.nodes[id].leaf {
                break;
            }
            let mut pick: Option<(u64, u64, usize)> = None;
            for &child in &self.nodes[id].children {
                let mbr = match self.nodes[child].mbr {
                    Some(m) => m,
                    None => continue,
                };
                let grown = mbr.hull(rect);
                let enlargement = grown.area() - mbr.area();
                let key = (enlargement, mbr.area(), child);
                if pick.is_none_or(|p| key < p) {
                    pick = Some(key);
                }
            }
            match pick {
                Some((_, _, child)) => path.push(child),
                // An inner node never has zero children, but stay total.
                None => break,
            }
        }
        let leaf = *path.last().unwrap_or(&self.root);
        self.nodes[leaf].children.push(slot);
        self.refit(leaf);
        self.handle_overflow(&path);
        // MBRs along the path may have grown.
        for &id in path.iter().rev() {
            self.refit(id);
        }
    }

    /// Splits the deepest overflowing node on `path` and propagates.
    fn handle_overflow(&mut self, path: &[usize]) {
        for depth in (0..path.len()).rev() {
            let id = path[depth];
            if self.nodes[id].children.len() <= MAX_ENTRIES {
                continue;
            }
            let sibling = self.split(id);
            if depth == 0 {
                // Root split: grow the tree by one level.
                let mbr = hull_of(&[self.mbr_of(id), self.mbr_of(sibling)]);
                let new_root = push_node(&mut self.nodes, mbr, vec![id, sibling], false);
                self.root = new_root;
            } else {
                let parent = path[depth - 1];
                self.nodes[parent].children.push(sibling);
                self.refit(parent);
            }
        }
    }

    /// Quadratic split of node `id`; returns the new sibling node id.
    fn split(&mut self, id: usize) -> usize {
        let leaf = self.nodes[id].leaf;
        let children = std::mem::take(&mut self.nodes[id].children);
        let rect_at = |this: &Self, c: usize| -> Rect {
            if leaf {
                this.items[c].as_ref().map(|(r, _)| *r).unwrap_or(Rect::new(0, 0, 0, 0))
            } else {
                this.nodes[c].mbr.unwrap_or(Rect::new(0, 0, 0, 0))
            }
        };

        // Pick the two seeds wasting the most area if paired.
        let (mut s1, mut s2, mut worst) = (0usize, 1usize, 0u64);
        for i in 0..children.len() {
            for j in (i + 1)..children.len() {
                let (ri, rj) = (rect_at(self, children[i]), rect_at(self, children[j]));
                let dead = ri.hull(rj).area().saturating_sub(ri.area() + rj.area());
                if dead > worst {
                    (s1, s2, worst) = (i, j, dead);
                }
            }
        }
        let mut group_a = vec![children[s1]];
        let mut group_b = vec![children[s2]];
        let (mut mbr_a, mut mbr_b) = (rect_at(self, children[s1]), rect_at(self, children[s2]));
        let mut rest: Vec<usize> = children
            .iter()
            .enumerate()
            .filter(|&(i, _)| i != s1 && i != s2)
            .map(|(_, &c)| c)
            .collect();

        // Assign the remaining entries by strongest preference; keep the
        // scan order (and thus the result) deterministic.
        while !rest.is_empty() {
            let need_a = MIN_ENTRIES.saturating_sub(group_a.len());
            let need_b = MIN_ENTRIES.saturating_sub(group_b.len());
            if need_a >= rest.len() {
                for c in rest.drain(..) {
                    mbr_a = mbr_a.hull(rect_at(self, c));
                    group_a.push(c);
                }
                break;
            }
            if need_b >= rest.len() {
                for c in rest.drain(..) {
                    mbr_b = mbr_b.hull(rect_at(self, c));
                    group_b.push(c);
                }
                break;
            }
            // Entry whose enlargement difference is largest.
            let mut pick = 0usize;
            let mut pick_diff = 0i128;
            let mut pick_da = 0u64;
            let mut pick_db = 0u64;
            for (i, &c) in rest.iter().enumerate() {
                let r = rect_at(self, c);
                let da = mbr_a.hull(r).area() - mbr_a.area();
                let db = mbr_b.hull(r).area() - mbr_b.area();
                let diff = (i128::from(da) - i128::from(db)).abs();
                if i == 0 || diff > pick_diff {
                    (pick, pick_diff, pick_da, pick_db) = (i, diff, da, db);
                }
            }
            let c = rest.remove(pick);
            let r = rect_at(self, c);
            // Ties go to A: group order is part of the determinism
            // contract, not a quality knob.
            let to_a = pick_da < pick_db
                || (pick_da == pick_db && (mbr_a.area(), group_a.len()) <= (mbr_b.area(), group_b.len()));
            if to_a {
                mbr_a = mbr_a.hull(r);
                group_a.push(c);
            } else {
                mbr_b = mbr_b.hull(r);
                group_b.push(c);
            }
        }

        self.nodes[id].children = group_a;
        self.nodes[id].mbr = Some(mbr_a);
        push_node(&mut self.nodes, Some(mbr_b), group_b, leaf)
    }

    /// Finds the leaf, child position and item slot of `(rect, value)`.
    fn find_leaf(&self, id: usize, rect: Rect, value: &T) -> Option<(usize, usize, usize)>
    where
        T: PartialEq,
    {
        let node = &self.nodes[id];
        match node.mbr {
            Some(mbr) if mbr.contains_rect(rect) => {}
            _ => return None,
        }
        if node.leaf {
            for (pos, &slot) in node.children.iter().enumerate() {
                if let Some((r, v)) = &self.items[slot] {
                    if *r == rect && v == value {
                        return Some((id, pos, slot));
                    }
                }
            }
            return None;
        }
        for &child in &node.children {
            if let Some(found) = self.find_leaf(child, rect, value) {
                return Some(found);
            }
        }
        None
    }

    /// After a removal from `leaf`: if the tree root became a trivial
    /// chain, shrink it; underfull non-root leaves dump their items for
    /// reinsertion. Parent links are not stored, so condensation works
    /// top-down: a full rebuild of ancestors' MBRs plus orphan handling.
    fn condense(&mut self, leaf: usize) {
        let mut orphans: Vec<usize> = Vec::new();
        if leaf != self.root && self.nodes[leaf].children.len() < MIN_ENTRIES {
            orphans = std::mem::take(&mut self.nodes[leaf].children);
            self.detach(self.root, leaf);
        }
        self.refit_deep(self.root);
        // Shrink a root with a single inner child.
        while !self.nodes[self.root].leaf && self.nodes[self.root].children.len() == 1 {
            self.root = self.nodes[self.root].children[0];
        }
        if self.nodes[self.root].children.is_empty() {
            self.nodes[self.root].leaf = true;
            self.nodes[self.root].mbr = None;
        }
        for slot in orphans {
            if let Some((rect, _)) = &self.items[slot] {
                let rect = *rect;
                self.insert_slot(slot, rect);
            }
        }
    }

    /// Removes node `target` from whichever inner node holds it.
    fn detach(&mut self, id: usize, target: usize) -> bool {
        if self.nodes[id].leaf {
            return false;
        }
        if let Some(pos) = self.nodes[id].children.iter().position(|&c| c == target) {
            self.nodes[id].children.remove(pos);
            return true;
        }
        let children = self.nodes[id].children.clone();
        for child in children {
            if self.detach(child, target) {
                // Cascade: an inner node emptied by the detach must
                // leave the tree too, or a later insertion descent
                // dead-ends in it and grafts an item slot into an inner
                // node's child list.
                if !self.nodes[child].leaf && self.nodes[child].children.is_empty() {
                    self.nodes[id].children.retain(|&c| c != child);
                }
                return true;
            }
        }
        false
    }

    /// Recomputes every MBR in the subtree under `id`.
    fn refit_deep(&mut self, id: usize) {
        if !self.nodes[id].leaf {
            let children = self.nodes[id].children.clone();
            for child in children {
                self.refit_deep(child);
            }
        }
        self.refit(id);
    }

    /// Recomputes one node's MBR from its children.
    fn refit(&mut self, id: usize) {
        let node = &self.nodes[id];
        let mut mbr: Option<Rect> = None;
        if node.leaf {
            for &slot in &node.children {
                if let Some((r, _)) = &self.items[slot] {
                    mbr = Some(match mbr {
                        Some(m) => m.hull(*r),
                        None => *r,
                    });
                }
            }
        } else {
            for &child in &node.children {
                if let Some(m) = self.nodes[child].mbr {
                    mbr = Some(match mbr {
                        Some(acc) => acc.hull(m),
                        None => m,
                    });
                }
            }
        }
        self.nodes[id].mbr = mbr;
    }

    fn mbr_of(&self, id: usize) -> Option<Rect> {
        self.nodes[id].mbr
    }
}

/// Appends a node to the arena, returning its id.
fn push_node(nodes: &mut Vec<Node>, mbr: Option<Rect>, children: Vec<usize>, leaf: bool) -> usize {
    nodes.push(Node {
        mbr,
        children,
        leaf,
    });
    nodes.len() - 1
}

fn hull_of(rects: &[Option<Rect>]) -> Option<Rect> {
    let mut acc: Option<Rect> = None;
    for r in rects.iter().flatten() {
        acc = Some(match acc {
            Some(m) => m.hull(*r),
            None => *r,
        });
    }
    acc
}

/// Squared Euclidean distance from `p` to the nearest point of `r`
/// (zero when inside). Exact in `u128` for any `i32` coordinates.
fn dist2(r: Rect, p: Point) -> u128 {
    let dx = if p.x < r.x0() {
        u128::from(p.x.abs_diff(r.x0()))
    } else if p.x > r.x1() {
        u128::from(p.x.abs_diff(r.x1()))
    } else {
        0
    };
    let dy = if p.y < r.y0() {
        u128::from(p.y.abs_diff(r.y0()))
    } else if p.y > r.y1() {
        u128::from(p.y.abs_diff(r.y1()))
    } else {
        0
    };
    dx * dx + dy * dy
}

/// One Sort-Tile-Recursive packing pass: groups `entries` (sorted by
/// center-x slices, then center-y within each slice) into chunks of at
/// most [`MAX_ENTRIES`], returning each chunk with its bounding box.
/// All sort keys end in the entry id, so packing is deterministic even
/// with coincident centers.
fn str_pack<F: Fn(&usize) -> Rect>(entries: &[usize], rect_of: F) -> Vec<(Option<Rect>, Vec<usize>)> {
    let n = entries.len();
    let node_count = n.div_ceil(MAX_ENTRIES);
    let slice_count = (node_count as f64).sqrt().ceil() as usize;
    let slice_size = n.div_ceil(slice_count.max(1));

    let center = |r: Rect| -> (i64, i64) {
        (
            i64::from(r.x0()) + i64::from(r.x1()),
            i64::from(r.y0()) + i64::from(r.y1()),
        )
    };
    let mut by_x: Vec<usize> = entries.to_vec();
    by_x.sort_by_key(|e| (center(rect_of(e)).0, *e));

    let mut out = Vec::with_capacity(node_count);
    for slice in by_x.chunks(slice_size.max(1)) {
        let mut by_y: Vec<usize> = slice.to_vec();
        by_y.sort_by_key(|e| (center(rect_of(e)).1, *e));
        for chunk in by_y.chunks(MAX_ENTRIES) {
            let mbr = hull_of(&chunk.iter().map(|e| Some(rect_of(e))).collect::<Vec<_>>());
            out.push((mbr, chunk.to_vec()));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rect(i: i32) -> Rect {
        Rect::new(i * 3, i * 2, i * 3 + 2, i * 2 + 1)
    }

    #[test]
    fn empty_tree_answers_empty() {
        let tree: RTree<u32> = RTree::new();
        assert!(tree.is_empty());
        assert!(tree.query(Rect::new(-100, -100, 100, 100)).is_empty());
        assert!(tree.nearest(Point::new(0, 0)).is_none());
        assert!(tree.traversal().is_empty());
    }

    #[test]
    fn bulk_load_finds_everything() {
        let items: Vec<(Rect, i32)> = (0..100).map(|i| (rect(i), i)).collect();
        let tree = RTree::bulk_load(items.clone());
        assert_eq!(tree.len(), 100);
        let all = tree.query(Rect::new(-1000, -1000, 1000, 1000));
        assert_eq!(all.len(), 100);
        for (r, v) in &items {
            let hits = tree.query(*r);
            assert!(hits.iter().any(|(hr, hv)| hr == r && *hv == v));
        }
    }

    #[test]
    fn query_matches_linear_scan() {
        let items: Vec<(Rect, usize)> = (0..60)
            .map(|i| {
                let x = (i * 37) % 90;
                let y = (i * 53) % 70;
                (Rect::new(x, y, x + (i % 7), y + (i % 5)), i as usize)
            })
            .collect();
        let tree = RTree::bulk_load(items.clone());
        for wx in [0, 20, 45] {
            for wy in [0, 15, 40] {
                let window = Rect::new(wx, wy, wx + 25, wy + 18);
                let mut got: Vec<usize> = tree.query(window).iter().map(|(_, v)| **v).collect();
                got.sort_unstable();
                let mut want: Vec<usize> = items
                    .iter()
                    .filter(|(r, _)| r.overlaps(window))
                    .map(|(_, v)| *v)
                    .collect();
                want.sort_unstable();
                assert_eq!(got, want, "window {window}");
            }
        }
    }

    #[test]
    fn insert_then_query_and_nearest() {
        let mut tree = RTree::new();
        for i in 0..50 {
            tree.insert(rect(i), i);
        }
        assert_eq!(tree.len(), 50);
        assert_eq!(tree.query(rect(17)).iter().map(|(_, v)| **v).max(), Some(17));
        // Nearest to a point inside rect(30).
        let (r, v) = tree.nearest(Point::new(91, 61)).expect("non-empty");
        assert_eq!((r, *v), (rect(30), 30));
    }

    #[test]
    fn nearest_tie_breaks_on_slot_id() {
        let same = Rect::new(10, 10, 12, 12);
        let tree = RTree::bulk_load(vec![(same, 'b'), (same, 'a')]);
        // Equal distance: smallest slot id (input position 0) wins.
        assert_eq!(tree.nearest(Point::new(0, 0)).map(|(_, v)| *v), Some('b'));
    }

    #[test]
    fn remove_round_trip() {
        let mut tree = RTree::new();
        for i in 0..40 {
            tree.insert(rect(i), i);
        }
        for i in (0..40).step_by(2) {
            assert!(tree.remove(rect(i), &i), "remove {i}");
        }
        assert!(!tree.remove(rect(0), &0), "double remove must miss");
        assert_eq!(tree.len(), 20);
        let survivors: Vec<i32> = tree
            .query(Rect::new(-1000, -1000, 1000, 1000))
            .iter()
            .map(|(_, v)| **v)
            .collect();
        assert_eq!(survivors.len(), 20);
        assert!(survivors.iter().all(|v| v % 2 == 1));
        // Reinsert into freed slots and find everything again.
        for i in (0..40).step_by(2) {
            tree.insert(rect(i), i);
        }
        assert_eq!(tree.len(), 40);
        assert_eq!(tree.query(Rect::new(-1000, -1000, 1000, 1000)).len(), 40);
    }

    #[test]
    fn remove_down_to_empty_and_reuse() {
        let mut tree = RTree::new();
        for i in 0..20 {
            tree.insert(rect(i), i);
        }
        for i in 0..20 {
            assert!(tree.remove(rect(i), &i));
        }
        assert!(tree.is_empty());
        assert!(tree.nearest(Point::new(0, 0)).is_none());
        tree.insert(Rect::new(0, 0, 1, 1), 99);
        assert_eq!(tree.len(), 1);
        assert_eq!(tree.query(Rect::new(0, 0, 0, 0)).len(), 1);
    }

    #[test]
    fn bulk_load_traversal_is_deterministic() {
        let items: Vec<(Rect, i32)> = (0..75).map(|i| (rect(i % 25), i)).collect();
        let a = RTree::bulk_load(items.clone());
        let b = RTree::bulk_load(items);
        let ta: Vec<(Rect, i32)> = a.traversal().iter().map(|(r, v)| (*r, **v)).collect();
        let tb: Vec<(Rect, i32)> = b.traversal().iter().map(|(r, v)| (*r, **v)).collect();
        assert_eq!(ta, tb);
        assert_eq!(ta.len(), 75);
    }

    #[test]
    fn interleaved_removals_never_strand_empty_inner_nodes() {
        // Regression: condensing a leaf out of a one-child inner node
        // used to leave the emptied inner node in the tree; a later
        // insertion descent dead-ended there and grafted an item slot
        // into the inner node's child list, corrupting the arena.
        // STR packing leaves trailing one-child inner nodes (9 leaves
        // pack as 8 + 1), so a three-level bulk-loaded tree is the
        // cheapest way to manufacture them: 65 items make 9 leaves
        // under inner nodes of 8 and 1. Draining the population then
        // empties both inner nodes, and the final condensations must
        // reinsert their orphans through a root whose children are all
        // exhausted.
        for reverse in [false, true] {
            let mut items: Vec<(Rect, i32)> = (0..65).map(|i| (rect(i), i)).collect();
            let mut tree = RTree::bulk_load(items.clone());
            if reverse {
                items.reverse();
            }
            while let Some((r, v)) = items.pop() {
                assert!(tree.remove(r, &v), "live item {v} missing");
                assert_eq!(tree.len(), items.len());
                let census = tree.query(Rect::new(-1000, -1000, 1000, 1000));
                assert_eq!(census.len(), items.len(), "census after removing {v}");
            }
            assert!(tree.is_empty());
        }
    }

    #[test]
    fn degenerate_point_rects_work() {
        let tree = RTree::bulk_load(vec![
            (Rect::from_point(Point::new(5, 5)), 0),
            (Rect::from_point(Point::new(5, 5)), 1),
            (Rect::from_point(Point::new(-3, 8)), 2),
        ]);
        assert_eq!(tree.query(Rect::from_point(Point::new(5, 5))).len(), 2);
        assert_eq!(tree.nearest(Point::new(-3, 9)).map(|(_, v)| *v), Some(2));
    }
}
