//! The explicit bottom-up multilevel coarsening scheme (paper §II-B).
//!
//! The two-pass bottom-up framework of \[3\] iteratively groups routing
//! tiles into larger tiles; a net becomes *local* at the first level whose
//! tiles contain its whole pin bounding box, and local nets are routed
//! before the coarsening proceeds. This module makes that structure
//! explicit: [`CoarseningLadder`] enumerates the levels, assigns every net
//! its level, and produces the bottom-up routing order together with
//! per-level statistics that the router and the reports consume.

use crate::TileGraph;
use mebl_netlist::Circuit;

/// One coarsening level: tiles of `(1 << level)` base tiles per side.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Level {
    /// Level index, 0 = the base (finest) tiles.
    pub index: u32,
    /// Tile columns at this level.
    pub cols: u32,
    /// Tile rows at this level.
    pub rows: u32,
    /// Nets that become local at this level.
    pub local_nets: usize,
}

/// The full coarsening ladder of a circuit over a tile graph.
///
/// ```
/// use mebl_geom::Rect;
/// use mebl_global::{CoarseningLadder, TileGraph};
/// use mebl_netlist::{BenchmarkSpec, GenerateConfig};
/// use mebl_stitch::{StitchConfig, StitchPlan};
///
/// let c = BenchmarkSpec::by_name("S9234").unwrap()
///     .generate(&GenerateConfig::quick(1));
/// let plan = StitchPlan::new(c.outline(), StitchConfig::default());
/// let graph = TileGraph::new(c.outline(), 15, 3, &plan, true);
/// let ladder = CoarseningLadder::build(&c, &graph);
/// assert!(ladder.levels().len() >= 1);
/// assert_eq!(ladder.order().len(), c.net_count());
/// // Local nets (level 0) come first in the bottom-up order.
/// let levels = ladder.net_levels();
/// let order = ladder.order();
/// for w in order.windows(2) {
///     assert!(levels[w[0]] <= levels[w[1]]);
/// }
/// ```
#[derive(Debug, Clone)]
pub struct CoarseningLadder {
    levels: Vec<Level>,
    net_level: Vec<u32>,
    order: Vec<usize>,
}

impl CoarseningLadder {
    /// Builds the ladder: level 0 is the base tile grid; each level merges
    /// 2×2 tiles until a single tile remains.
    pub fn build(circuit: &Circuit, graph: &TileGraph) -> Self {
        // A net's level: smallest k such that its bbox fits inside one
        // (2^k x 2^k)-base-tile super tile (aligned).
        let net_level: Vec<u32> = circuit
            .nets()
            .iter()
            .map(|net| {
                let bb = net.bounding_box();
                let a = graph.tile_of(mebl_geom::Point::new(bb.x0(), bb.y0()));
                let b = graph.tile_of(mebl_geom::Point::new(bb.x1(), bb.y1()));
                let (ac, ar) = graph.tile_coords(a);
                let (bc, br) = graph.tile_coords(b);
                let mut k = 0u32;
                while (ac >> k) != (bc >> k) || (ar >> k) != (br >> k) {
                    k += 1;
                }
                k
            })
            .collect();

        let max_level = {
            let mut k = 0u32;
            while (graph.cols() >> k) > 1 || (graph.rows() >> k) > 1 {
                k += 1;
            }
            k
        };

        let levels: Vec<Level> = (0..=max_level)
            .map(|index| Level {
                index,
                cols: (graph.cols() >> index).max(1),
                rows: (graph.rows() >> index).max(1),
                local_nets: net_level.iter().filter(|&&l| l == index).count(),
            })
            .collect();

        let mut order: Vec<usize> = (0..circuit.net_count()).collect();
        order.sort_by_key(|&i| (net_level[i], i));

        Self {
            levels,
            net_level,
            order,
        }
    }

    /// The coarsening levels, finest first.
    pub fn levels(&self) -> &[Level] {
        &self.levels
    }

    /// The level at which each net becomes local.
    pub fn net_levels(&self) -> &[u32] {
        &self.net_level
    }

    /// Bottom-up routing order: all level-0 (local) nets first, then
    /// level 1, and so on — ties broken by net id.
    pub fn order(&self) -> &[usize] {
        &self.order
    }

    /// Nets becoming local at `level`, in id order.
    pub fn nets_at_level(&self, level: u32) -> impl Iterator<Item = usize> + '_ {
        self.order
            .iter()
            .copied()
            .filter(move |&i| self.net_level[i] == level)
    }

    /// Fraction of nets that are local at the base level — a locality
    /// measure of the placement (high for realistic designs).
    pub fn base_locality(&self) -> f64 {
        if self.net_level.is_empty() {
            return 1.0;
        }
        self.net_level.iter().filter(|&&l| l == 0).count() as f64 / self.net_level.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mebl_geom::{Layer, Point, Rect};
    use mebl_netlist::{Net, Pin};
    use mebl_stitch::{StitchConfig, StitchPlan};

    fn pin(x: i32, y: i32) -> Pin {
        Pin::new(Point::new(x, y), Layer::new(0))
    }

    fn setup(nets: Vec<Net>) -> (Circuit, TileGraph) {
        let outline = Rect::new(0, 0, 119, 119);
        let plan = StitchPlan::new(outline, StitchConfig::default());
        let c = Circuit::new("t", outline, 3, nets);
        let g = TileGraph::new(outline, 15, 3, &plan, true);
        (c, g)
    }

    #[test]
    fn local_net_is_level_zero() {
        let (c, g) = setup(vec![Net::new("a", vec![pin(1, 1), pin(5, 9)])]);
        let ladder = CoarseningLadder::build(&c, &g);
        assert_eq!(ladder.net_levels(), &[0]);
        assert_eq!(ladder.base_locality(), 1.0);
    }

    #[test]
    fn chip_spanning_net_is_top_level() {
        let (c, g) = setup(vec![Net::new("a", vec![pin(0, 0), pin(119, 119)])]);
        let ladder = CoarseningLadder::build(&c, &g);
        let top = ladder.levels().last().unwrap().index;
        assert_eq!(ladder.net_levels()[0], top);
    }

    #[test]
    fn ladder_shrinks_to_single_tile() {
        let (c, g) = setup(vec![Net::new("a", vec![pin(0, 0), pin(5, 5)])]);
        let ladder = CoarseningLadder::build(&c, &g);
        let last = ladder.levels().last().unwrap();
        assert_eq!((last.cols, last.rows), (1, 1));
        // 8x8 base tiles -> levels 0..=3.
        assert_eq!(ladder.levels().len(), 4);
    }

    #[test]
    fn order_is_bottom_up() {
        let (c, g) = setup(vec![
            Net::new("global", vec![pin(0, 0), pin(119, 119)]),
            Net::new("local", vec![pin(2, 2), pin(6, 6)]),
            Net::new("mid", vec![pin(2, 2), pin(40, 40)]),
        ]);
        let ladder = CoarseningLadder::build(&c, &g);
        let order = ladder.order();
        let levels = ladder.net_levels();
        assert_eq!(order[0], 1, "local net first");
        for w in order.windows(2) {
            assert!(levels[w[0]] <= levels[w[1]]);
        }
    }

    #[test]
    fn level_counts_sum_to_net_count() {
        let (c, g) = setup(vec![
            Net::new("a", vec![pin(0, 0), pin(119, 119)]),
            Net::new("b", vec![pin(2, 2), pin(6, 6)]),
            Net::new("c", vec![pin(50, 50), pin(80, 90)]),
        ]);
        let ladder = CoarseningLadder::build(&c, &g);
        let total: usize = ladder.levels().iter().map(|l| l.local_nets).sum();
        assert_eq!(total, 3);
        assert_eq!(ladder.nets_at_level(0).count(), ladder.levels()[0].local_nets);
    }

    #[test]
    fn crossing_a_tile_boundary_raises_level() {
        // Pins in adjacent tiles with unaligned boundary: (14,0) is tile 0,
        // (16,0) is tile 1; they merge at level 1.
        let (c, g) = setup(vec![Net::new("a", vec![pin(14, 1), pin(16, 1)])]);
        let ladder = CoarseningLadder::build(&c, &g);
        assert_eq!(ladder.net_levels()[0], 1);
    }
}
