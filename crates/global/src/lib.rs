//! Stitch-aware global routing (paper §III-A).
//!
//! The routing plane is divided into **global tiles** and modelled as a
//! graph: a vertex per tile, an edge per adjacent tile pair ([`TileGraph`]).
//! MEBL changes the resource model in two ways (Fig. 7):
//!
//! * **Edge capacities** in the vertical direction shrink, because no wire
//!   may ride a track occupied by a stitching line.
//! * **Vertices get a capacity too** — the number of vertical tracks
//!   *outside* stitch unfriendly regions. Each line end of a vertical
//!   segment consumes one unit; an excess line end must sit in an
//!   unfriendly region and risks a short polygon downstream.
//!
//! Costs follow eqs. (1)–(3): `ψe = 2^(de/ce) − 1`, `ψv = 2^(dv/cv) − 1`,
//! and a path costs `Ψ(P) = Σ ψe + Σ ψv`. The router processes nets in
//! bottom-up multilevel order (local nets first), decomposes multi-pin
//! nets over an MST, runs congestion-aware A\* per connection, and then
//! performs negotiation-style rip-up/reroute passes on overflowed
//! resources. Setting [`GlobalConfig::line_end_cost`] to `false` yields
//! the conventional wire-density-only router compared against in Table IV.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod multilevel;
mod router;
mod tilegraph;

pub use multilevel::{CoarseningLadder, Level};
pub use router::{
    rebuild_result, route_circuit, route_incremental, GlobalConfig, GlobalMetrics, GlobalResult,
    GlobalRoute, TileRun,
};
pub use tilegraph::{TileGraph, TileId};
