//! Global tile graph with stitch-adjusted capacities.

use mebl_geom::{Coord, Interval, Point, Rect};
use mebl_stitch::StitchPlan;

/// Identifier of a global tile: `row * cols + col`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TileId(pub u32);

/// The global routing graph: a grid of tiles with edge and vertex
/// capacities (Fig. 7).
///
/// Horizontal edges connect laterally adjacent tiles and carry horizontal
/// wiring; vertical edges connect vertically adjacent tiles. Capacities
/// aggregate all layers of the respective direction. When built
/// stitch-aware, vertical edge capacity excludes tracks occupied by
/// stitching lines and the vertex (line-end) capacity counts only tracks
/// outside stitch unfriendly regions.
///
/// ```
/// use mebl_geom::Rect;
/// use mebl_stitch::{StitchConfig, StitchPlan};
/// use mebl_global::TileGraph;
///
/// let outline = Rect::new(0, 0, 59, 29);
/// let plan = StitchPlan::new(outline, StitchConfig::default());
/// let g = TileGraph::new(outline, 15, 3, &plan, true);
/// assert_eq!((g.cols(), g.rows()), (4, 2));
/// ```
#[derive(Debug, Clone)]
pub struct TileGraph {
    outline: Rect,
    tile_size: Coord,
    cols: u32,
    rows: u32,
    /// Capacity of edge ((c,r),(c+1,r)): index r * (cols-1) + c.
    h_edge_cap: Vec<u32>,
    /// Capacity of edge ((c,r),(c,r+1)): index r * cols + c.
    v_edge_cap: Vec<u32>,
    /// Line-end capacity per tile.
    vertex_cap: Vec<u32>,
}

impl TileGraph {
    /// Builds the tile graph over `outline` with square tiles of
    /// `tile_size` pitches (edge tiles may be smaller).
    ///
    /// `stitch_aware` controls whether capacities account for stitching
    /// lines; pass `false` to model a conventional (stitch-oblivious)
    /// resource estimate.
    ///
    /// # Panics
    ///
    /// Panics if `tile_size <= 0` or `layers < 2`.
    pub fn new(
        outline: Rect,
        tile_size: Coord,
        layers: u8,
        plan: &StitchPlan,
        stitch_aware: bool,
    ) -> Self {
        assert!(tile_size > 0, "tile size must be positive");
        assert!(layers >= 2, "need at least two layers");
        let cols = ((outline.width() as Coord + tile_size - 1) / tile_size).max(1) as u32;
        let rows = ((outline.height() as Coord + tile_size - 1) / tile_size).max(1) as u32;
        // Even layers horizontal, odd vertical.
        let h_layers = u32::from(layers).div_ceil(2);
        let v_layers = u32::from(layers) / 2;

        let mut graph = Self {
            outline,
            tile_size,
            cols,
            rows,
            h_edge_cap: vec![0; ((cols - 1) * rows) as usize],
            v_edge_cap: vec![0; (cols * (rows - 1)) as usize],
            vertex_cap: vec![0; (cols * rows) as usize],
        };

        for r in 0..rows {
            let ys = graph.row_span(r);
            for c in 0..cols {
                let xs = graph.col_span(c);
                // Horizontal edge to the right: limited by horizontal
                // tracks (rows of the tile) times horizontal layers.
                if c + 1 < cols {
                    graph.h_edge_cap[(r * (cols - 1) + c) as usize] =
                        ys.count() as u32 * h_layers;
                }
                // Vertical edge upward: vertical tracks not on stitch
                // lines, times vertical layers.
                let usable_v = if stitch_aware {
                    plan.vertical_track_capacity(xs)
                } else {
                    xs.count()
                };
                if r + 1 < rows {
                    graph.v_edge_cap[(r * cols + c) as usize] = usable_v as u32 * v_layers;
                }
                // Vertex capacity: friendly vertical tracks.
                let friendly = if stitch_aware {
                    plan.friendly_track_capacity(xs)
                } else {
                    xs.count()
                };
                graph.vertex_cap[(r * cols + c) as usize] = friendly as u32 * v_layers;
            }
        }
        graph
    }

    /// Chip outline.
    pub fn outline(&self) -> Rect {
        self.outline
    }

    /// Nominal tile edge length in pitches.
    pub fn tile_size(&self) -> Coord {
        self.tile_size
    }

    /// Number of tile columns.
    pub fn cols(&self) -> u32 {
        self.cols
    }

    /// Number of tile rows.
    pub fn rows(&self) -> u32 {
        self.rows
    }

    /// Number of tiles.
    pub fn tile_count(&self) -> usize {
        (self.cols * self.rows) as usize
    }

    /// The tile containing a grid point.
    ///
    /// # Panics
    ///
    /// Panics if the point is outside the outline.
    pub fn tile_of(&self, p: Point) -> TileId {
        assert!(self.outline.contains(p), "point outside outline");
        let c = ((p.x - self.outline.x0()) / self.tile_size) as u32;
        let r = ((p.y - self.outline.y0()) / self.tile_size) as u32;
        TileId(r * self.cols + c)
    }

    /// `(col, row)` of a tile.
    pub fn tile_coords(&self, t: TileId) -> (u32, u32) {
        (t.0 % self.cols, t.0 / self.cols)
    }

    /// Tile id from `(col, row)`.
    pub fn tile_at(&self, col: u32, row: u32) -> TileId {
        debug_assert!(col < self.cols && row < self.rows);
        TileId(row * self.cols + col)
    }

    /// The x extent of tile column `c`.
    pub fn col_span(&self, c: u32) -> Interval {
        let lo = self.outline.x0() + c as Coord * self.tile_size;
        let hi = (lo + self.tile_size - 1).min(self.outline.x1());
        Interval::new(lo, hi)
    }

    /// The y extent of tile row `r`.
    pub fn row_span(&self, r: u32) -> Interval {
        let lo = self.outline.y0() + r as Coord * self.tile_size;
        let hi = (lo + self.tile_size - 1).min(self.outline.y1());
        Interval::new(lo, hi)
    }

    /// The rectangle covered by a tile.
    pub fn tile_rect(&self, t: TileId) -> Rect {
        let (c, r) = self.tile_coords(t);
        Rect::from_intervals(self.col_span(c), self.row_span(r))
    }

    /// Index of the undirected edge between two adjacent tiles, along with
    /// whether it is horizontal. Returns `None` for non-adjacent tiles.
    pub fn edge_between(&self, a: TileId, b: TileId) -> Option<(usize, bool)> {
        let (ac, ar) = self.tile_coords(a);
        let (bc, br) = self.tile_coords(b);
        if ar == br && ac.abs_diff(bc) == 1 {
            let c = ac.min(bc);
            Some(((ar * (self.cols - 1) + c) as usize, true))
        } else if ac == bc && ar.abs_diff(br) == 1 {
            let r = ar.min(br);
            Some(((r * self.cols + ac) as usize, false))
        } else {
            None
        }
    }

    /// Capacity of the horizontal edge with the given index.
    pub fn h_edge_capacity(&self, idx: usize) -> u32 {
        self.h_edge_cap[idx]
    }

    /// Capacity of the vertical edge with the given index.
    pub fn v_edge_capacity(&self, idx: usize) -> u32 {
        self.v_edge_cap[idx]
    }

    /// Line-end capacity of a tile.
    pub fn vertex_capacity(&self, t: TileId) -> u32 {
        self.vertex_cap[t.0 as usize]
    }

    /// Number of horizontal edges.
    pub fn h_edge_count(&self) -> usize {
        self.h_edge_cap.len()
    }

    /// Number of vertical edges.
    pub fn v_edge_count(&self) -> usize {
        self.v_edge_cap.len()
    }

    /// The four-neighbourhood of a tile.
    pub fn neighbors(&self, t: TileId) -> impl Iterator<Item = TileId> + '_ {
        let (c, r) = self.tile_coords(t);
        let cols = self.cols;
        let rows = self.rows;
        [
            (c > 0).then(|| TileId(r * cols + c - 1)),
            (c + 1 < cols).then(|| TileId(r * cols + c + 1)),
            (r > 0).then(|| TileId((r - 1) * cols + c)),
            (r + 1 < rows).then(|| TileId((r + 1) * cols + c)),
        ]
        .into_iter()
        .flatten()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mebl_stitch::StitchConfig;

    fn setup(stitch_aware: bool) -> TileGraph {
        let outline = Rect::new(0, 0, 59, 29);
        let plan = StitchPlan::new(outline, StitchConfig::default());
        TileGraph::new(outline, 15, 3, &plan, stitch_aware)
    }

    #[test]
    fn dimensions() {
        let g = setup(true);
        assert_eq!(g.cols(), 4);
        assert_eq!(g.rows(), 2);
        assert_eq!(g.tile_count(), 8);
        assert_eq!(g.h_edge_count(), 6);
        assert_eq!(g.v_edge_count(), 4);
    }

    #[test]
    fn tile_lookup_roundtrip() {
        let g = setup(true);
        let t = g.tile_of(Point::new(31, 16));
        assert_eq!(g.tile_coords(t), (2, 1));
        assert!(g.tile_rect(t).contains(Point::new(31, 16)));
        assert_eq!(g.tile_at(2, 1), t);
    }

    #[test]
    fn stitch_aware_capacities_shrink() {
        let aware = setup(true);
        let blind = setup(false);
        // Tile column 1 covers x in [15, 29]: line 15 inside => one track
        // blocked; unfriendly region removes 14..=16 intersected: 15, 16.
        let t = aware.tile_at(1, 0);
        let v_edge = 1usize; // row 0 * cols + column 1
        assert_eq!(blind.v_edge_capacity(v_edge), 15); // 15 tracks, 1 V layer
        assert_eq!(aware.v_edge_capacity(v_edge), 14);
        assert_eq!(blind.vertex_capacity(t), 15);
        // Unfriendly tracks inside [15, 29]: 15, 16 (line 15) and 29 (line 30).
        assert_eq!(aware.vertex_capacity(t), 12);
    }

    #[test]
    fn horizontal_capacity_unaffected_by_stitches() {
        let aware = setup(true);
        let blind = setup(false);
        for i in 0..aware.h_edge_count() {
            assert_eq!(aware.h_edge_capacity(i), blind.h_edge_capacity(i));
        }
        // Row height 15, two horizontal layers (M0, M2) for 3-layer stack.
        assert_eq!(aware.h_edge_capacity(0), 30);
    }

    #[test]
    fn edge_between_adjacent_only() {
        let g = setup(true);
        let a = g.tile_at(0, 0);
        let b = g.tile_at(1, 0);
        let c = g.tile_at(0, 1);
        let d = g.tile_at(1, 1);
        assert_eq!(g.edge_between(a, b).map(|e| e.1), Some(true));
        assert_eq!(g.edge_between(a, c).map(|e| e.1), Some(false));
        assert_eq!(g.edge_between(a, d), None);
        assert_eq!(g.edge_between(a, a), None);
        // Symmetric.
        assert_eq!(g.edge_between(a, b), g.edge_between(b, a));
    }

    #[test]
    fn neighbors_of_corner_and_center() {
        let g = setup(true);
        let corner: Vec<TileId> = g.neighbors(g.tile_at(0, 0)).collect();
        assert_eq!(corner.len(), 2);
        let mid: Vec<TileId> = g.neighbors(g.tile_at(1, 1)).collect();
        assert_eq!(mid.len(), 3); // 2-row grid: no tile above
    }

    #[test]
    fn ragged_edge_tiles() {
        let outline = Rect::new(0, 0, 36, 36); // 37x37: tiles 15,15,7
        let plan = StitchPlan::new(outline, StitchConfig::default());
        let g = TileGraph::new(outline, 15, 3, &plan, true);
        assert_eq!(g.cols(), 3);
        assert_eq!(g.col_span(2), Interval::new(30, 36));
        let t = g.tile_of(Point::new(36, 36));
        assert_eq!(g.tile_coords(t), (2, 2));
    }
}
