//! Congestion- and line-end-aware global routing.

use crate::{TileGraph, TileId};
use mebl_control::{CancelToken, Degradation, DegradationKind, Stage};
use mebl_geom::Coord;
use mebl_netlist::Circuit;
use mebl_par::Pool;
use mebl_stitch::StitchPlan;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Configuration of the global routing stage.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GlobalConfig {
    /// Global tile edge length in pitches. The default (15) matches the
    /// stitch period so each tile column contains at most one line, the
    /// Fig. 7 geometry.
    pub tile_size: Coord,
    /// Account for stitching lines in edge/vertex capacities. `false`
    /// models a conventional router's resource estimate.
    pub stitch_aware_capacity: bool,
    /// Include the vertex (line-end congestion) term `ψv` in path costs —
    /// the switch studied in Table IV.
    pub line_end_cost: bool,
    /// Negotiation-style rip-up/reroute passes after the initial pass.
    pub reroute_passes: usize,
    /// Cooperative cancellation/budget handle. The inert default never
    /// fires; when armed (see `mebl-route`'s `RunBudget`), cancellation
    /// takes effect at net and pass boundaries so partial results stay
    /// internally consistent.
    pub cancel: CancelToken,
    /// Worker pool for speculative net batches. Every pool width runs
    /// the same batched algorithm with an ordered commit, so results
    /// are bit-identical regardless of worker count (DESIGN.md §9).
    pub pool: Pool,
}

impl Default for GlobalConfig {
    fn default() -> Self {
        Self {
            tile_size: 15,
            stitch_aware_capacity: true,
            line_end_cost: true,
            reroute_passes: 3,
            cancel: CancelToken::default(),
            pool: Pool::serial(),
        }
    }
}

impl GlobalConfig {
    /// The conventional baseline: wire-density cost only, blind capacities.
    pub fn baseline() -> Self {
        Self {
            stitch_aware_capacity: false,
            line_end_cost: false,
            ..Self::default()
        }
    }
}

/// A maximal straight run of a net's global route, in tile coordinates.
///
/// Runs are the "segments" consumed by layer and track assignment: a
/// vertical run in a column panel, a horizontal run in a row panel.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TileRun {
    /// `true` for a run along a tile row (horizontal wiring).
    pub horizontal: bool,
    /// Row index for horizontal runs, column index for vertical runs.
    pub fixed: u32,
    /// First tile index along the run (column for horizontal, row for
    /// vertical), inclusive.
    pub lo: u32,
    /// Last tile index along the run, inclusive. Always `> lo`.
    pub hi: u32,
}

/// A net's global route: the Steiner-tree tiles and edges it occupies.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct GlobalRoute {
    /// Occupied tiles (sorted, deduplicated). Never empty for a routed
    /// net; a net local to one tile has one tile and no edges.
    pub tiles: Vec<TileId>,
    /// Tree edges between adjacent tiles, normalised `(min, max)`.
    pub edges: Vec<(TileId, TileId)>,
}

impl GlobalRoute {
    /// Decomposes the route's edges into maximal straight [`TileRun`]s.
    pub fn runs(&self, graph: &TileGraph) -> Vec<TileRun> {
        let mut h_edges: Vec<(u32, u32)> = Vec::new(); // (row, left col)
        let mut v_edges: Vec<(u32, u32)> = Vec::new(); // (col, lower row)
        for &(a, b) in &self.edges {
            let (ac, ar) = graph.tile_coords(a);
            let (bc, br) = graph.tile_coords(b);
            if ar == br {
                h_edges.push((ar, ac.min(bc)));
            } else {
                v_edges.push((ac, ar.min(br)));
            }
        }
        let mut runs = Vec::new();
        collect_runs(&mut h_edges, true, &mut runs);
        collect_runs(&mut v_edges, false, &mut runs);
        runs
    }

    /// Tile-level wirelength: number of tile-boundary crossings.
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }
}

fn collect_runs(edges: &mut [(u32, u32)], horizontal: bool, out: &mut Vec<TileRun>) {
    edges.sort_unstable();
    let mut i = 0;
    while i < edges.len() {
        let (fixed, start) = edges[i];
        let mut end = start;
        while i + 1 < edges.len() && edges[i + 1] == (fixed, end + 1) {
            end += 1;
            i += 1;
        }
        out.push(TileRun {
            horizontal,
            fixed,
            lo: start,
            hi: end + 1, // edge (fixed, end) spans tiles end..end+1
        });
        i += 1;
    }
}

/// Quality metrics of a global routing solution (Table IV columns).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct GlobalMetrics {
    /// Total vertex overflow (`TVOF`): Σ max(0, dv − cv).
    pub total_vertex_overflow: u64,
    /// Maximum vertex overflow over all tiles (`MVOF`).
    pub max_vertex_overflow: u32,
    /// Total edge overflow: Σ max(0, de − ce).
    pub total_edge_overflow: u64,
    /// Maximum edge overflow over all edges.
    pub max_edge_overflow: u32,
    /// Wirelength in pitches (tile crossings × tile size).
    pub wirelength: u64,
}

/// Output of [`route_circuit`].
#[derive(Debug, Clone)]
pub struct GlobalResult {
    /// Per-net routes, indexed by net id.
    pub routes: Vec<GlobalRoute>,
    /// The tile graph the routes live on.
    pub graph: TileGraph,
    /// Congestion/overflow metrics.
    pub metrics: GlobalMetrics,
    /// Per-tile congestion `max(demand/capacity)` over the tile's four
    /// edges (1.0 = full), for heatmap rendering.
    pub tile_congestion: Vec<f64>,
    /// Per-tile line-end utilisation `dv / cv`.
    pub vertex_utilization: Vec<f64>,
}

/// Mutable routing state: demands and negotiation history.
#[derive(Clone)]
struct State {
    h_demand: Vec<u32>,
    v_demand: Vec<u32>,
    vertex_demand: Vec<u32>,
    h_history: Vec<f64>,
    v_history: Vec<f64>,
    vertex_history: Vec<f64>,
}

impl State {
    fn new(graph: &TileGraph) -> Self {
        Self {
            h_demand: vec![0; graph.h_edge_count()],
            v_demand: vec![0; graph.v_edge_count()],
            vertex_demand: vec![0; graph.tile_count()],
            h_history: vec![0.0; graph.h_edge_count()],
            v_history: vec![0.0; graph.v_edge_count()],
            vertex_history: vec![0.0; graph.tile_count()],
        }
    }

    fn apply_route(
        &mut self,
        graph: &TileGraph,
        route: &GlobalRoute,
        sign: i64,
        cancel: &CancelToken,
    ) {
        for &(a, b) in &route.edges {
            let Some((idx, is_h)) = graph.edge_between(a, b) else {
                // Routes only hold adjacent pairs, so a missing edge is an
                // invariant breach; skip the edge and surface it.
                cancel.record(Degradation::new(
                    Stage::Global,
                    DegradationKind::InternalFallback,
                    None,
                    format!("demand update skipped for non-adjacent tile pair {a:?}-{b:?}"),
                ));
                continue;
            };
            let slot = if is_h {
                &mut self.h_demand[idx]
            } else {
                &mut self.v_demand[idx]
            };
            *slot = (*slot as i64 + sign) as u32;
        }
        // Each vertical run deposits a line end in both its terminal tiles.
        for run in route.runs(graph) {
            if run.horizontal {
                continue;
            }
            for row in [run.lo, run.hi] {
                let t = graph.tile_at(run.fixed, row);
                let d = &mut self.vertex_demand[t.0 as usize];
                *d = (*d as i64 + sign) as u32;
            }
        }
    }
}

/// Congestion cost `ψ(x) = 2^x − 1` (eqs. 1–2).
fn psi(demand: u32, capacity: u32) -> f64 {
    if capacity == 0 {
        // A zero-capacity resource is effectively blocked but must stay
        // finite so fully blocked regions remain traversable as a last
        // resort (overflow shows up in the metrics instead).
        return 1.0e6;
    }
    (f64::from(demand) / f64::from(capacity)).exp2() - 1.0
}

/// Routes every net of `circuit` on the global tile graph.
///
/// Nets are processed in bottom-up multilevel order (smallest bounding box
/// first), then `config.reroute_passes` negotiation rounds rip up and
/// reroute the nets crossing overflowed resources.
pub fn route_circuit(
    circuit: &Circuit,
    plan: &StitchPlan,
    config: &GlobalConfig,
) -> GlobalResult {
    let graph = TileGraph::new(
        circuit.outline(),
        config.tile_size,
        circuit.layer_count(),
        plan,
        config.stitch_aware_capacity,
    );
    let mut state = State::new(&graph);

    // Bottom-up multilevel ordering: route the nets that are local at the
    // finest coarsening level first, then coarser levels — the two-pass
    // bottom-up framework of [3] (see `CoarseningLadder`).
    let ladder = crate::CoarseningLadder::build(circuit, &graph);
    let order: Vec<usize> = ladder.order().to_vec();

    let mut routes: Vec<GlobalRoute> = vec![GlobalRoute::default(); circuit.net_count()];
    let skipped = route_batched(circuit, &graph, &mut state, config, &order, &mut routes);
    if skipped > 0 {
        config.cancel.record(Degradation::new(
            Stage::Global,
            DegradationKind::BudgetExhausted,
            None,
            format!("{skipped} nets left unrouted at tile level"),
        ));
    }

    negotiate(circuit, &graph, &mut state, config, &order, &mut routes);

    let metrics = compute_metrics(&graph, &state, &routes);
    let (tile_congestion, vertex_utilization) = utilization_maps(&graph, &state, &config.cancel);
    GlobalResult {
        routes,
        graph,
        metrics,
        tile_congestion,
        vertex_utilization,
    }
}

/// Incrementally routes only the nets whose `preserved` entry is `None`.
///
/// Every preserved route's demand is re-applied first — the exact
/// inverse of ripping up the target nets from the prior state — then the
/// targets route in multilevel order against that demand. Negotiation
/// passes run over *all* nets: at the tile level any net crossing an
/// overflowed resource may be ripped and rerouted (the capacity model is
/// a pure function of the routes, and detailed routing never reads
/// them), which lets a delta run converge to zero overflow exactly like
/// a from-scratch run instead of inheriting overflow the preserved
/// routes pin in place.
///
/// # Panics
///
/// Panics if `preserved.len() != circuit.net_count()`.
pub fn route_incremental(
    circuit: &Circuit,
    plan: &StitchPlan,
    config: &GlobalConfig,
    preserved: &[Option<GlobalRoute>],
) -> GlobalResult {
    incremental_impl(circuit, plan, config, preserved)
}

/// Reconstructs a [`GlobalResult`] from already-known per-net routes.
///
/// Demands, metrics and the utilisation maps are pure functions of the
/// routes, so a result serialised as routes alone round-trips through
/// this function bit-identically. No routing, rip-up or negotiation
/// happens — the routes come back exactly as given.
///
/// # Panics
///
/// Panics if `routes.len() != circuit.net_count()`.
pub fn rebuild_result(
    circuit: &Circuit,
    plan: &StitchPlan,
    config: &GlobalConfig,
    routes: Vec<GlobalRoute>,
) -> GlobalResult {
    assert!(
        routes.len() == circuit.net_count(),
        "one route slot per net"
    );
    let graph = TileGraph::new(
        circuit.outline(),
        config.tile_size,
        circuit.layer_count(),
        plan,
        config.stitch_aware_capacity,
    );
    let mut state = State::new(&graph);
    for route in &routes {
        state.apply_route(&graph, route, 1, &config.cancel);
    }
    let metrics = compute_metrics(&graph, &state, &routes);
    let (tile_congestion, vertex_utilization) = utilization_maps(&graph, &state, &config.cancel);
    GlobalResult {
        routes,
        graph,
        metrics,
        tile_congestion,
        vertex_utilization,
    }
}

fn incremental_impl(
    circuit: &Circuit,
    plan: &StitchPlan,
    config: &GlobalConfig,
    preserved: &[Option<GlobalRoute>],
) -> GlobalResult {
    assert!(
        preserved.len() == circuit.net_count(),
        "preserved state must cover every net"
    );
    let graph = TileGraph::new(
        circuit.outline(),
        config.tile_size,
        circuit.layer_count(),
        plan,
        config.stitch_aware_capacity,
    );
    let mut state = State::new(&graph);
    let ladder = crate::CoarseningLadder::build(circuit, &graph);
    let order: Vec<usize> = ladder.order().to_vec();

    let mut routes: Vec<GlobalRoute> = vec![GlobalRoute::default(); circuit.net_count()];
    for (i, kept) in preserved.iter().enumerate() {
        if let Some(route) = kept {
            state.apply_route(&graph, route, 1, &config.cancel);
            routes[i] = route.clone();
        }
    }

    let targets: Vec<usize> = order
        .iter()
        .copied()
        .filter(|&i| preserved[i].is_none())
        .collect();
    let skipped = route_batched(circuit, &graph, &mut state, config, &targets, &mut routes);
    if skipped > 0 {
        config.cancel.record(Degradation::new(
            Stage::Global,
            DegradationKind::BudgetExhausted,
            None,
            format!("{skipped} nets left unrouted at tile level"),
        ));
    }

    negotiate(circuit, &graph, &mut state, config, &order, &mut routes);

    let metrics = compute_metrics(&graph, &state, &routes);
    let (tile_congestion, vertex_utilization) = utilization_maps(&graph, &state, &config.cancel);
    GlobalResult {
        routes,
        graph,
        metrics,
        tile_congestion,
        vertex_utilization,
    }
}

/// Negotiation rounds: penalise overflowed resources and rip up and
/// reroute the nets crossing them, up to `config.reroute_passes` times
/// or until nothing overflows.
fn negotiate(
    circuit: &Circuit,
    graph: &TileGraph,
    state: &mut State,
    config: &GlobalConfig,
    order: &[usize],
    routes: &mut [GlobalRoute],
) {
    for pass in 0..config.reroute_passes {
        if config.cancel.is_cancelled_now() {
            config.cancel.record(Degradation::new(
                Stage::Global,
                DegradationKind::BudgetExhausted,
                None,
                format!(
                    "negotiation passes {}..{} skipped",
                    pass + 1,
                    config.reroute_passes
                ),
            ));
            break;
        }
        let metrics = compute_metrics(graph, state, routes);
        if metrics.total_edge_overflow == 0 && metrics.total_vertex_overflow == 0 {
            break;
        }
        let mut h_over = vec![false; graph.h_edge_count()];
        let mut v_over = vec![false; graph.v_edge_count()];
        for (idx, over) in h_over.iter_mut().enumerate() {
            if state.h_demand[idx] > graph.h_edge_capacity(idx) {
                *over = true;
                state.h_history[idx] += 1.0;
            }
        }
        for (idx, over) in v_over.iter_mut().enumerate() {
            if state.v_demand[idx] > graph.v_edge_capacity(idx) {
                *over = true;
                state.v_history[idx] += 1.0;
            }
        }
        let mut vertex_over = vec![false; graph.tile_count()];
        if config.line_end_cost {
            for (t, over) in vertex_over.iter_mut().enumerate() {
                if state.vertex_demand[t] > graph.vertex_capacity(TileId(t as u32)) {
                    *over = true;
                    state.vertex_history[t] += 1.0;
                }
            }
        }
        let victims: Vec<usize> = order
            .iter()
            .copied()
            .filter(|&i| {
                routes[i].edges.iter().any(|&(a, b)| {
                    graph
                        .edge_between(a, b)
                        .is_some_and(|(idx, is_h)| if is_h { h_over[idx] } else { v_over[idx] })
                }) || routes[i].tiles.iter().any(|t| vertex_over[t.0 as usize])
            })
            .collect();
        if victims.is_empty() {
            break;
        }
        // Rip up every victim before rerouting any: demand removal and
        // re-addition stay paired, so a cancelled run never leaves the
        // capacity model out of sync with the routes (a victim skipped by
        // a mid-reroute cancellation keeps its empty default route).
        for &i in &victims {
            state.apply_route(graph, &routes[i], -1, &config.cancel);
            routes[i] = GlobalRoute::default();
        }
        let skipped = route_batched(circuit, graph, state, config, &victims, routes);
        if skipped > 0 {
            config.cancel.record(Degradation::new(
                Stage::Global,
                DegradationKind::BudgetExhausted,
                None,
                format!("{skipped} ripped-up nets left unrouted in pass {}", pass + 1),
            ));
        }
    }
}

/// Nets per speculative batch. Fixed (never derived from the worker
/// count) so batch membership — which *is* visible in the result, since
/// nets in one batch price congestion against the same pre-batch demand
/// — stays identical for every `--threads` value.
const NET_BATCH: usize = 32;

/// Routes `nets` (in order) in deterministic speculative batches.
///
/// Per batch, each worker routes nets against a clone of the pre-batch
/// demand state and rolls its clone back after every net; the resulting
/// routes are then committed sequentially in input order on the master
/// state. The exact same batched code path runs for every pool width —
/// a serial pool just executes the fan-out inline — so the output is a
/// pure function of the input. Returns the number of nets skipped by
/// cancellation (checked at batch boundaries; an expansion cap latches
/// at a deterministic batch since every batch charges a fixed total).
fn route_batched(
    circuit: &Circuit,
    graph: &TileGraph,
    state: &mut State,
    config: &GlobalConfig,
    nets: &[usize],
    routes: &mut [GlobalRoute],
) -> usize {
    let mut skipped = 0usize;
    for batch in nets.chunks(NET_BATCH) {
        // Cancellation takes effect at batch boundaries: a skipped net
        // keeps its empty default route (no demand charged), so the
        // capacity model stays consistent and the audit recount agrees.
        if config.cancel.is_cancelled() {
            skipped += batch.len();
            continue;
        }
        let snapshot: &State = state;
        let speculated: Vec<GlobalRoute> = config.pool.par_map_with(
            batch,
            || snapshot.clone(),
            |local, _, &net| {
                let route = route_net(circuit, net, graph, local, config);
                // Roll the worker's state back so every net in the batch
                // prices congestion against the same pre-batch demand.
                local.apply_route(graph, &route, -1, &config.cancel);
                route
            },
        );
        for (&net, route) in batch.iter().zip(speculated) {
            state.apply_route(graph, &route, 1, &config.cancel);
            routes[net] = route;
        }
    }
    skipped
}

/// Per-tile congestion and line-end utilisation maps.
fn utilization_maps(
    graph: &TileGraph,
    state: &State,
    cancel: &CancelToken,
) -> (Vec<f64>, Vec<f64>) {
    let ratio = |d: u32, c: u32| {
        if c == 0 {
            if d == 0 { 0.0 } else { f64::INFINITY }
        } else {
            f64::from(d) / f64::from(c)
        }
    };
    let mut congestion = vec![0.0f64; graph.tile_count()];
    for t in 0..graph.tile_count() as u32 {
        let tile = TileId(t);
        let mut worst = 0.0f64;
        for n in graph.neighbors(tile) {
            let Some((idx, is_h)) = graph.edge_between(tile, n) else {
                // Neighbors are adjacent by construction; a miss means the
                // tile graph disagrees with itself, so surface it.
                cancel.record(Degradation::new(
                    Stage::Global,
                    DegradationKind::InternalFallback,
                    None,
                    format!("congestion map skipped edge {tile:?}-{n:?}"),
                ));
                continue;
            };
            let u = if is_h {
                ratio(state.h_demand[idx], graph.h_edge_capacity(idx))
            } else {
                ratio(state.v_demand[idx], graph.v_edge_capacity(idx))
            };
            worst = worst.max(u);
        }
        congestion[t as usize] = worst;
    }
    let vertex = (0..graph.tile_count() as u32)
        .map(|t| ratio(state.vertex_demand[t as usize], graph.vertex_capacity(TileId(t))))
        .collect();
    (congestion, vertex)
}

fn compute_metrics(graph: &TileGraph, state: &State, routes: &[GlobalRoute]) -> GlobalMetrics {
    let mut m = GlobalMetrics::default();
    for idx in 0..graph.h_edge_count() {
        let over = state.h_demand[idx].saturating_sub(graph.h_edge_capacity(idx));
        m.total_edge_overflow += u64::from(over);
        m.max_edge_overflow = m.max_edge_overflow.max(over);
    }
    for idx in 0..graph.v_edge_count() {
        let over = state.v_demand[idx].saturating_sub(graph.v_edge_capacity(idx));
        m.total_edge_overflow += u64::from(over);
        m.max_edge_overflow = m.max_edge_overflow.max(over);
    }
    for t in 0..graph.tile_count() {
        let over =
            state.vertex_demand[t].saturating_sub(graph.vertex_capacity(TileId(t as u32)));
        m.total_vertex_overflow += u64::from(over);
        m.max_vertex_overflow = m.max_vertex_overflow.max(over);
    }
    m.wirelength = routes
        .iter()
        .map(|r| r.edge_count() as u64 * graph.tile_size() as u64)
        .sum();
    m
}

/// Routes one net: MST decomposition over pin tiles, then multi-source A\*
/// per connection with the Ψ(P) cost of eq. (3).
fn route_net(
    circuit: &Circuit,
    net_idx: usize,
    graph: &TileGraph,
    state: &mut State,
    config: &GlobalConfig,
) -> GlobalRoute {
    let net = &circuit.nets()[net_idx];
    let mut pin_tiles: Vec<TileId> = net
        .pins()
        .iter()
        .map(|p| graph.tile_of(p.position))
        .collect();
    pin_tiles.sort_unstable();
    pin_tiles.dedup();

    let mut route = GlobalRoute {
        tiles: vec![pin_tiles[0]],
        edges: Vec::new(),
    };
    if pin_tiles.len() == 1 {
        return route;
    }

    // Greedy nearest-target order (Prim-style MST decomposition).
    let mut remaining: Vec<TileId> = pin_tiles[1..].to_vec();
    while !remaining.is_empty() {
        // Pick the remaining pin tile nearest to the current tree. A plain
        // fold (first minimum wins, matching `min_by_key`) keeps this total
        // without an `Option` or a sentinel distance: `route.tiles` and
        // `remaining` are both non-empty here by construction.
        let mut pos = 0usize;
        let mut best = u32::MAX;
        for (i, &t) in remaining.iter().enumerate() {
            let d = route
                .tiles
                .iter()
                .map(|&s| tile_dist(graph, s, t))
                .fold(u32::MAX, u32::min);
            if d < best {
                best = d;
                pos = i;
            }
        }
        let target = remaining.swap_remove(pos);
        if route.tiles.contains(&target) {
            continue;
        }
        let path = astar_tiles(graph, state, config, &route.tiles, target);
        for pair in path.windows(2) {
            let (a, b) = (pair[0], pair[1]);
            let e = (a.min(b), a.max(b));
            if !route.edges.contains(&e) {
                route.edges.push(e);
                // Path steps are adjacent by construction.
                if let Some((idx, is_h)) = graph.edge_between(a, b) {
                    if is_h {
                        state.h_demand[idx] += 1;
                    } else {
                        state.v_demand[idx] += 1;
                    }
                }
            }
            if !route.tiles.contains(&b) {
                route.tiles.push(b);
            }
        }
    }
    route.tiles.sort_unstable();
    route.tiles.dedup();
    route.edges.sort_unstable();

    // Line-end demand: both terminals of every vertical run.
    for run in route.runs(graph) {
        if run.horizontal {
            continue;
        }
        for row in [run.lo, run.hi] {
            let t = graph.tile_at(run.fixed, row);
            state.vertex_demand[t.0 as usize] += 1;
        }
    }
    route
}

fn tile_dist(graph: &TileGraph, a: TileId, b: TileId) -> u32 {
    let (ac, ar) = graph.tile_coords(a);
    let (bc, br) = graph.tile_coords(b);
    ac.abs_diff(bc) + ar.abs_diff(br)
}

/// Fixed-point scale (heap units per pitch) for f64 weights in the
/// binary heap; integer cost arithmetic downstream is saturating.
const FIXED_POINT_SCALE: f64 = 1024.0;

/// Ceiling on a single edge's congestion cost before fixed-point
/// conversion. `ψ` is exponential in demand/capacity, so near-capacity
/// demand can push a step cost to infinity; an unbounded `as u64` cast
/// would saturate to `u64::MAX` and poison every accumulated path cost
/// downstream of the edge. Clamping keeps blocked edges astronomically
/// expensive (≫ any real path) while total costs stay far from overflow:
/// even a million-edge path of clamped steps sums to ~1e15, four orders
/// of magnitude under `u64::MAX`.
const MAX_STEP_COST: f64 = 1.0e9;

/// Converts an f64 step cost to saturating fixed-point heap units.
fn fixed_cost(step: f64) -> u64 {
    (step.clamp(0.0, MAX_STEP_COST) * FIXED_POINT_SCALE) as u64
}

/// Multi-source A\* over the tile graph from the net's current tree to
/// `target`. Returns the tile path from a tree tile to the target.
fn astar_tiles(
    graph: &TileGraph,
    state: &State,
    config: &GlobalConfig,
    sources: &[TileId],
    target: TileId,
) -> Vec<TileId> {
    let n = graph.tile_count();
    let mut dist = vec![u64::MAX; n];
    let mut prev = vec![u32::MAX; n];
    let mut heap: BinaryHeap<Reverse<(u64, u32)>> = BinaryHeap::new();
    let h = |t: TileId| -> u64 { (tile_dist(graph, t, target) as f64 * FIXED_POINT_SCALE) as u64 };

    for &s in sources {
        dist[s.0 as usize] = 0;
        heap.push(Reverse((h(s), s.0)));
    }
    while let Some(Reverse((_, u))) = heap.pop() {
        let ut = TileId(u);
        if ut == target {
            break;
        }
        // Charge the pop against the run's expansion budget. Global A*
        // never aborts mid-search — an interrupted search would leave a
        // half-built `prev` chain — so the cancellation this may latch
        // takes effect at the next net boundary in `route_circuit`.
        config.cancel.charge_expansions(1);
        let du = dist[u as usize];
        for v in graph.neighbors(ut) {
            let Some((idx, is_h)) = graph.edge_between(ut, v) else {
                // Neighbors are adjacent by construction; surface the
                // inconsistency instead of silently skipping the edge.
                config.cancel.record(Degradation::new(
                    Stage::Global,
                    DegradationKind::InternalFallback,
                    None,
                    format!("search skipped edge {ut:?}-{v:?}"),
                ));
                continue;
            };
            let (cap, dem, hist) = if is_h {
                (
                    graph.h_edge_capacity(idx),
                    state.h_demand[idx],
                    state.h_history[idx],
                )
            } else {
                (
                    graph.v_edge_capacity(idx),
                    state.v_demand[idx],
                    state.v_history[idx],
                )
            };
            // Prospective congestion of taking this edge (demand + 1).
            let mut step = 1.0 + psi(dem + 1, cap) + hist;
            // Vertex (line-end) cost ψv of eq. (2): charged on vertical
            // moves — the moves whose endpoints can deposit the line ends
            // that dv counts — so a crowded tile can still be entered
            // horizontally for free and the router steers final approaches
            // accordingly (Fig. 7(b), segment C).
            if config.line_end_cost && !is_h {
                step += psi(
                    state.vertex_demand[v.0 as usize] + 1,
                    graph.vertex_capacity(v),
                ) + state.vertex_history[v.0 as usize];
            }
            let nd = du.saturating_add(fixed_cost(step));
            if nd < dist[v.0 as usize] {
                dist[v.0 as usize] = nd;
                prev[v.0 as usize] = u;
                heap.push(Reverse((nd.saturating_add(h(v)), v.0)));
            }
        }
    }

    // Reconstruct from target back to a source.
    let mut path = vec![target];
    let mut cur = target.0;
    while prev[cur as usize] != u32::MAX {
        cur = prev[cur as usize];
        path.push(TileId(cur));
    }
    path.reverse();
    debug_assert!(sources.contains(&path[0]), "path must start at the tree");
    path
}

#[cfg(test)]
mod tests {
    use super::*;
    use mebl_geom::{Layer, Point, Rect};
    use mebl_netlist::{Circuit, Net, Pin};
    use mebl_stitch::{StitchConfig, StitchPlan};

    fn pin(x: i32, y: i32) -> Pin {
        Pin::new(Point::new(x, y), Layer::new(0))
    }

    fn tiny_circuit(nets: Vec<Net>) -> (Circuit, StitchPlan) {
        let outline = Rect::new(0, 0, 89, 59);
        let plan = StitchPlan::new(outline, StitchConfig::default());
        (Circuit::new("t", outline, 3, nets), plan)
    }

    #[test]
    fn local_net_occupies_one_tile() {
        let (c, plan) = tiny_circuit(vec![Net::new("a", vec![pin(1, 1), pin(3, 4)])]);
        let res = route_circuit(&c, &plan, &GlobalConfig::default());
        assert_eq!(res.routes[0].tiles.len(), 1);
        assert!(res.routes[0].edges.is_empty());
    }

    #[test]
    fn two_pin_net_connects_its_tiles() {
        let (c, plan) = tiny_circuit(vec![Net::new("a", vec![pin(1, 1), pin(80, 50)])]);
        let res = route_circuit(&c, &plan, &GlobalConfig::default());
        let r = &res.routes[0];
        // Path between tile (0,0) and tile (5,3): at least 8 edges.
        assert!(r.edges.len() >= 8, "edges: {}", r.edges.len());
        let t0 = res.graph.tile_of(Point::new(1, 1));
        let t1 = res.graph.tile_of(Point::new(80, 50));
        assert!(r.tiles.contains(&t0) && r.tiles.contains(&t1));
        assert_route_connected(r);
    }

    #[test]
    fn multi_pin_net_forms_connected_tree() {
        let (c, plan) = tiny_circuit(vec![Net::new(
            "a",
            vec![pin(1, 1), pin(80, 5), pin(40, 55), pin(85, 58)],
        )]);
        let res = route_circuit(&c, &plan, &GlobalConfig::default());
        assert_route_connected(&res.routes[0]);
    }

    fn assert_route_connected(r: &GlobalRoute) {
        if r.tiles.len() <= 1 {
            return;
        }
        let mut uf = mebl_graph_lite::UnionFindLite::new(r.tiles.len());
        let index = |t: TileId| r.tiles.binary_search(&t).expect("tile in route");
        for &(a, b) in &r.edges {
            uf.union(index(a), index(b));
        }
        let root = uf.find(0);
        for i in 1..r.tiles.len() {
            assert_eq!(uf.find(i), root, "route not connected");
        }
    }

    /// Minimal local union-find to avoid a dev-dependency cycle.
    mod mebl_graph_lite {
        pub struct UnionFindLite {
            parent: Vec<usize>,
        }
        impl UnionFindLite {
            pub fn new(n: usize) -> Self {
                Self {
                    parent: (0..n).collect(),
                }
            }
            pub fn find(&mut self, x: usize) -> usize {
                if self.parent[x] != x {
                    let r = self.find(self.parent[x]);
                    self.parent[x] = r;
                }
                self.parent[x]
            }
            pub fn union(&mut self, a: usize, b: usize) {
                let (ra, rb) = (self.find(a), self.find(b));
                self.parent[ra] = rb;
            }
        }
    }

    #[test]
    fn runs_decompose_l_shaped_route() {
        let (c, plan) = tiny_circuit(vec![Net::new("a", vec![pin(1, 1), pin(80, 50)])]);
        let res = route_circuit(&c, &plan, &GlobalConfig::default());
        let runs = res.routes[0].runs(&res.graph);
        assert!(!runs.is_empty());
        // Total run length equals edge count.
        let total: u32 = runs.iter().map(|r| r.hi - r.lo).sum();
        assert_eq!(total as usize, res.routes[0].edges.len());
        for r in &runs {
            assert!(r.hi > r.lo);
        }
    }

    #[test]
    fn line_end_cost_reduces_vertex_overflow() {
        // Many vertical connections terminating in the same tile column.
        let mut nets = Vec::new();
        for i in 0..40 {
            let x = 16 + (i % 3);
            nets.push(Net::new(
                format!("n{i}"),
                vec![pin(x, 1 + (i % 10)), pin(x + (i % 2), 40 + (i % 15))],
            ));
        }
        let (c, plan) = tiny_circuit(nets);
        let aware = route_circuit(&c, &plan, &GlobalConfig::default());
        let blind = route_circuit(
            &c,
            &plan,
            &GlobalConfig {
                line_end_cost: false,
                ..GlobalConfig::default()
            },
        );
        assert!(
            aware.metrics.total_vertex_overflow <= blind.metrics.total_vertex_overflow,
            "aware {} vs blind {}",
            aware.metrics.total_vertex_overflow,
            blind.metrics.total_vertex_overflow
        );
    }

    #[test]
    fn wirelength_accounts_tile_size() {
        let (c, plan) = tiny_circuit(vec![Net::new("a", vec![pin(1, 1), pin(80, 1)])]);
        let res = route_circuit(&c, &plan, &GlobalConfig::default());
        assert_eq!(
            res.metrics.wirelength,
            res.routes[0].edges.len() as u64 * 15
        );
    }

    #[test]
    fn step_cost_saturates_instead_of_poisoning() {
        // ψ is exponential: near-capacity demand overflows f64 to +inf.
        let blocked = psi(u32::MAX - 1, 1);
        assert!(blocked.is_infinite());
        let c = fixed_cost(blocked + 1.0);
        // The fixed-point cost stays finite and far below u64::MAX, so
        // accumulating it along a path can never wrap the total cost.
        assert!(c < u64::MAX / 1_000_000, "cost {c} too close to u64::MAX");
        assert_eq!(c, fixed_cost(f64::INFINITY));
        assert_eq!(fixed_cost(-1.0), 0);
        assert_eq!(fixed_cost(2.5), 2560);
    }

    #[test]
    fn near_capacity_demand_still_routes_without_overflow() {
        // Saturate every edge close to the u32 demand ceiling and route
        // across the whole graph: before the saturating-cost fix this
        // overflowed the accumulated path cost (debug panic / release
        // wraparound that made blocked edges look free).
        let outline = Rect::new(0, 0, 89, 59);
        let plan = StitchPlan::new(outline, StitchConfig::default());
        let config = GlobalConfig::default();
        let graph = TileGraph::new(outline, config.tile_size, 3, &plan, true);
        let mut state = State::new(&graph);
        for d in &mut state.h_demand {
            *d = u32::MAX - 1;
        }
        for d in &mut state.v_demand {
            *d = u32::MAX - 1;
        }
        for d in &mut state.vertex_demand {
            *d = u32::MAX - 1;
        }
        let src = graph.tile_of(Point::new(1, 1));
        let dst = graph.tile_of(Point::new(88, 58));
        let path = astar_tiles(&graph, &state, &config, &[src], dst);
        assert_eq!(path.first(), Some(&src));
        assert_eq!(path.last(), Some(&dst));
        // Manhattan-shortest through a uniformly blocked graph: the clamp
        // keeps costs ordered, so the path cannot wander.
        let expected = tile_dist(&graph, src, dst) as usize + 1;
        assert_eq!(path.len(), expected);
    }

    #[test]
    fn cancelled_token_skips_remaining_nets_consistently() {
        let (c, plan) = tiny_circuit(vec![
            Net::new("a", vec![pin(1, 1), pin(80, 50)]),
            Net::new("b", vec![pin(5, 50), pin(85, 2)]),
        ]);
        let config = GlobalConfig {
            cancel: CancelToken::armed(None, None),
            ..GlobalConfig::default()
        };
        config.cancel.cancel();
        let res = route_circuit(&c, &plan, &config);
        // Every net skipped: empty routes, zero demand, consistent metrics.
        assert!(res.routes.iter().all(|r| r.tiles.is_empty() && r.edges.is_empty()));
        assert_eq!(res.metrics.wirelength, 0);
        let events = config.cancel.take_degradations();
        assert!(events
            .iter()
            .any(|d| d.kind == DegradationKind::BudgetExhausted && d.stage == Stage::Global));
    }

    #[test]
    fn incremental_with_all_preserved_matches_scratch() {
        let (c, plan) = tiny_circuit(vec![
            Net::new("a", vec![pin(1, 1), pin(80, 50)]),
            Net::new("b", vec![pin(5, 50), pin(85, 2)]),
        ]);
        let full = route_circuit(&c, &plan, &GlobalConfig::default());
        let all: Vec<Option<GlobalRoute>> = full.routes.iter().cloned().map(Some).collect();
        let inc = route_incremental(&c, &plan, &GlobalConfig::default(), &all);
        assert_eq!(inc.routes, full.routes);
        assert_eq!(inc.metrics, full.metrics);

        let mut partial = all;
        partial[0] = None;
        let inc = route_incremental(&c, &plan, &GlobalConfig::default(), &partial);
        assert_eq!(inc.routes[1], full.routes[1]);
        assert!(!inc.routes[0].tiles.is_empty());
        assert_route_connected(&inc.routes[0]);
    }

    #[test]
    fn deterministic() {
        let (c, plan) = tiny_circuit(vec![
            Net::new("a", vec![pin(1, 1), pin(80, 50)]),
            Net::new("b", vec![pin(5, 50), pin(85, 2)]),
        ]);
        let r1 = route_circuit(&c, &plan, &GlobalConfig::default());
        let r2 = route_circuit(&c, &plan, &GlobalConfig::default());
        assert_eq!(r1.routes, r2.routes);
    }
}
