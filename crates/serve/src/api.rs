//! The service's wire schema: job request parsing, canonical cache-key
//! derivation, and the response encoders shared by the daemon and the
//! CLI's `--json` output.
//!
//! One schema, two transports: `mebl serve` speaks it over HTTP and
//! `mebl route --json` / `mebl audit --json` print the identical
//! response object to stdout. The only difference is timing — the CLI
//! includes `elapsed_ms`, the server never does, because server bodies
//! are cached and must be byte-identical across cold and warm runs
//! (wall-clock fields would break that contract).

use crate::cache::{fnv1a, fnv1a_extend};
use crate::json::Json;
use mebl_audit::{AuditReport, FindingKind};
use mebl_netlist::{BenchmarkSpec, Circuit, GenerateConfig};
use mebl_route::{
    Degradation, DegradationKind, Pool, RouteReport, RouterConfig, RoutingOutcome, RunBudget,
};
use std::time::Duration;

/// Which routing preset a job runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mode {
    /// The paper's full stitch-aware flow.
    StitchAware,
    /// The conventional baseline flow of Table III.
    Baseline,
}

impl Mode {
    /// Canonical wire name.
    pub fn name(self) -> &'static str {
        match self {
            Mode::StitchAware => "stitch-aware",
            Mode::Baseline => "baseline",
        }
    }
}

/// A parsed `/route` or `/audit` job payload.
///
/// The circuit arrives either inline (`circuit`: full netlist text) or
/// as a generator reference (`bench` + `seed` + `scale`). Unknown keys
/// are rejected: the canonical cache key covers every field, so a
/// silently-ignored field would alias distinct requests onto one cache
/// entry.
#[derive(Debug, Clone, PartialEq)]
pub struct JobRequest {
    /// Inline circuit text, when given.
    pub circuit: Option<String>,
    /// Benchmark name, when generating.
    pub bench: Option<String>,
    /// Generator seed (`bench` payloads only).
    pub seed: u64,
    /// Generator net scale (`bench` payloads only).
    pub scale: f64,
    /// Routing preset.
    pub mode: Mode,
    /// Stitch/tile period override.
    pub period: Option<i32>,
    /// Wall-clock budget in milliseconds.
    pub budget_ms: Option<u64>,
    /// Search-expansion cap.
    pub max_expansions: Option<u64>,
    /// Worker threads for the routing pool (output is bit-identical at
    /// every value, so this is excluded from the cache key).
    pub threads: usize,
    /// Sharded panel routing: split the circuit at stitch boundaries
    /// and route the panels over a pool this wide. Whether a job is
    /// sharded changes its output (the sharded pipeline is its own
    /// deterministic algorithm), so the *flag* enters the cache key —
    /// but like `threads`, the shard *count* is output-invisible and
    /// stays out of it.
    pub shards: Option<usize>,
    /// Audit strictness (warnings fail the audit) — `/audit` only.
    pub strict: bool,
}

impl Default for JobRequest {
    fn default() -> Self {
        Self {
            circuit: None,
            bench: None,
            seed: GenerateConfig::default().seed,
            scale: 1.0,
            mode: Mode::StitchAware,
            period: None,
            budget_ms: None,
            max_expansions: None,
            threads: 1,
            shards: None,
            strict: false,
        }
    }
}

impl JobRequest {
    /// Parses a job payload from a decoded JSON document.
    pub fn from_json(value: &Json) -> Result<JobRequest, String> {
        let Json::Obj(pairs) = value else {
            return Err("payload must be a JSON object".into());
        };
        let mut req = JobRequest::default();
        for (key, v) in pairs {
            match key.as_str() {
                "circuit" => {
                    req.circuit =
                        Some(v.as_str().ok_or("`circuit` must be a string")?.to_string());
                }
                "bench" => {
                    req.bench = Some(v.as_str().ok_or("`bench` must be a string")?.to_string());
                }
                "seed" => req.seed = v.as_u64().ok_or("`seed` must be a non-negative integer")?,
                "scale" => {
                    let s = v.as_f64().ok_or("`scale` must be a number")?;
                    if !(s.is_finite() && s > 0.0 && s <= 1.0) {
                        return Err("`scale` must be in (0, 1]".into());
                    }
                    req.scale = s;
                }
                "mode" => {
                    req.mode = match v.as_str() {
                        Some("stitch-aware") => Mode::StitchAware,
                        Some("baseline") => Mode::Baseline,
                        _ => return Err("`mode` must be \"stitch-aware\" or \"baseline\"".into()),
                    };
                }
                "period" => {
                    let p = v.as_i64().ok_or("`period` must be an integer")?;
                    if p <= 1 || p > i64::from(i32::MAX) {
                        return Err("`period` must be > 1".into());
                    }
                    req.period = Some(p as i32);
                }
                "budget_ms" => {
                    req.budget_ms =
                        Some(v.as_u64().ok_or("`budget_ms` must be a non-negative integer")?);
                }
                "max_expansions" => {
                    req.max_expansions = Some(
                        v.as_u64()
                            .ok_or("`max_expansions` must be a non-negative integer")?,
                    );
                }
                "threads" => {
                    let t = v.as_u64().ok_or("`threads` must be a positive integer")?;
                    if t == 0 || t > 256 {
                        return Err("`threads` must be in 1..=256".into());
                    }
                    req.threads = t as usize;
                }
                "shards" => {
                    let s = v.as_u64().ok_or("`shards` must be a positive integer")?;
                    if s == 0 || s > 256 {
                        return Err("`shards` must be in 1..=256".into());
                    }
                    req.shards = Some(s as usize);
                }
                "strict" => req.strict = v.as_bool().ok_or("`strict` must be a boolean")?,
                other => return Err(format!("unknown field `{other}`")),
            }
        }
        match (&req.circuit, &req.bench) {
            (None, None) => Err("payload needs `circuit` text or a `bench` name".into()),
            (Some(_), Some(_)) => Err("give `circuit` or `bench`, not both".into()),
            _ => Ok(req),
        }
    }

    /// Materializes the circuit this request describes.
    ///
    /// `Err` carries `(kind, detail)` where kind is the typed error
    /// class (`unknown-bench` maps to 400, `invalid-circuit` to 422 —
    /// the caller decides the status).
    pub fn resolve_circuit(&self) -> Result<(String, Circuit), (&'static str, String)> {
        if let Some(text) = &self.circuit {
            let circuit = mebl_netlist::circuit_from_str(text)
                .map_err(|e| ("invalid-circuit", e.to_string()))?;
            return Ok((text.clone(), circuit));
        }
        let name = self.bench.as_deref().unwrap_or_default();
        let spec = BenchmarkSpec::by_name(name)
            .ok_or_else(|| ("unknown-bench", format!("unknown benchmark `{name}`")))?;
        let circuit = spec.generate(&GenerateConfig {
            seed: self.seed,
            net_scale: self.scale,
            ..GenerateConfig::default()
        });
        Ok((mebl_netlist::circuit_to_string(&circuit), circuit))
    }

    /// The run budget this request asks for, falling back to the
    /// server-wide default when the request sets no bound of its own.
    pub fn budget(&self, default_budget: RunBudget) -> RunBudget {
        if self.budget_ms.is_none() && self.max_expansions.is_none() {
            return default_budget;
        }
        RunBudget {
            time: self.budget_ms.map(Duration::from_millis),
            stage_time: None,
            max_expansions: self.max_expansions,
        }
    }

    /// Builds the router configuration for this job.
    pub fn router_config(&self, default_budget: RunBudget) -> RouterConfig {
        let mut config = match self.mode {
            Mode::StitchAware => RouterConfig::stitch_aware(),
            Mode::Baseline => RouterConfig::baseline(),
        };
        if let Some(p) = self.period {
            config.stitch.period = p;
            config.global.tile_size = p;
        }
        config.budget = self.budget(default_budget);
        config.pool = Pool::new(self.threads);
        config
    }

    /// The sharded-run options for this job, when `shards` is set.
    pub fn shard_options(&self, default_budget: RunBudget) -> Option<mebl_shard::ShardOptions> {
        self.shards.map(|shards| mebl_shard::ShardOptions {
            baseline: self.mode == Mode::Baseline,
            period: self.period,
            shards,
            budget: self.budget(default_budget),
        })
    }

    /// The canonical cache key: FNV-1a over the circuit bytes chained
    /// with a canonical rendering of every result-affecting field plus
    /// the endpoint.
    ///
    /// `threads` is deliberately excluded — the determinism contract
    /// makes it output-invisible — and the *resolved* budget is used so
    /// a request relying on the server default keys the same as one
    /// spelling that default out.
    pub fn cache_key(&self, endpoint: &str, circuit_text: &str, default_budget: RunBudget) -> u64 {
        let budget = self.budget(default_budget);
        let mut canonical = format!(
            "endpoint={endpoint};mode={};period={:?};time_ms={:?};stage_ms={:?};exp={:?};strict={}",
            self.mode.name(),
            self.period,
            budget.time.map(|d| d.as_millis()),
            budget.stage_time.map(|d| d.as_millis()),
            budget.max_expansions,
            self.strict,
        );
        // Appended only when set, so every pre-shard cache key (and
        // persisted store record) stays valid.
        if self.shards.is_some() {
            canonical.push_str(";sharded=true");
        }
        fnv1a_extend(fnv1a(circuit_text.bytes()), canonical.bytes())
    }
}

/// Encodes a [`RouteReport`] (timing included only when asked — server
/// bodies must stay wall-clock-free).
pub fn report_to_json(report: &RouteReport, include_timing: bool) -> Json {
    let mut pairs = vec![
        ("total_nets", Json::Int(report.total_nets as i64)),
        ("routed_nets", Json::Int(report.routed_nets as i64)),
        ("routability", Json::Float(report.routability())),
        ("via_violations", Json::Int(report.via_violations as i64)),
        (
            "via_violations_off_pin",
            Json::Int(report.via_violations_off_pin as i64),
        ),
        (
            "vertical_violations",
            Json::Int(report.vertical_violations as i64),
        ),
        ("short_polygons", Json::Int(report.short_polygons as i64)),
        ("wirelength", Json::Int(report.wirelength as i64)),
        ("vias", Json::Int(report.vias as i64)),
    ];
    if include_timing {
        pairs.push((
            "elapsed_ms",
            Json::Float(report.elapsed.as_secs_f64() * 1e3),
        ));
    }
    Json::obj(pairs)
}

/// Stable wire identifier of a degradation kind.
///
/// Byte-identical to the `Display` impl in `mebl-control` — the wire
/// format is frozen — but spelled as an exhaustive match so adding a
/// variant forces this encoder (and the wire docs) to be revisited.
fn degradation_kind_code(kind: DegradationKind) -> &'static str {
    match kind {
        DegradationKind::BudgetExhausted => "budget-exhausted",
        DegradationKind::InternalFallback => "internal-fallback",
        DegradationKind::ValidationWarning => "validation-warning",
        DegradationKind::SearchExhausted => "search-exhausted",
    }
}

/// Stable kebab-case wire code of an audit finding kind (the `code`
/// field of `/audit` findings; the `kind` field keeps the historical
/// PascalCase spelling).
fn finding_kind_code(kind: FindingKind) -> &'static str {
    match kind {
        FindingKind::PinNotCovered => "pin-not-covered",
        FindingKind::DisconnectedNet => "disconnected-net",
        FindingKind::SegmentOutsideOutline => "segment-outside-outline",
        FindingKind::SegmentLayerOutOfStack => "segment-layer-out-of-stack",
        FindingKind::DegenerateSegment => "degenerate-segment",
        FindingKind::ViaOutsideOutline => "via-outside-outline",
        FindingKind::ViaLayerOutOfStack => "via-layer-out-of-stack",
        FindingKind::GeometryOnBlockage => "geometry-on-blockage",
        FindingKind::OffPinViaOnLine => "off-pin-via-on-line",
        FindingKind::VerticalRideOnLine => "vertical-ride-on-line",
        FindingKind::ViaViolationMismatch => "via-violation-mismatch",
        FindingKind::OffPinViaMismatch => "off-pin-via-mismatch",
        FindingKind::VerticalRideMismatch => "vertical-ride-mismatch",
        FindingKind::ShortPolygonMismatch => "short-polygon-mismatch",
        FindingKind::WirelengthMismatch => "wirelength-mismatch",
        FindingKind::ViaCountMismatch => "via-count-mismatch",
        FindingKind::ReportFieldMismatch => "report-field-mismatch",
        FindingKind::RoutedFlagMismatch => "routed-flag-mismatch",
        FindingKind::CapacityModelMismatch => "capacity-model-mismatch",
        FindingKind::GlobalMetricsMismatch => "global-metrics-mismatch",
        FindingKind::EdgeOverflow => "edge-overflow",
        FindingKind::VertexOverflow => "vertex-overflow",
    }
}

fn degradations_to_json(degradations: &[Degradation]) -> Json {
    Json::Arr(
        degradations
            .iter()
            .map(|d| {
                Json::obj(vec![
                    ("stage", Json::Str(d.stage.to_string())),
                    ("kind", Json::Str(degradation_kind_code(d.kind).to_string())),
                    (
                        "net",
                        d.net.map_or(Json::Null, |n| Json::Int(n as i64)),
                    ),
                    ("detail", Json::Str(d.detail.clone())),
                ])
            })
            .collect(),
    )
}

/// The `/route/outcome` success body: the routed outcome in the
/// canonical `meblout` text format (wall-clock-free, embeds the
/// circuit, round-trips byte-identically through
/// `mebl_delta::outcome_from_str`). This is the wire vehicle the
/// coordinator uses to collect panel fragments from workers.
pub fn outcome_response_json(
    circuit_name: &str,
    mode: Mode,
    circuit: &Circuit,
    outcome: &RoutingOutcome,
) -> Json {
    let saved = mebl_delta::SavedOutcome {
        circuit: circuit.clone(),
        outcome: outcome.clone(),
        baseline: mode == Mode::Baseline,
    };
    Json::obj(vec![
        (
            "status",
            Json::Str(
                if outcome.is_degraded() {
                    "degraded"
                } else {
                    "ok"
                }
                .to_string(),
            ),
        ),
        ("circuit", Json::Str(circuit_name.to_string())),
        ("mode", Json::Str(mode.name().to_string())),
        (
            "outcome",
            Json::Str(mebl_delta::outcome_to_string(&saved)),
        ),
    ])
}

/// The `/route` success body (also `mebl route --json`).
pub fn route_response_json(
    circuit_name: &str,
    mode: Mode,
    outcome: &RoutingOutcome,
    include_timing: bool,
) -> Json {
    Json::obj(vec![
        (
            "status",
            Json::Str(
                if outcome.is_degraded() {
                    "degraded"
                } else {
                    "ok"
                }
                .to_string(),
            ),
        ),
        ("circuit", Json::Str(circuit_name.to_string())),
        ("mode", Json::Str(mode.name().to_string())),
        ("report", report_to_json(&outcome.report, include_timing)),
        ("degradations", degradations_to_json(&outcome.degradations)),
    ])
}

/// The `/audit` success body (also `mebl audit --json`).
pub fn audit_response_json(
    circuit_name: &str,
    mode: Mode,
    outcome: &RoutingOutcome,
    audit: &AuditReport,
    strict: bool,
    include_timing: bool,
) -> Json {
    let errors = audit.error_count();
    let warnings = audit.warning_count();
    let failed = errors > 0 || (strict && warnings > 0);
    let findings: Vec<Json> = audit
        .findings
        .iter()
        .map(|f| {
            Json::obj(vec![
                (
                    "severity",
                    Json::Str(format!("{:?}", f.severity()).to_ascii_lowercase()),
                ),
                ("kind", Json::Str(format!("{:?}", f.kind))),
                ("code", Json::Str(finding_kind_code(f.kind).to_string())),
                ("net", f.net.map_or(Json::Null, |n| Json::Int(i64::from(n.0)))),
                ("detail", Json::Str(f.to_string())),
            ])
        })
        .collect();
    Json::obj(vec![
        (
            "status",
            Json::Str(
                if failed {
                    "failed"
                } else if outcome.is_degraded() {
                    "degraded"
                } else {
                    "ok"
                }
                .to_string(),
            ),
        ),
        ("circuit", Json::Str(circuit_name.to_string())),
        ("mode", Json::Str(mode.name().to_string())),
        ("strict", Json::Bool(strict)),
        ("errors", Json::Int(errors as i64)),
        ("warnings", Json::Int(warnings as i64)),
        ("nets_audited", Json::Int(audit.nets_audited as i64)),
        ("report", report_to_json(&outcome.report, include_timing)),
        ("findings", Json::Arr(findings)),
        ("degradations", degradations_to_json(&outcome.degradations)),
    ])
}

/// A typed error body: `{"error":{"kind":...,"detail":...}}`.
pub fn error_json(kind: &str, detail: &str) -> Json {
    Json::obj(vec![(
        "error",
        Json::obj(vec![
            ("kind", Json::Str(kind.to_string())),
            ("detail", Json::Str(detail.to_string())),
        ]),
    )])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::parse;

    fn req(text: &str) -> Result<JobRequest, String> {
        JobRequest::from_json(&parse(text).unwrap())
    }

    #[test]
    fn parses_bench_payload_with_defaults() {
        let r = req(r#"{"bench":"S5378","seed":3}"#).unwrap();
        assert_eq!(r.bench.as_deref(), Some("S5378"));
        assert_eq!(r.seed, 3);
        assert_eq!(r.mode, Mode::StitchAware);
        assert_eq!(r.threads, 1);
        assert!(r.circuit.is_none());
    }

    #[test]
    fn rejects_bad_payloads() {
        assert!(req(r#"{}"#).is_err());
        assert!(req(r#"{"bench":"S5378","circuit":"x"}"#).is_err());
        assert!(req(r#"{"bench":"S5378","mystery":1}"#).is_err());
        assert!(req(r#"{"bench":"S5378","mode":"quantum"}"#).is_err());
        assert!(req(r#"{"bench":"S5378","scale":0}"#).is_err());
        assert!(req(r#"{"bench":"S5378","period":1}"#).is_err());
        assert!(req(r#"{"bench":"S5378","threads":0}"#).is_err());
        assert!(req(r#"[1,2,3]"#).is_err());
    }

    #[test]
    fn unknown_bench_is_typed() {
        let r = req(r#"{"bench":"NOPE"}"#).unwrap();
        let err = r.resolve_circuit().unwrap_err();
        assert_eq!(err.0, "unknown-bench");
    }

    #[test]
    fn inline_circuit_must_parse() {
        let r = req(r#"{"circuit":"complete garbage"}"#).unwrap();
        assert_eq!(r.resolve_circuit().unwrap_err().0, "invalid-circuit");
    }

    #[test]
    fn cache_key_covers_config_but_not_threads() {
        let a = req(r#"{"bench":"S5378"}"#).unwrap();
        let b = req(r#"{"bench":"S5378","threads":4}"#).unwrap();
        let c = req(r#"{"bench":"S5378","period":40}"#).unwrap();
        let unlimited = RunBudget::unlimited();
        assert_eq!(
            a.cache_key("route", "text", unlimited),
            b.cache_key("route", "text", unlimited)
        );
        assert_ne!(
            a.cache_key("route", "text", unlimited),
            c.cache_key("route", "text", unlimited)
        );
        assert_ne!(
            a.cache_key("route", "text", unlimited),
            a.cache_key("audit", "text", unlimited)
        );
        assert_ne!(
            a.cache_key("route", "text", unlimited),
            a.cache_key("route", "other", unlimited)
        );
        // Spelling out the server default keys identically to omitting it.
        let spelled = req(r#"{"bench":"S5378","budget_ms":250}"#).unwrap();
        let default = RunBudget::with_time(Duration::from_millis(250));
        assert_eq!(
            a.cache_key("route", "text", default),
            spelled.cache_key("route", "text", default)
        );
    }

    #[test]
    fn router_config_mirrors_request() {
        let r = req(r#"{"bench":"S5378","mode":"baseline","period":44,"threads":2,"max_expansions":9}"#)
            .unwrap();
        let config = r.router_config(RunBudget::unlimited());
        assert_eq!(config.stitch.period, 44);
        assert_eq!(config.global.tile_size, 44);
        assert_eq!(config.pool.workers(), 2);
        assert_eq!(config.budget.max_expansions, Some(9));
    }

    #[test]
    fn error_body_shape() {
        let e = error_json("backpressure", "queue full");
        assert_eq!(
            e.encode(),
            r#"{"error":{"kind":"backpressure","detail":"queue full"}}"#
        );
    }
}
