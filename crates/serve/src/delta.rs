//! The `/route/delta` wire schema: edit-list parsing, canonical edit
//! encoding for cache keys, and the prior-outcome cache.
//!
//! A delta job is a base `/route` job plus an `edits` array. The server
//! resolves the **prior** outcome for the base job (from the in-memory
//! outcome cache, routing from scratch on a miss), applies the edits
//! through `mebl_delta::route_delta`, and answers with the same response
//! body shape as `/route` — an empty edit list therefore produces a body
//! byte-identical to the plain `/route` response for the same job.
//!
//! Edit objects are strict: unknown keys are rejected, because the cache
//! key is derived from the *parsed* edits (via [`canonical_edits`]) and a
//! silently-dropped field would alias distinct requests onto one entry.

use crate::api::JobRequest;
use crate::lock;
use crate::json::Json;
use mebl_delta::CircuitEdit;
use mebl_geom::{Layer, Point, Rect};
use mebl_netlist::{Circuit, Pin};
use mebl_route::RoutingOutcome;
use std::collections::BTreeMap;
use std::sync::{Arc, Mutex};

/// A parsed `/route/delta` payload: the base routing job plus the edit
/// list to apply against its outcome.
#[derive(Debug, Clone, PartialEq)]
pub struct DeltaRequest {
    /// The base `/route` job the edits apply to.
    pub job: JobRequest,
    /// The parsed edit sequence (possibly empty).
    pub edits: Vec<CircuitEdit>,
}

impl DeltaRequest {
    /// Parses a delta payload: every `/route` field plus `edits`.
    pub fn from_json(value: &Json) -> Result<DeltaRequest, String> {
        let Json::Obj(pairs) = value else {
            return Err("payload must be a JSON object".into());
        };
        let mut edits = Vec::new();
        let mut base = Vec::new();
        for (key, v) in pairs {
            if key == "edits" {
                edits = edits_from_json(v)?;
            } else {
                base.push((key.clone(), v.clone()));
            }
        }
        let job = JobRequest::from_json(&Json::Obj(base))?;
        Ok(DeltaRequest { job, edits })
    }
}

/// Parses an `edits` JSON array into typed [`CircuitEdit`]s.
///
/// The vocabulary (one object per edit, discriminated by `op`):
///
/// ```json
/// {"op":"add_net","name":"n9","pins":[[2,30,0],[70,30,0]]}
/// {"op":"remove_net","name":"n9"}
/// {"op":"move_net","name":"n9","dx":3,"dy":-1}
/// {"op":"add_blockage","rect":[10,10,20,20]}
/// {"op":"remove_blockage","rect":[10,10,20,20]}
/// ```
pub fn edits_from_json(value: &Json) -> Result<Vec<CircuitEdit>, String> {
    let Json::Arr(items) = value else {
        return Err("`edits` must be an array".into());
    };
    items
        .iter()
        .enumerate()
        .map(|(i, item)| edit_from_json(item).map_err(|e| format!("edits[{i}]: {e}")))
        .collect()
}

fn edit_from_json(value: &Json) -> Result<CircuitEdit, String> {
    let Json::Obj(pairs) = value else {
        return Err("each edit must be a JSON object".into());
    };
    let op = value
        .get("op")
        .and_then(Json::as_str)
        .ok_or("missing string field `op`")?;
    let allowed: &[&str] = match op {
        "add_net" => &["op", "name", "pins"],
        "remove_net" => &["op", "name"],
        "move_net" => &["op", "name", "dx", "dy"],
        "add_blockage" | "remove_blockage" => &["op", "rect"],
        other => return Err(format!("unknown op `{other}`")),
    };
    if let Some((key, _)) = pairs.iter().find(|(k, _)| !allowed.contains(&k.as_str())) {
        return Err(format!("unknown field `{key}` for op `{op}`"));
    }
    let name = || -> Result<String, String> {
        Ok(value
            .get("name")
            .and_then(Json::as_str)
            .ok_or("missing string field `name`")?
            .to_string())
    };
    match op {
        "add_net" => {
            let pins = value
                .get("pins")
                .and_then(Json::as_array)
                .ok_or("missing array field `pins`")?
                .iter()
                .map(pin_from_json)
                .collect::<Result<Vec<Pin>, String>>()?;
            Ok(CircuitEdit::AddNet { name: name()?, pins })
        }
        "remove_net" => Ok(CircuitEdit::RemoveNet { name: name()? }),
        "move_net" => Ok(CircuitEdit::MoveNet {
            name: name()?,
            dx: coord(value, "dx")?,
            dy: coord(value, "dy")?,
        }),
        "add_blockage" => Ok(CircuitEdit::AddBlockage {
            rect: rect_from_json(value)?,
        }),
        _ => Ok(CircuitEdit::RemoveBlockage {
            rect: rect_from_json(value)?,
        }),
    }
}

fn coord(value: &Json, key: &str) -> Result<i32, String> {
    let v = value
        .get(key)
        .and_then(Json::as_i64)
        .ok_or_else(|| format!("missing integer field `{key}`"))?;
    i32::try_from(v).map_err(|_| format!("`{key}` out of range"))
}

fn pin_from_json(value: &Json) -> Result<Pin, String> {
    let parts = value
        .as_array()
        .filter(|a| a.len() == 3)
        .ok_or("each pin must be an [x, y, layer] triple")?;
    let at = |i: usize| -> Result<i64, String> {
        parts[i]
            .as_i64()
            .ok_or_else(|| "pin coordinates must be integers".to_string())
    };
    let x = i32::try_from(at(0)?).map_err(|_| "pin x out of range".to_string())?;
    let y = i32::try_from(at(1)?).map_err(|_| "pin y out of range".to_string())?;
    let layer = u8::try_from(at(2)?).map_err(|_| "pin layer out of range".to_string())?;
    Ok(Pin::new(Point::new(x, y), Layer::new(layer)))
}

fn rect_from_json(value: &Json) -> Result<Rect, String> {
    let parts = value
        .get("rect")
        .and_then(Json::as_array)
        .filter(|a| a.len() == 4)
        .ok_or("missing [x0, y0, x1, y1] field `rect`")?;
    let mut c = [0i32; 4];
    for (i, part) in parts.iter().enumerate() {
        let v = part
            .as_i64()
            .ok_or_else(|| "rect coordinates must be integers".to_string())?;
        c[i] = i32::try_from(v).map_err(|_| "rect coordinate out of range".to_string())?;
    }
    Ok(Rect::new(c[0], c[1], c[2], c[3]))
}

/// Canonical, injective text rendering of an edit list, chained into the
/// delta cache key. Stable across processes (no Debug formatting); name
/// lengths are encoded so adjacent fields cannot alias.
pub fn canonical_edits(edits: &[CircuitEdit]) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    for edit in edits {
        match edit {
            CircuitEdit::AddNet { name, pins } => {
                let _ = write!(out, "add:{}:{name}@", name.len());
                for pin in pins {
                    let _ = write!(
                        out,
                        "{},{},{};",
                        pin.position.x,
                        pin.position.y,
                        pin.layer.index()
                    );
                }
            }
            CircuitEdit::RemoveNet { name } => {
                let _ = write!(out, "del:{}:{name}", name.len());
            }
            CircuitEdit::MoveNet { name, dx, dy } => {
                let _ = write!(out, "mov:{}:{name}@{dx},{dy}", name.len());
            }
            CircuitEdit::AddBlockage { rect } => {
                let _ = write!(
                    out,
                    "blk+:{},{},{},{}",
                    rect.x0(),
                    rect.y0(),
                    rect.x1(),
                    rect.y1()
                );
            }
            CircuitEdit::RemoveBlockage { rect } => {
                let _ = write!(
                    out,
                    "blk-:{},{},{},{}",
                    rect.x0(),
                    rect.y0(),
                    rect.x1(),
                    rect.y1()
                );
            }
        }
        out.push('|');
    }
    out
}

/// A prior routing solution a delta job patches against: the base
/// circuit and its full outcome, shared across worker threads.
pub type PriorOutcome = Arc<(Circuit, RoutingOutcome)>;

#[derive(Debug)]
struct OutcomeEntry {
    prior: PriorOutcome,
    last_used: u64,
}

/// A small LRU of full [`RoutingOutcome`]s keyed by the base `/route`
/// cache key.
///
/// The response cache stores only encoded bodies; a delta job needs the
/// complete prior solution (routes + geometry) to rip up and patch, so
/// those are kept separately. Capacity is deliberately small — outcomes
/// hold per-net geometry for a whole circuit — and 0 disables it.
#[derive(Debug)]
pub struct OutcomeCache {
    inner: Mutex<BTreeMap<u64, OutcomeEntry>>,
    tick: Mutex<u64>,
    capacity: usize,
}

impl OutcomeCache {
    /// Cache holding at most `capacity` prior outcomes.
    pub fn new(capacity: usize) -> Self {
        Self {
            inner: Mutex::new(BTreeMap::new()),
            tick: Mutex::new(0),
            capacity,
        }
    }

    fn bump(&self) -> u64 {
        let mut tick = lock(&self.tick);
        *tick += 1;
        *tick
    }

    /// Looks up the prior outcome for a base job, refreshing recency.
    pub fn get(&self, key: u64) -> Option<PriorOutcome> {
        let tick = self.bump();
        let mut inner = lock(&self.inner);
        let entry = inner.get_mut(&key)?;
        entry.last_used = tick;
        Some(entry.prior.clone())
    }

    /// Inserts a prior outcome, evicting the least-recently-used entry
    /// when full.
    pub fn put(&self, key: u64, prior: PriorOutcome) {
        if self.capacity == 0 {
            return;
        }
        let tick = self.bump();
        let mut inner = lock(&self.inner);
        if !inner.contains_key(&key) && inner.len() >= self.capacity {
            if let Some((&oldest, _)) = inner.iter().min_by_key(|(_, e)| e.last_used) {
                inner.remove(&oldest);
            }
        }
        inner.insert(key, OutcomeEntry { prior, last_used: tick });
    }

    /// Number of cached outcomes.
    pub fn len(&self) -> usize {
        lock(&self.inner).len()
    }

    /// Whether the cache holds nothing.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::parse;

    fn edits(text: &str) -> Result<Vec<CircuitEdit>, String> {
        edits_from_json(&parse(text).map_err(|e| e.to_string())?)
    }

    #[test]
    fn parses_every_op() {
        let parsed = edits(
            r#"[
                {"op":"add_net","name":"n9","pins":[[2,30,0],[70,30,1]]},
                {"op":"remove_net","name":"n8"},
                {"op":"move_net","name":"n7","dx":3,"dy":-1},
                {"op":"add_blockage","rect":[10,10,20,20]},
                {"op":"remove_blockage","rect":[10,10,20,20]}
            ]"#,
        )
        .unwrap();
        assert_eq!(parsed.len(), 5);
        assert_eq!(
            parsed[0],
            CircuitEdit::AddNet {
                name: "n9".into(),
                pins: vec![
                    Pin::new(Point::new(2, 30), Layer::new(0)),
                    Pin::new(Point::new(70, 30), Layer::new(1)),
                ],
            }
        );
        assert_eq!(parsed[2], CircuitEdit::MoveNet { name: "n7".into(), dx: 3, dy: -1 });
        assert_eq!(
            parsed[4],
            CircuitEdit::RemoveBlockage { rect: Rect::new(10, 10, 20, 20) }
        );
    }

    #[test]
    fn rejects_malformed_edits() {
        assert!(edits(r#"{"op":"remove_net"}"#).is_err()); // not an array
        assert!(edits(r#"[{"name":"x"}]"#).is_err()); // no op
        assert!(edits(r#"[{"op":"teleport_net","name":"x"}]"#).is_err());
        assert!(edits(r#"[{"op":"remove_net","name":"x","rect":[1,2,3,4]}]"#).is_err());
        assert!(edits(r#"[{"op":"add_net","name":"x","pins":[[1,2]]}]"#).is_err());
        assert!(edits(r#"[{"op":"move_net","name":"x","dx":1}]"#).is_err()); // no dy
        assert!(edits(r#"[{"op":"add_blockage","rect":[1,2,3]}]"#).is_err());
        let err = edits(r#"[{"op":"remove_net","name":"x"},{"op":"nope"}]"#).unwrap_err();
        assert!(err.starts_with("edits[1]:"), "{err}");
    }

    #[test]
    fn delta_request_wraps_job_request() {
        let doc = parse(r#"{"bench":"S5378","edits":[{"op":"remove_net","name":"n1"}]}"#).unwrap();
        let req = DeltaRequest::from_json(&doc).unwrap();
        assert_eq!(req.job.bench.as_deref(), Some("S5378"));
        assert_eq!(req.edits.len(), 1);
        // Base-job strictness still applies.
        let doc = parse(r#"{"bench":"S5378","edits":[],"mystery":1}"#).unwrap();
        assert!(DeltaRequest::from_json(&doc).is_err());
    }

    #[test]
    fn canonical_encoding_distinguishes_edit_lists() {
        let a = edits(r#"[{"op":"remove_net","name":"ab"}]"#).unwrap();
        let b = edits(r#"[{"op":"remove_net","name":"a"},{"op":"remove_net","name":"b"}]"#).unwrap();
        let c = edits(r#"[{"op":"move_net","name":"ab","dx":0,"dy":0}]"#).unwrap();
        assert_ne!(canonical_edits(&a), canonical_edits(&b));
        assert_ne!(canonical_edits(&a), canonical_edits(&c));
        assert_eq!(canonical_edits(&[]), "");
    }

    #[test]
    fn outcome_cache_evicts_lru() {
        use mebl_route::{Router, RouterConfig};
        let circuit = mebl_netlist::BenchmarkSpec::by_name("S5378")
            .unwrap()
            .generate(&mebl_netlist::GenerateConfig::quick(1));
        let outcome = Router::new(RouterConfig::stitch_aware()).route(&circuit);
        let prior: PriorOutcome = Arc::new((circuit, outcome));
        let cache = OutcomeCache::new(2);
        assert!(cache.is_empty());
        cache.put(1, prior.clone());
        cache.put(2, prior.clone());
        cache.get(1); // refresh 1; 2 becomes LRU
        cache.put(3, prior.clone());
        assert!(cache.get(1).is_some());
        assert!(cache.get(2).is_none());
        assert!(cache.get(3).is_some());
        assert_eq!(cache.len(), 2);
        let disabled = OutcomeCache::new(0);
        disabled.put(1, prior);
        assert!(disabled.get(1).is_none());
    }
}
