//! Minimal HTTP/1.1 framing over any `Read + Write` stream.
//!
//! Just enough protocol for the routing service: one request per
//! connection (`Connection: close`), request line + headers +
//! `Content-Length`-framed body on the way in, a fully-buffered response
//! on the way out. The reader is hardened against hostile peers: every
//! line, the header count and the body size are bounded, and a peer that
//! stalls or disconnects mid-request surfaces as a typed error, never a
//! hang (callers set stream timeouts) or a panic.

use std::io::{BufRead, Write};

/// Upper bound on one request line or header line, in bytes.
const MAX_LINE: usize = 8 * 1024;
/// Upper bound on the number of headers.
const MAX_HEADERS: usize = 64;

/// One parsed request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Request {
    /// Method verb, upper-case as received (`GET`, `POST`, ...).
    pub method: String,
    /// Request path, e.g. `/route` (query strings are kept verbatim).
    pub path: String,
    /// Header name/value pairs; names lower-cased.
    pub headers: Vec<(String, String)>,
    /// Request body (`Content-Length` framed; empty when absent).
    pub body: Vec<u8>,
}

impl Request {
    /// First header value for `name` (case-insensitive).
    pub fn header(&self, name: &str) -> Option<&str> {
        let name = name.to_ascii_lowercase();
        self.headers
            .iter()
            .find(|(k, _)| *k == name)
            .map(|(_, v)| v.as_str())
    }
}

/// Why a request could not be read.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ReadError {
    /// The peer closed (or timed out) before a full request arrived.
    Disconnected,
    /// The bytes received do not form a valid HTTP/1.1 request.
    Malformed(String),
    /// The declared body exceeds the server's size limit.
    TooLarge { declared: usize, limit: usize },
}

impl std::fmt::Display for ReadError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ReadError::Disconnected => write!(f, "peer disconnected mid-request"),
            ReadError::Malformed(msg) => write!(f, "malformed request: {msg}"),
            ReadError::TooLarge { declared, limit } => {
                write!(f, "body of {declared} bytes exceeds the {limit}-byte limit")
            }
        }
    }
}

/// Reads one bounded CRLF- (or LF-) terminated line, without the ending.
fn read_line(stream: &mut impl BufRead) -> Result<String, ReadError> {
    let mut line = Vec::new();
    loop {
        let mut byte = [0u8; 1];
        let mut got = 0;
        // BufRead::read is fine here: one byte at a time off the buffer.
        while got == 0 {
            match stream.read(&mut byte) {
                Ok(0) => return Err(ReadError::Disconnected),
                Ok(n) => got = n,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(_) => return Err(ReadError::Disconnected),
            }
        }
        if byte[0] == b'\n' {
            if line.last() == Some(&b'\r') {
                line.pop();
            }
            return String::from_utf8(line)
                .map_err(|_| ReadError::Malformed("non-UTF-8 header bytes".into()));
        }
        line.push(byte[0]);
        if line.len() > MAX_LINE {
            return Err(ReadError::Malformed("header line too long".into()));
        }
    }
}

/// Reads one full request from `stream`, bounding the body at
/// `max_body` bytes.
pub fn read_request(stream: &mut impl BufRead, max_body: usize) -> Result<Request, ReadError> {
    let request_line = read_line(stream)?;
    let mut parts = request_line.split(' ');
    let (method, path, version) = match (parts.next(), parts.next(), parts.next(), parts.next()) {
        (Some(m), Some(p), Some(v), None) if !m.is_empty() && p.starts_with('/') => (m, p, v),
        _ => {
            return Err(ReadError::Malformed(format!(
                "bad request line `{}`",
                request_line.chars().take(80).collect::<String>()
            )))
        }
    };
    if version != "HTTP/1.1" && version != "HTTP/1.0" {
        return Err(ReadError::Malformed(format!("unsupported version `{version}`")));
    }

    let mut headers = Vec::new();
    loop {
        let line = read_line(stream)?;
        if line.is_empty() {
            break;
        }
        if headers.len() >= MAX_HEADERS {
            return Err(ReadError::Malformed("too many headers".into()));
        }
        let Some((name, value)) = line.split_once(':') else {
            return Err(ReadError::Malformed("header without `:`".into()));
        };
        headers.push((name.trim().to_ascii_lowercase(), value.trim().to_string()));
    }

    let content_length = match headers.iter().find(|(k, _)| k == "content-length") {
        None => 0,
        Some((_, v)) => v
            .parse::<usize>()
            .map_err(|_| ReadError::Malformed("bad content-length".into()))?,
    };
    if content_length > max_body {
        return Err(ReadError::TooLarge {
            declared: content_length,
            limit: max_body,
        });
    }
    let mut body = vec![0u8; content_length];
    let mut filled = 0;
    while filled < body.len() {
        match stream.read(&mut body[filled..]) {
            Ok(0) => return Err(ReadError::Disconnected),
            Ok(n) => filled += n,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(_) => return Err(ReadError::Disconnected),
        }
    }

    Ok(Request {
        method: method.to_string(),
        path: path.to_string(),
        headers,
        body,
    })
}

/// One response, buffered fully before writing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Response {
    /// HTTP status code.
    pub status: u16,
    /// Extra headers beyond the always-present framing headers.
    pub headers: Vec<(String, String)>,
    /// Response body bytes.
    pub body: Vec<u8>,
}

impl Response {
    /// A JSON response with the given status.
    pub fn json(status: u16, body: impl Into<Vec<u8>>) -> Self {
        Self {
            status,
            headers: Vec::new(),
            body: body.into(),
        }
    }

    /// Adds a header.
    #[must_use]
    pub fn with_header(mut self, name: &str, value: impl Into<String>) -> Self {
        self.headers.push((name.to_string(), value.into()));
        self
    }

    /// The standard reason phrase for the status codes the service uses.
    pub fn reason(&self) -> &'static str {
        match self.status {
            200 => "OK",
            400 => "Bad Request",
            404 => "Not Found",
            405 => "Method Not Allowed",
            408 => "Request Timeout",
            413 => "Payload Too Large",
            422 => "Unprocessable Entity",
            429 => "Too Many Requests",
            500 => "Internal Server Error",
            503 => "Service Unavailable",
            504 => "Gateway Timeout",
            _ => "Response",
        }
    }

    /// Writes the full response; the connection is then done
    /// (`Connection: close` framing).
    pub fn write_to(&self, stream: &mut impl Write) -> std::io::Result<()> {
        let mut head = format!(
            "HTTP/1.1 {} {}\r\ncontent-type: application/json\r\ncontent-length: {}\r\nconnection: close\r\n",
            self.status,
            self.reason(),
            self.body.len()
        );
        for (name, value) in &self.headers {
            head.push_str(name);
            head.push_str(": ");
            head.push_str(value);
            head.push_str("\r\n");
        }
        head.push_str("\r\n");
        stream.write_all(head.as_bytes())?;
        stream.write_all(&self.body)?;
        stream.flush()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::BufReader;

    fn parse(bytes: &[u8]) -> Result<Request, ReadError> {
        read_request(&mut BufReader::new(bytes), 1024)
    }

    #[test]
    fn parses_post_with_body() {
        let req = parse(
            b"POST /route HTTP/1.1\r\nHost: x\r\nContent-Length: 5\r\n\r\nhello",
        )
        .unwrap();
        assert_eq!(req.method, "POST");
        assert_eq!(req.path, "/route");
        assert_eq!(req.header("host"), Some("x"));
        assert_eq!(req.header("HOST"), Some("x"));
        assert_eq!(req.body, b"hello");
    }

    #[test]
    fn parses_get_without_body_and_bare_lf() {
        let req = parse(b"GET /healthz HTTP/1.1\nHost: y\n\n").unwrap();
        assert_eq!(req.method, "GET");
        assert_eq!(req.path, "/healthz");
        assert!(req.body.is_empty());
    }

    #[test]
    fn rejects_malformed_inputs() {
        assert!(matches!(parse(b""), Err(ReadError::Disconnected)));
        assert!(matches!(
            parse(b"GARBAGE\r\n\r\n"),
            Err(ReadError::Malformed(_))
        ));
        assert!(matches!(
            parse(b"GET /x HTTP/2\r\n\r\n"),
            Err(ReadError::Malformed(_))
        ));
        assert!(matches!(
            parse(b"GET /x HTTP/1.1\r\nbad header\r\n\r\n"),
            Err(ReadError::Malformed(_))
        ));
        assert!(matches!(
            parse(b"POST / HTTP/1.1\r\nContent-Length: kidding\r\n\r\n"),
            Err(ReadError::Malformed(_))
        ));
    }

    #[test]
    fn truncated_body_is_a_disconnect() {
        assert!(matches!(
            parse(b"POST / HTTP/1.1\r\nContent-Length: 50\r\n\r\nshort"),
            Err(ReadError::Disconnected)
        ));
    }

    #[test]
    fn oversized_body_is_too_large() {
        let err = parse(b"POST / HTTP/1.1\r\nContent-Length: 999999\r\n\r\n");
        assert!(matches!(err, Err(ReadError::TooLarge { .. })));
    }

    #[test]
    fn response_framing() {
        let mut out = Vec::new();
        Response::json(200, "{}")
            .with_header("x-cache", "hit")
            .write_to(&mut out)
            .unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("HTTP/1.1 200 OK\r\n"));
        assert!(text.contains("content-length: 2\r\n"));
        assert!(text.contains("x-cache: hit\r\n"));
        assert!(text.ends_with("\r\n\r\n{}"));
    }

    #[test]
    fn reason_phrases_cover_service_statuses() {
        for status in [200, 400, 404, 405, 408, 413, 422, 429, 500, 503, 504] {
            assert_ne!(Response::json(status, "").reason(), "Response");
        }
    }
}
