//! A zero-dependency routing service daemon for the MEBL flow.
//!
//! `mebl-serve` wraps the stitch-aware router in a small HTTP/1.1
//! server built on nothing but `std::net`: `POST /route`, `POST /audit`
//! and `POST /route/delta` (incremental re-route of an edited circuit
//! against a cached prior outcome) run jobs, `GET /healthz` and
//! `GET /metrics` observe the daemon, `POST /shutdown` (or closing the
//! CLI's stdin) drains it.
//! The design goals, in order:
//!
//! 1. **Determinism is preserved over the wire.** Response bodies carry
//!    no wall-clock fields, so a cached response is *bit-identical* to
//!    re-running the job (DESIGN.md §9 makes the computation itself a
//!    pure function of the request), and worker count never shows up in
//!    a body.
//! 2. **Backpressure is typed, not implicit.** A bounded connection
//!    queue sits between the acceptor and the worker pool; when it is
//!    full the acceptor answers `429` immediately instead of letting
//!    latency grow without bound, and during drain new jobs get `503`.
//! 3. **Every job runs under a budget and the server's interrupt.**
//!    Client-supplied budgets ride the existing [`RunBudget`] machinery
//!    and shutdown latches a server-wide `CancelToken` composed into
//!    every in-flight run via [`Router::try_route_under`], so drain
//!    never waits on an unbounded route.
//!
//! Threading uses [`mebl_par::run_scoped`] (acceptor = role 0, workers
//! after it) — no detached threads, panics propagate, and the whole
//! server joins before [`Server::run`] returns its [`DrainReport`].

#![forbid(unsafe_code)]

pub mod api;
pub mod cache;
pub mod delta;
pub mod http;
pub mod json;
pub mod metrics;

use crate::api::{
    audit_response_json, error_json, outcome_response_json, route_response_json, JobRequest,
};
use crate::cache::{fnv1a_extend, ResultCache};
use crate::delta::{canonical_edits, DeltaRequest, OutcomeCache, PriorOutcome};
use crate::http::{read_request, ReadError, Request, Response};
use crate::json::Json;
use crate::metrics::Metrics;
use mebl_control::CancelToken;
use mebl_route::{RouteError, Router, RunBudget, Stopwatch};
use mebl_store::{Store, StoreConfig};
pub use mebl_store::FsyncPolicy;
use std::collections::VecDeque;
use std::io::BufReader;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, PoisonError};
use std::time::Duration;

/// How long the acceptor sleeps between polls of a quiet listener. The
/// listener is non-blocking so the acceptor can notice a drain request
/// without another connection arriving.
const ACCEPT_POLL: Duration = Duration::from_millis(2);

/// Prior-outcome cache capacity for `/route/delta`. Full outcomes hold
/// per-net geometry for a whole circuit, so this tier stays small; the
/// encoded-response cache handles repeat requests at scale.
const OUTCOME_CACHE_CAPACITY: usize = 16;

/// Locks a mutex, recovering the data on poisoning: all protected state
/// here is plain data (queues, maps), never left logically torn by a
/// panicking holder.
pub(crate) fn lock<T>(mutex: &Mutex<T>) -> MutexGuard<'_, T> {
    mutex.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Daemon configuration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServeConfig {
    /// Bind address, e.g. `127.0.0.1:0` for an ephemeral port.
    pub addr: String,
    /// Worker threads draining the job queue.
    pub workers: usize,
    /// Bounded connection-queue depth; a full queue answers `429`.
    pub queue_depth: usize,
    /// Budget applied to jobs that do not bring their own.
    pub default_budget: RunBudget,
    /// Result-cache capacity in responses (0 disables caching).
    pub cache_capacity: usize,
    /// Per-connection socket read/write timeout, so a stalled peer
    /// cannot pin a worker forever.
    pub io_timeout: Option<Duration>,
    /// Largest accepted request body, in bytes.
    pub max_body: usize,
    /// Directory of the persistent second cache tier (`None` disables
    /// it: memory-only, the pre-store behavior).
    pub store_dir: Option<String>,
    /// When store appends are fsynced.
    pub store_fsync: FsyncPolicy,
    /// Store auto-compaction threshold: dead-record percentage
    /// (0 disables compaction).
    pub store_compact_pct: u8,
    /// Fault hook for the supervision test: a job whose `seed` matches
    /// panics inside the worker instead of routing. Never set outside
    /// tests; not reachable from the CLI.
    pub inject_panic_seed: Option<u64>,
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self {
            addr: "127.0.0.1:0".to_string(),
            workers: 2,
            queue_depth: 16,
            default_budget: RunBudget::unlimited(),
            cache_capacity: 256,
            io_timeout: Some(Duration::from_secs(10)),
            max_body: 4 << 20,
            store_dir: None,
            store_fsync: FsyncPolicy::Always,
            store_compact_pct: 60,
            inject_panic_seed: None,
        }
    }
}

/// Fingerprint every stored record is tagged with: a hash of the
/// stored-payload encoding version. Bump the string when the
/// `status ‖ body` encoding (or response schema compatibility) changes,
/// and old records become typed misses instead of wrong answers.
fn store_fingerprint() -> u64 {
    mebl_store::fnv1a(b"mebl-serve stored-response v1")
}

/// Encodes a cacheable response for the store: status (u16 LE) ‖ body.
fn encode_stored(status: u16, body: &[u8]) -> Vec<u8> {
    let mut bytes = Vec::with_capacity(2 + body.len());
    bytes.extend_from_slice(&status.to_le_bytes());
    bytes.extend_from_slice(body);
    bytes
}

/// Decodes a stored record back into `(status, body)`.
fn decode_stored(bytes: &[u8]) -> Option<(u16, Vec<u8>)> {
    let status = u16::from_le_bytes([*bytes.first()?, *bytes.get(1)?]);
    Some((status, bytes[2..].to_vec()))
}

/// What the daemon did over its lifetime, reported when `run` returns.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DrainReport {
    /// Requests fully read and answered (any endpoint).
    pub requests: u64,
    /// Jobs that completed clean.
    pub clean: u64,
    /// Jobs that completed with recorded degradations.
    pub degraded: u64,
    /// Responses served from the result cache.
    pub cache_hits: u64,
    /// Connections rejected with `429` (queue full).
    pub queue_rejects: u64,
    /// In-flight jobs cut short by the shutdown interrupt.
    pub cancelled_in_flight: u64,
}

/// Why the queue refused a connection.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum RefuseReason {
    /// At capacity.
    Full,
    /// Closed for drain.
    Closed,
}

struct QueueState {
    items: VecDeque<TcpStream>,
    closed: bool,
}

/// The bounded handoff between the acceptor and the workers.
///
/// `close` stops intake but lets `pop` drain what was already queued,
/// so accepted connections are always *answered* (with `503` during
/// drain), never dropped on the floor.
struct JobQueue {
    state: Mutex<QueueState>,
    ready: Condvar,
    capacity: usize,
}

impl JobQueue {
    fn new(capacity: usize) -> Self {
        Self {
            state: Mutex::new(QueueState {
                items: VecDeque::new(),
                closed: false,
            }),
            ready: Condvar::new(),
            capacity: capacity.max(1),
        }
    }

    /// Enqueues `stream`, or returns it with the reason it was refused.
    fn try_push(&self, stream: TcpStream) -> Result<(), (TcpStream, RefuseReason)> {
        let mut state = lock(&self.state);
        if state.closed {
            return Err((stream, RefuseReason::Closed));
        }
        if state.items.len() >= self.capacity {
            return Err((stream, RefuseReason::Full));
        }
        state.items.push_back(stream);
        drop(state);
        self.ready.notify_one();
        Ok(())
    }

    /// Blocks for the next connection; `None` once closed and drained.
    fn pop(&self) -> Option<TcpStream> {
        let mut state = lock(&self.state);
        loop {
            if let Some(stream) = state.items.pop_front() {
                return Some(stream);
            }
            if state.closed {
                return None;
            }
            state = self
                .ready
                .wait(state)
                .unwrap_or_else(PoisonError::into_inner);
        }
    }

    /// Stops intake and wakes every blocked worker.
    fn close(&self) {
        lock(&self.state).closed = true;
        self.ready.notify_all();
    }

    fn len(&self) -> usize {
        lock(&self.state).items.len()
    }
}

/// State shared by the acceptor, the workers and every [`ServerHandle`].
struct Shared {
    queue: JobQueue,
    metrics: Metrics,
    cache: ResultCache,
    /// Prior outcomes for `/route/delta`, keyed by the base `/route`
    /// cache key.
    outcomes: OutcomeCache,
    /// Persistent second cache tier, when mounted.
    store: Option<Store>,
    /// Fingerprint stored records are written and verified under.
    store_fp: u64,
    draining: AtomicBool,
    /// Latched by shutdown; composed into every job's cancel token.
    interrupt: CancelToken,
    in_flight: AtomicUsize,
    default_budget: RunBudget,
    io_timeout: Option<Duration>,
    max_body: usize,
    workers: usize,
    inject_panic_seed: Option<u64>,
}

/// A cloneable handle for observing and draining a running server.
#[derive(Clone)]
pub struct ServerHandle {
    shared: Arc<Shared>,
}

impl ServerHandle {
    /// Starts a graceful drain: stop accepting, answer queued-but-
    /// unstarted jobs with `503`, and interrupt in-flight routes so they
    /// finish promptly (their degraded results are still delivered).
    /// Idempotent.
    pub fn shutdown(&self) {
        self.shared.draining.store(true, Ordering::SeqCst);
        self.shared.interrupt.cancel();
        self.shared.queue.close();
    }

    /// Whether a drain has been requested.
    pub fn is_draining(&self) -> bool {
        self.shared.draining.load(Ordering::SeqCst)
    }
}

/// Which job endpoint a request hit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Endpoint {
    Route,
    Audit,
    /// `/route/outcome`: same job semantics as `/route`, but the body
    /// carries the canonical `meblout` outcome text — the fragment
    /// vehicle the coordinator collects from workers.
    RouteOutcome,
}

impl Endpoint {
    fn name(self) -> &'static str {
        match self {
            Endpoint::Route => "route",
            Endpoint::Audit => "audit",
            Endpoint::RouteOutcome => "route-outcome",
        }
    }
}

/// Typed failure of one job execution: either the router's own error
/// taxonomy, or a panel job inside a sharded run failing with one.
enum JobError {
    Route(RouteError),
    Panel { key: String, detail: String },
}

impl From<mebl_shard::ShardError> for JobError {
    fn from(e: mebl_shard::ShardError) -> Self {
        match e {
            mebl_shard::ShardError::InvalidConfig(d) => JobError::Route(RouteError::InvalidConfig(d)),
            mebl_shard::ShardError::InvalidCircuit(issues) => {
                JobError::Route(RouteError::InvalidCircuit(issues))
            }
            mebl_shard::ShardError::BudgetExhausted => JobError::Route(RouteError::BudgetExhausted),
            mebl_shard::ShardError::Panel { key, detail } => JobError::Panel { key, detail },
        }
    }
}

/// The routing service daemon.
pub struct Server {
    listener: TcpListener,
    local_addr: SocketAddr,
    shared: Arc<Shared>,
}

impl Server {
    /// Binds the listener and builds the shared state. The server does
    /// not serve until [`Server::run`] is called.
    pub fn bind(config: &ServeConfig) -> std::io::Result<Server> {
        let store = match &config.store_dir {
            None => None,
            Some(dir) => {
                let mut store_cfg = StoreConfig::new(dir.clone());
                store_cfg.fsync = config.store_fsync;
                store_cfg.compact_dead_pct = config.store_compact_pct;
                let (store, _recovery) = Store::open_fs(store_cfg)
                    .map_err(|e| std::io::Error::other(format!("store at {dir}: {e}")))?;
                Some(store)
            }
        };
        let listener = TcpListener::bind(&config.addr)?;
        listener.set_nonblocking(true)?;
        let local_addr = listener.local_addr()?;
        Ok(Server {
            listener,
            local_addr,
            shared: Arc::new(Shared {
                queue: JobQueue::new(config.queue_depth),
                metrics: Metrics::default(),
                cache: ResultCache::new(config.cache_capacity),
                outcomes: OutcomeCache::new(if config.cache_capacity == 0 {
                    0
                } else {
                    OUTCOME_CACHE_CAPACITY
                }),
                store,
                store_fp: store_fingerprint(),
                draining: AtomicBool::new(false),
                // Armed (but boundless) so `cancel` latches; an inert
                // token would make shutdown unobservable to jobs.
                interrupt: CancelToken::armed(None, None),
                in_flight: AtomicUsize::new(0),
                default_budget: config.default_budget,
                io_timeout: config.io_timeout,
                max_body: config.max_body,
                workers: config.workers.max(1),
                inject_panic_seed: config.inject_panic_seed,
            }),
        })
    }

    /// The address the listener actually bound (resolves `:0` ports).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// A handle for draining/observing the server from another thread.
    pub fn handle(&self) -> ServerHandle {
        ServerHandle {
            shared: Arc::clone(&self.shared),
        }
    }

    /// Serves until a drain is requested, then joins every role and
    /// reports. Role 0 (the caller's thread) accepts; the remaining
    /// roles drain the queue.
    pub fn run(&self) -> DrainReport {
        mebl_par::run_scoped(1 + self.shared.workers, |role| {
            if role == 0 {
                self.accept_loop();
            } else {
                self.worker_loop();
            }
        });
        let m = &self.shared.metrics;
        DrainReport {
            requests: m.requests.get(),
            clean: m.clean.get(),
            degraded: m.degraded.get(),
            cache_hits: m.cache_hits.get(),
            queue_rejects: m.queue_rejects.get(),
            cancelled_in_flight: m.cancelled_by_shutdown.get(),
        }
    }

    fn accept_loop(&self) {
        loop {
            if self.shared.draining.load(Ordering::SeqCst) {
                break;
            }
            match self.listener.accept() {
                Ok((stream, _)) => {
                    // Accepted sockets do not reliably inherit the
                    // listener's non-blocking flag; make it explicit.
                    let _ = stream.set_nonblocking(false);
                    match self.shared.queue.try_push(stream) {
                        Ok(()) => {}
                        Err((stream, RefuseReason::Full)) => {
                            self.shared.metrics.queue_rejects.inc();
                            self.refuse(
                                stream,
                                Response::json(
                                    429,
                                    error_json("backpressure", "job queue is full").encode(),
                                )
                                .with_header("retry-after", "1"),
                            );
                        }
                        Err((stream, RefuseReason::Closed)) => {
                            self.shared.metrics.shutdown_rejects.inc();
                            self.refuse(
                                stream,
                                Response::json(
                                    503,
                                    error_json("shutting-down", "server is draining").encode(),
                                ),
                            );
                        }
                    }
                }
                // Quiet listener or transient accept failure: back off
                // briefly so the drain flag stays responsive.
                Err(_) => std::thread::sleep(ACCEPT_POLL),
            }
        }
        self.shared.queue.close();
    }

    /// Answers a connection the queue refused, without parsing its
    /// request (the peer may still be writing it; that is fine under
    /// `Connection: close` framing).
    fn refuse(&self, mut stream: TcpStream, response: Response) {
        let _ = stream.set_write_timeout(self.shared.io_timeout);
        if response.write_to(&mut stream).is_err() {
            self.shared.metrics.disconnects.inc();
            return;
        }
        // Closing a socket with unread bytes in its receive buffer can
        // reset the connection and destroy the response in flight, so
        // the peer would see a transport error instead of the typed
        // `429`/`503`. Drain what has already arrived — bounded, so a
        // slow-writing peer cannot stall the acceptor for long.
        let _ = stream.set_nonblocking(true);
        let mut sink = [0u8; 4096];
        for _ in 0..8 {
            match std::io::Read::read(&mut stream, &mut sink) {
                Ok(0) => break, // peer closed its half; nothing left to reset
                Ok(_) => {}
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    std::thread::sleep(Duration::from_millis(1));
                }
                Err(_) => break,
            }
        }
    }

    fn worker_loop(&self) {
        while let Some(stream) = self.shared.queue.pop() {
            self.shared.in_flight.fetch_add(1, Ordering::SeqCst);
            self.handle_connection(stream);
            self.shared.in_flight.fetch_sub(1, Ordering::SeqCst);
        }
    }

    fn handle_connection(&self, stream: TcpStream) {
        let m = &self.shared.metrics;
        let total = Stopwatch::start();
        let _ = stream.set_read_timeout(self.shared.io_timeout);
        let _ = stream.set_write_timeout(self.shared.io_timeout);
        let mut reader = BufReader::new(stream);

        let parse_sw = Stopwatch::start();
        let request = read_request(&mut reader, self.shared.max_body);
        m.parse_hist.observe(parse_sw.elapsed());

        let response = match &request {
            Ok(request) => {
                m.requests.inc();
                self.dispatch(request)
            }
            Err(ReadError::Disconnected) => {
                m.disconnects.inc();
                return; // nobody left to answer
            }
            Err(e @ ReadError::Malformed(_)) => {
                m.bad_requests.inc();
                Response::json(400, error_json("bad-request", &e.to_string()).encode())
            }
            Err(e @ ReadError::TooLarge { .. }) => {
                m.bad_requests.inc();
                Response::json(413, error_json("payload-too-large", &e.to_string()).encode())
            }
        };

        let mut stream = reader.into_inner();
        if response.write_to(&mut stream).is_err() {
            m.disconnects.inc();
        }
        m.total_hist.observe(total.elapsed());
    }

    fn dispatch(&self, request: &Request) -> Response {
        match (request.method.as_str(), request.path.as_str()) {
            ("GET", "/healthz") => self.healthz(),
            ("GET", "/metrics") => Response::json(
                200,
                self.shared
                    .metrics
                    .to_json(
                        self.shared.queue.len(),
                        self.shared.in_flight.load(Ordering::SeqCst),
                        self.shared.cache.len(),
                        self.shared.store.as_ref().map(Store::len),
                    )
                    .encode(),
            ),
            ("POST", "/shutdown") => {
                self.handle().shutdown();
                Response::json(
                    200,
                    Json::obj(vec![("status", Json::Str("draining".to_string()))]).encode(),
                )
            }
            ("POST", "/route") => self.job(request, Endpoint::Route),
            ("POST", "/audit") => self.job(request, Endpoint::Audit),
            ("POST", "/route/outcome") => self.job(request, Endpoint::RouteOutcome),
            ("POST", "/route/delta") => self.delta_job(request),
            (
                _,
                "/healthz" | "/metrics" | "/shutdown" | "/route" | "/audit" | "/route/delta"
                | "/route/outcome",
            ) => {
                self.shared.metrics.bad_requests.inc();
                Response::json(
                    405,
                    error_json("method-not-allowed", "wrong method for this path").encode(),
                )
            }
            (_, path) => {
                self.shared.metrics.bad_requests.inc();
                Response::json(404, error_json("not-found", &format!("no handler for {path}")).encode())
            }
        }
    }

    fn healthz(&self) -> Response {
        let draining = self.shared.draining.load(Ordering::SeqCst);
        Response::json(
            200,
            Json::obj(vec![
                (
                    "status",
                    Json::Str(if draining { "draining" } else { "ok" }.to_string()),
                ),
                ("workers", Json::Int(self.shared.workers as i64)),
                (
                    "in_flight",
                    Json::Int(self.shared.in_flight.load(Ordering::SeqCst) as i64),
                ),
                ("queued", Json::Int(self.shared.queue.len() as i64)),
                ("cache_entries", Json::Int(self.shared.cache.len() as i64)),
            ])
            .encode(),
        )
    }

    /// The `/route` and `/audit` job path: parse, cache-check, execute
    /// under budget + interrupt, cache clean results.
    fn job(&self, request: &Request, endpoint: Endpoint) -> Response {
        let m = &self.shared.metrics;
        match endpoint {
            Endpoint::Route => m.route_requests.inc(),
            Endpoint::Audit => m.audit_requests.inc(),
            Endpoint::RouteOutcome => m.outcome_requests.inc(),
        }
        if self.shared.draining.load(Ordering::SeqCst) {
            m.shutdown_rejects.inc();
            return Response::json(
                503,
                error_json("shutting-down", "server is draining").encode(),
            );
        }

        let job = match std::str::from_utf8(&request.body)
            .map_err(|_| "body is not UTF-8".to_string())
            .and_then(|text| {
                crate::json::parse(text).map_err(|e| e.to_string())
            })
            .and_then(|doc| JobRequest::from_json(&doc))
        {
            Ok(job) => job,
            Err(detail) => {
                m.bad_requests.inc();
                return Response::json(400, error_json("bad-request", &detail).encode());
            }
        };

        let (circuit_text, circuit) = match job.resolve_circuit() {
            Ok(resolved) => resolved,
            Err((kind @ "invalid-circuit", detail)) => {
                m.invalid_circuits.inc();
                return Response::json(422, error_json(kind, &detail).encode());
            }
            Err((kind, detail)) => {
                m.bad_requests.inc();
                return Response::json(400, error_json(kind, &detail).encode());
            }
        };

        let key = job.cache_key(endpoint.name(), &circuit_text, self.shared.default_budget);
        if let Some((status, body)) = self.shared.cache.get(key) {
            m.cache_hits.inc();
            return Response::json(status, body).with_header("x-cache", "hit");
        }
        m.cache_misses.inc();

        // Second tier: the persistent store. A disk hit is promoted
        // into the LRU; any store failure degrades to memory-only and
        // runs the job — the store can make a request faster, never
        // fail it.
        if let Some(store) = &self.shared.store {
            match store.get(key, self.shared.store_fp) {
                Ok(Some(bytes)) => {
                    if let Some((status, body)) = decode_stored(&bytes) {
                        m.store_hits.inc();
                        self.shared.cache.put(key, status, body.clone());
                        return Response::json(status, body).with_header("x-cache", "disk");
                    }
                    m.store_errors.inc();
                }
                Ok(None) => m.store_misses.inc(),
                Err(_) => m.store_errors.inc(),
            }
        }

        let work = Stopwatch::start();
        let (response, cacheable) = self.execute(endpoint, &job, &circuit);
        m.work_hist.observe(work.elapsed());

        if cacheable {
            self.shared
                .cache
                .put(key, response.status, response.body.clone());
            if let Some(store) = &self.shared.store {
                let stored = encode_stored(response.status, &response.body);
                if store.put(key, self.shared.store_fp, &stored).is_err() {
                    m.store_errors.inc();
                }
            }
        }
        response.with_header("x-cache", "miss")
    }

    /// Runs one job. Returns the response plus whether it may be cached
    /// (only clean, undegraded, uninterrupted 200s are).
    fn execute(
        &self,
        endpoint: Endpoint,
        job: &JobRequest,
        circuit: &mebl_netlist::Circuit,
    ) -> (Response, bool) {
        let m = &self.shared.metrics;
        let interrupt = &self.shared.interrupt;
        let circuit_name = job.bench.as_deref().unwrap_or("inline").to_string();
        let router = Router::new(job.router_config(self.shared.default_budget));
        let shard_opts = job.shard_options(self.shared.default_budget);
        if shard_opts.is_some() {
            m.sharded_jobs.inc();
        }

        // Supervision: a panicking job must cost one typed 500, not the
        // worker thread. The unwind boundary lives in `mebl_par` so the
        // pool abstraction owns it; `run_scoped` would otherwise tear
        // the whole server down on the first bad job.
        let result = mebl_par::supervise(|| {
            if self.shared.inject_panic_seed.is_some_and(|seed| seed == job.seed) {
                std::panic::panic_any("injected fault: panic_on_seed".to_string());
            }
            let outcome = match &shard_opts {
                Some(opts) => mebl_shard::route_sharded_under(circuit, opts, interrupt)
                    .map(|run| run.outcome)
                    .map_err(JobError::from)?,
                None => router
                    .try_route_under(circuit, interrupt)
                    .map_err(JobError::Route)?,
            };
            let body = match endpoint {
                Endpoint::Route => {
                    route_response_json(&circuit_name, job.mode, &outcome, false)
                }
                Endpoint::RouteOutcome => {
                    outcome_response_json(&circuit_name, job.mode, circuit, &outcome)
                }
                Endpoint::Audit => {
                    let audit = mebl_audit::audit_outcome(circuit, router.config(), &outcome);
                    audit_response_json(
                        &circuit_name,
                        job.mode,
                        &outcome,
                        &audit,
                        job.strict,
                        false,
                    )
                }
            };
            Ok((body, outcome.is_degraded()))
        });

        match result {
            Err(_panic_message) => {
                m.worker_panics.inc();
                (
                    Response::json(
                        500,
                        error_json("worker-panic", "job panicked; worker recovered").encode(),
                    ),
                    false,
                )
            }
            Ok(Err(JobError::Panel { key, detail })) => {
                m.internal_errors.inc();
                (
                    Response::json(
                        500,
                        error_json("panel-failed", &format!("panel {key}: {detail}")).encode(),
                    ),
                    false,
                )
            }
            Ok(Err(JobError::Route(RouteError::InvalidConfig(detail)))) => {
                m.bad_requests.inc();
                (
                    Response::json(400, error_json("invalid-config", &detail).encode()),
                    false,
                )
            }
            Ok(Err(JobError::Route(e @ RouteError::InvalidCircuit(_)))) => {
                m.invalid_circuits.inc();
                (
                    Response::json(422, error_json("invalid-circuit", &e.to_string()).encode()),
                    false,
                )
            }
            Ok(Err(JobError::Route(RouteError::BudgetExhausted))) => {
                if interrupt.is_cancelled_now() {
                    m.cancelled_by_shutdown.inc();
                    (
                        Response::json(
                            503,
                            error_json("shutting-down", "cancelled before routing started")
                                .encode(),
                        ),
                        false,
                    )
                } else {
                    m.budget_exhausted.inc();
                    (
                        Response::json(
                            504,
                            error_json("budget-exhausted", "budget spent before routing")
                                .encode(),
                        ),
                        false,
                    )
                }
            }
            Ok(Ok((body, degraded))) => {
                if degraded {
                    m.degraded.inc();
                    if interrupt.is_cancelled_now() {
                        m.cancelled_by_shutdown.inc();
                    }
                } else {
                    m.clean.inc();
                }
                let cacheable = !degraded && !interrupt.is_cancelled_now();
                (Response::json(200, body.encode()), cacheable)
            }
        }
    }

    /// The `POST /route/delta` path: same parse/cache/store tiers as
    /// [`Server::job`], but execution patches a prior outcome instead of
    /// routing from scratch. The delta cache key chains the base
    /// `/route` key with a canonical rendering of the edit list, so an
    /// empty edit list still keys differently from `/route` while its
    /// *body* stays byte-identical to the `/route` response.
    fn delta_job(&self, request: &Request) -> Response {
        let m = &self.shared.metrics;
        m.delta_requests.inc();
        if self.shared.draining.load(Ordering::SeqCst) {
            m.shutdown_rejects.inc();
            return Response::json(
                503,
                error_json("shutting-down", "server is draining").encode(),
            );
        }

        let req = match std::str::from_utf8(&request.body)
            .map_err(|_| "body is not UTF-8".to_string())
            .and_then(|text| crate::json::parse(text).map_err(|e| e.to_string()))
            .and_then(|doc| DeltaRequest::from_json(&doc))
        {
            Ok(req) => req,
            Err(detail) => {
                m.bad_requests.inc();
                return Response::json(400, error_json("bad-request", &detail).encode());
            }
        };

        let (circuit_text, circuit) = match req.job.resolve_circuit() {
            Ok(resolved) => resolved,
            Err((kind @ "invalid-circuit", detail)) => {
                m.invalid_circuits.inc();
                return Response::json(422, error_json(kind, &detail).encode());
            }
            Err((kind, detail)) => {
                m.bad_requests.inc();
                return Response::json(400, error_json(kind, &detail).encode());
            }
        };

        let base_key = req
            .job
            .cache_key("route", &circuit_text, self.shared.default_budget);
        let key = fnv1a_extend(
            base_key,
            format!("endpoint=route-delta;edits={}", canonical_edits(&req.edits)).bytes(),
        );
        if let Some((status, body)) = self.shared.cache.get(key) {
            m.cache_hits.inc();
            return Response::json(status, body).with_header("x-cache", "hit");
        }
        m.cache_misses.inc();

        if let Some(store) = &self.shared.store {
            match store.get(key, self.shared.store_fp) {
                Ok(Some(bytes)) => {
                    if let Some((status, body)) = decode_stored(&bytes) {
                        m.store_hits.inc();
                        self.shared.cache.put(key, status, body.clone());
                        return Response::json(status, body).with_header("x-cache", "disk");
                    }
                    m.store_errors.inc();
                }
                Ok(None) => m.store_misses.inc(),
                Err(_) => m.store_errors.inc(),
            }
        }

        let work = Stopwatch::start();
        let (response, cacheable) = self.execute_delta(&req, base_key, &circuit);
        m.work_hist.observe(work.elapsed());

        if cacheable {
            self.shared
                .cache
                .put(key, response.status, response.body.clone());
            if let Some(store) = &self.shared.store {
                let stored = encode_stored(response.status, &response.body);
                if store.put(key, self.shared.store_fp, &stored).is_err() {
                    m.store_errors.inc();
                }
            }
        }
        response.with_header("x-cache", "miss")
    }

    /// Runs one delta job: the prior outcome comes from the outcome
    /// cache (routed from scratch under the same budget on a miss), then
    /// `mebl-delta` rips up and re-routes only the affected-net closure.
    /// Returns the response plus whether it may be cached.
    fn execute_delta(
        &self,
        req: &DeltaRequest,
        base_key: u64,
        circuit: &mebl_netlist::Circuit,
    ) -> (Response, bool) {
        let m = &self.shared.metrics;
        let interrupt = &self.shared.interrupt;
        let circuit_name = req.job.bench.as_deref().unwrap_or("inline").to_string();
        let router = Router::new(req.job.router_config(self.shared.default_budget));

        let result = mebl_par::supervise(|| {
            let prior: PriorOutcome = match self.shared.outcomes.get(base_key) {
                Some(prior) => prior,
                None => {
                    let outcome = router.try_route_under(circuit, interrupt)?;
                    let prior: PriorOutcome = Arc::new((circuit.clone(), outcome));
                    // Only clean priors are worth keeping: a degraded
                    // prior reflects the budget that produced it, and
                    // patching on top of it would bake that in.
                    if !prior.1.is_degraded() {
                        self.shared.outcomes.put(base_key, prior.clone());
                    }
                    prior
                }
            };
            let delta = mebl_delta::route_delta_under(
                circuit,
                &prior.1,
                &req.edits,
                router.config(),
                interrupt,
            );
            Ok((delta, prior.1.is_degraded()))
        });

        match result {
            Err(_panic_message) => {
                m.worker_panics.inc();
                (
                    Response::json(
                        500,
                        error_json("worker-panic", "job panicked; worker recovered").encode(),
                    ),
                    false,
                )
            }
            Ok(Err(RouteError::InvalidConfig(detail))) => {
                m.bad_requests.inc();
                (
                    Response::json(400, error_json("invalid-config", &detail).encode()),
                    false,
                )
            }
            Ok(Err(e @ RouteError::InvalidCircuit(_))) => {
                m.invalid_circuits.inc();
                (
                    Response::json(422, error_json("invalid-circuit", &e.to_string()).encode()),
                    false,
                )
            }
            Ok(Err(RouteError::BudgetExhausted)) => {
                if interrupt.is_cancelled_now() {
                    m.cancelled_by_shutdown.inc();
                    (
                        Response::json(
                            503,
                            error_json("shutting-down", "cancelled before routing started")
                                .encode(),
                        ),
                        false,
                    )
                } else {
                    m.budget_exhausted.inc();
                    (
                        Response::json(
                            504,
                            error_json("budget-exhausted", "budget spent before routing")
                                .encode(),
                        ),
                        false,
                    )
                }
            }
            Ok(Ok((Err(e), _))) => {
                m.invalid_circuits.inc();
                (
                    Response::json(422, error_json("invalid-edits", &e.to_string()).encode()),
                    false,
                )
            }
            Ok(Ok((Ok(delta), prior_degraded))) => {
                let degraded = prior_degraded || delta.outcome.is_degraded();
                if degraded {
                    m.degraded.inc();
                    if interrupt.is_cancelled_now() {
                        m.cancelled_by_shutdown.inc();
                    }
                } else {
                    m.clean.inc();
                }
                let body =
                    route_response_json(&circuit_name, req.job.mode, &delta.outcome, false);
                let cacheable = !degraded && !interrupt.is_cancelled_now();
                (Response::json(200, body.encode()), cacheable)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn queue_bounds_and_drains_after_close() {
        // TcpStream cannot be fabricated without I/O, so bound/close
        // semantics are covered via the refusal paths using real
        // loopback sockets in tests/serve.rs; here we check the pure
        // parts: capacity clamping and closed-empty pop.
        let q = JobQueue::new(0);
        assert_eq!(q.capacity, 1);
        assert_eq!(q.len(), 0);
        q.close();
        assert!(q.pop().is_none());
    }

    #[test]
    fn handle_latches_drain() {
        let server = Server::bind(&ServeConfig::default()).expect("bind loopback");
        let handle = server.handle();
        assert!(!handle.is_draining());
        handle.shutdown();
        handle.shutdown(); // idempotent
        assert!(handle.is_draining());
        assert!(server.shared.interrupt.is_cancelled_now());
        assert!(server.shared.queue.pop().is_none());
    }

    #[test]
    fn stored_payloads_round_trip() {
        let bytes = encode_stored(200, br#"{"status":"ok"}"#);
        assert_eq!(
            decode_stored(&bytes),
            Some((200, br#"{"status":"ok"}"#.to_vec()))
        );
        // An empty body is legal; a truncated header is not.
        assert_eq!(decode_stored(&encode_stored(503, b"")), Some((503, Vec::new())));
        assert_eq!(decode_stored(&[0x01]), None);
        assert_eq!(decode_stored(&[]), None);
    }

    #[test]
    fn bind_resolves_ephemeral_port() {
        let server = Server::bind(&ServeConfig::default()).expect("bind loopback");
        assert_ne!(server.local_addr().port(), 0);
    }
}
