//! Hand-rolled minimal JSON: one value model, a compact deterministic
//! encoder and a hardened recursive-descent parser.
//!
//! The workspace builds fully offline, so there is no serde; this module
//! is the single machine-readable format shared by the service daemon
//! and the CLI's `--json` output. Two properties matter more than
//! generality:
//!
//! * **Deterministic encoding** — objects preserve insertion order and
//!   numbers have exactly one rendering, so encoding the same value
//!   twice yields identical bytes. The serve-layer cache contract
//!   (cached body bytes == cold body bytes) rests on this.
//! * **Hostile-input safety** — the parser is fed raw request bodies
//!   from the network. It never panics, bounds its recursion depth and
//!   rejects trailing garbage.

use std::fmt;

/// Maximum nesting depth the parser accepts. Service payloads are two
/// levels deep; 64 leaves slack without allowing stack exhaustion.
const MAX_DEPTH: u32 = 64;

/// One JSON value.
///
/// Numbers keep their integer identity: `Int` round-trips every i64
/// (routing counters are u64/usize but fit comfortably), while `Float`
/// is only produced for values with a fraction or exponent.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Integer without fraction or exponent.
    Int(i64),
    /// Any other number.
    Float(f64),
    /// String.
    Str(String),
    /// Array.
    Arr(Vec<Json>),
    /// Object; insertion-ordered key/value pairs (duplicate keys are
    /// rejected by the parser).
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Builds an object from key/value pairs (insertion order kept).
    pub fn obj(pairs: Vec<(&str, Json)>) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// Object field lookup; `None` for non-objects or missing keys.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// String contents, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Boolean value, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Integer value, if this is an `Int`.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Json::Int(n) => Some(*n),
            _ => None,
        }
    }

    /// Non-negative integer value, if this is a non-negative `Int`.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Int(n) if *n >= 0 => Some(*n as u64),
            _ => None,
        }
    }

    /// Numeric value as f64 (accepts both number variants).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Int(n) => Some(*n as f64),
            Json::Float(x) => Some(*x),
            _ => None,
        }
    }

    /// Array elements, if this is an array.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Compact, deterministic encoding.
    pub fn encode(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(true) => out.push_str("true"),
            Json::Bool(false) => out.push_str("false"),
            Json::Int(n) => out.push_str(&n.to_string()),
            Json::Float(x) => {
                // Non-finite floats have no JSON rendering; the service
                // never produces them, but encode defensively as null.
                if x.is_finite() {
                    out.push_str(&format!("{x:?}"));
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => write_escaped(s, out),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Json::Obj(pairs) => {
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(k, out);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }
}

fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

/// A parse failure with its byte offset.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset into the input where parsing failed.
    pub offset: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid JSON at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for JsonError {}

/// Parses one JSON document; trailing non-whitespace is an error.
pub fn parse(text: &str) -> Result<Json, JsonError> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let value = p.value(0)?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after the document"));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: impl Into<String>) -> JsonError {
        JsonError {
            offset: self.pos,
            message: message.into(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn consume(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(format!("expected `{}`", b as char)))
        }
    }

    fn value(&mut self, depth: u32) -> Result<Json, JsonError> {
        if depth > MAX_DEPTH {
            return Err(self.err("nesting too deep"));
        }
        match self.peek() {
            Some(b'{') => self.object(depth),
            Some(b'[') => self.array(depth),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            Some(c) => Err(self.err(format!("unexpected `{}`", c as char))),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(format!("expected `{word}`")))
        }
    }

    fn object(&mut self, depth: u32) -> Result<Json, JsonError> {
        self.consume(b'{')?;
        let mut pairs: Vec<(String, Json)> = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            if pairs.iter().any(|(k, _)| *k == key) {
                return Err(self.err(format!("duplicate key `{key}`")));
            }
            self.skip_ws();
            self.consume(b':')?;
            self.skip_ws();
            let value = self.value(depth + 1)?;
            pairs.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(pairs));
                }
                _ => return Err(self.err("expected `,` or `}`")),
            }
        }
    }

    fn array(&mut self, depth: u32) -> Result<Json, JsonError> {
        self.consume(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected `,` or `]`")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.consume(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            self.pos += 1;
                            let c = self.unicode_escape()?;
                            out.push(c);
                            continue;
                        }
                        _ => return Err(self.err("bad escape")),
                    }
                    self.pos += 1;
                }
                Some(c) if c < 0x20 => return Err(self.err("raw control character in string")),
                Some(_) => {
                    // Consume one UTF-8 character (input is a &str, so
                    // boundaries are valid by construction).
                    let rest = &self.bytes[self.pos..];
                    let len = utf8_len(rest[0]);
                    let chunk = rest.get(..len).ok_or_else(|| self.err("truncated UTF-8"))?;
                    match std::str::from_utf8(chunk) {
                        Ok(s) => out.push_str(s),
                        Err(_) => return Err(self.err("invalid UTF-8")),
                    }
                    self.pos += len;
                }
            }
        }
    }

    /// Parses the 4 hex digits of a `\u` escape (the `\u` itself is
    /// already consumed); handles surrogate pairs.
    fn unicode_escape(&mut self) -> Result<char, JsonError> {
        let hi = self.hex4()?;
        if (0xD800..0xDC00).contains(&hi) {
            // High surrogate: require a following \uXXXX low surrogate.
            if self.bytes[self.pos..].starts_with(b"\\u") {
                self.pos += 2;
                let lo = self.hex4()?;
                if (0xDC00..0xE000).contains(&lo) {
                    let code = 0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00);
                    return char::from_u32(code).ok_or_else(|| self.err("bad surrogate pair"));
                }
            }
            return Err(self.err("lone high surrogate"));
        }
        if (0xDC00..0xE000).contains(&hi) {
            return Err(self.err("lone low surrogate"));
        }
        char::from_u32(hi).ok_or_else(|| self.err("bad \\u escape"))
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        let chunk = self
            .bytes
            .get(self.pos..self.pos + 4)
            .ok_or_else(|| self.err("truncated \\u escape"))?;
        let mut value = 0u32;
        for &b in chunk {
            let digit = (b as char)
                .to_digit(16)
                .ok_or_else(|| self.err("non-hex digit in \\u escape"))?;
            value = value * 16 + digit;
        }
        self.pos += 4;
        Ok(value)
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let digit_start = self.pos;
        let int_digits = self.digits()?;
        if int_digits > 1 && self.bytes[digit_start] == b'0' {
            return Err(self.err("leading zero"));
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            self.digits()?;
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            self.digits()?;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        if !is_float {
            if let Ok(n) = text.parse::<i64>() {
                return Ok(Json::Int(n));
            }
        }
        text.parse::<f64>()
            .map(Json::Float)
            .map_err(|_| self.err("invalid number"))
    }

    /// Consumes one or more ASCII digits, returning how many.
    fn digits(&mut self) -> Result<usize, JsonError> {
        let start = self.pos;
        while self.peek().is_some_and(|b| b.is_ascii_digit()) {
            self.pos += 1;
        }
        if self.pos == start {
            return Err(self.err("expected a digit"));
        }
        Ok(self.pos - start)
    }
}

fn utf8_len(first: u8) -> usize {
    match first {
        0x00..=0x7F => 1,
        0xC0..=0xDF => 2,
        0xE0..=0xEF => 3,
        _ => 4,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip(text: &str) -> String {
        parse(text).unwrap().encode()
    }

    #[test]
    fn scalars_round_trip() {
        assert_eq!(round_trip("null"), "null");
        assert_eq!(round_trip("true"), "true");
        assert_eq!(round_trip("false"), "false");
        assert_eq!(round_trip("42"), "42");
        assert_eq!(round_trip("-7"), "-7");
        assert_eq!(round_trip("\"hi\\n\\\"there\\\"\""), "\"hi\\n\\\"there\\\"\"");
        assert_eq!(round_trip("1.5"), "1.5");
        assert_eq!(round_trip("1e3"), "1000.0");
    }

    #[test]
    fn containers_round_trip_in_order() {
        let text = r#"{"b":1,"a":[2,{"x":null}],"c":"s"}"#;
        assert_eq!(round_trip(text), text);
    }

    #[test]
    fn integer_identity_preserved() {
        assert_eq!(parse("9007199254740993").unwrap(), Json::Int(9007199254740993));
        assert_eq!(parse("9007199254740993").unwrap().as_u64(), Some(9007199254740993));
        // Larger than i64 falls back to float rather than failing.
        assert!(matches!(parse("99999999999999999999").unwrap(), Json::Float(_)));
    }

    #[test]
    fn unicode_escapes() {
        assert_eq!(parse(r#""A""#).unwrap(), Json::Str("A".into()));
        assert_eq!(parse(r#""😀""#).unwrap(), Json::Str("😀".into()));
        assert!(parse(r#""\ud83d""#).is_err());
        assert_eq!(parse("\"αβγ\"").unwrap(), Json::Str("αβγ".into()));
    }

    #[test]
    fn hostile_inputs_error_without_panic() {
        for bad in [
            "", "{", "[", "\"", "{\"a\":}", "{\"a\":1,}", "[1,]", "tru", "01",
            "1.", "1e", "--1", "{\"a\":1}x", "{\"a\":1,\"a\":2}", "\"\u{1}\"",
            "\u{0}",
        ] {
            assert!(parse(bad).is_err(), "should reject {bad:?}");
        }
        // Deep nesting is bounded, not a stack overflow.
        let deep = "[".repeat(100_000) + &"]".repeat(100_000);
        assert!(parse(&deep).is_err());
    }

    #[test]
    fn accessors() {
        let v = parse(r#"{"n":3,"s":"x","b":true,"a":[1],"f":2.5}"#).unwrap();
        assert_eq!(v.get("n").and_then(Json::as_u64), Some(3));
        assert_eq!(v.get("s").and_then(Json::as_str), Some("x"));
        assert_eq!(v.get("b").and_then(Json::as_bool), Some(true));
        assert_eq!(v.get("a").and_then(Json::as_array).map(<[Json]>::len), Some(1));
        assert_eq!(v.get("f").and_then(Json::as_f64), Some(2.5));
        assert_eq!(v.get("missing"), None);
        assert_eq!(Json::Null.get("x"), None);
    }

    #[test]
    fn encoding_is_deterministic() {
        let a = parse(r#"{"x":1,"y":[true,null,"z"]}"#).unwrap();
        assert_eq!(a.encode(), a.clone().encode());
        assert_eq!(parse(&a.encode()).unwrap(), a);
    }
}
