//! Service counters and latency histograms.
//!
//! All counters are relaxed atomics — they are observability, not
//! synchronization — and the whole structure serializes to the
//! `GET /metrics` JSON body. Latency histograms use fixed power-of-four
//! microsecond buckets so the report shape is static and comparable
//! across runs; wall-clock reads go through `mebl_route::Stopwatch`
//! (the workspace's sanctioned clock site), never a raw `Instant`.

use crate::json::Json;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// Histogram bucket upper bounds in microseconds (the last bucket is
/// unbounded). Powers of four from 16 µs to ~67 s.
pub const BUCKET_BOUNDS_US: [u64; 12] = [
    16,
    64,
    256,
    1_024,
    4_096,
    16_384,
    65_536,
    262_144,
    1_048_576,
    4_194_304,
    16_777_216,
    67_108_864,
];

/// A fixed-bucket latency histogram.
#[derive(Debug, Default)]
pub struct Histogram {
    buckets: [AtomicU64; BUCKET_BOUNDS_US.len() + 1],
    count: AtomicU64,
    total_us: AtomicU64,
}

impl Histogram {
    /// Records one observation.
    pub fn observe(&self, elapsed: Duration) {
        let us = u64::try_from(elapsed.as_micros()).unwrap_or(u64::MAX);
        let idx = BUCKET_BOUNDS_US
            .iter()
            .position(|&bound| us < bound)
            .unwrap_or(BUCKET_BOUNDS_US.len());
        self.buckets[idx].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.total_us.fetch_add(us, Ordering::Relaxed);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    fn to_json(&self) -> Json {
        let buckets: Vec<Json> = self
            .buckets
            .iter()
            .map(|b| Json::Int(b.load(Ordering::Relaxed) as i64))
            .collect();
        Json::obj(vec![
            ("count", Json::Int(self.count() as i64)),
            (
                "total_us",
                Json::Int(self.total_us.load(Ordering::Relaxed) as i64),
            ),
            (
                "bucket_bounds_us",
                Json::Arr(BUCKET_BOUNDS_US.iter().map(|&b| Json::Int(b as i64)).collect()),
            ),
            ("buckets", Json::Arr(buckets)),
        ])
    }
}

/// One relaxed counter.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// Adds one.
    pub fn inc(&self) {
        self.0.fetch_add(1, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Everything the service counts.
#[derive(Debug, Default)]
pub struct Metrics {
    /// Requests fully read off a connection (any endpoint).
    pub requests: Counter,
    /// `POST /route` jobs.
    pub route_requests: Counter,
    /// `POST /audit` jobs.
    pub audit_requests: Counter,
    /// `POST /route/delta` jobs.
    pub delta_requests: Counter,
    /// `POST /route/outcome` jobs (fragment requests from a coordinator).
    pub outcome_requests: Counter,
    /// Jobs that ran through the sharded panel pipeline (`shards` set).
    pub sharded_jobs: Counter,
    /// Responses served straight from the result cache.
    pub cache_hits: Counter,
    /// Jobs that had to run because the cache missed.
    pub cache_misses: Counter,
    /// Connections rejected with 429 because the job queue was full.
    pub queue_rejects: Counter,
    /// Connections answered 503 during shutdown drain.
    pub shutdown_rejects: Counter,
    /// Requests rejected as unparseable (400) or oversized (413).
    pub bad_requests: Counter,
    /// Jobs rejected for an invalid circuit payload (422).
    pub invalid_circuits: Counter,
    /// Jobs whose budget was spent before routing could start (504).
    pub budget_exhausted: Counter,
    /// Jobs that panicked internally and returned 500.
    pub internal_errors: Counter,
    /// Jobs whose panic was caught by worker supervision (also 500;
    /// the pool stays alive).
    pub worker_panics: Counter,
    /// Responses served from the persistent store tier.
    pub store_hits: Counter,
    /// Jobs that missed both cache tiers.
    pub store_misses: Counter,
    /// Store reads/writes that failed (the job still ran; the store
    /// degrades to memory-only).
    pub store_errors: Counter,
    /// Jobs that completed with recorded degradations.
    pub degraded: Counter,
    /// Jobs that completed clean (200, no degradations).
    pub clean: Counter,
    /// Peers that disconnected before a request or response completed.
    pub disconnects: Counter,
    /// In-flight jobs cancelled by shutdown.
    pub cancelled_by_shutdown: Counter,
    /// Request read + parse latency.
    pub parse_hist: Histogram,
    /// Job execution latency (routing/audit work, cache hits excluded).
    pub work_hist: Histogram,
    /// Whole-connection latency (read to response flushed).
    pub total_hist: Histogram,
}

impl Metrics {
    /// Serializes every counter and histogram, plus the caller-supplied
    /// gauges that live outside this struct. `store_records` is `None`
    /// when no persistent store is mounted (rendered as JSON null, so
    /// "disabled" and "empty" stay distinguishable).
    pub fn to_json(
        &self,
        queue_depth: usize,
        in_flight: usize,
        cache_len: usize,
        store_records: Option<usize>,
    ) -> Json {
        Json::obj(vec![
            ("requests", Json::Int(self.requests.get() as i64)),
            ("route_requests", Json::Int(self.route_requests.get() as i64)),
            ("audit_requests", Json::Int(self.audit_requests.get() as i64)),
            ("delta_requests", Json::Int(self.delta_requests.get() as i64)),
            (
                "outcome_requests",
                Json::Int(self.outcome_requests.get() as i64),
            ),
            ("sharded_jobs", Json::Int(self.sharded_jobs.get() as i64)),
            ("cache_hits", Json::Int(self.cache_hits.get() as i64)),
            ("cache_misses", Json::Int(self.cache_misses.get() as i64)),
            ("cache_entries", Json::Int(cache_len as i64)),
            ("queue_depth", Json::Int(queue_depth as i64)),
            ("in_flight", Json::Int(in_flight as i64)),
            ("queue_rejects", Json::Int(self.queue_rejects.get() as i64)),
            ("shutdown_rejects", Json::Int(self.shutdown_rejects.get() as i64)),
            ("bad_requests", Json::Int(self.bad_requests.get() as i64)),
            ("invalid_circuits", Json::Int(self.invalid_circuits.get() as i64)),
            ("budget_exhausted", Json::Int(self.budget_exhausted.get() as i64)),
            ("internal_errors", Json::Int(self.internal_errors.get() as i64)),
            ("worker_panics", Json::Int(self.worker_panics.get() as i64)),
            ("store_hits", Json::Int(self.store_hits.get() as i64)),
            ("store_misses", Json::Int(self.store_misses.get() as i64)),
            ("store_errors", Json::Int(self.store_errors.get() as i64)),
            (
                "store_records",
                store_records.map_or(Json::Null, |n| Json::Int(n as i64)),
            ),
            ("degraded", Json::Int(self.degraded.get() as i64)),
            ("clean", Json::Int(self.clean.get() as i64)),
            ("disconnects", Json::Int(self.disconnects.get() as i64)),
            (
                "cancelled_by_shutdown",
                Json::Int(self.cancelled_by_shutdown.get() as i64),
            ),
            ("parse_latency", self.parse_hist.to_json()),
            ("work_latency", self.work_hist.to_json()),
            ("total_latency", self.total_hist.to_json()),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_buckets_by_magnitude() {
        let h = Histogram::default();
        h.observe(Duration::from_micros(1)); // bucket 0 (< 16 µs)
        h.observe(Duration::from_micros(100)); // bucket 2 (< 256 µs)
        h.observe(Duration::from_secs(120)); // overflow bucket
        assert_eq!(h.count(), 3);
        let json = h.to_json();
        let buckets = json.get("buckets").and_then(Json::as_array).unwrap();
        assert_eq!(buckets.len(), BUCKET_BOUNDS_US.len() + 1);
        assert_eq!(buckets[0].as_u64(), Some(1));
        assert_eq!(buckets[2].as_u64(), Some(1));
        assert_eq!(buckets.last().unwrap().as_u64(), Some(1));
    }

    #[test]
    fn metrics_json_has_gauges_and_counters() {
        let m = Metrics::default();
        m.requests.inc();
        m.cache_hits.inc();
        let json = m.to_json(3, 1, 7, None);
        assert_eq!(json.get("requests").and_then(Json::as_u64), Some(1));
        assert_eq!(json.get("cache_hits").and_then(Json::as_u64), Some(1));
        assert_eq!(json.get("queue_depth").and_then(Json::as_u64), Some(3));
        assert_eq!(json.get("in_flight").and_then(Json::as_u64), Some(1));
        assert_eq!(json.get("cache_entries").and_then(Json::as_u64), Some(7));
        assert_eq!(json.get("worker_panics").and_then(Json::as_u64), Some(0));
        assert!(json.get("work_latency").is_some());
        // Store gauges: null while disabled, a number once mounted.
        assert!(matches!(json.get("store_records"), Some(Json::Null)));
        let json = m.to_json(3, 1, 7, Some(5));
        assert_eq!(json.get("store_records").and_then(Json::as_u64), Some(5));
    }

    /// Pins the /metrics JSON schema: exact key set, in order. The
    /// coordinator and the CI smoke driver route on these names, so
    /// adding a counter means extending this list deliberately —
    /// renames and re-orderings are breaking changes.
    #[test]
    fn metrics_json_schema_is_pinned() {
        let json = Metrics::default().to_json(0, 0, 0, None);
        let Json::Obj(pairs) = &json else {
            panic!("metrics JSON is not an object")
        };
        let keys: Vec<&str> = pairs.iter().map(|(k, _)| k.as_str()).collect();
        assert_eq!(
            keys,
            [
                "requests",
                "route_requests",
                "audit_requests",
                "delta_requests",
                "outcome_requests",
                "sharded_jobs",
                "cache_hits",
                "cache_misses",
                "cache_entries",
                "queue_depth",
                "in_flight",
                "queue_rejects",
                "shutdown_rejects",
                "bad_requests",
                "invalid_circuits",
                "budget_exhausted",
                "internal_errors",
                "worker_panics",
                "store_hits",
                "store_misses",
                "store_errors",
                "store_records",
                "degraded",
                "clean",
                "disconnects",
                "cancelled_by_shutdown",
                "parse_latency",
                "work_latency",
                "total_latency",
            ]
        );
        // Everything except the histograms and the store gauge is an
        // integer, so scrapers can sum across workers without casts.
        for (key, value) in pairs {
            match key.as_str() {
                "parse_latency" | "work_latency" | "total_latency" => {
                    assert!(value.get("count").is_some(), "{key} lost its histogram")
                }
                "store_records" => assert!(matches!(value, Json::Null | Json::Int(_))),
                _ => assert!(matches!(value, Json::Int(_)), "{key} is not an integer"),
            }
        }
    }
}
