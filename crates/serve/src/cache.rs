//! Content-addressed LRU cache of finished responses.
//!
//! Keys are FNV-1a fingerprints of `(circuit bytes, canonicalized
//! config, endpoint)`; values are complete `(status, body)` responses.
//! Because routing is deterministic (DESIGN.md §9) and response bodies
//! contain no wall-clock fields, serving the stored bytes is
//! **bit-identical** to re-running the job — the cache is a pure
//! speedup, never an observable behavior change. Only clean
//! (undegraded) results are inserted: a degraded body reflects the
//! budget that produced it, not the request, so replaying it for a
//! future identical request would be wrong.

use std::collections::BTreeMap;
use std::sync::Mutex;

/// FNV-1a over a byte stream — the workspace's standard fingerprint
/// (same constants as `tests/determinism.rs`).
pub fn fnv1a(bytes: impl IntoIterator<Item = u8>) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Extends an existing FNV-1a state with more bytes (used to chain the
/// circuit fingerprint with the canonical config fingerprint).
pub fn fnv1a_extend(mut h: u64, bytes: impl IntoIterator<Item = u8>) -> u64 {
    for b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

#[derive(Debug)]
struct Entry {
    status: u16,
    body: Vec<u8>,
    last_used: u64,
}

#[derive(Debug, Default)]
struct Inner {
    map: BTreeMap<u64, Entry>,
    tick: u64,
}

/// A fixed-capacity, least-recently-used response cache.
///
/// Eviction scans for the minimum `last_used` stamp — O(capacity) —
/// which is fine at service cache sizes (tens to a few thousand
/// entries) and keeps the structure an ordered map with deterministic
/// iteration.
#[derive(Debug)]
pub struct ResultCache {
    inner: Mutex<Inner>,
    capacity: usize,
}

impl ResultCache {
    /// Cache holding at most `capacity` responses. Capacity 0 disables
    /// caching entirely.
    pub fn new(capacity: usize) -> Self {
        Self {
            inner: Mutex::new(Inner::default()),
            capacity,
        }
    }

    /// Looks up `key`, refreshing its recency on a hit.
    pub fn get(&self, key: u64) -> Option<(u16, Vec<u8>)> {
        let mut inner = lock(&self.inner);
        inner.tick += 1;
        let tick = inner.tick;
        let entry = inner.map.get_mut(&key)?;
        entry.last_used = tick;
        Some((entry.status, entry.body.clone()))
    }

    /// Inserts a response, evicting the least-recently-used entry when
    /// full. Overwrites an existing entry for the same key.
    pub fn put(&self, key: u64, status: u16, body: Vec<u8>) {
        if self.capacity == 0 {
            return;
        }
        let mut inner = lock(&self.inner);
        inner.tick += 1;
        let tick = inner.tick;
        if !inner.map.contains_key(&key) && inner.map.len() >= self.capacity {
            if let Some((&oldest, _)) = inner
                .map
                .iter()
                .min_by_key(|(_, e)| e.last_used)
            {
                inner.map.remove(&oldest);
            }
        }
        inner.map.insert(
            key,
            Entry {
                status,
                body,
                last_used: tick,
            },
        );
    }

    /// Number of cached responses.
    pub fn len(&self) -> usize {
        lock(&self.inner).map.len()
    }

    /// Whether the cache holds nothing.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Locks a mutex, recovering the data on poisoning: the cache holds only
/// plain data, so a panicking writer cannot leave it logically torn.
fn lock<T>(mutex: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    mutex.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fnv_matches_published_vector() {
        // FNV-1a("a") = 0xaf63dc4c8601ec8c
        assert_eq!(fnv1a(*b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a([]), 0xcbf2_9ce4_8422_2325);
        // Chaining equals hashing the concatenation.
        assert_eq!(fnv1a_extend(fnv1a(*b"ab"), *b"cd"), fnv1a(*b"abcd"));
    }

    #[test]
    fn hit_returns_stored_bytes() {
        let cache = ResultCache::new(4);
        assert!(cache.get(1).is_none());
        cache.put(1, 200, b"body".to_vec());
        assert_eq!(cache.get(1), Some((200, b"body".to_vec())));
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn evicts_least_recently_used() {
        let cache = ResultCache::new(2);
        cache.put(1, 200, b"one".to_vec());
        cache.put(2, 200, b"two".to_vec());
        cache.get(1); // refresh 1; 2 becomes the LRU entry
        cache.put(3, 200, b"three".to_vec());
        assert!(cache.get(1).is_some());
        assert!(cache.get(2).is_none());
        assert!(cache.get(3).is_some());
        assert_eq!(cache.len(), 2);
    }

    #[test]
    fn overwrite_does_not_grow() {
        let cache = ResultCache::new(2);
        cache.put(1, 200, b"a".to_vec());
        cache.put(1, 503, b"b".to_vec());
        assert_eq!(cache.get(1), Some((503, b"b".to_vec())));
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn zero_capacity_disables_caching() {
        let cache = ResultCache::new(0);
        cache.put(1, 200, b"a".to_vec());
        assert!(cache.is_empty());
        assert!(cache.get(1).is_none());
    }
}
