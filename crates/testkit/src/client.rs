//! Blocking loopback HTTP/1.1 client for exercising `mebl-serve`.
//!
//! Tests and the CI smoke driver talk to the daemon through this tiny
//! client instead of raw sockets (the `no-raw-net` lint confines
//! `TcpStream` to the service crate and this file). It speaks exactly
//! the dialect the server emits — one request per connection,
//! `Connection: close` framing — and reads to EOF, so it needs no
//! chunked-transfer or keep-alive logic. It can also send deliberately
//! broken traffic (truncated requests, raw garbage) for the fault
//! harness.

use std::io::{Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::Duration;

/// A parsed response.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HttpResponse {
    /// Status code from the status line.
    pub status: u16,
    /// Header name/value pairs, names lower-cased.
    pub headers: Vec<(String, String)>,
    /// Response body bytes.
    pub body: Vec<u8>,
}

impl HttpResponse {
    /// First header value for `name` (case-insensitive).
    pub fn header(&self, name: &str) -> Option<&str> {
        let name = name.to_ascii_lowercase();
        self.headers
            .iter()
            .find(|(k, _)| *k == name)
            .map(|(_, v)| v.as_str())
    }

    /// The body as UTF-8 text (lossy; test assertions only).
    pub fn body_text(&self) -> String {
        String::from_utf8_lossy(&self.body).into_owned()
    }
}

/// First wait of the retry ladder in [`TestClient::post_json_retry`].
const RETRY_BASE: Duration = Duration::from_millis(2);

/// Ceiling on any single retry wait — also clamps an honored
/// `Retry-After`, so a server advising whole seconds cannot stretch a
/// test run into minutes.
const RETRY_CAP: Duration = Duration::from_millis(250);

/// A client pinned to one server address.
#[derive(Debug, Clone, Copy)]
pub struct TestClient {
    addr: SocketAddr,
    timeout: Duration,
}

impl TestClient {
    /// Client for `addr` with a generous default timeout.
    pub fn new(addr: SocketAddr) -> Self {
        Self {
            addr,
            timeout: Duration::from_secs(60),
        }
    }

    /// Same client with a different socket timeout.
    #[must_use]
    pub fn with_timeout(mut self, timeout: Duration) -> Self {
        self.timeout = timeout;
        self
    }

    fn connect(&self) -> std::io::Result<TcpStream> {
        let stream = TcpStream::connect_timeout(&self.addr, self.timeout)?;
        stream.set_read_timeout(Some(self.timeout))?;
        stream.set_write_timeout(Some(self.timeout))?;
        Ok(stream)
    }

    /// Sends one request and reads the full response.
    pub fn request(
        &self,
        method: &str,
        path: &str,
        body: &[u8],
    ) -> std::io::Result<HttpResponse> {
        let mut stream = self.connect()?;
        let head = format!(
            "{method} {path} HTTP/1.1\r\nhost: {}\r\ncontent-length: {}\r\nconnection: close\r\n\r\n",
            self.addr,
            body.len()
        );
        stream.write_all(head.as_bytes())?;
        stream.write_all(body)?;
        stream.flush()?;
        read_response(&mut stream)
    }

    /// `GET path`.
    pub fn get(&self, path: &str) -> std::io::Result<HttpResponse> {
        self.request("GET", path, b"")
    }

    /// `POST path` with a JSON body.
    pub fn post_json(&self, path: &str, body: &str) -> std::io::Result<HttpResponse> {
        self.request("POST", path, body.as_bytes())
    }

    /// `POST path` with a JSON body, retrying bounded-many times while
    /// the server answers `429` (backpressure) or the connection fails
    /// outright.
    ///
    /// The wait between attempts honors the server's `Retry-After`
    /// header (whole seconds) when one is present, clamped to
    /// [`RETRY_CAP`] so a harness round-trip stays bounded; without the
    /// header it backs off exponentially from [`RETRY_BASE`]. The last
    /// response (or error) is returned as-is once attempts run out, so
    /// callers still observe the `429` they asked the server to emit.
    pub fn post_json_retry(
        &self,
        path: &str,
        body: &str,
        max_attempts: u32,
    ) -> std::io::Result<HttpResponse> {
        let mut backoff = RETRY_BASE;
        let mut last: Option<std::io::Result<HttpResponse>> = None;
        for attempt in 0..max_attempts.max(1) {
            if attempt > 0 {
                std::thread::sleep(backoff);
                backoff = (backoff * 2).min(RETRY_CAP);
            }
            match self.post_json(path, body) {
                Ok(response) if response.status == 429 => {
                    // A 429 carries advice; prefer it over blind
                    // doubling for the *next* wait.
                    if let Some(secs) = response
                        .header("retry-after")
                        .and_then(|v| v.parse::<u64>().ok())
                    {
                        backoff = Duration::from_secs(secs).min(RETRY_CAP);
                    }
                    last = Some(Ok(response));
                }
                Ok(response) => return Ok(response),
                Err(e) => last = Some(Err(e)),
            }
        }
        last.unwrap_or_else(|| {
            Err(std::io::Error::other("post_json_retry: zero attempts"))
        })
    }

    /// Writes raw bytes on a fresh connection and reads whatever comes
    /// back — for protocol-level fault injection (malformed request
    /// lines, bad framing).
    pub fn send_raw(&self, bytes: &[u8]) -> std::io::Result<HttpResponse> {
        let mut stream = self.connect()?;
        stream.write_all(bytes)?;
        stream.flush()?;
        read_response(&mut stream)
    }

    /// Writes a request *prefix* and hangs up mid-flight — the
    /// disconnect fault. Returns once the socket is shut down.
    pub fn send_partial_then_drop(&self, bytes: &[u8]) -> std::io::Result<()> {
        let mut stream = self.connect()?;
        stream.write_all(bytes)?;
        stream.flush()?;
        stream.shutdown(Shutdown::Both)?;
        Ok(())
    }
}

/// How a [`FaultWorker`] misbehaves.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultMode {
    /// The address refuses connections outright (the port was bound
    /// once to reserve it, then released — dials get `ECONNREFUSED`).
    Refuse,
    /// Accepts the connection, then hangs up without reading or
    /// writing a byte.
    AcceptThenDrop,
    /// Answers every request with `429 Too Many Requests`, forever.
    Always429,
    /// Answers `200 OK` with a body that is not valid JSON.
    CorruptJson,
}

/// A deliberately broken `mebl serve` stand-in for coordinator fault
/// tests: never routes anything, only exhibits one failure mode.
///
/// The accept loop is cooperative, not threaded — run [`serve`] on a
/// `mebl_par::run_scoped` role and latch [`stop`] from the driving
/// role when the scenario is over (the loop polls a nonblocking
/// listener, so it notices within milliseconds).
///
/// [`serve`]: FaultWorker::serve
/// [`stop`]: FaultWorker::stop
#[derive(Debug)]
pub struct FaultWorker {
    listener: Option<TcpListener>,
    addr: SocketAddr,
    mode: FaultMode,
    stop: AtomicBool,
}

/// How often [`FaultWorker::serve`] re-checks its stop flag when idle.
const FAULT_POLL: Duration = Duration::from_millis(2);

impl FaultWorker {
    /// Binds a loopback port exhibiting `mode`.
    pub fn bind(mode: FaultMode) -> std::io::Result<FaultWorker> {
        let listener = TcpListener::bind("127.0.0.1:0")?;
        let addr = listener.local_addr()?;
        let listener = if mode == FaultMode::Refuse {
            None // release the port; dials now fail outright
        } else {
            listener.set_nonblocking(true)?;
            Some(listener)
        };
        Ok(FaultWorker {
            listener,
            addr,
            mode,
            stop: AtomicBool::new(false),
        })
    }

    /// The worker's address (valid even for [`FaultMode::Refuse`],
    /// where nothing listens on it).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Asks [`FaultWorker::serve`] to return.
    pub fn stop(&self) {
        self.stop.store(true, Ordering::SeqCst);
    }

    /// Serves connections in this thread until [`FaultWorker::stop`].
    /// Returns immediately for [`FaultMode::Refuse`] (its fault needs
    /// no loop).
    pub fn serve(&self) {
        let Some(listener) = &self.listener else {
            return;
        };
        while !self.stop.load(Ordering::SeqCst) {
            match listener.accept() {
                Ok((stream, _)) => self.answer(stream),
                Err(_) => std::thread::sleep(FAULT_POLL),
            }
        }
    }

    fn answer(&self, mut stream: TcpStream) {
        let _ = stream.set_nonblocking(false);
        let _ = stream.set_read_timeout(Some(Duration::from_millis(250)));
        let _ = stream.set_write_timeout(Some(Duration::from_millis(250)));
        match self.mode {
            FaultMode::Refuse => {}
            FaultMode::AcceptThenDrop => {
                let _ = stream.shutdown(Shutdown::Both);
            }
            FaultMode::Always429 => {
                drain_request(&mut stream);
                let body = br#"{"error":"backpressure","detail":"always busy"}"#;
                let _ = write_response(&mut stream, 429, "Too Many Requests", body);
            }
            FaultMode::CorruptJson => {
                drain_request(&mut stream);
                let _ = write_response(&mut stream, 200, "OK", b"{\"outcome\": not-json");
            }
        }
    }
}

/// Reads until the request's blank line (or a read error/timeout), so
/// the peer's write completes before the scripted answer goes out.
fn drain_request(stream: &mut TcpStream) {
    let mut seen = Vec::new();
    let mut buf = [0u8; 1024];
    loop {
        match stream.read(&mut buf) {
            Ok(0) | Err(_) => return,
            Ok(n) => {
                seen.extend_from_slice(&buf[..n]);
                if seen.windows(4).any(|w| w == b"\r\n\r\n") {
                    return;
                }
            }
        }
    }
}

fn write_response(
    stream: &mut TcpStream,
    status: u16,
    reason: &str,
    body: &[u8],
) -> std::io::Result<()> {
    let head = format!(
        "HTTP/1.1 {status} {reason}\r\ncontent-type: application/json\r\nretry-after: 1\r\ncontent-length: {}\r\nconnection: close\r\n\r\n",
        body.len()
    );
    stream.write_all(head.as_bytes())?;
    stream.write_all(body)?;
    stream.flush()
}

/// Reads a full `Connection: close` response from `stream`.
fn read_response(stream: &mut TcpStream) -> std::io::Result<HttpResponse> {
    let mut raw = Vec::new();
    stream.read_to_end(&mut raw)?;
    parse_response(&raw).map_err(|msg| std::io::Error::new(std::io::ErrorKind::InvalidData, msg))
}

/// Parses response bytes: status line, headers, body. The body is
/// whatever follows the header block (the server closes the connection
/// after one response, so EOF delimits it).
fn parse_response(raw: &[u8]) -> Result<HttpResponse, String> {
    let header_end = raw
        .windows(4)
        .position(|w| w == b"\r\n\r\n")
        .ok_or("no header terminator in response")?;
    let head = std::str::from_utf8(&raw[..header_end])
        .map_err(|_| "non-UTF-8 response head".to_string())?;
    let mut lines = head.split("\r\n");
    let status_line = lines.next().ok_or("empty response")?;
    let mut parts = status_line.splitn(3, ' ');
    let version = parts.next().unwrap_or_default();
    if !version.starts_with("HTTP/1.") {
        return Err(format!("bad status line `{status_line}`"));
    }
    let status: u16 = parts
        .next()
        .unwrap_or_default()
        .parse()
        .map_err(|_| format!("bad status code in `{status_line}`"))?;
    let mut headers = Vec::new();
    for line in lines {
        let (name, value) = line
            .split_once(':')
            .ok_or_else(|| format!("bad header line `{line}`"))?;
        headers.push((name.trim().to_ascii_lowercase(), value.trim().to_string()));
    }
    Ok(HttpResponse {
        status,
        headers,
        body: raw[header_end + 4..].to_vec(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_a_full_response() {
        let raw = b"HTTP/1.1 429 Too Many Requests\r\ncontent-type: application/json\r\nX-Cache: miss\r\n\r\n{\"a\":1}";
        let r = parse_response(raw).unwrap();
        assert_eq!(r.status, 429);
        assert_eq!(r.header("x-cache"), Some("miss"));
        assert_eq!(r.header("X-CACHE"), Some("miss"));
        assert_eq!(r.body_text(), "{\"a\":1}");
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse_response(b"not http at all").is_err());
        assert!(parse_response(b"HTTP/1.1 nope\r\n\r\n").is_err());
        assert!(parse_response(b"SMTP/1.1 200 OK\r\n\r\n").is_err());
    }

    #[test]
    fn empty_body_allowed() {
        let r = parse_response(b"HTTP/1.1 200 OK\r\n\r\n").unwrap();
        assert_eq!(r.status, 200);
        assert!(r.body.is_empty());
    }
}
