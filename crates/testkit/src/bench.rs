//! Tiny wall-clock micro-benchmark harness.
//!
//! Replaces `criterion` for the workspace's `harness = false` benches:
//! warmup iterations followed by a fixed number of timed samples, reporting
//! the median (robust to scheduler noise) plus mean/min/max, and writing a
//! machine-readable JSON report so benchmark history can be diffed across
//! commits.
//!
//! ```no_run
//! use mebl_testkit::bench::BenchSuite;
//!
//! let mut suite = BenchSuite::new("stages");
//! suite.bench("global_routing/wo_line_end", || 2 + 2);
//! suite.finish_to(concat!(env!("CARGO_MANIFEST_DIR"), "/../../results"));
//! ```

use std::io::Write;
use std::path::{Path, PathBuf};
use std::time::Instant;

pub use std::hint::black_box;

/// Timing knobs for a suite. Small by design: these benches exist to track
/// relative stage costs, not to be a statistics engine.
#[derive(Debug, Clone, Copy)]
pub struct BenchConfig {
    /// Untimed iterations before sampling (warms caches and allocator).
    pub warmup_iters: u32,
    /// Timed samples per benchmark; the median is the headline number.
    pub samples: u32,
}

impl Default for BenchConfig {
    fn default() -> Self {
        Self {
            warmup_iters: 3,
            samples: 15,
        }
    }
}

/// One benchmark's timing summary, in nanoseconds.
#[derive(Debug, Clone)]
pub struct BenchRecord {
    /// Benchmark id, conventionally `group/case`.
    pub id: String,
    pub median_ns: u64,
    pub mean_ns: u64,
    pub min_ns: u64,
    pub max_ns: u64,
    /// 95th-percentile sample (nearest-rank); equals the max for small
    /// sample counts.
    pub p95_ns: u64,
    pub samples: u32,
}

impl BenchRecord {
    /// Summarizes pre-sorted-or-not samples into one record.
    fn from_samples(id: String, mut samples_ns: Vec<u64>) -> BenchRecord {
        if samples_ns.is_empty() {
            samples_ns.push(0);
        }
        samples_ns.sort_unstable();
        let n = samples_ns.len();
        let median_ns = if n % 2 == 1 {
            samples_ns[n / 2]
        } else {
            (samples_ns[n / 2 - 1] + samples_ns[n / 2]) / 2
        };
        // Nearest-rank p95: the smallest sample >= 95% of the
        // distribution. ceil(0.95 * n) in integer arithmetic.
        let rank = (n * 95).div_ceil(100).max(1);
        BenchRecord {
            id,
            median_ns,
            mean_ns: samples_ns.iter().sum::<u64>() / n as u64,
            min_ns: samples_ns[0],
            max_ns: samples_ns[n - 1],
            p95_ns: samples_ns[rank - 1],
            samples: n as u32,
        }
    }
}

/// A named collection of benchmarks producing one JSON report.
#[derive(Debug)]
pub struct BenchSuite {
    name: String,
    config: BenchConfig,
    records: Vec<BenchRecord>,
}

impl BenchSuite {
    /// New suite with default timing config.
    pub fn new(name: impl Into<String>) -> Self {
        Self::with_config(name, BenchConfig::default())
    }

    /// New suite with explicit warmup/sample counts.
    pub fn with_config(name: impl Into<String>, config: BenchConfig) -> Self {
        Self {
            name: name.into(),
            config,
            records: Vec::new(),
        }
    }

    /// Times `f` (warmup, then samples) and records + prints the summary.
    /// The closure's result is passed through [`black_box`] so the work
    /// cannot be optimized away.
    pub fn bench<T, F: FnMut() -> T>(&mut self, id: impl Into<String>, mut f: F) -> &BenchRecord {
        let id = id.into();
        for _ in 0..self.config.warmup_iters {
            black_box(f());
        }
        let samples_ns: Vec<u64> = (0..self.config.samples.max(1))
            .map(|_| {
                let start = Instant::now();
                black_box(f());
                u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX)
            })
            .collect();
        self.push_record(BenchRecord::from_samples(id, samples_ns))
    }

    /// Records externally-collected timing samples (nanoseconds) under
    /// `id` — for benchmarks whose unit of work is not a closure call,
    /// such as per-request latencies harvested from a client fleet.
    pub fn record_manual(
        &mut self,
        id: impl Into<String>,
        samples_ns: Vec<u64>,
    ) -> &BenchRecord {
        self.push_record(BenchRecord::from_samples(id.into(), samples_ns))
    }

    fn push_record(&mut self, record: BenchRecord) -> &BenchRecord {
        eprintln!(
            "bench {:<44} median {:>12}  (p95 {}, min {}, max {}, {} samples)",
            record.id,
            fmt_ns(record.median_ns),
            fmt_ns(record.p95_ns),
            fmt_ns(record.min_ns),
            fmt_ns(record.max_ns),
            record.samples,
        );
        self.records.push(record);
        self.records.last().expect("just pushed")
    }

    /// The records collected so far.
    pub fn records(&self) -> &[BenchRecord] {
        &self.records
    }

    /// Writes `<dir>/bench_<suite>.json` and returns its path.
    ///
    /// The JSON is hand-rolled (ids are the only strings and are escaped);
    /// keeping the testkit dependency-free is the whole point.
    pub fn finish_to(&self, dir: impl AsRef<Path>) -> std::io::Result<PathBuf> {
        let dir = dir.as_ref();
        std::fs::create_dir_all(dir)?;
        let path = dir.join(format!("bench_{}.json", self.name));
        let mut f = std::fs::File::create(&path)?;
        writeln!(f, "{{")?;
        writeln!(f, "  \"suite\": \"{}\",", escape_json(&self.name))?;
        writeln!(
            f,
            "  \"config\": {{\"warmup_iters\": {}, \"samples\": {}}},",
            self.config.warmup_iters, self.config.samples
        )?;
        writeln!(f, "  \"benchmarks\": [")?;
        for (i, r) in self.records.iter().enumerate() {
            let comma = if i + 1 < self.records.len() { "," } else { "" };
            writeln!(
                f,
                "    {{\"id\": \"{}\", \"median_ns\": {}, \"mean_ns\": {}, \
                 \"min_ns\": {}, \"max_ns\": {}, \"p95_ns\": {}, \"samples\": {}}}{comma}",
                escape_json(&r.id),
                r.median_ns,
                r.mean_ns,
                r.min_ns,
                r.max_ns,
                r.p95_ns,
                r.samples,
            )?;
        }
        writeln!(f, "  ]")?;
        writeln!(f, "}}")?;
        eprintln!("bench report written to {}", path.display());
        Ok(path)
    }
}

fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

fn fmt_ns(ns: u64) -> String {
    if ns >= 1_000_000_000 {
        format!("{:.3} s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.3} ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.3} µs", ns as f64 / 1e3)
    } else {
        format!("{ns} ns")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_records_plausible_timings() {
        let mut suite = BenchSuite::with_config(
            "selftest",
            BenchConfig {
                warmup_iters: 1,
                samples: 5,
            },
        );
        let r = suite
            .bench("sum/1k", || (0..1000u64).sum::<u64>())
            .clone();
        assert_eq!(r.samples, 5);
        assert!(r.min_ns <= r.median_ns && r.median_ns <= r.max_ns);
    }

    #[test]
    fn json_report_round_trips_through_dir() {
        let dir = std::env::temp_dir().join("mebl_testkit_bench_selftest");
        let mut suite = BenchSuite::with_config(
            "jsontest",
            BenchConfig {
                warmup_iters: 0,
                samples: 3,
            },
        );
        suite.bench("noop/\"quoted\"", || 1);
        let path = suite.finish_to(&dir).expect("write report");
        let text = std::fs::read_to_string(&path).expect("read back");
        assert!(text.contains("\"suite\": \"jsontest\""));
        assert!(text.contains("noop/\\\"quoted\\\""));
        assert!(text.contains("\"median_ns\""));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn manual_records_compute_percentiles() {
        let mut suite = BenchSuite::new("manual");
        // 1..=100: median 50 (even count averages 50,51 -> 50), p95 = 95.
        let r = suite.record_manual("latency/q8", (1..=100u64).collect()).clone();
        assert_eq!(r.samples, 100);
        assert_eq!(r.median_ns, 50);
        assert_eq!(r.p95_ns, 95);
        assert_eq!(r.min_ns, 1);
        assert_eq!(r.max_ns, 100);
        // Tiny sample sets: p95 degenerates to the max, empty to zeros.
        assert_eq!(suite.record_manual("latency/one", vec![7]).p95_ns, 7);
        assert_eq!(suite.record_manual("latency/none", Vec::new()).max_ns, 0);
    }

    #[test]
    fn fmt_ns_scales_units() {
        assert_eq!(fmt_ns(5), "5 ns");
        assert_eq!(fmt_ns(1_500), "1.500 µs");
        assert_eq!(fmt_ns(2_000_000), "2.000 ms");
        assert_eq!(fmt_ns(3_000_000_000), "3.000 s");
    }
}
