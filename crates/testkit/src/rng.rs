//! Deterministic pseudo-random number generation.
//!
//! Two generators, both with published reference vectors so the streams are
//! pinned forever:
//!
//! * [`SplitMix64`] — Steele/Lea/Flood's 64-bit mixer. Used to expand a
//!   `u64` seed into larger state and to derive per-case seeds in the
//!   property harness.
//! * [`Xoshiro256pp`] — Blackman/Vigna's xoshiro256++, the workhorse stream
//!   generator. Seeded from a single `u64` through SplitMix64 exactly as the
//!   reference C code recommends.
//!
//! The [`Rng`] trait provides the `rand`-like surface the rest of the
//! workspace uses: `gen_range`, `gen_bool`, `gen_f64`, `shuffle`. Everything
//! is deterministic given the seed; there is no global or thread-local
//! generator on purpose — every randomized code path takes an explicit seed
//! so results replay bit-for-bit.

use std::ops::{Range, RangeInclusive};

/// SplitMix64: a tiny, statistically solid 64-bit generator.
///
/// Each call advances the state by the golden-ratio constant and mixes it;
/// distinct seeds therefore yield fully decorrelated streams.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator whose stream is fully determined by `seed`.
    pub fn from_seed(seed: u64) -> Self {
        Self { state: seed }
    }
}

impl Rng for SplitMix64 {
    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// xoshiro256++ 1.0: fast, 256-bit state, passes BigCrush.
///
/// This is the main generator for synthetic circuits, random layer
/// instances and property-test inputs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Xoshiro256pp {
    s: [u64; 4],
}

impl Xoshiro256pp {
    /// Seeds the 256-bit state from a single `u64` via SplitMix64, as the
    /// xoshiro reference implementation recommends.
    pub fn from_seed(seed: u64) -> Self {
        let mut sm = SplitMix64::from_seed(seed);
        let s = [sm.next_u64(), sm.next_u64(), sm.next_u64(), sm.next_u64()];
        // All-zero state is a fixed point; SplitMix64 cannot produce four
        // consecutive zeros, so this is unreachable, but guard anyway.
        debug_assert!(s.iter().any(|&w| w != 0));
        Self { s }
    }
}

impl Rng for Xoshiro256pp {
    fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0]
            .wrapping_add(s[3])
            .rotate_left(23)
            .wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }
}

/// The `rand`-like API shared by both generators.
///
/// Only [`Rng::next_u64`] is required; everything else derives from it, so
/// the derived distributions are identical across generators.
pub trait Rng {
    /// The raw 64-bit output stream.
    fn next_u64(&mut self) -> u64;

    /// Top 32 bits of the next output (the high bits are the best-mixed).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Uniform `f64` in `[0, 1)` with 53 bits of precision.
    fn gen_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Bernoulli draw: `true` with probability `p` (clamped to `[0, 1]`).
    fn gen_bool(&mut self, p: f64) -> bool {
        self.gen_f64() < p
    }

    /// Uniform integer in `[0, n)` without modulo bias (Lemire's method
    /// with rejection).
    fn next_u64_below(&mut self, n: u64) -> u64 {
        assert!(n > 0, "next_u64_below: empty range");
        let threshold = n.wrapping_neg() % n;
        loop {
            let x = self.next_u64();
            let m = u128::from(x) * u128::from(n);
            if (m as u64) >= threshold {
                return (m >> 64) as u64;
            }
        }
    }

    /// Uniform integer in `range` (`lo..hi` or `lo..=hi`).
    ///
    /// Panics on an empty range, matching `rand`.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        T: SampleUniform,
        R: IntRange<T>,
        Self: Sized,
    {
        let (lo, hi) = range.inclusive_bounds();
        T::sample_inclusive(self, lo, hi)
    }

    /// Uniform index in `[0, len)`; convenience for slice indexing.
    fn gen_index(&mut self, len: usize) -> usize {
        self.next_u64_below(len as u64) as usize
    }

    /// Unbiased Fisher–Yates shuffle.
    fn shuffle<T>(&mut self, xs: &mut [T]) {
        for i in (1..xs.len()).rev() {
            let j = self.next_u64_below(i as u64 + 1) as usize;
            xs.swap(i, j);
        }
    }
}

/// Integer types that can be drawn uniformly from a closed range.
///
/// All arithmetic routes through `i128`, which holds every value of every
/// implementing type, so one implementation serves signed and unsigned alike.
pub trait SampleUniform: Copy {
    /// Lossless widening used for range arithmetic.
    fn to_i128(self) -> i128;
    /// Inverse of [`SampleUniform::to_i128`]; the harness only calls it with
    /// in-range values.
    fn from_i128(v: i128) -> Self;

    /// Uniform draw from `[lo, hi]` (inclusive). Panics if `lo > hi`.
    fn sample_inclusive<R: Rng + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
        let (l, h) = (lo.to_i128(), hi.to_i128());
        assert!(l <= h, "gen_range: empty range {l}..={h}");
        let span = (h - l) as u128;
        if span >= u128::from(u64::MAX) {
            // Full 64-bit span: every u64 output maps to a distinct value.
            return Self::from_i128(l + i128::from(rng.next_u64()));
        }
        let v = rng.next_u64_below(span as u64 + 1);
        Self::from_i128(l + i128::from(v))
    }
}

macro_rules! impl_sample_uniform {
    ($($t:ty),* $(,)?) => {$(
        impl SampleUniform for $t {
            #[inline]
            fn to_i128(self) -> i128 {
                self as i128
            }
            #[inline]
            fn from_i128(v: i128) -> Self {
                v as $t
            }
        }
    )*};
}

impl_sample_uniform!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

/// Ranges accepted by [`Rng::gen_range`] and the property-test generators.
pub trait IntRange<T> {
    /// The `(lo, hi)` closed bounds. Panics on an empty range.
    fn inclusive_bounds(&self) -> (T, T);
}

impl<T: SampleUniform + PartialOrd> IntRange<T> for Range<T> {
    fn inclusive_bounds(&self) -> (T, T) {
        assert!(self.start < self.end, "gen_range: empty half-open range");
        (self.start, T::from_i128(self.end.to_i128() - 1))
    }
}

impl<T: SampleUniform + PartialOrd> IntRange<T> for RangeInclusive<T> {
    fn inclusive_bounds(&self) -> (T, T) {
        assert!(
            self.start() <= self.end(),
            "gen_range: empty inclusive range"
        );
        (*self.start(), *self.end())
    }
}

// A bare integer denotes the exact-size "range" `n..=n`; used by
// `prop::vecs` for fixed-length vectors.
impl IntRange<usize> for usize {
    fn inclusive_bounds(&self) -> (usize, usize) {
        (*self, *self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Known-answer vectors computed with an independent implementation of
    /// the published SplitMix64 algorithm (the seed-0 head value
    /// `0xe220a8397b1dcdaf` is the widely circulated reference output).
    #[test]
    fn splitmix64_reference_vectors() {
        let cases: [(u64, [u64; 5]); 3] = [
            (
                0,
                [
                    0xe220_a839_7b1d_cdaf,
                    0x6e78_9e6a_a1b9_65f4,
                    0x06c4_5d18_8009_454f,
                    0xf88b_b8a8_724c_81ec,
                    0x1b39_896a_51a8_749b,
                ],
            ),
            (
                42,
                [
                    0xbdd7_3226_2feb_6e95,
                    0x28ef_e333_b266_f103,
                    0x4752_6757_130f_9f52,
                    0x581c_e1ff_0e4a_e394,
                    0x09bc_585a_2448_23f2,
                ],
            ),
            (
                0xDEAD_BEEF,
                [
                    0x4adf_b90f_68c9_eb9b,
                    0xde58_6a31_41a1_0922,
                    0x021f_bc2f_8e1c_fc1d,
                    0x7466_ce73_7be1_6790,
                    0x3bfa_8764_f685_bd1c,
                ],
            ),
        ];
        for (seed, expect) in cases {
            let mut rng = SplitMix64::from_seed(seed);
            for (i, &e) in expect.iter().enumerate() {
                assert_eq!(rng.next_u64(), e, "seed {seed} output {i}");
            }
        }
    }

    /// Known-answer vectors for xoshiro256++ seeded through SplitMix64,
    /// computed with an independent implementation of the reference C code.
    #[test]
    fn xoshiro256pp_reference_vectors() {
        let cases: [(u64, [u64; 5]); 3] = [
            (
                0,
                [
                    0x5317_5d61_490b_23df,
                    0x61da_6f3d_c380_d507,
                    0x5c0f_df91_ec9a_7bfc,
                    0x02ee_bf8c_3bbe_5e1a,
                    0x7eca_04eb_af4a_5eea,
                ],
            ),
            (
                42,
                [
                    0xd076_4d4f_4476_689f,
                    0x519e_4174_576f_3791,
                    0xfbe0_7cfb_0c24_ed8c,
                    0xb37d_9f60_0cd8_35b8,
                    0xcb23_1c38_7484_6a73,
                ],
            ),
            (
                2013,
                [
                    0x426f_599b_1132_ebb4,
                    0x18dc_067b_93ab_9503,
                    0xc6c4_95b5_f254_2d6a,
                    0xaacb_b8b7_98a4_0ed4,
                    0x5309_9091_01ae_6807,
                ],
            ),
        ];
        for (seed, expect) in cases {
            let mut rng = Xoshiro256pp::from_seed(seed);
            for (i, &e) in expect.iter().enumerate() {
                assert_eq!(rng.next_u64(), e, "seed {seed} output {i}");
            }
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = Xoshiro256pp::from_seed(7);
        for _ in 0..2000 {
            let v = rng.gen_range(-17i32..=23);
            assert!((-17..=23).contains(&v));
            let w = rng.gen_range(5u32..8);
            assert!((5..8).contains(&w));
            let u = rng.gen_range(0usize..1);
            assert_eq!(u, 0);
        }
    }

    #[test]
    fn gen_range_covers_extremes() {
        // i64::MIN..=i64::MAX exercises the full-span fallback.
        let mut rng = Xoshiro256pp::from_seed(11);
        let mut saw_negative = false;
        let mut saw_positive = false;
        for _ in 0..64 {
            let v = rng.gen_range(i64::MIN..=i64::MAX);
            saw_negative |= v < 0;
            saw_positive |= v > 0;
        }
        assert!(saw_negative && saw_positive);
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn gen_range_rejects_empty() {
        let mut rng = Xoshiro256pp::from_seed(1);
        let _ = rng.gen_range(5i32..5);
    }

    /// Chi-squared-style sanity: over 10 buckets and 20k draws, every bucket
    /// is within 20 % of the expected count. With an unbiased generator this
    /// has astronomically comfortable margins; a modulo-bias or shifted-range
    /// bug fails it immediately.
    #[test]
    fn gen_range_roughly_uniform() {
        let mut rng = Xoshiro256pp::from_seed(99);
        let mut buckets = [0u32; 10];
        let n = 20_000;
        for _ in 0..n {
            buckets[rng.gen_range(0usize..10)] += 1;
        }
        let expect = n as f64 / 10.0;
        for (i, &b) in buckets.iter().enumerate() {
            let ratio = f64::from(b) / expect;
            assert!((0.8..1.2).contains(&ratio), "bucket {i}: {b} vs {expect}");
        }
    }

    #[test]
    fn gen_f64_in_unit_interval() {
        let mut rng = Xoshiro256pp::from_seed(3);
        let mut sum = 0.0;
        for _ in 0..10_000 {
            let v = rng.gen_f64();
            assert!((0.0..1.0).contains(&v));
            sum += v;
        }
        let mean = sum / 10_000.0;
        assert!((0.45..0.55).contains(&mean), "mean {mean}");
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = Xoshiro256pp::from_seed(5);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.3)).count();
        assert!((2_500..3_500).contains(&hits), "hits {hits}");
        assert!(!(0..100).any(|_| rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }

    #[test]
    fn shuffle_is_a_permutation_and_seed_stable() {
        let mut a: Vec<u32> = (0..50).collect();
        let mut b = a.clone();
        Xoshiro256pp::from_seed(8).shuffle(&mut a);
        Xoshiro256pp::from_seed(8).shuffle(&mut b);
        assert_eq!(a, b, "same seed must shuffle identically");
        let mut sorted = a.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        let mut c: Vec<u32> = (0..50).collect();
        Xoshiro256pp::from_seed(9).shuffle(&mut c);
        assert_ne!(a, c, "different seeds should differ");
    }

    #[test]
    fn distinct_seeds_give_distinct_streams() {
        let a: Vec<u64> = {
            let mut r = Xoshiro256pp::from_seed(1);
            (0..8).map(|_| r.next_u64()).collect()
        };
        let b: Vec<u64> = {
            let mut r = Xoshiro256pp::from_seed(2);
            (0..8).map(|_| r.next_u64()).collect()
        };
        assert_ne!(a, b);
    }
}
