//! # mebl-testkit — hermetic test support for the MEBL router workspace
//!
//! The build environment has no network access, so the workspace cannot
//! depend on crates.io. This crate replaces the three external test
//! dependencies the seed tree used, with zero dependencies of its own:
//!
//! * [`rng`] replaces `rand`: deterministic [`SplitMix64`] and
//!   [`Xoshiro256pp`] generators behind a `rand`-like [`Rng`] trait
//!   (`gen_range`, `gen_bool`, `gen_f64`, `shuffle`), pinned by published
//!   known-answer vectors. All synthetic-circuit and random-instance
//!   generation in the workspace is seeded through it, so every experiment
//!   replays bit-for-bit (the determinism discipline the paper's randomized
//!   tables require).
//! * [`prop`] replaces `proptest`: value generators
//!   ([`prop::ints`], [`prop::f64s`], [`prop::booleans`], [`prop::vecs`],
//!   tuples), the [`prop_check!`] macro with configurable case count,
//!   greedy input shrinking, and **seed reporting on failure** — a failing
//!   property prints `MEBL_PROP_CASE_SEED=0x…`; re-running with that
//!   environment variable replays the exact failing case.
//! * [`bench`] replaces `criterion`: a warmup + median-of-N wall-clock
//!   timer with JSON reports under `results/`.
//! * [`client`] is a blocking loopback HTTP client for `mebl-serve`
//!   tests and the CI smoke driver — the only sanctioned socket user
//!   outside the service crate (see the `no-raw-net` lint).
//!
//! Policy: this workspace builds and tests fully offline. Do not add
//! external dependencies to any crate manifest; extend this crate instead.

#![forbid(unsafe_code)]

pub mod bench;
pub mod client;
pub mod fault;
pub mod prop;
pub mod rng;

pub use client::{FaultMode, FaultWorker, HttpResponse, TestClient};
pub use fault::{
    flip_bit, shuffle_lines, truncate_text, Fault, FaultPlan, IoFault, IoFaultPlan,
};
pub use rng::{Rng, SplitMix64, Xoshiro256pp};
