//! Deterministic fault injection for robustness testing.
//!
//! A [`FaultPlan`] enumerates hostile-but-reproducible conditions a
//! routing run must survive: corrupted circuit files, adversarial pin
//! placements, starved search budgets. This crate only *describes* the
//! faults and provides the deterministic text mutators; the robustness
//! suite (`tests/robustness.rs`) interprets each fault against the
//! router and asserts the typed-failure contract — every fault yields a
//! typed error or an audit-clean degraded outcome, never a panic.

use crate::{Rng, SplitMix64};

/// One injected fault.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Fault {
    /// Keep only the first `permille`/1000 of the circuit text.
    TruncateText {
        /// Thousandths of the text to keep (0–1000).
        permille: u32,
    },
    /// Flip one bit of the circuit text (index taken modulo text length).
    FlipBit {
        /// Bit index into the text, wrapped modulo `len * 8`.
        index: u64,
    },
    /// Shuffle the lines of the circuit text with a seeded RNG.
    ShuffleLines {
        /// Shuffle seed.
        seed: u64,
    },
    /// Shrink routing capacity to nothing: a stitch/tile period so small
    /// every tile boundary cuts the grid.
    ZeroCapacity,
    /// Cram pins into a single congested corner of the outline.
    AdversarialPins {
        /// Placement seed.
        seed: u64,
    },
    /// Starve the detailed router's per-net search node cap.
    TinyNodeCap {
        /// Node cap to impose.
        cap: usize,
    },
    /// A wall-clock budget that expires almost immediately.
    NearZeroTimeBudget {
        /// Budget in milliseconds.
        millis: u64,
    },
    /// A global expansion cap far below what the circuit needs.
    TinyExpansionCap {
        /// Expansion cap to impose.
        cap: u64,
    },
}

impl std::fmt::Display for Fault {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Fault::TruncateText { permille } => write!(f, "truncate-text({permille}‰)"),
            Fault::FlipBit { index } => write!(f, "flip-bit({index})"),
            Fault::ShuffleLines { seed } => write!(f, "shuffle-lines(seed {seed})"),
            Fault::ZeroCapacity => write!(f, "zero-capacity"),
            Fault::AdversarialPins { seed } => write!(f, "adversarial-pins(seed {seed})"),
            Fault::TinyNodeCap { cap } => write!(f, "tiny-node-cap({cap})"),
            Fault::NearZeroTimeBudget { millis } => write!(f, "near-zero-budget({millis}ms)"),
            Fault::TinyExpansionCap { cap } => write!(f, "tiny-expansion-cap({cap})"),
        }
    }
}

/// A reproducible set of faults to run a subject through.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultPlan {
    /// The faults, in injection order.
    pub faults: Vec<Fault>,
}

impl FaultPlan {
    /// The standard battery: every fault family, with seed-derived
    /// parameters so different seeds probe different corruptions.
    pub fn standard(seed: u64) -> Self {
        let mut rng = SplitMix64::from_seed(seed);
        let mut faults = vec![
            Fault::TruncateText {
                permille: rng.gen_range(1u32..999),
            },
            Fault::TruncateText { permille: 0 },
            Fault::ShuffleLines { seed: rng.next_u64() },
            Fault::ZeroCapacity,
            Fault::AdversarialPins { seed: rng.next_u64() },
            Fault::TinyNodeCap { cap: 1 },
            Fault::TinyNodeCap {
                cap: rng.gen_range(2usize..64),
            },
            Fault::NearZeroTimeBudget { millis: 1 },
            Fault::TinyExpansionCap { cap: 1 },
            Fault::TinyExpansionCap {
                cap: rng.gen_range(2u64..5_000),
            },
        ];
        for _ in 0..8 {
            faults.push(Fault::FlipBit {
                index: rng.next_u64(),
            });
        }
        Self { faults }
    }
}

/// One injected storage-I/O fault. Like [`Fault`], this is pure data:
/// the durability suite (`tests/store.rs`) interprets each variant
/// against `mebl-store`'s simulated filesystem and asserts the
/// crash-safety contract — every fault yields a clean rebuild or a
/// typed store error, never a panic and never a wrong payload.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IoFault {
    /// Die mid-way through I/O operation number `op` (data operations
    /// tear; everything after errors until reboot).
    CrashAtOp {
        /// Zero-based global operation index to crash on.
        op: u64,
    },
    /// Operation `op` is an append that persists only `keep` bytes.
    ShortWriteAtOp {
        /// Zero-based global operation index to shorten.
        op: u64,
        /// Bytes of the append that actually land.
        keep: usize,
    },
    /// Chop `drop` bytes off the end of the newest segment file
    /// post-shutdown (a torn tail the next open must recover from).
    TruncateTail {
        /// Bytes to remove from the file end.
        drop: u32,
    },
    /// Flip one stored bit of the newest segment file post-shutdown
    /// (index wrapped modulo the file's bit length).
    FlipStoredBit {
        /// Bit index into the file, wrapped modulo `len * 8`.
        index: u64,
    },
}

impl std::fmt::Display for IoFault {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            IoFault::CrashAtOp { op } => write!(f, "crash-at-op({op})"),
            IoFault::ShortWriteAtOp { op, keep } => {
                write!(f, "short-write-at-op({op}, keep {keep})")
            }
            IoFault::TruncateTail { drop } => write!(f, "truncate-tail({drop})"),
            IoFault::FlipStoredBit { index } => write!(f, "flip-stored-bit({index})"),
        }
    }
}

/// A reproducible battery of storage faults.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IoFaultPlan {
    /// The faults, each injected against a fresh store.
    pub faults: Vec<IoFault>,
}

impl IoFaultPlan {
    /// The standard battery: crashes and short writes sprinkled across
    /// the first `ops` I/O operations of a workload, plus post-shutdown
    /// corruption, with seed-derived parameters.
    pub fn standard(seed: u64, ops: u64) -> Self {
        let mut rng = SplitMix64::from_seed(seed);
        let mut faults = Vec::new();
        for _ in 0..12 {
            faults.push(IoFault::CrashAtOp {
                op: rng.next_u64() % ops.max(1),
            });
        }
        for _ in 0..6 {
            faults.push(IoFault::ShortWriteAtOp {
                op: rng.next_u64() % ops.max(1),
                keep: rng.gen_range(0usize..48),
            });
        }
        for drop in [1u32, 7, 8, 24] {
            faults.push(IoFault::TruncateTail { drop });
        }
        for _ in 0..8 {
            faults.push(IoFault::FlipStoredBit {
                index: rng.next_u64(),
            });
        }
        Self { faults }
    }
}

/// Keeps the first `permille`/1000 bytes of `text` (clamped to a char
/// boundary so the result stays valid UTF-8).
pub fn truncate_text(text: &str, permille: u32) -> String {
    let keep = (text.len() as u64 * u64::from(permille.min(1000)) / 1000) as usize;
    let mut keep = keep.min(text.len());
    while keep > 0 && !text.is_char_boundary(keep) {
        keep -= 1;
    }
    text[..keep].to_string()
}

/// Flips one bit of `text` (index wrapped modulo the bit length) and
/// re-interprets the bytes lossily as UTF-8. Empty input is returned
/// unchanged.
pub fn flip_bit(text: &str, index: u64) -> String {
    if text.is_empty() {
        return String::new();
    }
    let mut bytes = text.as_bytes().to_vec();
    let bit = (index % (bytes.len() as u64 * 8)) as usize;
    bytes[bit / 8] ^= 1 << (bit % 8);
    String::from_utf8_lossy(&bytes).into_owned()
}

/// Hostile `CircuitEdit` lists as raw JSON, for battering the delta
/// routing endpoint and CLI: dangling net references, contradictory
/// sequences, out-of-range pins and layers, and structurally broken
/// JSON. `live_nets` supplies real net names so the contradiction
/// cases reference nets that genuinely exist; an empty slice still
/// yields the full battery (the reference cases then dangle too, which
/// is equally fair game). Every returned string must parse to a typed
/// error or apply to a typed error / audit-clean outcome — never a
/// panic. Deterministic in `seed`.
pub fn hostile_edit_lists(seed: u64, live_nets: &[&str]) -> Vec<String> {
    let mut rng = SplitMix64::from_seed(seed);
    let live = |rng: &mut SplitMix64| -> String {
        if live_nets.is_empty() {
            "no_such_net".to_string()
        } else {
            live_nets[rng.gen_index(live_nets.len())].to_string()
        }
    };
    let mut out = vec![
        // Dangling references.
        r#"[{"op":"remove_net","name":"ghost_net_404"}]"#.to_string(),
        r#"[{"op":"move_net","name":"ghost_net_404","dx":1,"dy":1}]"#.to_string(),
        r#"[{"op":"remove_blockage","rect":[1,1,2,2]}]"#.to_string(),
        // Contradictory sequences against real nets.
        format!(
            r#"[{{"op":"remove_net","name":"{0}"}},{{"op":"move_net","name":"{0}","dx":1,"dy":0}}]"#,
            live(&mut rng)
        ),
        format!(
            r#"[{{"op":"remove_net","name":"{0}"}},{{"op":"remove_net","name":"{0}"}}]"#,
            live(&mut rng)
        ),
        format!(
            r#"[{{"op":"add_net","name":"{0}","pins":[[1,1,0],[2,2,0]]}}]"#,
            live(&mut rng)
        ),
        r#"[{"op":"add_net","name":"twin","pins":[[1,1,0],[2,2,0]]},{"op":"add_net","name":"twin","pins":[[3,3,0],[4,4,0]]}]"#
            .to_string(),
        r#"[{"op":"add_blockage","rect":[5,5,6,6]},{"op":"add_blockage","rect":[5,5,6,6]}]"#
            .to_string(),
        // Geometric nonsense: far outside any plausible outline, layers
        // above any stack, too few pins, blockage over a fresh pin.
        r#"[{"op":"add_net","name":"far","pins":[[1000000,1000000,0],[-1000000,-1000000,0]]}]"#
            .to_string(),
        r#"[{"op":"add_net","name":"high","pins":[[1,1,250],[2,2,0]]}]"#.to_string(),
        r#"[{"op":"add_net","name":"lonely","pins":[[1,1,0]]}]"#.to_string(),
        r#"[{"op":"add_net","name":"pinned","pins":[[7,7,0],[9,9,0]]},{"op":"add_blockage","rect":[6,6,8,8]}]"#
            .to_string(),
        format!(
            r#"[{{"op":"move_net","name":"{0}","dx":2147483647,"dy":-2147483648}}]"#,
            live(&mut rng)
        ),
        // Structurally broken JSON: wrong shapes, unknown vocabulary,
        // not-an-array, bare garbage.
        r#"[{"op":"add_net","name":"bad","pins":"north"}]"#.to_string(),
        r#"[{"op":"add_net","name":"bad","pins":[[1,1],[2,2]]}]"#.to_string(),
        r#"[{"op":"move_net","name":"bad","dx":"east","dy":0}]"#.to_string(),
        r#"[{"op":"add_blockage","rect":[1,2,3]}]"#.to_string(),
        r#"[{"op":"teleport_net","name":"bad"}]"#.to_string(),
        r#"[{"op":"remove_net","name":"bad","surprise":true}]"#.to_string(),
        r#"[{"name":"bad"}]"#.to_string(),
        r#"{"op":"remove_net","name":"bad"}"#.to_string(),
        "[1,2,3]".to_string(),
        "null".to_string(),
        "".to_string(),
    ];
    // Truncations of a syntactically valid list, at seeded cut points.
    let whole =
        r#"[{"op":"add_net","name":"cut","pins":[[3,3,0],[12,12,1]]},{"op":"add_blockage","rect":[20,20,22,22]}]"#;
    for _ in 0..8 {
        out.push(truncate_text(whole, rng.gen_range(1u32..1000)));
    }
    out
}

/// Shuffles the lines of `text` with a seeded Fisher–Yates pass.
pub fn shuffle_lines(text: &str, seed: u64) -> String {
    let mut lines: Vec<&str> = text.lines().collect();
    SplitMix64::from_seed(seed).shuffle(&mut lines);
    let mut out = lines.join("\n");
    if text.ends_with('\n') && !out.is_empty() {
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn standard_plan_is_deterministic_and_varied() {
        let a = FaultPlan::standard(7);
        let b = FaultPlan::standard(7);
        assert_eq!(a, b);
        assert_ne!(a, FaultPlan::standard(8));
        assert!(a.faults.len() >= 10);
        assert!(a
            .faults
            .iter()
            .any(|f| matches!(f, Fault::FlipBit { .. })));
    }

    #[test]
    fn standard_io_plan_is_deterministic_and_covers_all_families() {
        let a = IoFaultPlan::standard(3, 40);
        assert_eq!(a, IoFaultPlan::standard(3, 40));
        assert_ne!(a, IoFaultPlan::standard(4, 40));
        assert!(a.faults.iter().all(|f| match *f {
            IoFault::CrashAtOp { op } | IoFault::ShortWriteAtOp { op, .. } => op < 40,
            _ => true,
        }));
        for probe in [
            |f: &IoFault| matches!(f, IoFault::CrashAtOp { .. }),
            |f: &IoFault| matches!(f, IoFault::ShortWriteAtOp { .. }),
            |f: &IoFault| matches!(f, IoFault::TruncateTail { .. }),
            |f: &IoFault| matches!(f, IoFault::FlipStoredBit { .. }),
        ] {
            assert!(a.faults.iter().any(probe));
        }
    }

    #[test]
    fn truncate_respects_char_boundaries() {
        let text = "net α β γ\npin δ\n";
        for permille in [0, 250, 500, 750, 999, 1000, 5000] {
            let t = truncate_text(text, permille);
            assert!(text.starts_with(&t));
        }
        assert_eq!(truncate_text(text, 1000), text);
        assert_eq!(truncate_text(text, 0), "");
    }

    #[test]
    fn flip_bit_changes_exactly_one_bit_of_ascii() {
        let text = "outline 0 0 9 9";
        let flipped = flip_bit(text, 3);
        assert_ne!(flipped, text);
        // Flipping the same bit again restores the original.
        assert_eq!(flip_bit(&flipped, 3), text);
        assert_eq!(flip_bit("", 42), "");
    }

    #[test]
    fn hostile_edit_lists_are_seeded_and_varied() {
        let nets = ["n1", "n2"];
        let a = hostile_edit_lists(7, &nets);
        let b = hostile_edit_lists(7, &nets);
        assert_eq!(a, b, "same seed, same battery");
        assert!(a.len() >= 20, "battery too small: {}", a.len());
        // The battery must exercise real net names, not just ghosts.
        assert!(a.iter().any(|s| s.contains("n1") || s.contains("n2")));
        // An empty live-net slice still yields the full battery.
        assert_eq!(hostile_edit_lists(7, &[]).len(), a.len());
    }

    #[test]
    fn shuffle_preserves_the_multiset_of_lines() {
        let text = "a\nb\nc\nd\ne\n";
        let shuffled = shuffle_lines(text, 99);
        let mut orig: Vec<&str> = text.lines().collect();
        let mut got: Vec<&str> = shuffled.lines().collect();
        orig.sort_unstable();
        got.sort_unstable();
        assert_eq!(orig, got);
        assert_eq!(shuffle_lines(text, 99), shuffled);
    }
}
