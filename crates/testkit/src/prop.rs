//! Minimal property-based testing harness.
//!
//! A [`Gen`] builds random values from an explicit [`Xoshiro256pp`] stream
//! and knows how to propose *smaller* variants of a failing value. The
//! [`prop_check!`](crate::prop_check) macro runs a property over many
//! generated cases; on failure it greedily shrinks the input, then panics
//! with the minimal counterexample **and the case seed**, so the failure
//! replays deterministically:
//!
//! ```text
//! property failed ... replay with MEBL_PROP_CASE_SEED=0x1234abcd
//! ```
//!
//! Environment knobs (all optional):
//! * `MEBL_PROP_CASES` — override the per-property case count.
//! * `MEBL_PROP_SEED` — override the base seed for every property.
//! * `MEBL_PROP_CASE_SEED` — replay exactly one case with this seed
//!   (accepts decimal or `0x…` hex), skipping the sweep.

use crate::rng::{IntRange, Rng, SampleUniform, SplitMix64, Xoshiro256pp};
use std::fmt::Debug;
use std::panic::{catch_unwind, AssertUnwindSafe};

/// Outcome of checking a property against one generated value.
///
/// Produced by the `prop_assert*` / `prop_assume!` macros; test bodies fall
/// through to [`CaseResult::Pass`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CaseResult {
    /// The property held.
    Pass,
    /// The input did not satisfy the property's precondition
    /// (`prop_assume!`); the case is not counted.
    Discard,
    /// The property failed with this message.
    Fail(String),
}

/// Tuning for a `prop_check!` run.
#[derive(Debug, Clone, Copy)]
pub struct Config {
    /// Number of passing (non-discarded) cases required.
    pub cases: u32,
    /// Upper bound on property evaluations spent shrinking a failure.
    pub max_shrink_steps: u32,
    /// Base seed; defaults to a hash of the property's location so every
    /// property explores a different but fixed region of input space.
    pub seed: Option<u64>,
}

impl Default for Config {
    fn default() -> Self {
        Self {
            cases: 64,
            max_shrink_steps: 1_000,
            seed: None,
        }
    }
}

impl Config {
    /// `Config` with an explicit case count (the common override).
    pub fn with_cases(cases: u32) -> Self {
        Self {
            cases,
            ..Self::default()
        }
    }
}

/// A generator of random test inputs with optional shrinking.
pub trait Gen {
    /// The value type produced; `Debug` so counterexamples print, `Clone`
    /// so shrinking can re-run the property on candidates.
    type Value: Clone + Debug;

    /// Draws one value from `rng`.
    fn generate(&self, rng: &mut Xoshiro256pp) -> Self::Value;

    /// Proposes strictly "smaller" variants of `v`, most aggressive first.
    /// An empty list means `v` is minimal.
    fn shrink(&self, _v: &Self::Value) -> Vec<Self::Value> {
        Vec::new()
    }
}

// ---------------------------------------------------------------------------
// Generators
// ---------------------------------------------------------------------------

/// Uniform integer in a range; shrinks toward the in-range value closest
/// to zero.
#[derive(Debug, Clone, Copy)]
pub struct IntGen<T> {
    lo: T,
    hi: T,
}

/// Uniform integer generator over `lo..hi` or `lo..=hi`.
pub fn ints<T, R>(range: R) -> IntGen<T>
where
    T: SampleUniform + PartialOrd + Clone + Debug,
    R: IntRange<T>,
{
    let (lo, hi) = range.inclusive_bounds();
    IntGen { lo, hi }
}

impl<T> Gen for IntGen<T>
where
    T: SampleUniform + PartialOrd + Clone + Debug,
{
    type Value = T;

    fn generate(&self, rng: &mut Xoshiro256pp) -> T {
        rng.gen_range(self.lo..=self.hi)
    }

    fn shrink(&self, v: &T) -> Vec<T> {
        let (lo, hi, v) = (self.lo.to_i128(), self.hi.to_i128(), v.to_i128());
        let origin = 0i128.clamp(lo, hi);
        if v == origin {
            return Vec::new();
        }
        // QuickCheck-style halving ladder: origin, then v minus successive
        // halvings of the distance, ending at the adjacent value. Greedy
        // descent over this list converges in O(log^2 |v - origin|) steps
        // instead of degenerating to a linear walk.
        let mut out = vec![origin];
        let mut delta = (v - origin) / 2;
        while delta != 0 {
            let cand = v - delta;
            if cand != origin && out.last() != Some(&cand) {
                out.push(cand);
            }
            delta /= 2;
        }
        out.into_iter().map(T::from_i128).collect()
    }
}

/// Uniform `f64` in `[lo, hi)`; shrinks toward the in-range value closest
/// to zero.
#[derive(Debug, Clone, Copy)]
pub struct FloatGen {
    lo: f64,
    hi: f64,
}

/// Uniform `f64` generator over `lo..hi` (half-open, like `proptest`'s
/// float ranges).
pub fn f64s(range: std::ops::Range<f64>) -> FloatGen {
    assert!(range.start < range.end, "f64s: empty range");
    FloatGen {
        lo: range.start,
        hi: range.end,
    }
}

impl Gen for FloatGen {
    type Value = f64;

    fn generate(&self, rng: &mut Xoshiro256pp) -> f64 {
        self.lo + rng.gen_f64() * (self.hi - self.lo)
    }

    fn shrink(&self, v: &f64) -> Vec<f64> {
        let origin = 0f64.clamp(self.lo, self.hi.min(f64::MAX));
        let mut out = Vec::new();
        if (v - origin).abs() > 1e-9 {
            out.push(origin);
            let mid = origin + (v - origin) / 2.0;
            if (mid - origin).abs() > 1e-9 {
                out.push(mid);
            }
        }
        out
    }
}

/// Fair coin; shrinks `true` to `false`.
#[derive(Debug, Clone, Copy)]
pub struct BoolGen;

/// Fair boolean generator.
pub fn booleans() -> BoolGen {
    BoolGen
}

impl Gen for BoolGen {
    type Value = bool;

    fn generate(&self, rng: &mut Xoshiro256pp) -> bool {
        rng.gen_bool(0.5)
    }

    fn shrink(&self, v: &bool) -> Vec<bool> {
        if *v {
            vec![false]
        } else {
            Vec::new()
        }
    }
}

/// Vector of values from an element generator, with a length range.
/// Shrinks by dropping elements (down to the minimum length), then by
/// shrinking individual elements.
#[derive(Debug, Clone)]
pub struct VecGen<G> {
    elem: G,
    min_len: usize,
    max_len: usize,
}

/// Vector generator; `len` may be `lo..hi`, `lo..=hi`, or an exact `usize`.
pub fn vecs<G: Gen, R: IntRange<usize>>(elem: G, len: R) -> VecGen<G> {
    let (min_len, max_len) = len.inclusive_bounds();
    VecGen {
        elem,
        min_len,
        max_len,
    }
}

impl<G: Gen> Gen for VecGen<G> {
    type Value = Vec<G::Value>;

    fn generate(&self, rng: &mut Xoshiro256pp) -> Vec<G::Value> {
        let len = rng.gen_range(self.min_len..=self.max_len);
        (0..len).map(|_| self.elem.generate(rng)).collect()
    }

    fn shrink(&self, v: &Vec<G::Value>) -> Vec<Vec<G::Value>> {
        let mut out = Vec::new();
        // Drop chunks first (front half, back half), then single elements.
        if v.len() > self.min_len {
            let keep = (v.len() / 2).max(self.min_len);
            if keep < v.len() {
                out.push(v[..keep].to_vec());
                out.push(v[v.len() - keep..].to_vec());
            }
            for i in 0..v.len() {
                let mut smaller = v.clone();
                smaller.remove(i);
                out.push(smaller);
            }
        }
        // Shrink elements in place.
        for (i, item) in v.iter().enumerate() {
            for cand in self.elem.shrink(item) {
                let mut copy = v.clone();
                copy[i] = cand;
                out.push(copy);
            }
        }
        out
    }
}

macro_rules! impl_gen_tuple {
    ($(($($g:ident . $idx:tt),+)),+ $(,)?) => {$(
        impl<$($g: Gen),+> Gen for ($($g,)+) {
            type Value = ($($g::Value,)+);

            fn generate(&self, rng: &mut Xoshiro256pp) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }

            fn shrink(&self, v: &Self::Value) -> Vec<Self::Value> {
                let mut out = Vec::new();
                $(
                    for cand in self.$idx.shrink(&v.$idx) {
                        let mut copy = v.clone();
                        copy.$idx = cand;
                        out.push(copy);
                    }
                )+
                out
            }
        }
    )+};
}

impl_gen_tuple!(
    (A.0, B.1),
    (A.0, B.1, C.2),
    (A.0, B.1, C.2, D.3),
    (A.0, B.1, C.2, D.3, E.4),
    (A.0, B.1, C.2, D.3, E.4, F.5),
    (A.0, B.1, C.2, D.3, E.4, F.5, G.6),
    (A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7),
);

// ---------------------------------------------------------------------------
// Runner
// ---------------------------------------------------------------------------

/// FNV-1a, used to derive a stable per-property default seed from its
/// source location.
fn fnv1a(s: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in s.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

fn env_u64(name: &str) -> Option<u64> {
    let raw = std::env::var(name).ok()?;
    let raw = raw.trim();
    let parsed = if let Some(hex) = raw.strip_prefix("0x").or_else(|| raw.strip_prefix("0X")) {
        u64::from_str_radix(hex, 16)
    } else {
        raw.parse()
    };
    match parsed {
        Ok(v) => Some(v),
        Err(_) => panic!("{name}: cannot parse {raw:?} as u64 (decimal or 0x-hex)"),
    }
}

fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "panic with non-string payload".to_string()
    }
}

/// Drives a property: sweep, shrink, report. Called by
/// [`prop_check!`](crate::prop_check); not meant to be invoked directly.
pub fn run_prop<G, F>(name: &str, config: Config, gen: &G, mut property: F)
where
    G: Gen,
    F: FnMut(G::Value) -> CaseResult,
{
    // Panics inside the property (plain `assert!`, index OOB, …) are treated
    // as failures too, so shrinking and seed reporting work for them; the
    // `prop_assert*` macros just produce cleaner messages.
    let mut check = |value: G::Value| -> CaseResult {
        match catch_unwind(AssertUnwindSafe(|| property(value))) {
            Ok(r) => r,
            Err(payload) => CaseResult::Fail(panic_message(payload)),
        }
    };

    if let Some(case_seed) = env_u64("MEBL_PROP_CASE_SEED") {
        // Replay mode: run exactly one case with the reported seed.
        let mut rng = Xoshiro256pp::from_seed(case_seed);
        let value = gen.generate(&mut rng);
        match check(value.clone()) {
            CaseResult::Fail(msg) => fail_case(name, gen, &mut check, &config, case_seed, value, msg),
            CaseResult::Discard => panic!(
                "property '{name}': replay case seed {case_seed:#x} was discarded by prop_assume!"
            ),
            CaseResult::Pass => {
                eprintln!("property '{name}': replay case seed {case_seed:#x} passed");
            }
        }
        return;
    }

    let cases = env_u64("MEBL_PROP_CASES").map_or(config.cases, |v| v as u32);
    let base_seed = env_u64("MEBL_PROP_SEED")
        .or(config.seed)
        .unwrap_or_else(|| fnv1a(name));
    let mut seeder = SplitMix64::from_seed(base_seed);

    let mut passed = 0u32;
    let mut discarded = 0u32;
    let budget = cases.saturating_mul(10).max(100);
    let mut attempts = 0u32;
    while passed < cases {
        attempts += 1;
        if attempts > budget {
            panic!(
                "property '{name}': gave up after {discarded} discards in {attempts} attempts \
                 ({passed}/{cases} cases passed) — loosen prop_assume! or the generator"
            );
        }
        let case_seed = seeder.next_u64();
        let mut rng = Xoshiro256pp::from_seed(case_seed);
        let value = gen.generate(&mut rng);
        match check(value.clone()) {
            CaseResult::Pass => passed += 1,
            CaseResult::Discard => discarded += 1,
            CaseResult::Fail(msg) => fail_case(name, gen, &mut check, &config, case_seed, value, msg),
        }
    }
}

/// Shrinks a failing case greedily and panics with the final report.
fn fail_case<G: Gen>(
    name: &str,
    gen: &G,
    check: &mut impl FnMut(G::Value) -> CaseResult,
    config: &Config,
    case_seed: u64,
    original: G::Value,
    original_msg: String,
) -> ! {
    let mut current = original;
    let mut message = original_msg;
    let mut steps = 0u32;
    let mut shrunk = 0u32;
    'outer: while steps < config.max_shrink_steps {
        for candidate in gen.shrink(&current) {
            steps += 1;
            if let CaseResult::Fail(msg) = check(candidate.clone()) {
                current = candidate;
                message = msg;
                shrunk += 1;
                continue 'outer;
            }
            if steps >= config.max_shrink_steps {
                break 'outer;
            }
        }
        break; // No shrink candidate still fails: minimal.
    }
    panic!(
        "property '{name}' failed: {message}\n\
         minimal counterexample (after {shrunk} shrinks, {steps} steps): {current:?}\n\
         replay with MEBL_PROP_CASE_SEED={case_seed:#x}"
    );
}

// ---------------------------------------------------------------------------
// Macros
// ---------------------------------------------------------------------------

/// Checks a property over many generated inputs.
///
/// ```
/// use mebl_testkit::prop::{self, Config};
/// use mebl_testkit::{prop_check, prop_assert, prop_assert_eq};
///
/// prop_check!((prop::ints(-100i32..100), prop::ints(-100i32..100)), |(a, b)| {
///     prop_assert_eq!(a + b, b + a);
///     prop_assert!((a + b) - b == a);
/// });
///
/// // With an explicit config:
/// prop_check!(Config::with_cases(12), prop::ints(0u32..10), |n| {
///     prop_assert!(n < 10);
/// });
/// ```
///
/// The closure body uses `prop_assert!` / `prop_assert_eq!` /
/// `prop_assert_ne!` / `prop_assume!`; plain `assert!` also works (panics
/// are caught and shrunk) but produces noisier output. On failure the
/// harness prints the minimal counterexample and a `MEBL_PROP_CASE_SEED`
/// value that replays it exactly.
#[macro_export]
macro_rules! prop_check {
    ($gen:expr, |$pat:pat_param| $body:block) => {
        $crate::prop_check!($crate::prop::Config::default(), $gen, |$pat| $body)
    };
    ($config:expr, $gen:expr, |$pat:pat_param| $body:block) => {{
        let __gen = $gen;
        $crate::prop::run_prop(
            concat!(module_path!(), ":", line!()),
            $config,
            &__gen,
            |__value| -> $crate::prop::CaseResult {
                let $pat = __value;
                $body
                $crate::prop::CaseResult::Pass
            },
        );
    }};
}

/// `assert!` for property bodies: fails the case (triggering shrinking)
/// instead of panicking.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return $crate::prop::CaseResult::Fail(format!($($fmt)+));
        }
    };
}

/// `assert_eq!` for property bodies.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (__l, __r) = (&$left, &$right);
        if !(__l == __r) {
            return $crate::prop::CaseResult::Fail(format!(
                "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
                stringify!($left), stringify!($right), __l, __r
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (__l, __r) = (&$left, &$right);
        if !(__l == __r) {
            return $crate::prop::CaseResult::Fail(format!(
                "{}\n  left: {:?}\n right: {:?}",
                format!($($fmt)+), __l, __r
            ));
        }
    }};
}

/// `assert_ne!` for property bodies.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => {{
        let (__l, __r) = (&$left, &$right);
        if __l == __r {
            return $crate::prop::CaseResult::Fail(format!(
                "assertion failed: `{} != {}`\n  both: {:?}",
                stringify!($left), stringify!($right), __l
            ));
        }
    }};
}

/// Discards the current case when its precondition does not hold; the
/// harness generates a replacement (up to a 10× attempt budget).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return $crate::prop::CaseResult::Discard;
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn passing_property_runs_all_cases() {
        let mut count = 0u32;
        prop_check!(Config::with_cases(17), ints(0i32..100), |_n| {
            count += 1;
        });
        assert_eq!(count, 17);
    }

    #[test]
    fn generated_values_respect_generator_bounds() {
        prop_check!((ints(-5i32..=5), f64s(0.0..1.0), booleans()), |(n, x, _b)| {
            prop_assert!((-5..=5).contains(&n));
            prop_assert!((0.0..1.0).contains(&x));
        });
    }

    #[test]
    fn vec_generator_respects_len_and_elem_bounds() {
        prop_check!(vecs(ints(3u8..7), 2..=9), |v| {
            prop_assert!((2..=9).contains(&v.len()));
            prop_assert!(v.iter().all(|&e| (3..7).contains(&e)));
        });
        // Exact-length form.
        prop_check!(vecs(ints(0i64..2), 4usize), |v| {
            prop_assert_eq!(v.len(), 4);
        });
    }

    /// The harness must shrink "contains a value >= 20 somewhere in a big
    /// vector" down to the canonical minimal counterexample `[20]`.
    #[test]
    fn shrinking_finds_minimal_counterexample() {
        let gen = vecs(ints(0i32..100), 0..20);
        let mut failure: Option<(Vec<i32>, u64)> = None;
        // Reproduce run_prop's sweep by hand so we can inspect the shrink
        // result instead of panicking.
        let mut seeder = SplitMix64::from_seed(fnv1a("shrink-test"));
        for _ in 0..200 {
            let case_seed = seeder.next_u64();
            let mut rng = Xoshiro256pp::from_seed(case_seed);
            let v = gen.generate(&mut rng);
            if v.iter().any(|&x| x >= 20) {
                failure = Some((v, case_seed));
                break;
            }
        }
        let (mut current, _seed) = failure.expect("a failing case must appear");
        let fails = |v: &Vec<i32>| v.iter().any(|&x| x >= 20);
        'outer: for _ in 0..1_000 {
            for cand in gen.shrink(&current) {
                if fails(&cand) {
                    current = cand;
                    continue 'outer;
                }
            }
            break;
        }
        assert_eq!(current, vec![20], "greedy shrink should reach [20]");
    }

    /// End-to-end: a failing prop_check! panics, and the panic message
    /// carries the minimal counterexample and a replayable case seed.
    #[test]
    fn failure_report_contains_seed_and_minimal_input() {
        let result = std::panic::catch_unwind(|| {
            prop_check!(vecs(ints(0i32..100), 0..20), |v| {
                prop_assert!(v.iter().all(|&x| x < 20), "saw big element");
            });
        });
        let msg = panic_message(result.expect_err("property must fail"));
        assert!(msg.contains("MEBL_PROP_CASE_SEED=0x"), "no seed in: {msg}");
        assert!(msg.contains("[20]"), "not shrunk to [20]: {msg}");
    }

    #[test]
    fn plain_panics_are_caught_and_reported() {
        let result = std::panic::catch_unwind(|| {
            prop_check!(ints(0i32..10), |n| {
                assert!(n < 100, "unreachable");
                if n >= 0 {
                    panic!("boom {n}");
                }
            });
        });
        let msg = panic_message(result.expect_err("property must fail"));
        assert!(msg.contains("boom"), "panic not propagated: {msg}");
        assert!(msg.contains("MEBL_PROP_CASE_SEED"), "no seed: {msg}");
    }

    #[test]
    fn assume_discards_without_counting() {
        let mut odd_seen = 0u32;
        prop_check!(Config::with_cases(10), ints(0i32..100), |n| {
            crate::prop_assume!(n % 2 == 1);
            odd_seen += 1;
            prop_assert!(n % 2 == 1);
        });
        assert_eq!(odd_seen, 10, "exactly 10 passing odd cases");
    }

    #[test]
    fn int_shrink_moves_toward_zero_in_range() {
        let g = ints(-50i32..50);
        assert!(g.shrink(&0).is_empty());
        assert!(g.shrink(&37).contains(&0));
        assert!(g.shrink(&-37).contains(&0));
        // Range excluding zero shrinks toward the bound nearest zero.
        let pos = ints(10i32..50);
        assert!(pos.shrink(&30).contains(&10));
        assert!(pos.shrink(&10).is_empty());
    }
}
