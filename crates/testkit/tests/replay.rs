//! End-to-end check of the failure-replay contract: a failing property
//! prints a `MEBL_PROP_CASE_SEED`, and re-running with that seed set in the
//! environment reproduces the identical failure in a fresh process.

use std::process::Command;

/// Deliberately failing property. Inert unless the driver test below
/// re-invokes this binary with `MEBL_TESTKIT_SELFTEST=1`, so a plain
/// `cargo test` never sees it fail.
#[test]
fn selftest_failing_property() {
    if std::env::var("MEBL_TESTKIT_SELFTEST").as_deref() != Ok("1") {
        return;
    }
    mebl_testkit::prop_check!(
        mebl_testkit::prop::vecs(mebl_testkit::prop::ints(0i32..1000), 0..30),
        |v| {
            mebl_testkit::prop_assert!(
                v.iter().all(|&x| x < 500),
                "element >= 500 present"
            );
        }
    );
}

fn run_selftest(extra_env: &[(&str, String)]) -> String {
    let exe = std::env::current_exe().expect("current test binary");
    let mut cmd = Command::new(exe);
    cmd.args(["selftest_failing_property", "--exact"])
        .env("MEBL_TESTKIT_SELFTEST", "1");
    for (k, v) in extra_env {
        cmd.env(k, v);
    }
    let out = cmd.output().expect("spawn test binary");
    assert!(
        !out.status.success(),
        "self-test property was expected to fail"
    );
    format!(
        "{}{}",
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr)
    )
}

#[test]
fn printed_seed_replays_identical_failure() {
    let first = run_selftest(&[]);
    let seed = first
        .split("MEBL_PROP_CASE_SEED=")
        .nth(1)
        .and_then(|rest| rest.split_whitespace().next())
        .unwrap_or_else(|| panic!("no case seed in failure output:\n{first}"))
        .to_string();
    let minimal = first
        .split("minimal counterexample")
        .nth(1)
        .and_then(|rest| rest.split(": ").nth(1))
        .and_then(|rest| rest.lines().next())
        .unwrap_or_else(|| panic!("no counterexample in failure output:\n{first}"))
        .to_string();
    // Greedy shrinking must reach the canonical minimal input.
    assert_eq!(minimal, "[500]", "unexpected minimal counterexample");

    let replay = run_selftest(&[("MEBL_PROP_CASE_SEED", seed.clone())]);
    assert!(
        replay.contains(&format!("MEBL_PROP_CASE_SEED={seed}")),
        "replay with seed {seed} did not fail with the same seed:\n{replay}"
    );
    assert!(
        replay.contains("[500]"),
        "replay did not shrink to the same minimal counterexample:\n{replay}"
    );
}
