//! Stitch-aware placement adjustment — the paper's stated future work.
//!
//! The routing framework tolerates via violations only at fixed pins,
//! because a pin sitting *on* a stitching line forces any via stack above
//! it onto the line (paper §V: "to remove the via violations due to the
//! fixed pin positions of nets, stitch-aware algorithms should also be
//! desirable in the placement stage").
//!
//! This crate implements that stage as a pre-routing **pin adjustment
//! pass**: every pin lying on a stitching line (optionally: anywhere in a
//! stitch unfriendly region) is nudged to the nearest free grid position
//! off the line, within a bounded displacement window — the legalisation
//! freedom a placer has when it shifts a cell by a site or two. Pins that
//! cannot move (window exhausted) stay put and remain tolerated
//! violations.
//!
//! ```
//! use mebl_geom::{Layer, Point, Rect};
//! use mebl_netlist::{Circuit, Net, Pin};
//! use mebl_place::{adjust_pins, PlaceConfig};
//! use mebl_stitch::{StitchConfig, StitchPlan};
//!
//! let outline = Rect::new(0, 0, 59, 29);
//! let net = Net::new("a", vec![
//!     Pin::new(Point::new(15, 5), Layer::new(0)),  // on the line x = 15
//!     Pin::new(Point::new(40, 5), Layer::new(0)),
//! ]);
//! let circuit = Circuit::new("demo", outline, 3, vec![net]);
//! let plan = StitchPlan::new(outline, StitchConfig::default());
//!
//! let adjusted = adjust_pins(&circuit, &plan, &PlaceConfig::default());
//! assert_eq!(adjusted.moved, 1);
//! let new_pin = adjusted.circuit.nets()[0].pins()[0];
//! assert!(!plan.is_on_line(new_pin.position.x));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use mebl_geom::{Coord, Point};
use mebl_netlist::{Circuit, Net, Pin};
use mebl_stitch::StitchPlan;
use std::collections::BTreeSet;

/// Configuration of the pin-adjustment pass.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PlaceConfig {
    /// Maximum displacement (Chebyshev distance) a pin may move.
    pub max_displacement: Coord,
    /// Also evacuate pins from stitch *unfriendly regions*, not only from
    /// the lines themselves. More aggressive; costs more displacement.
    pub clear_unfriendly: bool,
}

impl Default for PlaceConfig {
    fn default() -> Self {
        Self {
            max_displacement: 3,
            clear_unfriendly: false,
        }
    }
}

/// Result of [`adjust_pins`].
#[derive(Debug, Clone)]
pub struct PlaceResult {
    /// The adjusted circuit (same nets, possibly moved pins).
    pub circuit: Circuit,
    /// Pins that were moved.
    pub moved: usize,
    /// Offending pins that could not be moved within the window.
    pub stuck: usize,
    /// Total Manhattan displacement over all moved pins.
    pub total_displacement: u64,
}

/// Whether a pin position offends the stitch plan under `config`.
fn offends(plan: &StitchPlan, config: &PlaceConfig, p: Point) -> bool {
    if config.clear_unfriendly {
        plan.in_unfriendly_region(p.x)
    } else {
        plan.is_on_line(p.x)
    }
}

/// Moves offending pins off stitching lines (see crate docs).
///
/// Deterministic: pins are visited in netlist order and candidate targets
/// in increasing (displacement, x, y) order. Never moves a pin onto
/// another pin, outside the outline, or onto an offending position.
pub fn adjust_pins(circuit: &Circuit, plan: &StitchPlan, config: &PlaceConfig) -> PlaceResult {
    let outline = circuit.outline();
    let mut used: BTreeSet<Point> = circuit
        .nets()
        .iter()
        .flat_map(|n| n.pins().iter().map(|p| p.position))
        .collect();

    let mut moved = 0usize;
    let mut stuck = 0usize;
    let mut total_displacement = 0u64;

    let nets: Vec<Net> = circuit
        .nets()
        .iter()
        .map(|net| {
            let pins: Vec<Pin> = net
                .pins()
                .iter()
                .map(|pin| {
                    if !offends(plan, config, pin.position) {
                        return *pin;
                    }
                    // Candidate targets by growing Chebyshev ring.
                    let mut best: Option<Point> = None;
                    'ring: for d in 1..=config.max_displacement {
                        let mut ring: Vec<Point> = Vec::new();
                        for dx in -d..=d {
                            for dy in -d..=d {
                                if dx.abs().max(dy.abs()) == d {
                                    ring.push(Point::new(
                                        pin.position.x + dx,
                                        pin.position.y + dy,
                                    ));
                                }
                            }
                        }
                        ring.sort_by_key(|q| {
                            (
                                (q.x - pin.position.x).abs() + (q.y - pin.position.y).abs(),
                                q.x,
                                q.y,
                            )
                        });
                        for q in ring {
                            if outline.contains(q)
                                && !offends(plan, config, q)
                                && !used.contains(&q)
                            {
                                best = Some(q);
                                break 'ring;
                            }
                        }
                    }
                    match best {
                        Some(q) => {
                            used.remove(&pin.position);
                            used.insert(q);
                            moved += 1;
                            total_displacement += ((q.x - pin.position.x).abs()
                                + (q.y - pin.position.y).abs())
                                as u64;
                            Pin::new(q, pin.layer)
                        }
                        None => {
                            stuck += 1;
                            *pin
                        }
                    }
                })
                .collect();
            Net::new(net.name(), pins)
        })
        .collect();

    PlaceResult {
        circuit: Circuit::new(circuit.name(), outline, circuit.layer_count(), nets),
        moved,
        stuck,
        total_displacement,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mebl_geom::{Layer, Rect};
    use std::collections::HashSet;
    use mebl_stitch::StitchConfig;
    use mebl_testkit::prop::{ints, vecs};
    use mebl_testkit::{prop_assert, prop_assert_eq, prop_assume, prop_check};

    fn pin(x: i32, y: i32) -> Pin {
        Pin::new(Point::new(x, y), Layer::new(0))
    }

    fn setup(pins: Vec<Vec<Pin>>) -> (Circuit, StitchPlan) {
        let outline = Rect::new(0, 0, 59, 29);
        let nets = pins
            .into_iter()
            .enumerate()
            .map(|(i, p)| Net::new(format!("n{i}"), p))
            .collect();
        (
            Circuit::new("t", outline, 3, nets),
            StitchPlan::new(outline, StitchConfig::default()),
        )
    }

    #[test]
    fn clean_pins_untouched() {
        let (c, plan) = setup(vec![vec![pin(2, 2), pin(40, 20)]]);
        let r = adjust_pins(&c, &plan, &PlaceConfig::default());
        assert_eq!(r.moved, 0);
        assert_eq!(r.stuck, 0);
        assert_eq!(r.circuit, c);
    }

    #[test]
    fn on_line_pin_moves_minimally() {
        let (c, plan) = setup(vec![vec![pin(30, 10), pin(5, 5)]]);
        let r = adjust_pins(&c, &plan, &PlaceConfig::default());
        assert_eq!(r.moved, 1);
        let p = r.circuit.nets()[0].pins()[0];
        assert!(!plan.is_on_line(p.position.x));
        assert_eq!(r.total_displacement, 1);
    }

    #[test]
    fn never_moves_onto_other_pin() {
        // Both direct lateral neighbours of (15, 10) are taken.
        let (c, plan) = setup(vec![
            vec![pin(15, 10), pin(50, 5)],
            vec![pin(14, 10), pin(16, 10)],
        ]);
        let r = adjust_pins(&c, &plan, &PlaceConfig::default());
        assert_eq!(r.moved, 1);
        let moved = r.circuit.nets()[0].pins()[0].position;
        let mut all: Vec<Point> = r
            .circuit
            .nets()
            .iter()
            .flat_map(|n| n.pins().iter().map(|p| p.position))
            .collect();
        let before = all.len();
        all.sort_unstable();
        all.dedup();
        assert_eq!(all.len(), before, "pin collision after adjustment");
        assert!(!plan.is_on_line(moved.x));
    }

    #[test]
    fn stuck_when_window_exhausted() {
        // Wall the pin in completely within the displacement window.
        let mut blockers = Vec::new();
        for dx in -3i32..=3 {
            for dy in -3i32..=3 {
                if (dx, dy) != (0, 0) {
                    blockers.push(pin(15 + dx, 10 + dy));
                }
            }
        }
        // Blockers need valid nets: chunk them in pairs.
        let mut nets: Vec<Vec<Pin>> = vec![vec![pin(15, 10), pin(50, 25)]];
        for chunk in blockers.chunks(2) {
            if chunk.len() == 2 {
                nets.push(chunk.to_vec());
            }
        }
        let (c, plan) = setup(nets);
        let r = adjust_pins(&c, &plan, &PlaceConfig::default());
        assert_eq!(r.stuck, 1);
        assert_eq!(r.circuit.nets()[0].pins()[0].position, Point::new(15, 10));
    }

    #[test]
    fn clear_unfriendly_mode_evacuates_region() {
        let (c, plan) = setup(vec![vec![pin(16, 10), pin(50, 5)]]);
        // Default mode: 16 is not on a line, stays.
        let lax = adjust_pins(&c, &plan, &PlaceConfig::default());
        assert_eq!(lax.moved, 0);
        // Aggressive mode: 16 is unfriendly, moves out.
        let strict = adjust_pins(
            &c,
            &plan,
            &PlaceConfig {
                clear_unfriendly: true,
                ..PlaceConfig::default()
            },
        );
        assert_eq!(strict.moved, 1);
        let p = strict.circuit.nets()[0].pins()[0];
        assert!(!plan.in_unfriendly_region(p.position.x));
    }

    /// Adjustment preserves net structure, keeps pins unique and in
    /// the outline, and moved pins are never worse than before.
    #[test]
    fn prop_adjustment_invariants() {
        prop_check!(vecs((ints(0i32..60), ints(0i32..30)), 4..24), |xs| {
            let mut seen = HashSet::new();
            let pins: Vec<Pin> = xs
                .into_iter()
                .filter(|&(x, y)| seen.insert((x, y)))
                .map(|(x, y)| pin(x.min(59), y.min(29)))
                .collect();
            prop_assume!(pins.len() >= 4);
            let nets: Vec<Vec<Pin>> = pins.chunks(2).filter(|c| c.len() == 2).map(<[Pin]>::to_vec).collect();
            let (c, plan) = setup(nets);
            let r = adjust_pins(&c, &plan, &PlaceConfig::default());
            prop_assert_eq!(r.circuit.net_count(), c.net_count());
            prop_assert_eq!(r.circuit.pin_count(), c.pin_count());
            let mut unique = HashSet::new();
            for net in r.circuit.nets() {
                for p in net.pins() {
                    prop_assert!(c.outline().contains(p.position));
                    prop_assert!(unique.insert(p.position));
                }
            }
            prop_assert_eq!(r.moved + r.stuck,
                c.nets().iter().flat_map(|n| n.pins()).filter(|p| plan.is_on_line(p.position.x)).count());
        });
    }
}
