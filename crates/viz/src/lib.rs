//! SVG rendering of routed layouts (Figs. 15–16 of the paper).
//!
//! [`layout_svg`] draws the chip outline, the stitching lines (dashed),
//! per-layer wires (one colour per layer) and vias, producing a
//! self-contained SVG string the bench binaries write to disk.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use mebl_geom::RouteGeometry;
use mebl_netlist::Circuit;
use mebl_stitch::StitchPlan;
use std::fmt::Write as _;

/// Per-layer wire colours (cycled when the stack is deeper).
const LAYER_COLORS: [&str; 6] = [
    "#1f77b4", "#d62728", "#2ca02c", "#9467bd", "#ff7f0e", "#17becf",
];

/// Renders a routed circuit as an SVG document.
///
/// `geometry` is indexed by net (as in
/// [`mebl_detailed::DetailedResult::geometry`]); `scale` is pixels per
/// routing pitch.
///
/// ```
/// use mebl_geom::{Layer, Point, Rect, RouteGeometry, Segment};
/// use mebl_netlist::{Circuit, Net, Pin};
/// use mebl_stitch::{StitchConfig, StitchPlan};
///
/// let outline = Rect::new(0, 0, 29, 29);
/// let net = Net::new("a", vec![
///     Pin::new(Point::new(1, 1), Layer::new(0)),
///     Pin::new(Point::new(9, 1), Layer::new(0)),
/// ]);
/// let circuit = Circuit::new("demo", outline, 3, vec![net]);
/// let plan = StitchPlan::new(outline, StitchConfig::default());
/// let mut g = RouteGeometry::new();
/// g.push_segment(Segment::horizontal(Layer::new(0), 1, 1, 9));
/// let svg = mebl_viz::layout_svg(&circuit, &plan, &[g], 4.0);
/// assert!(svg.starts_with("<svg"));
/// assert!(svg.contains("</svg>"));
/// ```
pub fn layout_svg(
    circuit: &Circuit,
    plan: &StitchPlan,
    geometry: &[RouteGeometry],
    scale: f64,
) -> String {
    let outline = circuit.outline();
    let w = outline.width() as f64 * scale;
    let h = outline.height() as f64 * scale;
    let x = |c: i32| (c - outline.x0()) as f64 * scale;
    // SVG y grows downward; flip so the layout origin is bottom-left.
    let y = |c: i32| h - (c - outline.y0()) as f64 * scale;

    let mut svg = String::new();
    let _ = writeln!(
        svg,
        r#"<svg xmlns="http://www.w3.org/2000/svg" width="{w:.0}" height="{h:.0}" viewBox="0 0 {w:.0} {h:.0}">"#
    );
    let _ = writeln!(
        svg,
        r#"<rect x="0" y="0" width="{w:.0}" height="{h:.0}" fill="white" stroke="black"/>"#
    );

    // Stitching lines.
    for &line in plan.lines() {
        let _ = writeln!(
            svg,
            r##"<line x1="{0:.1}" y1="0" x2="{0:.1}" y2="{h:.1}" stroke="#888" stroke-dasharray="6,4" stroke-width="1"/>"##,
            x(line)
        );
    }

    // Wires, lowest layer first so upper layers draw on top.
    let stroke = (scale * 0.6).max(0.5);
    for layer in 0..circuit.layer_count() {
        let color = LAYER_COLORS[layer as usize % LAYER_COLORS.len()];
        for geom in geometry {
            for seg in geom.segments() {
                if seg.layer.index() != layer {
                    continue;
                }
                let (a, b) = seg.endpoints();
                let _ = writeln!(
                    svg,
                    r#"<line x1="{:.1}" y1="{:.1}" x2="{:.1}" y2="{:.1}" stroke="{color}" stroke-width="{stroke:.1}" stroke-linecap="round"/>"#,
                    x(a.x),
                    y(a.y),
                    x(b.x),
                    y(b.y)
                );
            }
        }
    }

    // Vias.
    let r = (scale * 0.45).max(0.5);
    for geom in geometry {
        for via in geom.vias() {
            let _ = writeln!(
                svg,
                r#"<rect x="{:.1}" y="{:.1}" width="{:.1}" height="{:.1}" fill="black"/>"#,
                x(via.x) - r / 2.0,
                y(via.y) - r / 2.0,
                r,
                r
            );
        }
    }

    // Pins.
    for net in circuit.nets() {
        for pin in net.pins() {
            let _ = writeln!(
                svg,
                r##"<circle cx="{:.1}" cy="{:.1}" r="{:.1}" fill="none" stroke="#444" stroke-width="0.6"/>"##,
                x(pin.position.x),
                y(pin.position.y),
                r * 0.8
            );
        }
    }

    svg.push_str("</svg>\n");
    svg
}

/// Renders a per-tile heatmap (e.g. congestion or line-end utilisation
/// from [`mebl_global::GlobalResult`]) as an SVG document.
///
/// `values` are clamped to `[0, 1.25]`; 0 renders white, 1 deep red and
/// anything above 1 (overflow) purple. Stitching lines are drawn on top.
///
/// # Panics
///
/// Panics if `values.len()` differs from the graph's tile count.
pub fn congestion_svg(
    graph: &mebl_global::TileGraph,
    plan: &StitchPlan,
    values: &[f64],
    scale: f64,
) -> String {
    assert_eq!(values.len(), graph.tile_count(), "one value per tile");
    let outline = graph.outline();
    let w = outline.width() as f64 * scale;
    let h = outline.height() as f64 * scale;
    let mut svg = String::new();
    let _ = writeln!(
        svg,
        r#"<svg xmlns="http://www.w3.org/2000/svg" width="{w:.0}" height="{h:.0}" viewBox="0 0 {w:.0} {h:.0}">"#
    );
    for row in 0..graph.rows() {
        for col in 0..graph.cols() {
            let t = graph.tile_at(col, row);
            let rect = graph.tile_rect(t);
            let v = values[t.0 as usize];
            let color = if !v.is_finite() || v > 1.0 {
                "#7b1fa2".to_string() // overflow: purple
            } else {
                // White -> red ramp.
                let g = ((1.0 - v.clamp(0.0, 1.0)) * 255.0) as u8;
                format!("#ff{g:02x}{g:02x}")
            };
            let x = (rect.x0() - outline.x0()) as f64 * scale;
            // Flip y: SVG origin is top-left.
            let y = h - (rect.y1() - outline.y0() + 1) as f64 * scale;
            let _ = writeln!(
                svg,
                r##"<rect x="{x:.1}" y="{y:.1}" width="{:.1}" height="{:.1}" fill="{color}" stroke="#ddd" stroke-width="0.4"/>"##,
                rect.width() as f64 * scale,
                rect.height() as f64 * scale,
            );
        }
    }
    for &line in plan.lines() {
        let x = (line - outline.x0()) as f64 * scale;
        let _ = writeln!(
            svg,
            r##"<line x1="{x:.1}" y1="0" x2="{x:.1}" y2="{h:.1}" stroke="#555" stroke-dasharray="6,4"/>"##
        );
    }
    svg.push_str("</svg>\n");
    svg
}

#[cfg(test)]
mod tests {
    use super::*;
    use mebl_geom::{Layer, Point, Rect, Segment, Via};
    use mebl_netlist::{Net, Pin};
    use mebl_stitch::StitchConfig;

    fn setup() -> (Circuit, StitchPlan) {
        let outline = Rect::new(0, 0, 44, 29);
        let net = Net::new(
            "a",
            vec![
                Pin::new(Point::new(1, 1), Layer::new(0)),
                Pin::new(Point::new(20, 20), Layer::new(0)),
            ],
        );
        (
            Circuit::new("t", outline, 3, vec![net]),
            StitchPlan::new(outline, StitchConfig::default()),
        )
    }

    #[test]
    fn svg_contains_stitch_lines_and_wires() {
        let (c, plan) = setup();
        let mut g = RouteGeometry::new();
        g.push_segment(Segment::horizontal(Layer::new(0), 1, 1, 20));
        g.push_segment(Segment::vertical(Layer::new(1), 20, 1, 20));
        g.push_via(Via::new(20, 1, Layer::new(0)));
        let svg = layout_svg(&c, &plan, &[g], 4.0);
        assert!(svg.contains("stroke-dasharray"), "stitch lines rendered");
        assert!(svg.matches("<line").count() >= 4, "wires + lines rendered");
        assert!(svg.contains("<rect"), "via rendered");
        assert!(svg.contains("<circle"), "pins rendered");
    }

    #[test]
    fn empty_geometry_still_valid_svg() {
        let (c, plan) = setup();
        let svg = layout_svg(&c, &plan, &[], 2.0);
        assert!(svg.starts_with("<svg"));
        assert!(svg.ends_with("</svg>\n"));
    }

    #[test]
    fn congestion_heatmap_renders_tiles_and_overflow() {
        let outline = Rect::new(0, 0, 44, 29);
        let plan = StitchPlan::new(outline, StitchConfig::default());
        let graph = mebl_global::TileGraph::new(outline, 15, 3, &plan, true);
        let mut values = vec![0.0; graph.tile_count()];
        values[0] = 0.5;
        values[1] = 1.2; // overflow
        let svg = congestion_svg(&graph, &plan, &values, 4.0);
        assert_eq!(svg.matches("<rect").count(), graph.tile_count());
        assert!(svg.contains("#7b1fa2"), "overflow tile is purple");
        assert!(svg.contains("stroke-dasharray"), "stitch lines drawn");
    }

    #[test]
    #[should_panic(expected = "one value per tile")]
    fn congestion_heatmap_validates_length() {
        let outline = Rect::new(0, 0, 44, 29);
        let plan = StitchPlan::new(outline, StitchConfig::default());
        let graph = mebl_global::TileGraph::new(outline, 15, 3, &plan, true);
        let _ = congestion_svg(&graph, &plan, &[0.0], 4.0);
    }

    #[test]
    fn y_axis_flipped() {
        let (c, plan) = setup();
        let mut g = RouteGeometry::new();
        g.push_segment(Segment::horizontal(Layer::new(0), 0, 0, 5));
        let svg = layout_svg(&c, &plan, &[g], 1.0);
        // y=0 wire must be at the bottom: SVG y = height = 30.
        assert!(svg.contains(r#"y1="30.0""#), "{svg}");
    }
}
