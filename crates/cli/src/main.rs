//! `mebl` — command-line front end for the stitch-aware MEBL router.
//!
//! ```text
//! mebl list                                   # show the benchmark suite
//! mebl gen  <bench> [--scale f] [--seed n] [-o file]
//! mebl route <circuit.txt> [--baseline] [--svg out.svg] [--period n]
//!            [--time-budget ms] [--max-expansions n] [--threads n] [--json]
//!            [--save-outcome out.mebl]
//! mebl route --from outcome.mebl [--edits edits.json] [--save-outcome f]
//!            [--svg out.svg] [--time-budget ms] [--threads n] [--json]
//! mebl audit (<circuit.txt> | --bench NAME) [--seed n] [--scale f]
//!            [--baseline] [--period n] [--strict]
//!            [--time-budget ms] [--max-expansions n] [--threads n] [--json]
//! mebl serve [--port n] [--workers n] [--queue-depth n]
//!            [--default-budget-ms n] [--cache-capacity n]
//!            [--store dir] [--fsync always|never|interval:<n>]
//! ```
//!
//! Exit codes: 0 clean, 1 usage error, 2 degraded result (a budget bound
//! fired, internal fallbacks were taken, or `serve` cancelled jobs
//! in-flight during drain), 3 invalid input (unreadable or malformed
//! circuit, or a `serve` bind failure), 4 internal error (result violates
//! a hard MEBL constraint).
//!
//! `--json` prints the same response object the service daemon serves
//! (plus an `elapsed_ms` timing field, which the daemon omits so its
//! cached bodies stay byte-identical). `serve` prints
//! `listening on <addr>` on stdout, then drains gracefully when stdin
//! closes or `POST /shutdown` arrives.

use mebl_route::{Pool, RouteError, Router, RouterConfig, RunBudget};
use mebl_serve::api::{audit_response_json, error_json, route_response_json, Mode};
use mebl_serve::{FsyncPolicy, ServeConfig, Server};
use std::io::{Read, Write};
use std::process::ExitCode;
use std::time::Duration;

/// Typed CLI failure; the variant fixes the exit code.
enum CliError {
    /// Bad flags or arguments (exit 1, prints usage).
    Usage(String),
    /// The input circuit cannot be used (exit 3).
    Invalid(String),
    /// The router produced an illegal result — a bug (exit 4).
    Internal(String),
}

impl CliError {
    fn usage(msg: impl Into<String>) -> Self {
        CliError::Usage(msg.into())
    }
}

/// What a successfully-finished command reports.
enum Outcome {
    Clean,
    Degraded,
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let result = match args.first().map(String::as_str) {
        Some("list") => cmd_list(),
        Some("gen") => cmd_gen(&args[1..]),
        Some("route") => cmd_route(&args[1..]),
        Some("audit") => cmd_audit(&args[1..]),
        Some("serve") => cmd_serve(&args[1..]),
        Some("coord") => cmd_coord(&args[1..]),
        Some("help") | None => {
            print_usage();
            Ok(Outcome::Clean)
        }
        Some(other) => Err(CliError::usage(format!("unknown command '{other}'"))),
    };
    match result {
        Ok(Outcome::Clean) => ExitCode::SUCCESS,
        Ok(Outcome::Degraded) => ExitCode::from(2),
        Err(CliError::Usage(msg)) => {
            eprintln!("error: {msg}");
            print_usage();
            ExitCode::from(1)
        }
        Err(CliError::Invalid(msg)) => {
            eprintln!("error: {msg}");
            ExitCode::from(3)
        }
        Err(CliError::Internal(msg)) => {
            eprintln!("internal error: {msg}");
            ExitCode::from(4)
        }
    }
}

fn print_usage() {
    eprintln!(
        "usage:\n  mebl list\n  mebl gen <bench> [--scale f] [--seed n] [-o file]\n  mebl route <circuit.txt> [--baseline] [--svg out.svg] [--period n] [--shards n] [--time-budget ms] [--max-expansions n] [--threads n] [--json] [--save-outcome f]\n  mebl route --from outcome.mebl [--edits edits.json] [--save-outcome f] [--svg out.svg] [--time-budget ms] [--threads n] [--json]\n  mebl audit (<circuit.txt> | --bench NAME) [--seed n] [--scale f] [--baseline] [--period n] [--strict] [--time-budget ms] [--max-expansions n] [--threads n] [--json]\n  mebl serve [--port n] [--workers n] [--queue-depth n] [--default-budget-ms n] [--cache-capacity n] [--store dir] [--fsync always|never|interval:<n>]\n  mebl coord (--workers addr,addr,... | --spawn n) [--port n] [--store dir] [--budget-ms n]\n\n--threads defaults to the machine's available parallelism; results are\nbit-identical at every thread count. --shards splits the die at stitch\nboundaries into panel jobs (byte-identical at every shard count). --json\nprints the service daemon's response object. serve and coord drain when\nstdin closes or POST /shutdown arrives.\n\nexit codes: 0 clean, 1 usage, 2 degraded result, 3 invalid input, 4 internal error"
    );
}

fn cmd_list() -> Result<Outcome, CliError> {
    println!(
        "{:<10} {:<8} {:>7} {:>7} {:>8}",
        "name", "suite", "layers", "nets", "pins"
    );
    for spec in mebl_netlist::full_suite() {
        println!(
            "{:<10} {:<8} {:>7} {:>7} {:>8}",
            spec.name,
            spec.suite.to_string(),
            spec.layers,
            spec.nets,
            spec.pins
        );
    }
    Ok(Outcome::Clean)
}

fn cmd_gen(args: &[String]) -> Result<Outcome, CliError> {
    let mut it = args.iter();
    let bench = it.next().ok_or(CliError::Usage("gen: missing benchmark name".into()))?;
    let spec = mebl_netlist::BenchmarkSpec::by_name(bench).ok_or_else(|| {
        CliError::usage(format!("unknown benchmark '{bench}' (try `mebl list`)"))
    })?;
    let mut config = mebl_netlist::GenerateConfig::default();
    let mut out: Option<String> = None;
    while let Some(flag) = it.next() {
        let mut val = |name: &str| -> Result<&String, CliError> {
            it.next()
                .ok_or_else(|| CliError::usage(format!("missing value for {name}")))
        };
        match flag.as_str() {
            "--scale" => {
                config.net_scale = val("--scale")?
                    .parse()
                    .map_err(|_| CliError::usage("bad --scale"))?
            }
            "--seed" => {
                config.seed = val("--seed")?
                    .parse()
                    .map_err(|_| CliError::usage("bad --seed"))?
            }
            "-o" | "--out" => out = Some(val("-o")?.clone()),
            other => return Err(CliError::usage(format!("gen: unknown flag {other}"))),
        }
    }
    let (circuit, events) = spec.generate_with_events(&config);
    for event in &events {
        eprintln!("note: generator: {event}");
    }
    let text = mebl_netlist::circuit_to_string(&circuit);
    match out {
        Some(path) => {
            std::fs::write(&path, text)
                .map_err(|e| CliError::Invalid(format!("writing {path}: {e}")))?;
            eprintln!(
                "wrote {} ({} nets, {} pins, {}x{} tracks)",
                path,
                circuit.net_count(),
                circuit.pin_count(),
                circuit.outline().width(),
                circuit.outline().height()
            );
        }
        None => print!("{text}"),
    }
    Ok(Outcome::Clean)
}

/// Flags shared by `route` and `audit` that shape the router run.
struct RunFlags {
    baseline: bool,
    period: Option<i32>,
    budget: RunBudget,
    threads: Option<usize>,
    /// Sharded panel routing: split the die at stitch boundaries and
    /// fan the panels out this wide (`mebl route` only).
    shards: Option<usize>,
    /// Print the service daemon's JSON response object (with timing)
    /// instead of the human-readable report lines.
    json: bool,
}

impl RunFlags {
    fn new() -> Self {
        Self {
            baseline: false,
            period: None,
            budget: RunBudget::default(),
            threads: None,
            shards: None,
            json: false,
        }
    }

    /// Parses one flag if it belongs to this group. `Ok(true)` means the
    /// flag (and possibly its value) was consumed.
    fn parse<'a>(
        &mut self,
        flag: &str,
        it: &mut impl Iterator<Item = &'a String>,
    ) -> Result<bool, CliError> {
        let mut val = |name: &str| -> Result<&String, CliError> {
            it.next()
                .ok_or_else(|| CliError::usage(format!("missing value for {name}")))
        };
        match flag {
            "--baseline" => self.baseline = true,
            "--period" => {
                let p: i32 = val("--period")?
                    .parse()
                    .map_err(|_| CliError::usage("bad --period"))?;
                if p <= 1 {
                    return Err(CliError::usage("--period must be > 1"));
                }
                self.period = Some(p);
            }
            "--time-budget" => {
                let ms: u64 = val("--time-budget")?
                    .parse()
                    .map_err(|_| CliError::usage("bad --time-budget (milliseconds)"))?;
                self.budget.time = Some(Duration::from_millis(ms));
            }
            "--max-expansions" => {
                self.budget.max_expansions = Some(
                    val("--max-expansions")?
                        .parse()
                        .map_err(|_| CliError::usage("bad --max-expansions"))?,
                );
            }
            "--threads" => {
                let n: usize = val("--threads")?
                    .parse()
                    .map_err(|_| CliError::usage("bad --threads"))?;
                if n == 0 {
                    return Err(CliError::usage("--threads must be >= 1"));
                }
                self.threads = Some(n);
            }
            "--shards" => {
                let n: usize = val("--shards")?
                    .parse()
                    .map_err(|_| CliError::usage("bad --shards"))?;
                if n == 0 {
                    return Err(CliError::usage("--shards must be >= 1"));
                }
                self.shards = Some(n);
            }
            "--json" => self.json = true,
            _ => return Ok(false),
        }
        Ok(true)
    }

    fn router_config(&self) -> RouterConfig {
        let mut config = if self.baseline {
            RouterConfig::baseline()
        } else {
            RouterConfig::stitch_aware()
        };
        if let Some(p) = self.period {
            config.stitch.period = p;
            config.global.tile_size = p;
        }
        config.budget = self.budget;
        // The CLI defaults to all available cores; the library default
        // stays serial. Output is bit-identical either way.
        config.pool = match self.threads {
            Some(n) => Pool::new(n),
            None => Pool::available(),
        };
        config
    }

    fn mode_name(&self) -> &'static str {
        self.mode().name()
    }

    /// The wire-schema mode tag shared with the service daemon.
    fn mode(&self) -> Mode {
        if self.baseline {
            Mode::Baseline
        } else {
            Mode::StitchAware
        }
    }
}

/// Routes a circuit, then re-verifies the solution with the independent
/// `mebl-audit` checker. Exits nonzero when the audit reports errors
/// (with `--strict`, warnings also fail).
fn cmd_audit(args: &[String]) -> Result<Outcome, CliError> {
    let mut it = args.iter();
    let mut file: Option<String> = None;
    let mut bench: Option<String> = None;
    let mut gen_config = mebl_netlist::GenerateConfig::quick(1);
    let mut flags = RunFlags::new();
    let mut strict = false;
    while let Some(flag) = it.next() {
        if flags.parse(flag, &mut it)? {
            continue;
        }
        let mut val = |name: &str| -> Result<&String, CliError> {
            it.next()
                .ok_or_else(|| CliError::usage(format!("missing value for {name}")))
        };
        match flag.as_str() {
            "--bench" => bench = Some(val("--bench")?.clone()),
            "--seed" => {
                gen_config.seed = val("--seed")?
                    .parse()
                    .map_err(|_| CliError::usage("bad --seed"))?
            }
            "--scale" => {
                gen_config.net_scale = val("--scale")?
                    .parse()
                    .map_err(|_| CliError::usage("bad --scale"))?
            }
            "--strict" => strict = true,
            other if file.is_none() && !other.starts_with('-') => file = Some(other.to_string()),
            other => return Err(CliError::usage(format!("audit: unknown flag {other}"))),
        }
    }
    if flags.shards.is_some() {
        return Err(CliError::usage(
            "audit: --shards is a routing flag; audit a `mebl route --shards --save-outcome` file instead",
        ));
    }

    let circuit = match (file, bench) {
        (Some(path), None) => load_circuit(&path)?,
        (None, Some(name)) => mebl_netlist::BenchmarkSpec::by_name(&name)
            .ok_or_else(|| CliError::usage(format!("unknown benchmark '{name}' (try `mebl list`)")))?
            .generate(&gen_config),
        (Some(_), Some(_)) => {
            return Err(CliError::usage("audit: give a file or --bench, not both"))
        }
        (None, None) => return Err(CliError::usage("audit: missing circuit file or --bench")),
    };

    let config = flags.router_config();
    let router = Router::new(config.clone());
    for d in router.validation_degradations(&circuit) {
        eprintln!("tolerated: {d}");
    }
    let outcome = match router.try_route(&circuit) {
        Ok(outcome) => outcome,
        Err(e @ RouteError::BudgetExhausted) => {
            // The input was fine and a bigger budget would succeed:
            // same exit class as a degraded run.
            if flags.json {
                println!("{}", error_json("budget-exhausted", &e.to_string()).encode());
            }
            eprintln!("degraded: {e}");
            return Ok(Outcome::Degraded);
        }
        Err(e) => return Err(map_route_error(e)),
    };
    for d in &outcome.degradations {
        eprintln!("degraded: {d}");
    }
    let audit = mebl_audit::audit_outcome(&circuit, &config, &outcome);
    if flags.json {
        println!(
            "{}",
            audit_response_json(circuit.name(), flags.mode(), &outcome, &audit, strict, true)
                .encode()
        );
    } else {
        println!(
            "{} [{}]: {}",
            circuit.name(),
            flags.mode_name(),
            outcome.report
        );
        println!("{audit}");
        for finding in &audit.findings {
            println!("  {finding}");
        }
    }
    let errors = audit.error_count();
    let warnings = audit.warning_count();
    if errors > 0 || (strict && warnings > 0) {
        return Err(CliError::Internal(format!(
            "audit failed: {errors} error(s), {warnings} warning(s)"
        )));
    }
    if outcome.is_degraded() {
        Ok(Outcome::Degraded)
    } else {
        Ok(Outcome::Clean)
    }
}

fn cmd_route(args: &[String]) -> Result<Outcome, CliError> {
    let mut it = args.iter();
    let mut file: Option<String> = None;
    let mut flags = RunFlags::new();
    let mut svg: Option<String> = None;
    let mut from: Option<String> = None;
    let mut edits_path: Option<String> = None;
    let mut save_outcome: Option<String> = None;
    while let Some(flag) = it.next() {
        if flags.parse(flag, &mut it)? {
            continue;
        }
        let mut val = |name: &str| -> Result<&String, CliError> {
            it.next()
                .ok_or_else(|| CliError::usage(format!("missing value for {name}")))
        };
        match flag.as_str() {
            "--svg" => svg = Some(val("--svg")?.clone()),
            "--from" => from = Some(val("--from")?.clone()),
            "--edits" => edits_path = Some(val("--edits")?.clone()),
            "--save-outcome" => save_outcome = Some(val("--save-outcome")?.clone()),
            other if file.is_none() && !other.starts_with('-') => file = Some(other.to_string()),
            other => return Err(CliError::usage(format!("route: unknown flag {other}"))),
        }
    }

    if let Some(from_path) = from {
        if file.is_some() {
            return Err(CliError::usage(
                "route: give a circuit file or --from, not both",
            ));
        }
        return cmd_route_delta(&from_path, edits_path.as_deref(), &flags, svg, save_outcome);
    }
    if edits_path.is_some() {
        return Err(CliError::usage("route: --edits requires --from"));
    }
    let path = file.ok_or(CliError::Usage("route: missing circuit file".into()))?;

    let circuit = load_circuit(&path)?;
    let outcome = if let Some(shards) = flags.shards {
        let opts = mebl_shard::ShardOptions {
            baseline: flags.baseline,
            period: flags.period,
            shards,
            budget: flags.budget,
        };
        match mebl_shard::route_sharded(&circuit, &opts) {
            Ok(run) => {
                eprintln!(
                    "sharded: {} panel job(s) ({} cut, {} residual net(s)) across {} worker(s)",
                    run.jobs, run.cut_nets, run.residual_nets, run.shards
                );
                run.outcome
            }
            Err(
                e @ (mebl_shard::ShardError::BudgetExhausted
                | mebl_shard::ShardError::Panel { .. }),
            ) => {
                if flags.json {
                    println!("{}", error_json("budget-exhausted", &e.to_string()).encode());
                }
                eprintln!("degraded: {e}");
                return Ok(Outcome::Degraded);
            }
            Err(mebl_shard::ShardError::InvalidConfig(msg)) => {
                return Err(CliError::Usage(format!("route: {msg}")));
            }
            Err(e @ mebl_shard::ShardError::InvalidCircuit(_)) => {
                return Err(CliError::Invalid(e.to_string()));
            }
        }
    } else {
        let router = Router::new(flags.router_config());
        for d in router.validation_degradations(&circuit) {
            eprintln!("tolerated: {d}");
        }
        match router.try_route(&circuit) {
            Ok(outcome) => outcome,
            Err(e @ RouteError::BudgetExhausted) => {
                if flags.json {
                    println!("{}", error_json("budget-exhausted", &e.to_string()).encode());
                }
                eprintln!("degraded: {e}");
                return Ok(Outcome::Degraded);
            }
            Err(e) => return Err(map_route_error(e)),
        }
    };
    for d in &outcome.degradations {
        eprintln!("degraded: {d}");
    }
    if flags.json {
        println!(
            "{}",
            route_response_json(circuit.name(), flags.mode(), &outcome, true).encode()
        );
    } else {
        println!(
            "{} [{}]: {}",
            circuit.name(),
            flags.mode_name(),
            outcome.report
        );
    }
    if !outcome.report.hard_clean() {
        return Err(CliError::Internal(
            "hard MEBL violation in result (bug)".into(),
        ));
    }
    finish_route(&circuit, &outcome, flags.baseline, svg, save_outcome)?;
    if outcome.is_degraded() {
        Ok(Outcome::Degraded)
    } else {
        Ok(Outcome::Clean)
    }
}

/// The incremental path of `mebl route`: load a saved outcome, apply an
/// edit list, rip up and re-route only the affected nets.
///
/// Mode and stitch period come from the saved file's header, so
/// `--baseline` / `--period` are rejected here — a mismatched preset
/// would silently invalidate the preserved nets.
fn cmd_route_delta(
    from_path: &str,
    edits_path: Option<&str>,
    flags: &RunFlags,
    svg: Option<String>,
    save_outcome: Option<String>,
) -> Result<Outcome, CliError> {
    if flags.baseline {
        return Err(CliError::usage(
            "route: --baseline conflicts with --from (the mode is recorded in the outcome file)",
        ));
    }
    if flags.period.is_some() {
        return Err(CliError::usage(
            "route: --period conflicts with --from (the period is recorded in the outcome file)",
        ));
    }
    if flags.shards.is_some() {
        return Err(CliError::usage(
            "route: --shards conflicts with --from (delta runs re-route a saved outcome in place)",
        ));
    }

    let text = std::fs::read_to_string(from_path)
        .map_err(|e| CliError::Invalid(format!("reading {from_path}: {e}")))?;
    let saved = mebl_delta::outcome_from_str(&text)
        .map_err(|e| CliError::Invalid(format!("{from_path}: {e}")))?;
    let edits = match edits_path {
        None => Vec::new(),
        Some(path) => {
            let text = std::fs::read_to_string(path)
                .map_err(|e| CliError::Invalid(format!("reading {path}: {e}")))?;
            let doc = mebl_serve::json::parse(&text)
                .map_err(|e| CliError::Invalid(format!("{path}: {e}")))?;
            mebl_serve::delta::edits_from_json(&doc)
                .map_err(|e| CliError::Invalid(format!("{path}: {e}")))?
        }
    };

    let mut config = saved.config();
    config.budget = flags.budget;
    config.pool = match flags.threads {
        Some(n) => Pool::new(n),
        None => Pool::available(),
    };
    let mode = if saved.baseline {
        Mode::Baseline
    } else {
        Mode::StitchAware
    };

    let delta = mebl_delta::route_delta(&saved.circuit, &saved.outcome, &edits, &config)
        .map_err(|e| CliError::Invalid(format!("delta: {e}")))?;
    eprintln!(
        "delta: re-routed {} of {} net(s)",
        delta.rerouted.len(),
        delta.circuit.net_count()
    );
    for d in &delta.outcome.degradations {
        eprintln!("degraded: {d}");
    }
    if flags.json {
        println!(
            "{}",
            route_response_json(delta.circuit.name(), mode, &delta.outcome, true).encode()
        );
    } else {
        println!(
            "{} [{}]: {}",
            delta.circuit.name(),
            mode.name(),
            delta.outcome.report
        );
    }
    if !delta.outcome.report.hard_clean() {
        return Err(CliError::Internal(
            "hard MEBL violation in result (bug)".into(),
        ));
    }
    finish_route(&delta.circuit, &delta.outcome, saved.baseline, svg, save_outcome)?;
    if delta.outcome.is_degraded() {
        Ok(Outcome::Degraded)
    } else {
        Ok(Outcome::Clean)
    }
}

/// Output side shared by the scratch and delta routes: optional SVG
/// rendering and optional outcome serialization for later `--from` use.
fn finish_route(
    circuit: &mebl_netlist::Circuit,
    outcome: &mebl_route::RoutingOutcome,
    baseline: bool,
    svg: Option<String>,
    save_outcome: Option<String>,
) -> Result<(), CliError> {
    if let Some(svg_path) = svg {
        let doc = mebl_viz::layout_svg(circuit, &outcome.plan, &outcome.detailed.geometry, 4.0);
        std::fs::write(&svg_path, doc)
            .map_err(|e| CliError::Invalid(format!("writing {svg_path}: {e}")))?;
        eprintln!("wrote {svg_path}");
    }
    if let Some(out_path) = save_outcome {
        let saved = mebl_delta::SavedOutcome {
            circuit: circuit.clone(),
            outcome: outcome.clone(),
            baseline,
        };
        std::fs::write(&out_path, mebl_delta::outcome_to_string(&saved))
            .map_err(|e| CliError::Invalid(format!("writing {out_path}: {e}")))?;
        eprintln!("saved outcome to {out_path}");
    }
    Ok(())
}

/// Runs the routing service daemon until it drains.
///
/// Prints `listening on <addr>` on stdout (flushed, so drivers piping
/// stdout can parse the bound port), then serves until stdin closes or
/// a `POST /shutdown` arrives. Exit code 0 for a clean drain, 2 when
/// in-flight jobs were cancelled by the drain, 3 when the bind fails.
fn cmd_serve(args: &[String]) -> Result<Outcome, CliError> {
    let mut config = ServeConfig::default();
    let mut port: u16 = 0;
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        let mut val = |name: &str| -> Result<&String, CliError> {
            it.next()
                .ok_or_else(|| CliError::usage(format!("missing value for {name}")))
        };
        match flag.as_str() {
            "--port" => {
                port = val("--port")?
                    .parse()
                    .map_err(|_| CliError::usage("bad --port"))?
            }
            "--workers" => {
                let n: usize = val("--workers")?
                    .parse()
                    .map_err(|_| CliError::usage("bad --workers"))?;
                if n == 0 {
                    return Err(CliError::usage("--workers must be >= 1"));
                }
                config.workers = n;
            }
            "--queue-depth" => {
                let n: usize = val("--queue-depth")?
                    .parse()
                    .map_err(|_| CliError::usage("bad --queue-depth"))?;
                if n == 0 {
                    return Err(CliError::usage("--queue-depth must be >= 1"));
                }
                config.queue_depth = n;
            }
            "--default-budget-ms" => {
                let ms: u64 = val("--default-budget-ms")?
                    .parse()
                    .map_err(|_| CliError::usage("bad --default-budget-ms"))?;
                config.default_budget = RunBudget::with_time(Duration::from_millis(ms));
            }
            "--cache-capacity" => {
                config.cache_capacity = val("--cache-capacity")?
                    .parse()
                    .map_err(|_| CliError::usage("bad --cache-capacity"))?;
            }
            "--store" => {
                config.store_dir = Some(val("--store")?.clone());
            }
            "--fsync" => {
                let mode = val("--fsync")?;
                config.store_fsync = FsyncPolicy::parse(mode).ok_or_else(|| {
                    CliError::usage(format!(
                        "bad --fsync {mode} (expected always, never or interval:<n>)"
                    ))
                })?;
            }
            other => return Err(CliError::usage(format!("serve: unknown flag {other}"))),
        }
    }
    config.addr = format!("127.0.0.1:{port}");

    let server = Server::bind(&config)
        .map_err(|e| CliError::Invalid(format!("cannot bind {}: {e}", config.addr)))?;
    println!("listening on {}", server.local_addr());
    let _ = std::io::stdout().flush();
    eprintln!(
        "serving with {} worker(s), queue depth {} (close stdin or POST /shutdown to drain)",
        config.workers, config.queue_depth
    );
    if let Some(dir) = &config.store_dir {
        eprintln!("persistent result store at {dir}");
    }

    let handle = server.handle();
    // Role 0 serves; role 1 watches stdin and requests a drain at EOF.
    // When the drain came over HTTP instead, the watcher may still be
    // blocked on stdin, so role 0 exits the process directly after
    // reporting (the watcher thread dies with the process).
    mebl_par::run_scoped(2, |role| {
        if role == 0 {
            let report = server.run();
            eprintln!(
                "drained: {} request(s), {} clean, {} degraded, {} cache hit(s), \
                 {} rejected for backpressure, {} cancelled in flight",
                report.requests,
                report.clean,
                report.degraded,
                report.cache_hits,
                report.queue_rejects,
                report.cancelled_in_flight
            );
            let code = if report.cancelled_in_flight > 0 { 2 } else { 0 };
            std::process::exit(code);
        } else {
            let mut sink = [0u8; 1024];
            let mut stdin = std::io::stdin().lock();
            loop {
                match stdin.read(&mut sink) {
                    Ok(0) | Err(_) => break,
                    Ok(_) => {}
                }
            }
            handle.shutdown();
        }
    });
    // Role 0 always exits the process above; this is never reached.
    Ok(Outcome::Clean)
}

/// Runs the multi-process coordinator in front of `mebl serve` workers.
///
/// Workers are either given (`--workers addr,addr,...`) or spawned
/// (`--spawn n` forks this binary as `mebl serve --port 0`, optionally
/// sharing one `--store` directory, and scrapes each child's
/// `listening on` line). Prints `listening on <addr>` on stdout, then
/// coordinates until stdin closes or `POST /shutdown` arrives; spawned
/// workers drain (stdin close) when the coordinator stops.
fn cmd_coord(args: &[String]) -> Result<Outcome, CliError> {
    let mut port: u16 = 0;
    let mut workers_arg: Option<String> = None;
    let mut spawn: Option<usize> = None;
    let mut store: Option<String> = None;
    let mut config = mebl_coord::CoordConfig::default();
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        let mut val = |name: &str| -> Result<&String, CliError> {
            it.next()
                .ok_or_else(|| CliError::usage(format!("missing value for {name}")))
        };
        match flag.as_str() {
            "--port" => {
                port = val("--port")?
                    .parse()
                    .map_err(|_| CliError::usage("bad --port"))?
            }
            "--workers" => workers_arg = Some(val("--workers")?.clone()),
            "--spawn" => {
                let n: usize = val("--spawn")?
                    .parse()
                    .map_err(|_| CliError::usage("bad --spawn"))?;
                if n == 0 {
                    return Err(CliError::usage("--spawn must be >= 1"));
                }
                spawn = Some(n);
            }
            "--store" => store = Some(val("--store")?.clone()),
            "--budget-ms" => {
                let ms: u64 = val("--budget-ms")?
                    .parse()
                    .map_err(|_| CliError::usage("bad --budget-ms"))?;
                config.budget = RunBudget::with_time(Duration::from_millis(ms));
            }
            other => return Err(CliError::usage(format!("coord: unknown flag {other}"))),
        }
    }

    let mut children: Vec<std::process::Child> = Vec::new();
    match (workers_arg, spawn) {
        (Some(list), None) => {
            if store.is_some() {
                return Err(CliError::usage(
                    "coord: --store only applies with --spawn (pass it to each worker otherwise)",
                ));
            }
            for part in list.split(',') {
                let addr = part.trim().parse().map_err(|_| {
                    CliError::usage(format!("coord: bad worker address '{}'", part.trim()))
                })?;
                config.workers.push(addr);
            }
            if config.workers.is_empty() {
                return Err(CliError::usage("coord: --workers lists no addresses"));
            }
        }
        (None, Some(n)) => {
            for _ in 0..n {
                let (child, addr) = spawn_worker(store.as_deref())?;
                children.push(child);
                config.workers.push(addr);
            }
        }
        _ => {
            return Err(CliError::usage(
                "coord: give exactly one of --workers or --spawn",
            ));
        }
    }

    let coordinator = std::sync::Arc::new(mebl_coord::Coordinator::new(config));
    let live = coordinator.probe();
    let server = mebl_coord::CoordServer::bind(
        &format!("127.0.0.1:{port}"),
        std::sync::Arc::clone(&coordinator),
    )
    .map_err(|e| CliError::Invalid(format!("cannot bind 127.0.0.1:{port}: {e}")))?;
    println!("listening on {}", server.local_addr());
    let _ = std::io::stdout().flush();
    eprintln!(
        "coordinating {} worker(s), {} live (close stdin or POST /shutdown to stop)",
        coordinator.config().workers.len(),
        live
    );

    let handle = server.handle();
    let children = std::sync::Mutex::new(children);
    // Role 0 coordinates; role 1 watches stdin and stops at EOF. As
    // with `serve`, the stop may arrive over HTTP while the watcher is
    // still blocked on stdin, so role 0 exits the process directly.
    mebl_par::run_scoped(2, |role| {
        if role == 0 {
            server.run();
            if let Ok(mut kids) = children.lock() {
                for child in kids.iter_mut() {
                    drop(child.stdin.take()); // ask the worker to drain
                }
                for child in kids.iter_mut() {
                    let _ = child.wait();
                }
            }
            let m = coordinator.metrics();
            eprintln!(
                "stopped: {} request(s) ({} proxied, {} sharded, {} fragment(s)), \
                 {} redispatch(es), {} dead-mark(s)",
                m.requests.get(),
                m.proxied.get(),
                m.sharded_routes.get(),
                m.fragment_requests.get(),
                m.redispatches.get(),
                m.dead_marked.get()
            );
            std::process::exit(0);
        } else {
            let mut sink = [0u8; 1024];
            let mut stdin = std::io::stdin().lock();
            loop {
                match stdin.read(&mut sink) {
                    Ok(0) | Err(_) => break,
                    Ok(_) => {}
                }
            }
            handle.shutdown();
        }
    });
    // Role 0 always exits the process above; this is never reached.
    Ok(Outcome::Clean)
}

/// Forks this binary as a `mebl serve --port 0` worker and scrapes the
/// bound address off its first stdout line. The child's stdin stays
/// piped (and open) so it drains when the coordinator closes it.
fn spawn_worker(
    store: Option<&str>,
) -> Result<(std::process::Child, std::net::SocketAddr), CliError> {
    let exe = std::env::current_exe()
        .map_err(|e| CliError::Invalid(format!("cannot locate own binary: {e}")))?;
    let mut cmd = std::process::Command::new(exe);
    cmd.arg("serve")
        .arg("--port")
        .arg("0")
        .stdin(std::process::Stdio::piped())
        .stdout(std::process::Stdio::piped());
    if let Some(dir) = store {
        cmd.arg("--store").arg(dir);
    }
    let mut child = cmd
        .spawn()
        .map_err(|e| CliError::Invalid(format!("cannot spawn worker: {e}")))?;
    let stdout = child
        .stdout
        .take()
        .ok_or_else(|| CliError::Invalid("worker stdout not captured".into()))?;
    let mut line = String::new();
    let mut reader = std::io::BufReader::new(stdout);
    std::io::BufRead::read_line(&mut reader, &mut line)
        .map_err(|e| CliError::Invalid(format!("reading worker address: {e}")))?;
    let addr = line
        .trim()
        .strip_prefix("listening on ")
        .and_then(|a| a.parse().ok());
    match addr {
        Some(addr) => Ok((child, addr)),
        None => {
            let _ = child.kill();
            Err(CliError::Invalid(format!(
                "worker did not report an address (got {line:?})"
            )))
        }
    }
}

fn load_circuit(path: &str) -> Result<mebl_netlist::Circuit, CliError> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| CliError::Invalid(format!("reading {path}: {e}")))?;
    mebl_netlist::circuit_from_str(&text).map_err(|e| CliError::Invalid(e.to_string()))
}

/// Maps a typed router failure onto the exit-code taxonomy
/// (`BudgetExhausted` is handled by the callers — it exits 2).
fn map_route_error(e: RouteError) -> CliError {
    match e {
        RouteError::InvalidConfig(_) => CliError::Usage(e.to_string()),
        RouteError::InvalidCircuit(ref issues) => {
            for issue in issues.iter().filter(|i| i.is_error()) {
                eprintln!("  {issue}");
            }
            CliError::Invalid(e.to_string())
        }
        RouteError::BudgetExhausted => CliError::Invalid(e.to_string()),
    }
}
