//! `mebl` — command-line front end for the stitch-aware MEBL router.
//!
//! ```text
//! mebl list                                   # show the benchmark suite
//! mebl gen  <bench> [--scale f] [--seed n] [-o file]
//! mebl route <circuit.txt> [--baseline] [--svg out.svg] [--period n]
//! mebl audit (<circuit.txt> | --bench NAME) [--seed n] [--scale f]
//!            [--baseline] [--period n] [--strict]
//! ```

use mebl_route::{Router, RouterConfig};
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let result = match args.first().map(String::as_str) {
        Some("list") => cmd_list(),
        Some("gen") => cmd_gen(&args[1..]),
        Some("route") => cmd_route(&args[1..]),
        Some("audit") => cmd_audit(&args[1..]),
        Some("help") | None => {
            print_usage();
            Ok(())
        }
        Some(other) => Err(format!("unknown command '{other}'")),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("error: {msg}");
            print_usage();
            ExitCode::FAILURE
        }
    }
}

fn print_usage() {
    eprintln!(
        "usage:\n  mebl list\n  mebl gen <bench> [--scale f] [--seed n] [-o file]\n  mebl route <circuit.txt> [--baseline] [--svg out.svg] [--period n]\n  mebl audit (<circuit.txt> | --bench NAME) [--seed n] [--scale f] [--baseline] [--period n] [--strict]"
    );
}

fn cmd_list() -> Result<(), String> {
    println!(
        "{:<10} {:<8} {:>7} {:>7} {:>8}",
        "name", "suite", "layers", "nets", "pins"
    );
    for spec in mebl_netlist::full_suite() {
        println!(
            "{:<10} {:<8} {:>7} {:>7} {:>8}",
            spec.name,
            spec.suite.to_string(),
            spec.layers,
            spec.nets,
            spec.pins
        );
    }
    Ok(())
}

fn cmd_gen(args: &[String]) -> Result<(), String> {
    let mut it = args.iter();
    let bench = it.next().ok_or("gen: missing benchmark name")?;
    let spec = mebl_netlist::BenchmarkSpec::by_name(bench)
        .ok_or_else(|| format!("unknown benchmark '{bench}' (try `mebl list`)"))?;
    let mut config = mebl_netlist::GenerateConfig::default();
    let mut out: Option<String> = None;
    while let Some(flag) = it.next() {
        let mut val = |name: &str| -> Result<&String, String> {
            it.next().ok_or_else(|| format!("missing value for {name}"))
        };
        match flag.as_str() {
            "--scale" => {
                config.net_scale = val("--scale")?
                    .parse()
                    .map_err(|_| "bad --scale".to_string())?
            }
            "--seed" => {
                config.seed = val("--seed")?
                    .parse()
                    .map_err(|_| "bad --seed".to_string())?
            }
            "-o" | "--out" => out = Some(val("-o")?.clone()),
            other => return Err(format!("gen: unknown flag {other}")),
        }
    }
    let circuit = spec.generate(&config);
    let text = mebl_netlist::circuit_to_string(&circuit);
    match out {
        Some(path) => {
            std::fs::write(&path, text).map_err(|e| format!("writing {path}: {e}"))?;
            eprintln!(
                "wrote {} ({} nets, {} pins, {}x{} tracks)",
                path,
                circuit.net_count(),
                circuit.pin_count(),
                circuit.outline().width(),
                circuit.outline().height()
            );
        }
        None => print!("{text}"),
    }
    Ok(())
}

/// Routes a circuit, then re-verifies the solution with the independent
/// `mebl-audit` checker. Exits nonzero when the audit reports errors
/// (with `--strict`, warnings also fail).
fn cmd_audit(args: &[String]) -> Result<(), String> {
    let mut it = args.iter().peekable();
    let mut file: Option<String> = None;
    let mut bench: Option<String> = None;
    let mut gen_config = mebl_netlist::GenerateConfig::quick(1);
    let mut baseline = false;
    let mut period: Option<i32> = None;
    let mut strict = false;
    while let Some(flag) = it.next() {
        let mut val = |name: &str| -> Result<&String, String> {
            it.next().ok_or_else(|| format!("missing value for {name}"))
        };
        match flag.as_str() {
            "--bench" => bench = Some(val("--bench")?.clone()),
            "--seed" => {
                gen_config.seed = val("--seed")?
                    .parse()
                    .map_err(|_| "bad --seed".to_string())?
            }
            "--scale" => {
                gen_config.net_scale = val("--scale")?
                    .parse()
                    .map_err(|_| "bad --scale".to_string())?
            }
            "--baseline" => baseline = true,
            "--period" => {
                period = Some(
                    val("--period")?
                        .parse()
                        .map_err(|_| "bad --period".to_string())?,
                )
            }
            "--strict" => strict = true,
            other if file.is_none() && !other.starts_with('-') => file = Some(other.to_string()),
            other => return Err(format!("audit: unknown flag {other}")),
        }
    }

    let circuit = match (file, bench) {
        (Some(path), None) => {
            let text =
                std::fs::read_to_string(&path).map_err(|e| format!("reading {path}: {e}"))?;
            mebl_netlist::circuit_from_str(&text).map_err(|e| e.to_string())?
        }
        (None, Some(name)) => mebl_netlist::BenchmarkSpec::by_name(&name)
            .ok_or_else(|| format!("unknown benchmark '{name}' (try `mebl list`)"))?
            .generate(&gen_config),
        (Some(_), Some(_)) => return Err("audit: give a file or --bench, not both".into()),
        (None, None) => return Err("audit: missing circuit file or --bench".into()),
    };

    let mut config = if baseline {
        RouterConfig::baseline()
    } else {
        RouterConfig::stitch_aware()
    };
    if let Some(p) = period {
        if p <= 1 {
            return Err("--period must be > 1".into());
        }
        config.stitch.period = p;
        config.global.tile_size = p;
    }

    let outcome = Router::new(config).route(&circuit);
    let audit = mebl_audit::audit_outcome(&circuit, &config, &outcome);
    println!(
        "{} [{}]: {}",
        circuit.name(),
        if baseline { "baseline" } else { "stitch-aware" },
        outcome.report
    );
    println!("{audit}");
    for finding in &audit.findings {
        println!("  {finding}");
    }
    let errors = audit.error_count();
    let warnings = audit.warning_count();
    if errors > 0 || (strict && warnings > 0) {
        return Err(format!(
            "audit failed: {errors} error(s), {warnings} warning(s)"
        ));
    }
    Ok(())
}

fn cmd_route(args: &[String]) -> Result<(), String> {
    let mut it = args.iter();
    let path = it.next().ok_or("route: missing circuit file")?;
    let mut baseline = false;
    let mut svg: Option<String> = None;
    let mut period: Option<i32> = None;
    while let Some(flag) = it.next() {
        match flag.as_str() {
            "--baseline" => baseline = true,
            "--svg" => {
                svg = Some(
                    it.next()
                        .ok_or("missing value for --svg")?
                        .clone(),
                )
            }
            "--period" => {
                period = Some(
                    it.next()
                        .ok_or("missing value for --period")?
                        .parse()
                        .map_err(|_| "bad --period".to_string())?,
                )
            }
            other => return Err(format!("route: unknown flag {other}")),
        }
    }

    let text = std::fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))?;
    let circuit = mebl_netlist::circuit_from_str(&text).map_err(|e| e.to_string())?;

    let mut config = if baseline {
        RouterConfig::baseline()
    } else {
        RouterConfig::stitch_aware()
    };
    if let Some(p) = period {
        if p <= 1 {
            return Err("--period must be > 1".into());
        }
        config.stitch.period = p;
        config.global.tile_size = p;
    }

    let outcome = Router::new(config).route(&circuit);
    println!(
        "{} [{}]: {}",
        circuit.name(),
        if baseline { "baseline" } else { "stitch-aware" },
        outcome.report
    );
    if !outcome.report.hard_clean() {
        return Err("hard MEBL violation in result (bug)".into());
    }
    if let Some(svg_path) = svg {
        let doc = mebl_viz::layout_svg(&circuit, &outcome.plan, &outcome.detailed.geometry, 4.0);
        std::fs::write(&svg_path, doc).map_err(|e| format!("writing {svg_path}: {e}"))?;
        eprintln!("wrote {svg_path}");
    }
    Ok(())
}
