//! Table IV: stitch-aware global routing with vs without line-end
//! consideration, on the six "hard" MCNC benchmarks.
//!
//! Columns: TVOF (total vertex overflow), MVOF (max vertex overflow),
//! WL (wirelength), CPU (s). The paper's result: line-end consideration
//! drives vertex overflow to ~zero at ~1.5 % wirelength cost.

use mebl_bench::{geomean, Options};
use mebl_global::{route_circuit, GlobalConfig};
use mebl_netlist::BenchmarkSpec;
use mebl_route::Stopwatch;
use mebl_stitch::{StitchConfig, StitchPlan};

fn main() {
    let mut opt = Options::parse(std::env::args().skip(1));
    opt.suite.retain(BenchmarkSpec::is_hard_mcnc);
    let cfg = opt.generate_config();

    println!("Table IV: global routing, line-end consideration ablation");
    let header = format!(
        "{:<10} | {:>7} {:>5} {:>9} {:>8} | {:>7} {:>5} {:>9} {:>8}",
        "Circuit", "TVOF", "MVOF", "WL", "CPU(s)", "TVOF", "MVOF", "WL", "CPU(s)"
    );
    println!(
        "{:<10} | {:^32} | {:^32}",
        "", "w/o line end consideration", "w/ line end consideration"
    );
    println!("{header}");
    mebl_bench::rule(&header);

    let mut rows: Vec<[f64; 8]> = Vec::new();
    for spec in &opt.suite {
        let circuit = spec.generate(&cfg);
        let plan = StitchPlan::new(circuit.outline(), StitchConfig::default());

        let mut row = [0.0f64; 8];
        for (i, line_end_cost) in [(0usize, false), (4usize, true)] {
            let config = GlobalConfig {
                line_end_cost,
                ..GlobalConfig::default()
            };
            let t = Stopwatch::start();
            let res = route_circuit(&circuit, &plan, &config);
            let cpu = t.elapsed().as_secs_f64();
            row[i] = res.metrics.total_vertex_overflow as f64;
            row[i + 1] = res.metrics.max_vertex_overflow as f64;
            row[i + 2] = res.metrics.wirelength as f64;
            row[i + 3] = cpu;
        }
        println!(
            "{:<10} | {:>7.0} {:>5.0} {:>9.0} {:>8.3} | {:>7.0} {:>5.0} {:>9.0} {:>8.3}",
            spec.name, row[0], row[1], row[2], row[3], row[4], row[5], row[6], row[7]
        );
        rows.push(row);
    }

    // "Comp." row: ratios w/ vs w/o, geometric mean.
    let ratio = |i: usize, j: usize| {
        geomean(
            rows.iter().map(|r| (r[j].max(1e-3)) / (r[i].max(1e-3))),
            1e-6,
        )
    };
    println!();
    println!(
        "Comp. (w/ divided by w/o): TVOF {:.3}  MVOF {:.3}  WL {:.3}  CPU {:.3}",
        ratio(0, 4),
        ratio(1, 5),
        ratio(2, 6),
        ratio(3, 7)
    );
}
