//! Tables I–II: benchmark circuit characteristics.
//!
//! Prints the published statistics of the MCNC and Faraday suites next to
//! the generated synthetic realisation (grid size in tracks, achieved
//! net/pin counts, stitch-line count at the default period of 15 pitches).

use mebl_bench::Options;
use mebl_netlist::Suite;
use mebl_stitch::{StitchConfig, StitchPlan};

fn main() {
    let opt = Options::parse(std::env::args().skip(1));
    let cfg = opt.generate_config();

    for suite in [Suite::Mcnc, Suite::Faraday] {
        println!("\nTable {}: {} benchmark circuits", if suite == Suite::Mcnc { "I" } else { "II" }, suite);
        let header = format!(
            "{:<10} {:>14} {:>7} {:>7} {:>8} | {:>12} {:>8} {:>8} {:>8}",
            "Circuit", "Size (um^2)", "#Layers", "#Nets", "#Pins", "Grid (trk)", "#Nets", "#Pins", "#Stitch"
        );
        println!("{header}");
        mebl_bench::rule(&header);
        for spec in opt.suite.iter().filter(|s| s.suite == suite) {
            let c = spec.generate(&cfg);
            let plan = StitchPlan::new(c.outline(), StitchConfig::default());
            println!(
                "{:<10} {:>6.1}x{:<7.1} {:>7} {:>7} {:>8} | {:>5}x{:<6} {:>8} {:>8} {:>8}",
                spec.name,
                spec.width_um,
                spec.height_um,
                spec.layers,
                spec.nets,
                spec.pins,
                c.outline().width(),
                c.outline().height(),
                c.net_count(),
                c.pin_count(),
                plan.lines().len(),
            );
        }
    }
    println!(
        "\n(generated at scale {:.2}, seed {}; grid sized for ~{:.0} cells/pin)",
        opt.scale,
        opt.seed,
        cfg.cells_per_pin
    );
}
