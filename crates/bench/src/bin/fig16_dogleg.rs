//! Fig. 16: local view of short-polygon avoidance by dogleg track
//! assignment — the same small design routed (a) without stitch
//! consideration and (b) with the graph-based stitch-aware assignment.
//! Writes two SVGs and prints the short-polygon counts.

use mebl_assign::{LayerMode, TrackConfig, TrackMode};
use mebl_bench::Options;
use mebl_detailed::DetailedConfig;
use mebl_geom::{Layer, Point, Rect};
use mebl_netlist::{Circuit, Net, Pin};
use mebl_route::{Router, RouterConfig};

fn pin(x: i32, y: i32) -> Pin {
    Pin::new(Point::new(x, y), Layer::new(0))
}

/// A hand-made design that forces vertical segments to end next to the
/// stitching line at x = 30 with horizontal continuations across it: the
/// Fig. 16 situation.
fn demo_circuit() -> Circuit {
    let outline = Rect::new(0, 0, 59, 59);
    let mut nets = Vec::new();
    for i in 0..6 {
        let y = 6 + i * 8;
        // Pin left of the line, partner up-right across it: the route must
        // cross x = 30 horizontally after a vertical run ending near it.
        nets.push(Net::new(
            format!("cross{i}"),
            vec![pin(27 - (i % 3), y), pin(45, y + 5)],
        ));
    }
    // Filler nets that congest the friendly tracks of the line's column.
    for i in 0..4 {
        nets.push(Net::new(
            format!("fill{i}"),
            vec![pin(33 + i, 2), pin(33 + i, 56)],
        ));
    }
    Circuit::new("fig16", outline, 3, nets)
}

fn main() {
    let opt = Options::parse(std::env::args().skip(1));
    let circuit = demo_circuit();
    std::fs::create_dir_all(&opt.out).expect("create output dir");

    let configs = [
        (
            "a_without_stitch",
            RouterConfig {
                track: TrackConfig {
                    layer_mode: LayerMode::Ours,
                    track_mode: TrackMode::Baseline,
                    ..TrackConfig::default()
                },
                detailed: DetailedConfig::without_stitch_consideration(),
                ..RouterConfig::stitch_aware()
            },
        ),
        ("b_with_doglegs", RouterConfig::stitch_aware()),
    ];

    for (tag, config) in configs {
        let out = Router::new(config).route(&circuit);
        println!(
            "fig16 ({tag}): #SP {} | {}",
            out.report.short_polygons, out.report
        );
        let svg = mebl_viz::layout_svg(&circuit, &out.plan, &out.detailed.geometry, 10.0);
        let path = format!("{}/fig16_{tag}.svg", opt.out);
        std::fs::write(&path, svg).expect("write svg");
        println!("wrote {path}");
    }
}
