//! Fig. 15: full routed layout of S38417 under the stitch-aware
//! framework, written as an SVG.

use mebl_bench::Options;
use mebl_netlist::BenchmarkSpec;
use mebl_route::{Router, RouterConfig};

fn main() {
    let mut opt = Options::parse(std::env::args().skip(1));
    // The figure is a single circuit; default to a reduced scale so the
    // SVG stays viewable, overridable via --scale.
    if (opt.scale - 1.0).abs() < f64::EPSILON {
        opt.scale = 0.15;
    }
    let spec = BenchmarkSpec::by_name("S38417").expect("suite circuit");
    let circuit = spec.generate(&opt.generate_config());

    let out = Router::new(RouterConfig::stitch_aware()).route(&circuit);
    println!("S38417 @ scale {:.2}: {}", opt.scale, out.report);

    let svg = mebl_viz::layout_svg(&circuit, &out.plan, &out.detailed.geometry, 2.0);
    std::fs::create_dir_all(&opt.out).expect("create output dir");
    let path = format!("{}/fig15_s38417.svg", opt.out);
    std::fs::write(&path, svg).expect("write svg");
    println!("wrote {path}");

    // Companion heatmaps: global congestion and line-end utilisation.
    for (tag, values) in [
        ("congestion", &out.global.tile_congestion),
        ("line_ends", &out.global.vertex_utilization),
    ] {
        let svg = mebl_viz::congestion_svg(&out.global.graph, &out.plan, values, 2.0);
        let path = format!("{}/fig15_{tag}.svg", opt.out);
        std::fs::write(&path, svg).expect("write svg");
        println!("wrote {path}");
    }
}
