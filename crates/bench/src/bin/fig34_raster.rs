//! Figures 3–4: rasterization with error diffusion and the short-polygon
//! defect.
//!
//! Renders (a) a long wire and (b) a stitch-cut short polygon, both
//! sub-pixel misaligned against the second beam's pixel grid, dithers them
//! with error diffusion, prints the bitmaps as ASCII art and reports the
//! relative defect score of each feature.

use mebl_raster::{defect_score, render, BitMap, FRect, GrayMap};

fn ascii(gray: &GrayMap, bw: &BitMap) -> String {
    let mut s = String::new();
    for y in (0..bw.height()).rev() {
        for x in 0..bw.width() {
            let ideal = gray.get(x, y) >= 0.5;
            let got = bw.get(x, y);
            s.push(match (ideal, got) {
                (true, true) => '#',
                (false, false) => '.',
                (true, false) => 'o', // missing exposure
                (false, true) => 'x', // spurious exposure
            });
        }
        s.push('\n');
    }
    s
}

fn show(title: &str, feature: FRect, width: usize, height: usize) -> f64 {
    let gray = render(&[feature], width, height);
    let bw = gray.dither();
    let score = defect_score(&gray, &bw);
    println!("{title}");
    println!("{}", ascii(&gray, &bw));
    println!("defect score: {score:.3}  (fraction of feature pixels printed wrongly)\n");
    score
}

fn main() {
    println!("Fig. 3/4 reproduction: dithering with error diffusion\n");
    println!("legend: '#' correct exposure, '.' correct blank, 'o' missing, 'x' spurious\n");

    // A long wire with the same 0.45-pixel overlay misalignment.
    let long = show(
        "(a) long wire, 0.45-pixel overlay misalignment:",
        FRect::new(0.0, 1.45, 28.0, 2.45),
        30,
        5,
    );

    // The short polygon a stitching line cut off the same wire.
    let short = show(
        "(b) short polygon (stitch-cut stub), same misalignment:",
        FRect::new(0.0, 1.45, 3.0, 2.45),
        30,
        5,
    );

    // A grid-aligned wire prints perfectly.
    let aligned = show(
        "(c) grid-aligned wire (no overlay error):",
        FRect::new(0.0, 1.0, 28.0, 2.0),
        30,
        5,
    );

    println!("summary: aligned {aligned:.3} <= long {long:.3}; short polygon {short:.3}");
    println!(
        "the misaligned short polygon loses {:.0}% of its pixels — the defect of Fig. 4",
        short * 100.0
    );
}
