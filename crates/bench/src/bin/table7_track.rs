//! Table VII: track assignment ablation — stitch-oblivious baseline vs
//! the exact ILP substitute vs the graph-based heuristic, with identical
//! stitch-aware algorithms in every other stage.
//!
//! The exact solver runs under a per-panel node budget; circuits that
//! exhaust it anywhere print "NA", mirroring the paper's `> 100000 s`
//! CPLEX timeouts on S38417/S38584.

use mebl_assign::{LayerMode, TrackConfig, TrackMode};
use mebl_bench::{geomean, Options};
use mebl_route::{Router, RouterConfig};

/// Node budget per panel group for the exact solver. Kept deliberately
/// modest: the point of Table VII is that exact search does not scale.
const ILP_NODE_BUDGET: u64 = 1_000_000;

fn config_with(track_mode: TrackMode) -> RouterConfig {
    RouterConfig {
        track: TrackConfig {
            layer_mode: LayerMode::Ours,
            track_mode,
            ..TrackConfig::default()
        },
        ..RouterConfig::stitch_aware()
    }
}

fn main() {
    let opt = Options::parse(std::env::args().skip(1));
    let cfg = opt.generate_config();

    println!("Table VII: track assignment algorithms");
    println!("(#BE = bad ends left by track assignment, the short-polygon precursors;");
    println!(" TA(s) = assignment-stage CPU. Our detailed router heals most bad ends,");
    println!(" so #SP converges across columns — #BE carries the paper's contrast.)");
    let header = format!(
        "{:<10} | {:>8} {:>4} {:>4} {:>5} {:>7} | {:>8} {:>4} {:>4} {:>5} {:>9} | {:>8} {:>4} {:>4} {:>5} {:>7}",
        "Circuit", "Rout.(%)", "#VV", "#SP", "#BE", "TA(s)",
        "Rout.(%)", "#VV", "#SP", "#BE", "TA(s)",
        "Rout.(%)", "#VV", "#SP", "#BE", "TA(s)"
    );
    println!(
        "{:<10} | {:^33} | {:^35} | {:^33}",
        "", "w/o stitch consideration", "ILP-based (exact B&B)", "Graph-based"
    );
    println!("{header}");
    mebl_bench::rule(&header);

    let modes = [
        config_with(TrackMode::Baseline),
        config_with(TrackMode::IlpExact {
            node_budget: ILP_NODE_BUDGET,
        }),
        config_with(TrackMode::GraphHeuristic),
    ];

    let mut sp = [Vec::new(), Vec::new(), Vec::new()];
    let mut bad_ends = [Vec::new(), Vec::new(), Vec::new()];
    let mut ta_cpus = [Vec::new(), Vec::new(), Vec::new()];
    for spec in &opt.suite {
        let circuit = spec.generate(&cfg);
        print!("{:<10} |", spec.name);
        for (m, config) in modes.iter().enumerate() {
            let out = Router::new(config.clone()).route(&circuit);
            let r = &out.report;
            if out.tracks.timed_out {
                print!(" {:>8} {:>4} {:>4} {:>5} {:>9}", "NA", "NA", "NA", "NA", ">budget");
                if m < 2 {
                    print!(" |");
                }
                continue;
            }
            // The w/o-stitch baseline leaves its short-polygon precursors
            // as ripped-up nets rather than bad ends; count both.
            let be = out.tracks.bad_ends + out.tracks.failed_nets.len();
            sp[m].push(r.short_polygons as f64);
            bad_ends[m].push(be as f64);
            ta_cpus[m].push(out.timings.assignment.as_secs_f64());
            let w = if m == 1 { 9 } else { 7 };
            print!(
                " {:>8.2} {:>4} {:>4} {:>5} {:>w$.3}",
                r.routability() * 100.0,
                r.via_violations,
                r.short_polygons,
                be,
                out.timings.assignment.as_secs_f64(),
            );
            if m < 2 {
                print!(" |");
            }
        }
        println!();
    }

    println!();
    for (m, name) in ["w/o stitch", "ILP", "graph"].iter().enumerate() {
        if sp[m].is_empty() {
            continue;
        }
        println!(
            "{name:<12} geomean #SP {:8.2}  geomean #BE {:8.2}  geomean TA-CPU {:8.4}s  ({} circuits)",
            geomean(sp[m].iter().map(|&v| v.max(0.5)), 1e-6),
            geomean(bad_ends[m].iter().map(|&v| v.max(0.5)), 1e-6),
            geomean(ta_cpus[m].iter().map(|&v| v.max(1e-5)), 1e-6),
            sp[m].len()
        );
    }
}
