//! Table VIII: detailed routing with vs without stitch consideration, on
//! top of graph-based track assignment.
//!
//! Both runs share global routing and graph-based stitch-aware track
//! assignment; only the detailed router changes (weighted costs β/γ and
//! stitch-aware net ordering on vs off). Paper result: stitch-aware
//! detailed routing removes a further ~80 % of short polygons at ~0.2 %
//! routability cost.

use mebl_bench::{geomean, Options};
use mebl_detailed::DetailedConfig;
use mebl_route::{Router, RouterConfig};

fn main() {
    let opt = Options::parse(std::env::args().skip(1));
    let cfg = opt.generate_config();

    println!("Table VIII: stitch-aware detailed routing ablation");
    let header = format!(
        "{:<10} | {:>8} {:>6} {:>6} {:>8} | {:>8} {:>6} {:>6} {:>8}",
        "Circuit", "Rout.(%)", "#VV", "#SP", "CPU(s)", "Rout.(%)", "#VV", "#SP", "CPU(s)"
    );
    println!(
        "{:<10} | {:^31} | {:^31}",
        "", "w/o stitch consideration", "w/ stitch consideration"
    );
    println!("{header}");
    mebl_bench::rule(&header);

    let blind = Router::new(RouterConfig {
        detailed: DetailedConfig::without_stitch_consideration(),
        ..RouterConfig::stitch_aware()
    });
    let aware = Router::new(RouterConfig::stitch_aware());

    let mut rows = Vec::new();
    for spec in &opt.suite {
        let circuit = spec.generate(&cfg);
        let b = blind.route(&circuit).report;
        let a = aware.route(&circuit).report;
        println!(
            "{:<10} | {:>8.2} {:>6} {:>6} {:>8.2} | {:>8.2} {:>6} {:>6} {:>8.2}",
            spec.name,
            b.routability() * 100.0,
            b.via_violations,
            b.short_polygons,
            b.elapsed.as_secs_f64(),
            a.routability() * 100.0,
            a.via_violations,
            a.short_polygons,
            a.elapsed.as_secs_f64(),
        );
        rows.push((b, a));
    }

    println!();
    let rout = geomean(
        rows.iter()
            .map(|(b, a)| a.routability() / b.routability().max(1e-9)),
        1e-6,
    );
    let sp = geomean(
        rows.iter()
            .map(|(b, a)| (a.short_polygons as f64).max(0.5) / (b.short_polygons as f64).max(0.5)),
        1e-6,
    );
    let cpu = geomean(
        rows.iter()
            .map(|(b, a)| a.elapsed.as_secs_f64() / b.elapsed.as_secs_f64().max(1e-9)),
        1e-6,
    );
    println!("Comp. (w/ / w/o): Rout. {rout:.3}  #SP {sp:.3}  CPU {cpu:.2}");
}
