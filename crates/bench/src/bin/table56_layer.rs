//! Tables V–VI: layer-assignment instance statistics and the comparison
//! between the maximum-spanning-tree heuristic of [4] and the paper's
//! k-colorable-subset heuristic, for k = 2..5 available layers.

use mebl_assign::{
    assignment_cost, instance_stats, layer_assign_mst, layer_assign_ours, random_instances,
    ConflictGraph,
};
use mebl_bench::Options;

const INSTANCES: usize = 50;
const SEGMENTS: usize = 25;
const ROWS: u32 = 30;

fn main() {
    let opt = Options::parse(std::env::args().skip(1));
    let instances = random_instances(INSTANCES, SEGMENTS, ROWS, opt.seed);

    // Table V.
    let stats = instance_stats(&instances, ROWS);
    println!("Table V: characteristics of the {INSTANCES} layer assignment instances");
    println!(
        "{:<10} | {:>22} | {:>22}",
        "#Instance", "Segment density", "Line end density"
    );
    println!(
        "{:<10} | {:>10} {:>11} | {:>10} {:>11}",
        "", "Max", "Avg.", "Max", "Avg."
    );
    println!(
        "{:<10} | {:>10.2} {:>11.2} | {:>10.2} {:>11.2}",
        INSTANCES,
        stats.max_segment_density,
        stats.avg_segment_density,
        stats.max_end_density,
        stats.avg_end_density
    );

    // Table VI.
    println!("\nTable VI: average layer assignment cost (total same-layer conflict weight)");
    let header = format!(
        "{:<24} {:>10} {:>10} {:>10} {:>10}",
        "Heuristic", "k=2", "k=3", "k=4", "k=5"
    );
    println!("{header}");
    mebl_bench::rule(&header);

    let graphs: Vec<ConflictGraph> = instances
        .iter()
        .map(|iv| ConflictGraph::build(iv, ROWS, true))
        .collect();

    let mut mst_avg = [0.0f64; 4];
    let mut ours_avg = [0.0f64; 4];
    for (ki, k) in (2..=5).enumerate() {
        for g in &graphs {
            mst_avg[ki] += assignment_cost(g, &layer_assign_mst(g, k)) as f64;
            ours_avg[ki] += assignment_cost(g, &layer_assign_ours(g, k)) as f64;
        }
        mst_avg[ki] /= graphs.len() as f64;
        ours_avg[ki] /= graphs.len() as f64;
    }

    println!(
        "{:<24} {:>10.2} {:>10.2} {:>10.2} {:>10.2}",
        "Max. Spanning Tree [4]", mst_avg[0], mst_avg[1], mst_avg[2], mst_avg[3]
    );
    println!(
        "{:<24} {:>10.2} {:>10.2} {:>10.2} {:>10.2}",
        "Ours", ours_avg[0], ours_avg[1], ours_avg[2], ours_avg[3]
    );
    print!("{:<24}", "Improvement");
    for ki in 0..4 {
        let imp = if mst_avg[ki] > 0.0 {
            (mst_avg[ki] - ours_avg[ki]) / mst_avg[ki] * 100.0
        } else {
            0.0
        };
        print!(" {imp:>9.2}%");
    }
    println!();
}
