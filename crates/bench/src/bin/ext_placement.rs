//! Extension experiment: stitch-aware placement (the paper's future
//! work, §V) — nudge pins off stitching lines before routing and measure
//! the via-violation reduction.
//!
//! Columns: #VV and routability with and without the placement pass, per
//! circuit. Expected shape: #VV drops to ~0 with negligible displacement
//! and unchanged routability.

use mebl_bench::Options;
use mebl_place::{adjust_pins, PlaceConfig};
use mebl_route::{Router, RouterConfig};
use mebl_stitch::{StitchConfig, StitchPlan};

fn main() {
    let opt = Options::parse(std::env::args().skip(1));
    let cfg = opt.generate_config();

    println!("Extension: stitch-aware placement (pin adjustment before routing)");
    let header = format!(
        "{:<10} | {:>8} {:>6} {:>6} | {:>8} {:>6} {:>6} | {:>7} {:>7} {:>7}",
        "Circuit", "Rout.(%)", "#VV", "#SP", "Rout.(%)", "#VV", "#SP", "moved", "stuck", "disp"
    );
    println!(
        "{:<10} | {:^22} | {:^22} | {:^23}",
        "", "fixed pins (paper)", "adjusted pins", "placement stats"
    );
    println!("{header}");
    mebl_bench::rule(&header);

    let router = Router::new(RouterConfig::stitch_aware());
    for spec in &opt.suite {
        let circuit = spec.generate(&cfg);
        let plan = StitchPlan::new(circuit.outline(), StitchConfig::default());
        let fixed = router.route(&circuit).report;

        let placed = adjust_pins(&circuit, &plan, &PlaceConfig::default());
        let adjusted = router.route(&placed.circuit).report;

        println!(
            "{:<10} | {:>8.2} {:>6} {:>6} | {:>8.2} {:>6} {:>6} | {:>7} {:>7} {:>7}",
            spec.name,
            fixed.routability() * 100.0,
            fixed.via_violations,
            fixed.short_polygons,
            adjusted.routability() * 100.0,
            adjusted.via_violations,
            adjusted.short_polygons,
            placed.moved,
            placed.stuck,
            placed.total_displacement,
        );
    }
}
