//! Ablation sweeps over the framework's design parameters (extension
//! beyond the paper's tables; DESIGN.md "ablation benches").
//!
//! Four series on one mid-size circuit:
//!   1. stitch period (stripe width) vs #SP / routability;
//!   2. unfriendly-region width ε vs #SP;
//!   3. detailed-routing β (via-in-SUR weight) vs #SP;
//!   4. escape cost γ vs #SP / wirelength.

use mebl_bench::Options;
use mebl_netlist::BenchmarkSpec;
use mebl_route::{Router, RouterConfig};

fn main() {
    let mut opt = Options::parse(std::env::args().skip(1));
    if (opt.scale - 1.0).abs() < f64::EPSILON {
        opt.scale = 0.2;
    }
    let circuit = BenchmarkSpec::by_name("S13207")
        .expect("suite circuit")
        .generate(&opt.generate_config());
    println!(
        "sweeps on S13207 @ scale {:.2} ({} nets)\n",
        opt.scale,
        circuit.net_count()
    );

    println!("1) stitch period sweep (tile size follows the period)");
    println!("{:>8} {:>8} {:>10} {:>6} {:>6}", "period", "#lines", "Rout.(%)", "#SP", "#VV");
    for period in [10, 15, 20, 30] {
        let mut config = RouterConfig::stitch_aware();
        config.stitch.period = period;
        config.global.tile_size = period;
        let out = Router::new(config).route(&circuit);
        println!(
            "{:>8} {:>8} {:>10.2} {:>6} {:>6}",
            period,
            out.plan.lines().len(),
            out.report.routability() * 100.0,
            out.report.short_polygons,
            out.report.via_violations
        );
    }

    println!("\n2) unfriendly-region width epsilon sweep");
    println!("{:>8} {:>10} {:>6}", "epsilon", "Rout.(%)", "#SP");
    for epsilon in [0, 1, 2, 3] {
        let mut config = RouterConfig::stitch_aware();
        config.stitch.epsilon = epsilon;
        config.stitch.escape_width = config.stitch.escape_width.max(epsilon);
        let out = Router::new(config).route(&circuit);
        println!(
            "{:>8} {:>10.2} {:>6}",
            epsilon,
            out.report.routability() * 100.0,
            out.report.short_polygons
        );
    }

    println!("\n3) beta (via-in-stitch-unfriendly cost) sweep, gamma = 5");
    println!("{:>8} {:>10} {:>6} {:>10}", "beta", "Rout.(%)", "#SP", "WL");
    for beta in [0, 2, 10, 40] {
        let mut config = RouterConfig::stitch_aware();
        config.detailed.beta = beta;
        let out = Router::new(config).route(&circuit);
        println!(
            "{:>8} {:>10.2} {:>6} {:>10}",
            beta,
            out.report.routability() * 100.0,
            out.report.short_polygons,
            out.report.wirelength
        );
    }

    println!("\n4) gamma (escape region cost) sweep, beta = 10");
    println!("{:>8} {:>10} {:>6} {:>10}", "gamma", "Rout.(%)", "#SP", "WL");
    for gamma in [0, 2, 5, 20] {
        let mut config = RouterConfig::stitch_aware();
        config.detailed.gamma = gamma;
        let out = Router::new(config).route(&circuit);
        println!(
            "{:>8} {:>10.2} {:>6} {:>10}",
            gamma,
            out.report.routability() * 100.0,
            out.report.short_polygons,
            out.report.wirelength
        );
    }
}
