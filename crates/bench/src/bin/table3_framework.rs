//! Table III: the full stitch-aware routing framework vs the baseline
//! router, over the whole MCNC + Faraday suite.
//!
//! Columns per router: Rout. (%), #VV, #SP, CPU (s). The paper's result:
//! the stitch-aware framework removes ~98 % of short polygons with
//! slightly better routability and ~10 % runtime overhead.

use mebl_bench::{geomean, Options};
use mebl_route::{Router, RouterConfig};

fn main() {
    let opt = Options::parse(std::env::args().skip(1));
    let cfg = opt.generate_config();

    println!("Table III: baseline router vs stitch-aware routing framework");
    let header = format!(
        "{:<10} | {:>8} {:>6} {:>6} {:>8} | {:>8} {:>6} {:>6} {:>8}",
        "Circuit", "Rout.(%)", "#VV", "#SP", "CPU(s)", "Rout.(%)", "#VV", "#SP", "CPU(s)"
    );
    println!(
        "{:<10} | {:^31} | {:^31}",
        "", "Baseline", "Stitch-aware framework"
    );
    println!("{header}");
    mebl_bench::rule(&header);

    let baseline = Router::new(RouterConfig::baseline());
    let aware = Router::new(RouterConfig::stitch_aware());

    let mut rows = Vec::new();
    for spec in &opt.suite {
        let circuit = spec.generate(&cfg);
        let b = baseline.route(&circuit).report;
        let a = aware.route(&circuit).report;
        assert!(b.hard_clean() && a.hard_clean(), "hard violation on {}", spec.name);
        println!(
            "{:<10} | {:>8.2} {:>6} {:>6} {:>8.2} | {:>8.2} {:>6} {:>6} {:>8.2}",
            spec.name,
            b.routability() * 100.0,
            b.via_violations,
            b.short_polygons,
            b.elapsed.as_secs_f64(),
            a.routability() * 100.0,
            a.via_violations,
            a.short_polygons,
            a.elapsed.as_secs_f64(),
        );
        rows.push((b, a));
    }

    println!();
    let rout = geomean(
        rows.iter()
            .map(|(b, a)| a.routability() / b.routability().max(1e-9)),
        1e-6,
    );
    let sp = geomean(
        rows.iter()
            .map(|(b, a)| (a.short_polygons as f64).max(0.5) / (b.short_polygons as f64).max(0.5)),
        1e-6,
    );
    let cpu = geomean(
        rows.iter()
            .map(|(b, a)| a.elapsed.as_secs_f64() / b.elapsed.as_secs_f64().max(1e-9)),
        1e-6,
    );
    println!("Comp. (stitch-aware / baseline): Rout. {rout:.3}  #SP {sp:.3}  CPU {cpu:.2}");
    println!("(#VV stems from fixed pins on stitching lines and is not normalised, as in the paper)");
}
