//! Shared harness code for the table/figure reproduction binaries.
//!
//! Every binary accepts the same flags:
//!
//! * `--scale <f>` — fraction of each benchmark's published net count to
//!   generate (default 1.0 = paper scale);
//! * `--seed <n>` — generator seed (default 2013);
//! * `--out <dir>` — output directory for figures (default `target/figs`);
//! * `--suite mcnc|faraday|all|hard` — which circuits to run.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use mebl_netlist::{faraday_suite, full_suite, mcnc_suite, BenchmarkSpec, GenerateConfig};

/// Common command-line options of the table binaries.
#[derive(Debug, Clone)]
pub struct Options {
    /// Net-count scale factor (1.0 = published size).
    pub scale: f64,
    /// Grid cells per pin (smaller = denser, harder instances).
    pub density: f64,
    /// Generator seed.
    pub seed: u64,
    /// Output directory for figures.
    pub out: String,
    /// Circuits to run.
    pub suite: Vec<BenchmarkSpec>,
}

impl Default for Options {
    fn default() -> Self {
        Self {
            scale: 1.0,
            density: 28.0,
            seed: 2013,
            out: "target/figs".into(),
            suite: full_suite(),
        }
    }
}

impl Options {
    /// Parses `std::env::args`-style flags; unknown flags abort with a
    /// usage message.
    pub fn parse<I: IntoIterator<Item = String>>(args: I) -> Options {
        let mut opt = Options::default();
        let mut it = args.into_iter();
        while let Some(flag) = it.next() {
            let mut value = |name: &str| {
                it.next()
                    .unwrap_or_else(|| panic!("missing value for {name}"))
            };
            match flag.as_str() {
                "--scale" => opt.scale = value("--scale").parse().expect("bad --scale"),
                "--density" => opt.density = value("--density").parse().expect("bad --density"),
                "--seed" => opt.seed = value("--seed").parse().expect("bad --seed"),
                "--out" => opt.out = value("--out"),
                "--suite" => {
                    opt.suite = match value("--suite").as_str() {
                        "mcnc" => mcnc_suite(),
                        "faraday" => faraday_suite(),
                        "all" => full_suite(),
                        "hard" => full_suite()
                            .into_iter()
                            .filter(BenchmarkSpec::is_hard_mcnc)
                            .collect(),
                        other => panic!("unknown suite {other}"),
                    }
                }
                other => panic!("unknown flag {other} (known: --scale --density --seed --out --suite)"),
            }
        }
        opt
    }

    /// Generator configuration for these options.
    pub fn generate_config(&self) -> GenerateConfig {
        GenerateConfig {
            seed: self.seed,
            net_scale: self.scale,
            cells_per_pin: self.density,
        }
    }
}

/// Geometric-mean helper for the "Comp." rows of the paper's tables.
/// Zero entries are clamped to `floor` so a perfect 0 (e.g. zero short
/// polygons) doesn't zero the mean.
pub fn geomean(values: impl IntoIterator<Item = f64>, floor: f64) -> f64 {
    let mut log_sum = 0.0;
    let mut n = 0usize;
    for v in values {
        log_sum += v.max(floor).ln();
        n += 1;
    }
    if n == 0 {
        0.0
    } else {
        (log_sum / n as f64).exp()
    }
}

/// Prints a horizontal rule sized to a header line.
pub fn rule(header: &str) {
    println!("{}", "-".repeat(header.len()));
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(args: &[&str]) -> Options {
        Options::parse(args.iter().map(|s| s.to_string()))
    }

    #[test]
    fn defaults() {
        let o = parse(&[]);
        assert_eq!(o.scale, 1.0);
        assert_eq!(o.density, 28.0);
        assert_eq!(o.seed, 2013);
        assert_eq!(o.suite.len(), 14);
    }

    #[test]
    fn flags_parse() {
        let o = parse(&["--scale", "0.25", "--seed", "9", "--suite", "hard", "--density", "16"]);
        assert_eq!(o.scale, 0.25);
        assert_eq!(o.density, 16.0);
        assert_eq!(o.seed, 9);
        assert_eq!(o.suite.len(), 6);
    }

    #[test]
    #[should_panic(expected = "unknown flag")]
    fn unknown_flag_panics() {
        parse(&["--bogus"]);
    }

    #[test]
    fn geomean_basic() {
        let g = geomean([1.0, 4.0], 1e-6);
        assert!((g - 2.0).abs() < 1e-9);
        assert_eq!(geomean(std::iter::empty(), 1e-6), 0.0);
    }
}
