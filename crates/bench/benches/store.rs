//! Persistence-layer latency benchmark for `mebl-store`.
//!
//! Measures the three costs the serve tier pays for durability, against
//! the real filesystem (a throwaway directory under the OS temp root):
//!
//! - `store/append_fsync_always` — one `put` with a sync per record,
//!   the durability-before-acknowledge configuration the daemon
//!   defaults to.
//! - `store/append_fsync_never` — the same `put` with syncs deferred,
//!   isolating frame encode + buffered write from fsync cost.
//! - `store/cold_rebuild` — a full `Store::open_fs` over the populated
//!   directory: segment scan, checksum verification, index rebuild.
//!   This is the restart-path cost the crash-recovery design trades
//!   for having no separate index file.
//! - `store/disk_hit` — a `get` that misses the serve LRU and is
//!   served from a segment with checksum re-verification.
//!
//! Written to `results/bench_store.json` and gated by `xtask benchgate`
//! in `scripts/ci.sh`.

use mebl_route::Stopwatch;
use mebl_store::{FsyncPolicy, Store, StoreConfig};
use mebl_testkit::bench::BenchSuite;
use mebl_testkit::{Rng, SplitMix64};
use std::path::{Path, PathBuf};

const APPEND_SAMPLES: usize = 150;
const REBUILD_SAMPLES: usize = 20;
const HIT_SAMPLES: usize = 200;
const PAYLOAD_LEN: usize = 256;

fn scratch_dir(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("mebl-bench-store-{}-{tag}", std::process::id()))
}

fn config(dir: &Path, fsync: FsyncPolicy) -> StoreConfig {
    let mut cfg = StoreConfig::new(dir.to_string_lossy().into_owned());
    cfg.fsync = fsync;
    cfg
}

fn payload(seed: u64) -> Vec<u8> {
    let mut rng = SplitMix64::from_seed(seed);
    (0..PAYLOAD_LEN).map(|_| rng.next_u64() as u8).collect()
}

fn bench_appends(suite: &mut BenchSuite, fsync: FsyncPolicy, case: &str) {
    let dir = scratch_dir(case);
    let _ = std::fs::remove_dir_all(&dir);
    let (store, _) = Store::open_fs(config(&dir, fsync)).expect("open scratch store");
    let mut samples = Vec::with_capacity(APPEND_SAMPLES);
    for i in 0..APPEND_SAMPLES as u64 {
        let body = payload(i);
        let sw = Stopwatch::start();
        store.put(i, 0xbe9c, &body).expect("append");
        samples.push(u64::try_from(sw.elapsed().as_nanos()).unwrap_or(u64::MAX));
    }
    suite.record_manual(format!("store/{case}"), samples);
    drop(store);
    let _ = std::fs::remove_dir_all(&dir);
}

fn bench_rebuild_and_hits(suite: &mut BenchSuite) {
    let dir = scratch_dir("rebuild");
    let _ = std::fs::remove_dir_all(&dir);
    let cfg = config(&dir, FsyncPolicy::Never);
    {
        let (store, _) = Store::open_fs(cfg.clone()).expect("open scratch store");
        for i in 0..HIT_SAMPLES as u64 {
            store.put(i, 0xbe9c, &payload(i)).expect("populate");
        }
        store.sync().expect("settle scratch store");
    }

    let mut rebuilds = Vec::with_capacity(REBUILD_SAMPLES);
    for _ in 0..REBUILD_SAMPLES {
        let sw = Stopwatch::start();
        let (store, report) = Store::open_fs(cfg.clone()).expect("cold rebuild");
        rebuilds.push(u64::try_from(sw.elapsed().as_nanos()).unwrap_or(u64::MAX));
        assert_eq!(report.live_records, HIT_SAMPLES, "rebuild dropped records");
        drop(store);
    }
    suite.record_manual("store/cold_rebuild", rebuilds);

    let (store, _) = Store::open_fs(cfg).expect("open for reads");
    let mut hits = Vec::with_capacity(HIT_SAMPLES);
    for i in 0..HIT_SAMPLES as u64 {
        let sw = Stopwatch::start();
        let got = store.get(i, 0xbe9c).expect("disk hit");
        hits.push(u64::try_from(sw.elapsed().as_nanos()).unwrap_or(u64::MAX));
        assert!(got.is_some(), "populated key {i} missing");
    }
    suite.record_manual("store/disk_hit", hits);
    drop(store);
    let _ = std::fs::remove_dir_all(&dir);
}

fn main() {
    let mut suite = BenchSuite::new("store");
    bench_appends(&mut suite, FsyncPolicy::Always, "append_fsync_always");
    bench_appends(&mut suite, FsyncPolicy::Never, "append_fsync_never");
    bench_rebuild_and_hits(&mut suite);
    suite
        .finish_to(concat!(env!("CARGO_MANIFEST_DIR"), "/../../results"))
        .expect("write bench report");
}
