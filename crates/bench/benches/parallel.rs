//! Serial-vs-parallel wall-clock comparison of the full routing flow.
//!
//! Routes two representative benchmarks (a 3-layer MCNC and a 6-layer
//! Faraday design, quick scale) at 1, 2 and 4 workers and records the
//! timings to `results/bench_parallel.json`. The output is bit-identical
//! at every width (see `tests/parallel.rs`); this bench measures only
//! the wall-clock effect of the fan-out on the host it runs on — on a
//! single-core machine the wider runs show batching overhead instead of
//! speedup, and the recorded numbers say so honestly.

use mebl_netlist::{BenchmarkSpec, GenerateConfig};
use mebl_route::{Router, RouterConfig};
use mebl_testkit::bench::{BenchConfig, BenchSuite};

fn main() {
    let mut suite = BenchSuite::with_config(
        "parallel",
        BenchConfig {
            warmup_iters: 1,
            samples: 5,
        },
    );
    for name in ["S9234", "DMA"] {
        let circuit = BenchmarkSpec::by_name(name)
            .expect("known benchmark")
            .generate(&GenerateConfig::quick(2013));
        for threads in [1usize, 2, 4] {
            let router = Router::new(RouterConfig::stitch_aware().with_threads(threads));
            suite.bench(format!("full_flow/{name}/threads_{threads}"), || {
                router.route(&circuit)
            });
        }
    }
    suite
        .finish_to(concat!(env!("CARGO_MANIFEST_DIR"), "/../../results"))
        .expect("write bench report");
}
