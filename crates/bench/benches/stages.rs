//! Micro-benches for the individual routing stages.
//!
//! One group per paper experiment: global routing (Table IV), layer
//! assignment heuristics (Table VI), track assignment algorithms
//! (Table VII) and detailed routing (Table VIII), each at a small fixed
//! scale so `cargo bench` completes quickly while preserving the relative
//! runtimes. Timings go to stderr and to `results/bench_stages.json`.

use mebl_assign::{
    assign_tracks, extract_panels, layer_assign_mst, layer_assign_ours, random_instances,
    ConflictGraph, LayerMode, TrackConfig, TrackMode,
};
use mebl_detailed::{route_detailed, DetailedConfig};
use mebl_global::{route_circuit, GlobalConfig};
use mebl_netlist::{BenchmarkSpec, Circuit, GenerateConfig};
use mebl_stitch::{StitchConfig, StitchPlan};
use mebl_testkit::bench::{BenchConfig, BenchSuite};

fn quick(name: &str) -> (Circuit, StitchPlan) {
    let circuit = BenchmarkSpec::by_name(name)
        .expect("known benchmark")
        .generate(&GenerateConfig::quick(2013));
    let plan = StitchPlan::new(circuit.outline(), StitchConfig::default());
    (circuit, plan)
}

fn bench_global(suite: &mut BenchSuite) {
    let (circuit, plan) = quick("S9234");
    for (label, line_end_cost) in [("wo_line_end", false), ("w_line_end", true)] {
        let config = GlobalConfig {
            line_end_cost,
            ..GlobalConfig::default()
        };
        suite.bench(format!("global_routing/{label}"), || {
            route_circuit(&circuit, &plan, &config)
        });
    }
}

fn bench_layer_assignment(suite: &mut BenchSuite) {
    let instances = random_instances(10, 25, 30, 2013);
    let graphs: Vec<ConflictGraph> = instances
        .iter()
        .map(|iv| ConflictGraph::build(iv, 30, true))
        .collect();
    suite.bench("layer_assignment_k3/max_spanning_tree", || {
        graphs
            .iter()
            .map(|g| layer_assign_mst(g, 3))
            .collect::<Vec<_>>()
    });
    suite.bench("layer_assignment_k3/ours_kcolorable_subset", || {
        graphs
            .iter()
            .map(|g| layer_assign_ours(g, 3))
            .collect::<Vec<_>>()
    });
}

fn bench_track_assignment(suite: &mut BenchSuite) {
    let (circuit, plan) = quick("S5378");
    let global = route_circuit(&circuit, &plan, &GlobalConfig::default());
    let panels = extract_panels(&global);
    let modes: [(&str, TrackMode); 3] = [
        ("baseline", TrackMode::Baseline),
        ("graph_heuristic", TrackMode::GraphHeuristic),
        ("ilp_exact", TrackMode::IlpExact { node_budget: 200_000 }),
    ];
    for (label, track_mode) in modes {
        let config = TrackConfig {
            layer_mode: LayerMode::Ours,
            track_mode,
            ..TrackConfig::default()
        };
        suite.bench(format!("track_assignment/{label}"), || {
            assign_tracks(&panels, &global.graph, &plan, circuit.layer_count(), &config)
        });
    }
}

fn bench_detailed(suite: &mut BenchSuite) {
    let (circuit, plan) = quick("S9234");
    let global = route_circuit(&circuit, &plan, &GlobalConfig::default());
    let panels = extract_panels(&global);
    let tracks = assign_tracks(
        &panels,
        &global.graph,
        &plan,
        circuit.layer_count(),
        &TrackConfig::default(),
    );
    for (label, config) in [
        ("wo_stitch", DetailedConfig::without_stitch_consideration()),
        ("w_stitch", DetailedConfig::default()),
    ] {
        suite.bench(format!("detailed_routing/{label}"), || {
            route_detailed(&circuit, &plan, &global.graph, &tracks, &config)
        });
    }
}

fn main() {
    let mut suite = BenchSuite::with_config(
        "stages",
        BenchConfig {
            warmup_iters: 2,
            // Enough samples that the median shrugs off bursty host
            // interference; the benchgate holds detailed_routing/* to
            // 10%, which 10 samples could not defend.
            samples: 30,
        },
    );
    bench_global(&mut suite);
    bench_layer_assignment(&mut suite);
    bench_track_assignment(&mut suite);
    bench_detailed(&mut suite);
    suite
        .finish_to(concat!(env!("CARGO_MANIFEST_DIR"), "/../../results"))
        .expect("write bench report");
}
