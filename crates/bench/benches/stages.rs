//! Criterion benches for the individual routing stages.
//!
//! One group per paper experiment: global routing (Table IV), layer
//! assignment heuristics (Table VI), track assignment algorithms
//! (Table VII) and detailed routing (Table VIII), each at a small fixed
//! scale so `cargo bench` completes quickly while preserving the relative
//! runtimes.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mebl_assign::{
    assign_tracks, extract_panels, layer_assign_mst, layer_assign_ours, random_instances,
    ConflictGraph, LayerMode, TrackConfig, TrackMode,
};
use mebl_detailed::{route_detailed, DetailedConfig};
use mebl_global::{route_circuit, GlobalConfig};
use mebl_netlist::{BenchmarkSpec, Circuit, GenerateConfig};
use mebl_stitch::{StitchConfig, StitchPlan};

fn quick(name: &str) -> (Circuit, StitchPlan) {
    let circuit = BenchmarkSpec::by_name(name)
        .expect("known benchmark")
        .generate(&GenerateConfig::quick(2013));
    let plan = StitchPlan::new(circuit.outline(), StitchConfig::default());
    (circuit, plan)
}

fn bench_global(c: &mut Criterion) {
    let (circuit, plan) = quick("S9234");
    let mut group = c.benchmark_group("global_routing");
    group.sample_size(10);
    for (label, line_end_cost) in [("wo_line_end", false), ("w_line_end", true)] {
        let config = GlobalConfig {
            line_end_cost,
            ..GlobalConfig::default()
        };
        group.bench_function(BenchmarkId::from_parameter(label), |b| {
            b.iter(|| route_circuit(&circuit, &plan, &config));
        });
    }
    group.finish();
}

fn bench_layer_assignment(c: &mut Criterion) {
    let instances = random_instances(10, 25, 30, 2013);
    let graphs: Vec<ConflictGraph> = instances
        .iter()
        .map(|iv| ConflictGraph::build(iv, 30, true))
        .collect();
    let mut group = c.benchmark_group("layer_assignment_k3");
    group.bench_function("max_spanning_tree", |b| {
        b.iter(|| {
            graphs
                .iter()
                .map(|g| layer_assign_mst(g, 3))
                .collect::<Vec<_>>()
        });
    });
    group.bench_function("ours_kcolorable_subset", |b| {
        b.iter(|| {
            graphs
                .iter()
                .map(|g| layer_assign_ours(g, 3))
                .collect::<Vec<_>>()
        });
    });
    group.finish();
}

fn bench_track_assignment(c: &mut Criterion) {
    let (circuit, plan) = quick("S5378");
    let global = route_circuit(&circuit, &plan, &GlobalConfig::default());
    let panels = extract_panels(&global);
    let mut group = c.benchmark_group("track_assignment");
    group.sample_size(10);
    let modes: [(&str, TrackMode); 3] = [
        ("baseline", TrackMode::Baseline),
        ("graph_heuristic", TrackMode::GraphHeuristic),
        ("ilp_exact", TrackMode::IlpExact { node_budget: 200_000 }),
    ];
    for (label, track_mode) in modes {
        let config = TrackConfig {
            layer_mode: LayerMode::Ours,
            track_mode,
        };
        group.bench_function(BenchmarkId::from_parameter(label), |b| {
            b.iter(|| assign_tracks(&panels, &global.graph, &plan, circuit.layer_count(), &config));
        });
    }
    group.finish();
}

fn bench_detailed(c: &mut Criterion) {
    let (circuit, plan) = quick("S9234");
    let global = route_circuit(&circuit, &plan, &GlobalConfig::default());
    let panels = extract_panels(&global);
    let tracks = assign_tracks(
        &panels,
        &global.graph,
        &plan,
        circuit.layer_count(),
        &TrackConfig::default(),
    );
    let mut group = c.benchmark_group("detailed_routing");
    group.sample_size(10);
    for (label, config) in [
        ("wo_stitch", DetailedConfig::without_stitch_consideration()),
        ("w_stitch", DetailedConfig::default()),
    ] {
        group.bench_function(BenchmarkId::from_parameter(label), |b| {
            b.iter(|| route_detailed(&circuit, &plan, &global.graph, &tracks, &config));
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_global,
    bench_layer_assignment,
    bench_track_assignment,
    bench_detailed
);
criterion_main!(benches);
