//! Incremental-routing latency benchmark for `mebl-delta`.
//!
//! Measures what the ECO path actually buys over a from-scratch route
//! on the S13207 quick benchmark (large enough that search cost,
//! which the delta path avoids, dominates the fixed grid setup both
//! paths share):
//!
//! - `delta/scratch_reference` — a full `Router::route` of the edited
//!   circuit, the cost the delta path replaces.
//! - `delta/single_net` — patching the prior outcome after a one-net
//!   move, the canonical ECO. The whole point of the subsystem: this
//!   must be at least 5× faster than `scratch_reference` (asserted
//!   below, so the gap is recorded in `results/bench_delta.json`
//!   rather than taken on faith).
//! - `delta/tenth_of_nets` — moving ~10% of the nets, the point where
//!   closure growth starts eating the advantage.
//! - `delta/blockage_insert` — dropping a fresh keep-out, which rips
//!   up exactly the nets whose prior geometry crosses it.
//!
//! Written to `results/bench_delta.json` and gated by `xtask benchgate`
//! in `scripts/ci.sh`.

use mebl_delta::{route_delta, CircuitEdit};
use mebl_geom::Rect;
use mebl_netlist::{BenchmarkSpec, Circuit, GenerateConfig};
use mebl_route::{Router, RouterConfig, RoutingOutcome, Stopwatch};
use mebl_testkit::bench::BenchSuite;

const SCRATCH_SAMPLES: usize = 12;
const DELTA_SAMPLES: usize = 25;

fn circuit() -> Circuit {
    BenchmarkSpec::by_name("S13207")
        .expect("known benchmark")
        .generate(&GenerateConfig::quick(11))
}

/// Whether moving `name` by `(dx, dy)` yields a valid edited circuit
/// (pins can land on stitching lines or other pins; skip those nets).
fn move_applies(circuit: &Circuit, config: &RouterConfig, edits: &[CircuitEdit]) -> bool {
    let plan = mebl_stitch::StitchPlan::new(circuit.outline(), config.stitch);
    match mebl_delta::apply_edits(circuit, edits) {
        Err(_) => false,
        Ok(p) => !p
            .circuit
            .validate(plan.lines())
            .iter()
            .any(mebl_netlist::CircuitIssue::is_error),
    }
}

/// One-net nudge: the smallest plausible ECO. Scans for a net whose
/// moved pins stay valid.
fn single_net_edit(circuit: &Circuit, config: &RouterConfig) -> Vec<CircuitEdit> {
    for net in circuit.nets() {
        let edit = vec![CircuitEdit::MoveNet {
            name: net.name().to_string(),
            dx: 1,
            dy: 1,
        }];
        if move_applies(circuit, config, &edit) {
            return edit;
        }
    }
    panic!("no net admits a (1, 1) move");
}

/// Moves roughly every tenth net by one pitch, skipping nets whose
/// move would land on a stitching line or another pin.
fn tenth_of_nets_edit(circuit: &Circuit, config: &RouterConfig) -> Vec<CircuitEdit> {
    let target = circuit.net_count().div_ceil(10);
    let mut edits = Vec::new();
    for net in circuit.nets() {
        if edits.len() == target {
            break;
        }
        let mut candidate = edits.clone();
        candidate.push(CircuitEdit::MoveNet {
            name: net.name().to_string(),
            dx: 1,
            dy: 0,
        });
        if move_applies(circuit, config, &candidate) {
            edits = candidate;
        }
    }
    assert!(!edits.is_empty(), "no net admits a (1, 0) move");
    edits
}

/// A fresh keep-out on a pin-free patch near the chip centre: scan
/// outward from the centre for a 2×2 cell window covering no pin.
fn blockage_edit(circuit: &Circuit) -> Vec<CircuitEdit> {
    let outline = circuit.outline();
    let cx = (outline.x0() + outline.x1()) / 2;
    let cy = (outline.y0() + outline.y1()) / 2;
    let pin_free = |r: Rect| {
        circuit
            .nets()
            .iter()
            .all(|n| n.pins().iter().all(|p| !r.contains(p.position)))
    };
    for d in 0..i32::try_from(outline.width()).unwrap_or(i32::MAX) {
        let r = Rect::new(cx + d, cy, cx + d + 1, cy + 1);
        if outline.contains_rect(r) && pin_free(r) {
            return vec![CircuitEdit::AddBlockage { rect: r }];
        }
    }
    panic!("no pin-free 2x2 window found");
}

fn bench_delta(
    suite: &mut BenchSuite,
    case: &str,
    circuit: &Circuit,
    prior: &RoutingOutcome,
    config: &RouterConfig,
    edits: &[CircuitEdit],
) -> u64 {
    let mut samples = Vec::with_capacity(DELTA_SAMPLES);
    for _ in 0..DELTA_SAMPLES {
        let sw = Stopwatch::start();
        let delta = route_delta(circuit, prior, edits, config).expect("bench edits route");
        samples.push(u64::try_from(sw.elapsed().as_nanos()).unwrap_or(u64::MAX));
        assert!(
            !delta.rerouted.is_empty(),
            "{case}: edit list touched nothing"
        );
    }
    suite.record_manual(format!("delta/{case}"), samples).min_ns
}

fn main() {
    let config = RouterConfig::stitch_aware();
    let circuit = circuit();
    let prior = Router::new(config.clone()).route(&circuit);

    let mut suite = BenchSuite::new("delta");

    // The scratch reference routes the *edited* circuit (one net
    // moved), so the comparison is delta-vs-scratch on identical input.
    let single = single_net_edit(&circuit, &config);
    let edited = mebl_delta::apply_edits(&circuit, &single)
        .expect("single-net edit applies")
        .circuit;
    let mut scratch_samples = Vec::with_capacity(SCRATCH_SAMPLES);
    for _ in 0..SCRATCH_SAMPLES {
        let sw = Stopwatch::start();
        let outcome = Router::new(config.clone()).route(&edited);
        scratch_samples.push(u64::try_from(sw.elapsed().as_nanos()).unwrap_or(u64::MAX));
        assert!(outcome.report.routed_nets > 0);
    }
    let scratch_min = suite
        .record_manual("delta/scratch_reference", scratch_samples)
        .min_ns;

    let single_min = bench_delta(&mut suite, "single_net", &circuit, &prior, &config, &single);
    bench_delta(
        &mut suite,
        "tenth_of_nets",
        &circuit,
        &prior,
        &config,
        &tenth_of_nets_edit(&circuit, &config),
    );
    bench_delta(
        &mut suite,
        "blockage_insert",
        &circuit,
        &prior,
        &config,
        &blockage_edit(&circuit),
    );

    // The acceptance bar for the subsystem: a one-net ECO must be at
    // least 5× cheaper than re-routing from scratch.
    assert!(
        single_min.saturating_mul(5) <= scratch_min,
        "single-net delta ({single_min} ns) is not 5x faster than scratch ({scratch_min} ns)"
    );

    suite
        .finish_to(concat!(env!("CARGO_MANIFEST_DIR"), "/../../results"))
        .expect("write bench report");
}
