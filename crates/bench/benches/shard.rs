//! Sharded-pipeline overhead benchmark for `mebl-shard` / `mebl-coord`.
//!
//! On a one-core CI box the sharded pipeline cannot be *faster* than
//! the monolithic router — panels route sequentially whatever the pool
//! width — so the enforced property is **bounded overhead**, not
//! speedup: splitting, per-panel routing and seam merging must stay
//! within a small factor of a from-scratch route, and widening the pool
//! must not add cost (the decomposition is fixed; shards only change
//! the worker count the job list fans out across). Measured:
//!
//! - `shard/split` — the stripe decomposition itself.
//! - `shard/merge` — stitching pre-routed fragments back together.
//! - `shard/route_shards{1,2,4}` — the full split→route→merge pipeline
//!   at each fan-out width (asserted within 2× of width 1).
//! - `shard/monolithic_reference` — the `Router::route` cost the
//!   pipeline is compared against (pipeline asserted within 4×).
//! - `shard/coord_dispatch` — one coordinator dispatch round-trip
//!   (hash, dial, request, reply) against a loopback worker.
//!
//! Written to `results/bench_shard.json` and gated by `xtask benchgate`
//! in `scripts/ci.sh`.

use mebl_coord::{CoordConfig, Coordinator};
use mebl_netlist::{BenchmarkSpec, Circuit, GenerateConfig};
use mebl_par::run_scoped;
use mebl_route::{CancelToken, Router, RouterConfig, Stopwatch};
use mebl_shard::{merge_fragments, route_sharded, FragmentOutcome, ShardOptions, ShardPlan};
use mebl_testkit::bench::BenchSuite;
use mebl_testkit::{FaultMode, FaultWorker};

const PIPELINE_SAMPLES: usize = 10;
const MICRO_SAMPLES: usize = 40;

fn circuit() -> Circuit {
    BenchmarkSpec::by_name("S9234")
        .expect("known benchmark")
        .generate(&GenerateConfig::quick(7))
}

/// Full-pipeline samples at one fan-out width.
fn bench_pipeline(suite: &mut BenchSuite, circuit: &Circuit, shards: usize) -> u64 {
    let opts = ShardOptions::new(shards);
    let mut samples = Vec::with_capacity(PIPELINE_SAMPLES);
    for _ in 0..PIPELINE_SAMPLES {
        let sw = Stopwatch::start();
        let run = route_sharded(circuit, &opts).expect("sharded route");
        samples.push(u64::try_from(sw.elapsed().as_nanos()).unwrap_or(u64::MAX));
        assert!(run.jobs >= 2, "bench circuit must split into panels");
    }
    suite
        .record_manual(format!("shard/route_shards{shards}"), samples)
        .min_ns
}

fn main() {
    let circuit = circuit();
    let opts = ShardOptions::new(1);
    let mut suite = BenchSuite::new("shard");

    // The decomposition alone: pure function of (circuit, stitch).
    let mut samples = Vec::with_capacity(MICRO_SAMPLES);
    for _ in 0..MICRO_SAMPLES {
        let sw = Stopwatch::start();
        let plan = ShardPlan::new(&circuit, opts.stitch());
        samples.push(u64::try_from(sw.elapsed().as_nanos()).unwrap_or(u64::MAX));
        assert!(plan.jobs.len() >= 2);
    }
    suite.record_manual("shard/split", samples);

    // The merge alone, over fragments routed once up front.
    let plan = ShardPlan::new(&circuit, opts.stitch());
    let fragments: Vec<FragmentOutcome> = plan
        .jobs
        .iter()
        .map(|job| {
            let config =
                mebl_shard::fragment_config(opts.baseline, job.period, opts.budget);
            FragmentOutcome::from_outcome(&Router::new(config).route(&job.circuit))
        })
        .collect();
    let mut samples = Vec::with_capacity(MICRO_SAMPLES);
    for _ in 0..MICRO_SAMPLES {
        let sw = Stopwatch::start();
        let outcome = merge_fragments(&circuit, opts.baseline, &plan, &fragments);
        samples.push(u64::try_from(sw.elapsed().as_nanos()).unwrap_or(u64::MAX));
        assert!(outcome.detailed.routed.iter().any(|&r| r));
    }
    suite.record_manual("shard/merge", samples);

    // The monolithic reference the overhead bound is measured against.
    let config = RouterConfig::stitch_aware();
    let mut samples = Vec::with_capacity(PIPELINE_SAMPLES);
    for _ in 0..PIPELINE_SAMPLES {
        let sw = Stopwatch::start();
        let outcome = Router::new(config.clone()).route(&circuit);
        samples.push(u64::try_from(sw.elapsed().as_nanos()).unwrap_or(u64::MAX));
        assert!(outcome.report.routed_nets > 0);
    }
    let mono_min = suite
        .record_manual("shard/monolithic_reference", samples)
        .min_ns;

    let one = bench_pipeline(&mut suite, &circuit, 1);
    let two = bench_pipeline(&mut suite, &circuit, 2);
    let four = bench_pipeline(&mut suite, &circuit, 4);

    // One coordinator dispatch round-trip against a loopback worker.
    // `dispatch` does not parse bodies, so any 200-answering endpoint
    // measures the wire path; the corrupt-JSON fault worker is exactly
    // that with zero compute behind it.
    let worker = FaultWorker::bind(FaultMode::CorruptJson).expect("bind loopback worker");
    let coordinator = Coordinator::new(CoordConfig {
        workers: vec![worker.addr()],
        ..CoordConfig::default()
    });
    let samples = std::sync::Mutex::new(Vec::with_capacity(MICRO_SAMPLES));
    run_scoped(2, |role| {
        if role == 0 {
            worker.serve();
        } else {
            let deadline = CancelToken::armed(None, None);
            let mut local = Vec::with_capacity(MICRO_SAMPLES);
            for i in 0..MICRO_SAMPLES {
                let key = format!("panel-{i}");
                let sw = Stopwatch::start();
                let (_, reply) = coordinator
                    .dispatch(&key, "GET", "/healthz", b"", &deadline)
                    .expect("loopback dispatch");
                local.push(u64::try_from(sw.elapsed().as_nanos()).unwrap_or(u64::MAX));
                assert_eq!(reply.status, 200);
            }
            *samples.lock().expect("samples lock") = local;
            worker.stop();
        }
    });
    let samples = samples.into_inner().expect("samples lock");
    suite.record_manual("shard/coord_dispatch", samples);

    // The honest one-core bars: widening the pool must not add cost
    // beyond scheduling noise, and the whole pipeline must stay within
    // a small factor of the monolithic route it decomposes.
    for (width, min) in [(2u32, two), (4, four)] {
        assert!(
            min <= one.saturating_mul(2),
            "shards={width} ({min} ns) costs more than 2x shards=1 ({one} ns)"
        );
    }
    assert!(
        one <= mono_min.saturating_mul(4),
        "sharded pipeline ({one} ns) exceeds 4x the monolithic route ({mono_min} ns)"
    );

    suite
        .finish_to(concat!(env!("CARGO_MANIFEST_DIR"), "/../../results"))
        .expect("write bench report");
}
