//! End-to-end flow benchmark: baseline vs stitch-aware framework
//! (the runtime comparison behind Table III's CPU columns).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mebl_netlist::{BenchmarkSpec, GenerateConfig};
use mebl_route::{Router, RouterConfig};

fn bench_flow(c: &mut Criterion) {
    let circuit = BenchmarkSpec::by_name("S9234")
        .expect("known benchmark")
        .generate(&GenerateConfig::quick(2013));
    let mut group = c.benchmark_group("full_flow_s9234_quick");
    group.sample_size(10);
    for (label, config) in [
        ("baseline", RouterConfig::baseline()),
        ("stitch_aware", RouterConfig::stitch_aware()),
    ] {
        let router = Router::new(config);
        group.bench_function(BenchmarkId::from_parameter(label), |b| {
            b.iter(|| router.route(&circuit));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_flow);
criterion_main!(benches);
