//! End-to-end flow benchmark: baseline vs stitch-aware framework
//! (the runtime comparison behind Table III's CPU columns).
//! Timings go to stderr and to `results/bench_flow.json`.

use mebl_netlist::{BenchmarkSpec, GenerateConfig};
use mebl_route::{Router, RouterConfig};
use mebl_testkit::bench::{BenchConfig, BenchSuite};

fn main() {
    let circuit = BenchmarkSpec::by_name("S9234")
        .expect("known benchmark")
        .generate(&GenerateConfig::quick(2013));
    let mut suite = BenchSuite::with_config(
        "flow",
        BenchConfig {
            warmup_iters: 2,
            samples: 10,
        },
    );
    for (label, config) in [
        ("baseline", RouterConfig::baseline()),
        ("stitch_aware", RouterConfig::stitch_aware()),
    ] {
        let router = Router::new(config);
        suite.bench(format!("full_flow_s9234_quick/{label}"), || {
            router.route(&circuit)
        });
    }
    suite
        .finish_to(concat!(env!("CARGO_MANIFEST_DIR"), "/../../results"))
        .expect("write bench report");
}
