//! Service-level latency benchmark for the `mebl-serve` daemon.
//!
//! Boots a real loopback server per queue depth (1, 8, 64), drives it
//! with a small concurrent client fleet routing distinct seeds (so the
//! result cache never short-circuits the work), and records
//! per-request wall latencies — `median_ns` is the p50 and `p95_ns`
//! the tail — plus a fleet-wide wall-clock-per-request figure that
//! stands in for throughput (req/sec = 1e9 / wall_per_request).
//! A separate case samples the cache-hit fast path. Written to
//! `results/bench_serve.json` and gated by `xtask benchgate` in
//! `scripts/ci.sh` (with a generous tolerance: service numbers carry
//! scheduler noise that stage microbenches do not).
//!
//! At queue depth 1 the fleet deliberately outruns the queue; clients
//! absorb the resulting `429`s with a short backoff, so the recorded
//! latencies are for *accepted* requests only and the depth-1 case
//! shows what backpressure costs end-to-end.

use mebl_par::run_scoped;
use mebl_route::Stopwatch;
use mebl_serve::{ServeConfig, Server};
use mebl_testkit::bench::BenchSuite;
use mebl_testkit::TestClient;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::Duration;

const CLIENTS: usize = 4;
const REQUESTS_PER_CLIENT: usize = 4;
const WARM_SAMPLES: usize = 25;

fn payload(seed: u64) -> String {
    format!("{{\"bench\":\"S5378\",\"seed\":{seed},\"scale\":0.035}}")
}

/// Shuts the server down if its owning role panics, so the server role
/// can return and `run_scoped` can join instead of hanging forever on
/// a daemon that nobody will ever drain.
struct PanicDrain<'a>(&'a mebl_serve::ServerHandle);

impl Drop for PanicDrain<'_> {
    fn drop(&mut self) {
        if std::thread::panicking() {
            self.0.shutdown();
        }
    }
}

/// Routes one payload, retrying through backpressure. A refused
/// connection can also surface as a transport error (the acceptor
/// answers `429` without reading the request, which may reset the
/// socket before the client sees the body); both count as "try again".
/// Returns the latency of the accepted attempt in nanoseconds.
fn timed_route(client: &TestClient, body: &str) -> u64 {
    for _ in 0..10_000 {
        let sw = Stopwatch::start();
        match client.post_json("/route", body) {
            Ok(r) if r.status == 200 => {
                return u64::try_from(sw.elapsed().as_nanos()).unwrap_or(u64::MAX)
            }
            Ok(r) if r.status == 429 => std::thread::sleep(Duration::from_millis(2)),
            Err(_) => std::thread::sleep(Duration::from_millis(2)),
            Ok(r) => panic!("unexpected status {}: {}", r.status, r.body_text()),
        }
    }
    panic!("backpressure never cleared after 10k retries");
}

fn bench_depth(suite: &mut BenchSuite, depth: usize) {
    let config = ServeConfig {
        workers: 2,
        queue_depth: depth,
        cache_capacity: 0, // force every request to route
        ..ServeConfig::default()
    };
    let server = Server::bind(&config).expect("bind loopback");
    let addr = server.local_addr();
    let handle = server.handle();
    let samples: Mutex<Vec<u64>> = Mutex::new(Vec::new());
    let remaining = AtomicUsize::new(CLIENTS);
    let wall = Stopwatch::start();
    run_scoped(CLIENTS + 1, |role| {
        if role == 0 {
            server.run();
        } else {
            let _drain = PanicDrain(&handle);
            let client = TestClient::new(addr).with_timeout(Duration::from_secs(300));
            for i in 0..REQUESTS_PER_CLIENT {
                let seed = (depth * 10_000 + role * 100 + i) as u64;
                let ns = timed_route(&client, &payload(seed));
                samples.lock().expect("samples").push(ns);
            }
            if remaining.fetch_sub(1, Ordering::SeqCst) == 1 {
                handle.shutdown();
            }
        }
    });
    let wall_ns = u64::try_from(wall.elapsed().as_nanos()).unwrap_or(u64::MAX);
    let samples = samples.lock().expect("samples").clone();
    let total = samples.len().max(1) as u64;
    suite.record_manual(format!("serve/request/depth_{depth}"), samples);
    suite.record_manual(
        format!("serve/wall_per_request/depth_{depth}"),
        vec![wall_ns / total],
    );
    eprintln!(
        "serve depth {depth}: {total} requests, {:.1} req/sec fleet-wide",
        total as f64 * 1e9 / wall_ns as f64
    );
}

fn bench_cache_hit(suite: &mut BenchSuite) {
    let server = Server::bind(&ServeConfig::default()).expect("bind loopback");
    let addr = server.local_addr();
    let handle = server.handle();
    let samples: Mutex<Vec<u64>> = Mutex::new(Vec::new());
    run_scoped(2, |role| {
        if role == 0 {
            server.run();
        } else {
            let _drain = PanicDrain(&handle);
            let client = TestClient::new(addr).with_timeout(Duration::from_secs(300));
            let body = payload(2013);
            let cold = client.post_json("/route", &body).expect("cold route");
            assert_eq!(cold.status, 200, "{}", cold.body_text());
            let mut warm = Vec::with_capacity(WARM_SAMPLES);
            for _ in 0..WARM_SAMPLES {
                let sw = Stopwatch::start();
                let r = client.post_json("/route", &body).expect("warm route");
                assert_eq!(r.header("x-cache"), Some("hit"));
                warm.push(u64::try_from(sw.elapsed().as_nanos()).unwrap_or(u64::MAX));
            }
            *samples.lock().expect("samples") = warm;
            handle.shutdown();
        }
    });
    let warm = samples.lock().expect("samples").clone();
    suite.record_manual("serve/cache_hit", warm);
}

fn main() {
    let mut suite = BenchSuite::new("serve");
    for depth in [1usize, 8, 64] {
        bench_depth(&mut suite, depth);
    }
    bench_cache_hit(&mut suite);
    suite
        .finish_to(concat!(env!("CARGO_MANIFEST_DIR"), "/../../results"))
        .expect("write bench report");
}
