//! Circuit, net and pin data structures.

use mebl_geom::{Layer, Point, Rect};

/// Index of a net within its [`Circuit`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NetId(pub u32);

impl std::fmt::Display for NetId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// A fixed pin: a grid position on a routing layer.
///
/// Pins sit on layer 0 in the generated benchmarks (standard-cell pins on
/// the lowest metal). Pins are *fixed*: the router may not move them, which
/// is why via violations can only be tolerated at pins (paper, Problem 1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Pin {
    /// Grid position.
    pub position: Point,
    /// Layer the pin belongs to.
    pub layer: Layer,
}

impl Pin {
    /// Creates a pin.
    pub const fn new(position: Point, layer: Layer) -> Self {
        Self { position, layer }
    }
}

/// A net: a set of pins that must be electrically connected.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Net {
    name: String,
    pins: Vec<Pin>,
}

impl Net {
    /// Creates a net from a name and its pins.
    ///
    /// # Panics
    ///
    /// Panics if fewer than two pins are supplied — a routable net needs at
    /// least a source and a sink.
    pub fn new(name: impl Into<String>, pins: Vec<Pin>) -> Self {
        assert!(pins.len() >= 2, "a net needs at least two pins");
        Self {
            name: name.into(),
            pins,
        }
    }

    /// Net name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The pins of the net.
    pub fn pins(&self) -> &[Pin] {
        &self.pins
    }

    /// Number of pins.
    pub fn degree(&self) -> usize {
        self.pins.len()
    }

    /// Bounding box of the pin positions.
    pub fn bounding_box(&self) -> Rect {
        Rect::bounding(self.pins.iter().map(|p| p.position))
            .expect("net has at least two pins")
    }

    /// Half-perimeter wirelength of the pin bounding box.
    pub fn hpwl(&self) -> u64 {
        let bb = self.bounding_box();
        (bb.width() - 1) + (bb.height() - 1)
    }
}

/// A circuit: an outline, a layer stack and a list of nets.
///
/// ```
/// use mebl_geom::{Layer, Point, Rect};
/// use mebl_netlist::{Circuit, Net, Pin};
///
/// let net = Net::new("a", vec![
///     Pin::new(Point::new(0, 0), Layer::new(0)),
///     Pin::new(Point::new(5, 5), Layer::new(0)),
/// ]);
/// let c = Circuit::new("demo", Rect::new(0, 0, 9, 9), 3, vec![net]);
/// assert_eq!(c.pin_count(), 2);
/// assert_eq!(c.total_hpwl(), 10);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Circuit {
    name: String,
    outline: Rect,
    layer_count: u8,
    nets: Vec<Net>,
    blockages: Vec<Rect>,
}

impl Circuit {
    /// Creates a circuit without blockages.
    ///
    /// # Panics
    ///
    /// Panics if `layer_count < 2` (routing needs at least one horizontal
    /// and one vertical layer) or if any pin lies outside the outline or on
    /// a layer `>= layer_count`.
    pub fn new(
        name: impl Into<String>,
        outline: Rect,
        layer_count: u8,
        nets: Vec<Net>,
    ) -> Self {
        Self::with_blockages(name, outline, layer_count, nets, Vec::new())
    }

    /// Creates a circuit with routing blockages.
    ///
    /// A blockage is an all-layer keep-out rectangle: the detailed router
    /// treats every cell it covers as permanently occupied. A blockage
    /// covering a pin makes the circuit unroutable — the constructor
    /// tolerates it so such circuits can be built and rejected through
    /// [`Circuit::validate`] with a typed error instead of a panic.
    ///
    /// # Panics
    ///
    /// Panics on the same conditions as [`Circuit::new`], plus any
    /// blockage not fully inside the outline.
    pub fn with_blockages(
        name: impl Into<String>,
        outline: Rect,
        layer_count: u8,
        nets: Vec<Net>,
        blockages: Vec<Rect>,
    ) -> Self {
        assert!(layer_count >= 2, "need at least two routing layers");
        for net in &nets {
            for pin in net.pins() {
                assert!(
                    outline.contains(pin.position),
                    "pin {:?} of net {} outside outline {}",
                    pin.position,
                    net.name(),
                    outline
                );
                assert!(
                    pin.layer.index() < layer_count,
                    "pin layer above the stack"
                );
            }
        }
        for b in &blockages {
            assert!(
                outline.contains_rect(*b),
                "blockage {b} outside outline {outline}"
            );
        }
        Self {
            name: name.into(),
            outline,
            layer_count,
            nets,
            blockages,
        }
    }

    /// Circuit name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Chip outline in track coordinates.
    pub fn outline(&self) -> Rect {
        self.outline
    }

    /// Number of routing layers.
    pub fn layer_count(&self) -> u8 {
        self.layer_count
    }

    /// All nets.
    pub fn nets(&self) -> &[Net] {
        &self.nets
    }

    /// All-layer routing blockages (keep-out rectangles).
    pub fn blockages(&self) -> &[Rect] {
        &self.blockages
    }

    /// The net with the given id.
    ///
    /// # Panics
    ///
    /// Panics if the id is out of range.
    pub fn net(&self, id: NetId) -> &Net {
        &self.nets[id.0 as usize]
    }

    /// Iterates `(id, net)` pairs.
    pub fn iter_nets(&self) -> impl Iterator<Item = (NetId, &Net)> {
        self.nets
            .iter()
            .enumerate()
            .map(|(i, n)| (NetId(i as u32), n))
    }

    /// Number of nets.
    pub fn net_count(&self) -> usize {
        self.nets.len()
    }

    /// Total number of pins over all nets.
    pub fn pin_count(&self) -> usize {
        self.nets.iter().map(Net::degree).sum()
    }

    /// Sum of per-net half-perimeter wirelengths (a routing demand proxy).
    pub fn total_hpwl(&self) -> u64 {
        self.nets.iter().map(Net::hpwl).sum()
    }

    /// Pre-flight validation: structural checks a router should run
    /// before committing a budget to the circuit.
    ///
    /// `stitch_lines` are the x coordinates of the stitching lines the
    /// run will use (pass `&[]` to skip stitch-related checks — the
    /// netlist layer has no notion of a stitch plan of its own).
    ///
    /// Errors (outline degenerate or absurdly large, pin outside the
    /// outline, pin layer above the stack) make the circuit unroutable
    /// as given; warnings (pin on a stitching line, duplicate pin
    /// cells across nets) are tolerated by the flow but worth
    /// surfacing. The constructor already rejects some error cases for
    /// circuits built through [`Circuit::new`]; `validate` re-checks
    /// them so circuits from any future source get the same scrutiny.
    pub fn validate(&self, stitch_lines: &[i32]) -> Vec<CircuitIssue> {
        let mut issues = Vec::new();
        let o = self.outline;

        if o.width() < 2 || o.height() < 2 {
            issues.push(CircuitIssue::error(
                None,
                format!(
                    "degenerate outline {}x{}: routing needs at least a 2x2 grid",
                    o.width(),
                    o.height()
                ),
            ));
        }
        // Grid memory scales with outline area x layers; reject sizes
        // that would exhaust memory long before any budget fires.
        const MAX_CELLS: u64 = 1 << 28;
        let cells = o.area().saturating_mul(u64::from(self.layer_count));
        if cells > MAX_CELLS {
            issues.push(CircuitIssue::error(
                None,
                format!("outline spans {cells} grid cells (limit {MAX_CELLS})"),
            ));
        }

        for b in &self.blockages {
            if !o.contains_rect(*b) {
                issues.push(CircuitIssue::error(
                    None,
                    format!("blockage {b} extends outside outline {o}"),
                ));
            }
        }

        let mut seen: std::collections::BTreeMap<(i32, i32, u8), usize> =
            std::collections::BTreeMap::new();
        for (idx, net) in self.nets.iter().enumerate() {
            for pin in net.pins() {
                let p = pin.position;
                if !o.contains(p) {
                    issues.push(CircuitIssue::error(
                        Some(idx),
                        format!("pin ({}, {}) outside outline {o}", p.x, p.y),
                    ));
                }
                if pin.layer.index() >= self.layer_count {
                    issues.push(CircuitIssue::error(
                        Some(idx),
                        format!(
                            "pin layer {} above the {}-layer stack",
                            pin.layer.index(),
                            self.layer_count
                        ),
                    ));
                }
                if let Some(b) = self.blockages.iter().find(|b| b.contains(p)) {
                    issues.push(CircuitIssue::error(
                        Some(idx),
                        format!(
                            "pin ({}, {}) is covered by blockage {b}: the net \
                             cannot reach it",
                            p.x, p.y
                        ),
                    ));
                }
                if stitch_lines.contains(&p.x) {
                    issues.push(CircuitIssue::warning(
                        Some(idx),
                        format!(
                            "pin ({}, {}) sits on stitching line x={}: its via stack \
                             will count as a tolerated violation",
                            p.x, p.y, p.x
                        ),
                    ));
                }
                let key = (p.x, p.y, pin.layer.index());
                if let Some(&other) = seen.get(&key) {
                    if other != idx {
                        issues.push(CircuitIssue::warning(
                            Some(idx),
                            format!(
                                "pin ({}, {}) layer {} is shared with net {other}",
                                p.x,
                                p.y,
                                pin.layer.index()
                            ),
                        ));
                    }
                } else {
                    seen.insert(key, idx);
                }
            }
        }
        issues
    }
}

/// Severity of a [`CircuitIssue`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IssueSeverity {
    /// The circuit cannot be routed as given.
    Error,
    /// Tolerated by the flow, but worth surfacing.
    Warning,
}

/// One finding of [`Circuit::validate`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CircuitIssue {
    /// Severity class.
    pub severity: IssueSeverity,
    /// Net index the issue concerns, if any.
    pub net: Option<usize>,
    /// Human-readable description.
    pub message: String,
}

impl CircuitIssue {
    fn error(net: Option<usize>, message: String) -> Self {
        Self {
            severity: IssueSeverity::Error,
            net,
            message,
        }
    }

    fn warning(net: Option<usize>, message: String) -> Self {
        Self {
            severity: IssueSeverity::Warning,
            net,
            message,
        }
    }

    /// Whether the issue is an [`IssueSeverity::Error`].
    pub fn is_error(&self) -> bool {
        self.severity == IssueSeverity::Error
    }
}

impl std::fmt::Display for CircuitIssue {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let sev = match self.severity {
            IssueSeverity::Error => "error",
            IssueSeverity::Warning => "warning",
        };
        write!(f, "{sev}: ")?;
        if let Some(net) = self.net {
            write!(f, "net {net}: ")?;
        }
        f.write_str(&self.message)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pin(x: i32, y: i32) -> Pin {
        Pin::new(Point::new(x, y), Layer::new(0))
    }

    #[test]
    fn net_bbox_and_hpwl() {
        let n = Net::new("x", vec![pin(1, 2), pin(6, 9), pin(3, 3)]);
        assert_eq!(n.bounding_box(), Rect::new(1, 2, 6, 9));
        assert_eq!(n.hpwl(), 5 + 7);
    }

    #[test]
    #[should_panic(expected = "at least two pins")]
    fn single_pin_net_rejected() {
        let _ = Net::new("bad", vec![pin(0, 0)]);
    }

    #[test]
    #[should_panic(expected = "outside outline")]
    fn out_of_outline_pin_rejected() {
        let net = Net::new("a", vec![pin(0, 0), pin(50, 50)]);
        let _ = Circuit::new("c", Rect::new(0, 0, 9, 9), 3, vec![net]);
    }

    #[test]
    #[should_panic(expected = "outside outline")]
    fn out_of_outline_blockage_rejected() {
        let net = Net::new("a", vec![pin(0, 0), pin(1, 1)]);
        let _ = Circuit::with_blockages(
            "c",
            Rect::new(0, 0, 9, 9),
            3,
            vec![net],
            vec![Rect::new(5, 5, 12, 7)],
        );
    }

    #[test]
    fn blockage_covering_pin_is_a_validate_error() {
        let net = Net::new("a", vec![pin(2, 2), pin(8, 8)]);
        let c = Circuit::with_blockages(
            "c",
            Rect::new(0, 0, 9, 9),
            3,
            vec![net],
            vec![Rect::new(1, 1, 3, 3)],
        );
        assert_eq!(c.blockages().len(), 1);
        let issues = c.validate(&[]);
        assert!(
            issues.iter().any(|i| i.is_error() && i.message.contains("blockage")),
            "{issues:?}"
        );
    }

    #[test]
    fn clear_blockage_passes_validate() {
        let net = Net::new("a", vec![pin(0, 0), pin(9, 9)]);
        let c = Circuit::with_blockages(
            "c",
            Rect::new(0, 0, 9, 9),
            3,
            vec![net],
            vec![Rect::new(4, 4, 5, 5)],
        );
        assert!(c.validate(&[]).iter().all(|i| !i.is_error()));
    }

    #[test]
    fn circuit_counts() {
        let nets = vec![
            Net::new("a", vec![pin(0, 0), pin(1, 1)]),
            Net::new("b", vec![pin(2, 2), pin(3, 3), pin(4, 4)]),
        ];
        let c = Circuit::new("c", Rect::new(0, 0, 9, 9), 3, nets);
        assert_eq!(c.net_count(), 2);
        assert_eq!(c.pin_count(), 5);
        assert_eq!(c.net(NetId(1)).degree(), 3);
        let ids: Vec<NetId> = c.iter_nets().map(|(id, _)| id).collect();
        assert_eq!(ids, vec![NetId(0), NetId(1)]);
    }
}
