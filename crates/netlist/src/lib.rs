//! Netlists and benchmark circuits for the MEBL stitch-aware router.
//!
//! The paper evaluates on the MCNC and Faraday benchmark suites
//! (Tables I–II). Those suites' routed placements are not redistributable,
//! so this crate reproduces them as **synthetic circuits**: for each
//! published circuit we keep the published statistics (#layers, #nets,
//! #pins, aspect ratio) and generate a seeded random placement with
//! Rent-style pin locality (most nets are short, a tail is global). The
//! routing experiments measure *relative* behaviour of stitch-aware vs
//! conventional algorithms, which depends on the congestion profile and
//! net-length distribution — both of which the generator controls — rather
//! than on the exact original cell positions.
//!
//! # Examples
//!
//! ```
//! use mebl_netlist::{BenchmarkSpec, GenerateConfig};
//!
//! let spec = BenchmarkSpec::by_name("S5378").unwrap();
//! let circuit = spec.generate(&GenerateConfig { seed: 7, ..Default::default() });
//! assert_eq!(circuit.net_count(), 1694);
//! assert_eq!(circuit.pin_count(), 4818);
//! assert_eq!(circuit.layer_count(), 3);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod circuit;
mod generate;
mod io;
mod suite;

pub use circuit::{Circuit, CircuitIssue, IssueSeverity, Net, NetId, Pin};
pub use generate::{generate_with_events, GenerateConfig};
pub use io::{circuit_from_str, circuit_to_string, ParseCircuitError};
pub use suite::{faraday_suite, full_suite, mcnc_suite, BenchmarkSpec, Suite};
