//! Plain-text serialisation of circuits.
//!
//! A minimal, diff-friendly line format (a stand-in for the LEF/DEF pair
//! of a production flow) so generated benchmarks and hand-made designs
//! can be saved, versioned and re-routed:
//!
//! ```text
//! circuit <name> <x0> <y0> <x1> <y1> <layers>
//! net <name> <x>,<y>,<layer> <x>,<y>,<layer> ...
//! blockage <x0> <y0> <x1> <y1>
//! ```
//!
//! Lines starting with `#` and blank lines are ignored.

use crate::{Circuit, Net, Pin};
use mebl_geom::{Layer, Point, Rect};
use std::fmt::Write as _;

/// Error produced when parsing a circuit file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseCircuitError {
    /// 1-based line number of the offending line (0 = structural error).
    pub line: usize,
    /// Human-readable description.
    pub message: String,
}

impl std::fmt::Display for ParseCircuitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseCircuitError {}

/// Serialises a circuit to the text format.
///
/// ```
/// use mebl_geom::{Layer, Point, Rect};
/// use mebl_netlist::{circuit_from_str, circuit_to_string, Circuit, Net, Pin};
///
/// let net = Net::new("a", vec![
///     Pin::new(Point::new(0, 0), Layer::new(0)),
///     Pin::new(Point::new(5, 5), Layer::new(0)),
/// ]);
/// let c = Circuit::new("demo", Rect::new(0, 0, 9, 9), 3, vec![net]);
/// let text = circuit_to_string(&c);
/// let back = circuit_from_str(&text).unwrap();
/// assert_eq!(c, back);
/// ```
pub fn circuit_to_string(circuit: &Circuit) -> String {
    let mut out = String::new();
    let o = circuit.outline();
    let _ = writeln!(
        out,
        "circuit {} {} {} {} {} {}",
        circuit.name(),
        o.x0(),
        o.y0(),
        o.x1(),
        o.y1(),
        circuit.layer_count()
    );
    for net in circuit.nets() {
        let _ = write!(out, "net {}", net.name());
        for pin in net.pins() {
            let _ = write!(
                out,
                " {},{},{}",
                pin.position.x,
                pin.position.y,
                pin.layer.index()
            );
        }
        out.push('\n');
    }
    for b in circuit.blockages() {
        let _ = writeln!(out, "blockage {} {} {} {}", b.x0(), b.y0(), b.x1(), b.y1());
    }
    out
}

/// Parses a circuit from the text format.
///
/// # Errors
///
/// Returns [`ParseCircuitError`] with the offending line number on any
/// syntax or semantic problem (missing header, malformed pin, net with
/// fewer than two pins, pin outside the outline).
pub fn circuit_from_str(text: &str) -> Result<Circuit, ParseCircuitError> {
    let err = |line: usize, message: &str| ParseCircuitError {
        line,
        message: message.to_string(),
    };

    let mut header: Option<(String, Rect, u8)> = None;
    let mut nets: Vec<Net> = Vec::new();
    let mut blockages: Vec<Rect> = Vec::new();

    for (idx, raw) in text.lines().enumerate() {
        let lineno = idx + 1;
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut tok = line.split_whitespace();
        match tok.next() {
            Some("circuit") => {
                if header.is_some() {
                    return Err(err(lineno, "duplicate circuit header"));
                }
                let name = tok
                    .next()
                    .ok_or_else(|| err(lineno, "missing circuit name"))?
                    .to_string();
                let mut coord = |what: &str| -> Result<i32, ParseCircuitError> {
                    tok.next()
                        .ok_or_else(|| err(lineno, &format!("missing {what}")))?
                        .parse()
                        .map_err(|_| err(lineno, &format!("bad {what}")))
                };
                let (x0, y0, x1, y1) =
                    (coord("x0")?, coord("y0")?, coord("x1")?, coord("y1")?);
                let layers: u8 = tok
                    .next()
                    .ok_or_else(|| err(lineno, "missing layer count"))?
                    .parse()
                    .map_err(|_| err(lineno, "bad layer count"))?;
                if layers < 2 {
                    return Err(err(lineno, "need at least two layers"));
                }
                header = Some((name, Rect::new(x0, y0, x1, y1), layers));
            }
            Some("net") => {
                let (_, outline, layers) = header
                    .as_ref()
                    .ok_or_else(|| err(lineno, "net before circuit header"))?;
                let name = tok
                    .next()
                    .ok_or_else(|| err(lineno, "missing net name"))?
                    .to_string();
                let mut pins = Vec::new();
                for piece in tok {
                    let parts: Vec<&str> = piece.split(',').collect();
                    if parts.len() != 3 {
                        return Err(err(lineno, "pin must be x,y,layer"));
                    }
                    let x: i32 = parts[0].parse().map_err(|_| err(lineno, "bad pin x"))?;
                    let y: i32 = parts[1].parse().map_err(|_| err(lineno, "bad pin y"))?;
                    let l: u8 = parts[2].parse().map_err(|_| err(lineno, "bad pin layer"))?;
                    if !outline.contains(Point::new(x, y)) {
                        return Err(err(lineno, "pin outside outline"));
                    }
                    if l >= *layers {
                        return Err(err(lineno, "pin layer above stack"));
                    }
                    pins.push(Pin::new(Point::new(x, y), Layer::new(l)));
                }
                if pins.len() < 2 {
                    return Err(err(lineno, "net needs at least two pins"));
                }
                nets.push(Net::new(name, pins));
            }
            Some("blockage") => {
                let (_, outline, _) = header
                    .as_ref()
                    .ok_or_else(|| err(lineno, "blockage before circuit header"))?;
                let mut coord = |what: &str| -> Result<i32, ParseCircuitError> {
                    tok.next()
                        .ok_or_else(|| err(lineno, &format!("missing blockage {what}")))?
                        .parse()
                        .map_err(|_| err(lineno, &format!("bad blockage {what}")))
                };
                let (x0, y0, x1, y1) =
                    (coord("x0")?, coord("y0")?, coord("x1")?, coord("y1")?);
                let rect = Rect::new(x0, y0, x1, y1);
                if !outline.contains_rect(rect) {
                    return Err(err(lineno, "blockage outside outline"));
                }
                blockages.push(rect);
            }
            Some(other) => {
                return Err(err(lineno, &format!("unknown directive '{other}'")));
            }
            // Blank lines are filtered above, but treating an empty token
            // stream as a blank line keeps the parser total either way.
            None => continue,
        }
    }

    let (name, outline, layers) =
        header.ok_or_else(|| err(0, "missing circuit header"))?;
    Ok(Circuit::with_blockages(name, outline, layers, nets, blockages))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{BenchmarkSpec, GenerateConfig};

    #[test]
    fn roundtrip_generated_benchmark() {
        let c = BenchmarkSpec::by_name("S9234")
            .unwrap()
            .generate(&GenerateConfig::quick(5));
        let text = circuit_to_string(&c);
        let back = circuit_from_str(&text).unwrap();
        assert_eq!(c, back);
    }

    #[test]
    fn comments_and_blank_lines_ignored() {
        let text = "\n# a comment\ncircuit t 0 0 9 9 3\n\nnet a 0,0,0 5,5,0\n";
        let c = circuit_from_str(text).unwrap();
        assert_eq!(c.net_count(), 1);
        assert_eq!(c.name(), "t");
    }

    #[test]
    fn error_on_missing_header() {
        let e = circuit_from_str("net a 0,0,0 1,1,0\n").unwrap_err();
        assert_eq!(e.line, 1);
        assert!(e.message.contains("before circuit header"));
    }

    #[test]
    fn error_on_bad_pin() {
        let e = circuit_from_str("circuit t 0 0 9 9 3\nnet a 0,0 1,1,0\n").unwrap_err();
        assert_eq!(e.line, 2);
        assert!(e.message.contains("x,y,layer"));
    }

    #[test]
    fn error_on_pin_outside() {
        let e = circuit_from_str("circuit t 0 0 9 9 3\nnet a 0,0,0 50,1,0\n").unwrap_err();
        assert!(e.message.contains("outside"));
    }

    #[test]
    fn error_on_one_pin_net() {
        let e = circuit_from_str("circuit t 0 0 9 9 3\nnet a 0,0,0\n").unwrap_err();
        assert!(e.message.contains("at least two pins"));
    }

    #[test]
    fn error_on_unknown_directive() {
        let e = circuit_from_str("circuit t 0 0 9 9 3\nblob\n").unwrap_err();
        assert!(e.message.contains("unknown directive"));
    }

    #[test]
    fn error_display_includes_line() {
        let e = circuit_from_str("bogus\n").unwrap_err();
        assert!(e.to_string().starts_with("line 1:"));
    }

    #[test]
    fn roundtrip_with_blockages() {
        let net = Net::new(
            "a",
            vec![
                Pin::new(Point::new(0, 0), Layer::new(0)),
                Pin::new(Point::new(9, 9), Layer::new(0)),
            ],
        );
        let c = Circuit::with_blockages(
            "t",
            Rect::new(0, 0, 9, 9),
            3,
            vec![net],
            vec![Rect::new(2, 2, 4, 4), Rect::new(6, 1, 7, 8)],
        );
        let text = circuit_to_string(&c);
        assert!(text.contains("blockage 2 2 4 4"));
        let back = circuit_from_str(&text).unwrap();
        assert_eq!(c, back);
    }

    #[test]
    fn error_on_blockage_outside_outline() {
        let e = circuit_from_str("circuit t 0 0 9 9 3\nblockage 5 5 12 7\n").unwrap_err();
        assert_eq!(e.line, 2);
        assert!(e.message.contains("outside outline"));
    }

    #[test]
    fn error_on_blockage_before_header() {
        let e = circuit_from_str("blockage 0 0 1 1\n").unwrap_err();
        assert!(e.message.contains("before circuit header"));
    }

    #[test]
    fn error_on_malformed_blockage() {
        let e = circuit_from_str("circuit t 0 0 9 9 3\nblockage 1 2 3\n").unwrap_err();
        assert!(e.message.contains("missing blockage y1"));
    }

    #[test]
    fn duplicate_header_rejected() {
        let e = circuit_from_str("circuit a 0 0 9 9 3\ncircuit b 0 0 9 9 3\n").unwrap_err();
        assert!(e.message.contains("duplicate"));
    }
}
