//! Seeded synthetic circuit generation.

use crate::{BenchmarkSpec, Circuit, Net, Pin};
use mebl_control::{Degradation, DegradationKind, Stage};
use mebl_geom::{Coord, Layer, Point, Rect};
use mebl_testkit::{Rng, Xoshiro256pp};
use std::collections::BTreeSet;

/// Parameters controlling synthetic circuit generation.
///
/// The defaults reproduce the paper-scale experiments; integration tests use
/// [`GenerateConfig::quick`] to run the same code paths on scaled-down
/// circuits.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GenerateConfig {
    /// RNG seed. The circuit name is mixed in, so one seed yields a
    /// different (but deterministic) circuit per benchmark.
    pub seed: u64,
    /// Grid area (in track cells) allocated per pin; controls congestion.
    /// Larger values give sparser, easier-to-route designs.
    pub cells_per_pin: f64,
    /// Fraction of the published #nets/#pins to generate (1.0 = full size).
    pub net_scale: f64,
}

impl Default for GenerateConfig {
    fn default() -> Self {
        Self {
            seed: 2013, // DAC 2013
            cells_per_pin: 28.0,
            net_scale: 1.0,
        }
    }
}

impl GenerateConfig {
    /// A scaled-down configuration for fast tests (~6 % of the nets).
    pub fn quick(seed: u64) -> Self {
        Self {
            seed,
            net_scale: 0.06,
            ..Self::default()
        }
    }
}

/// FNV-1a hash of the circuit name, for stable per-benchmark seeds.
fn fnv1a(s: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in s.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Generates the synthetic circuit for `spec` (see crate docs for the
/// modelling rationale).
pub fn generate(spec: &BenchmarkSpec, config: &GenerateConfig) -> Circuit {
    generate_with_events(spec, config).0
}

/// Like [`generate`], but also surfaces the shortcuts the generator took
/// (saturated-neighbourhood pin placements, truncated or dropped nets) as
/// [`Degradation`] records instead of taking them silently.
///
/// The returned circuit is bit-identical to [`generate`]'s — event
/// collection never touches the RNG stream.
pub fn generate_with_events(
    spec: &BenchmarkSpec,
    config: &GenerateConfig,
) -> (Circuit, Vec<Degradation>) {
    assert!(config.net_scale > 0.0 && config.net_scale <= 1.0);
    assert!(config.cells_per_pin >= 4.0, "need at least 4 cells per pin");

    let mut rng = Xoshiro256pp::from_seed(config.seed ^ fnv1a(spec.name));

    let n_nets = ((spec.nets as f64 * config.net_scale).round() as usize).max(4);
    let n_pins = ((spec.pins as f64 * config.net_scale).round() as usize).max(2 * n_nets);

    // Grid sized from pin count at the target utilisation, preserving the
    // published aspect ratio. More layers carry more wiring, so 6-layer
    // designs can be denser per unit area.
    let layer_factor = 3.0 / f64::from(spec.layers.max(2));
    let area = (n_pins as f64) * config.cells_per_pin * layer_factor;
    let width = ((area * spec.aspect()).sqrt().round() as Coord).max(30);
    let height = ((area / spec.aspect()).sqrt().round() as Coord).max(30);
    let outline = Rect::new(0, 0, width - 1, height - 1);

    // Net degrees: start every net at 2 pins, then hand out the remaining
    // pins with a cubic bias so a small set of nets grows large (clock /
    // reset style high-fanout nets).
    let mut degrees = vec![2usize; n_nets];
    let extra = n_pins.saturating_sub(2 * n_nets);
    for _ in 0..extra {
        let u: f64 = rng.gen_f64();
        let idx = ((u * u * u) * n_nets as f64) as usize;
        degrees[idx.min(n_nets - 1)] += 1;
    }

    // Pin locality: most nets are short, a tail is chip-spanning.
    let min_dim = width.min(height) as f64;
    let mut used: BTreeSet<Point> = BTreeSet::new();
    let mut nets = Vec::with_capacity(n_nets);
    let mut fallback_pins = 0usize;
    let mut truncated_nets = 0usize;
    let mut dropped_nets = 0usize;
    for (i, &deg) in degrees.iter().enumerate() {
        let locality: f64 = rng.gen_f64();
        let radius = if locality < 0.75 {
            (min_dim * 0.04).max(4.0)
        } else if locality < 0.95 {
            (min_dim * 0.12).max(8.0)
        } else {
            min_dim * 0.45
        };
        let cx = rng.gen_range(0..width);
        let cy = rng.gen_range(0..height);
        let mut pins = Vec::with_capacity(deg);
        for _ in 0..deg {
            // A `None` means the whole grid is exhausted: keep whatever
            // pins the net has and surface the truncation below.
            let Some((p, fell_back)) = place_pin(&mut rng, outline, cx, cy, radius, &mut used)
            else {
                break;
            };
            fallback_pins += usize::from(fell_back);
            pins.push(Pin::new(p, Layer::new(0)));
        }
        if pins.len() >= 2 {
            if pins.len() < deg {
                truncated_nets += 1;
            }
            nets.push(Net::new(format!("{}_{}", spec.name.to_lowercase(), i), pins));
        } else {
            dropped_nets += 1;
        }
    }

    let mut events = Vec::new();
    if fallback_pins > 0 {
        events.push(Degradation::new(
            Stage::Generate,
            DegradationKind::InternalFallback,
            None,
            format!(
                "{fallback_pins} pins placed by row-major scan after 64 saturated samples"
            ),
        ));
    }
    if truncated_nets > 0 {
        events.push(Degradation::new(
            Stage::Generate,
            DegradationKind::InternalFallback,
            None,
            format!("{truncated_nets} nets truncated: grid exhausted before full degree"),
        ));
    }
    if dropped_nets > 0 {
        events.push(Degradation::new(
            Stage::Generate,
            DegradationKind::InternalFallback,
            None,
            format!("{dropped_nets} nets dropped with fewer than two placeable pins"),
        ));
    }
    (Circuit::new(spec.name, outline, spec.layers, nets), events)
}

/// Samples a pin near `(cx, cy)` within `radius`, guaranteeing a globally
/// unique grid position (falls back to a deterministic scan when the
/// neighbourhood is saturated; the boolean reports that fallback so the
/// caller can surface it). Returns `None` only when every cell of the
/// grid is occupied; the generator sizes grids so that never happens in
/// practice.
fn place_pin(
    rng: &mut Xoshiro256pp,
    outline: Rect,
    cx: Coord,
    cy: Coord,
    radius: f64,
    used: &mut BTreeSet<Point>,
) -> Option<(Point, bool)> {
    let r = radius.ceil() as Coord;
    for attempt in 0..64 {
        // Widen the window if the local area is saturated.
        let w = r * (1 + attempt / 8);
        let x = (cx + rng.gen_range(-w..=w)).clamp(outline.x0(), outline.x1());
        let y = (cy + rng.gen_range(-w..=w)).clamp(outline.y0(), outline.y1());
        let p = Point::new(x, y);
        if used.insert(p) {
            return Some((p, false));
        }
    }
    // Deterministic fallback: first free cell in row-major order from the
    // centre.
    for dy in 0..=(outline.height() as Coord) {
        for dx in 0..=(outline.width() as Coord) {
            let p = Point::new(
                (cx + dx).clamp(outline.x0(), outline.x1()),
                (cy + dy).clamp(outline.y0(), outline.y1()),
            );
            if used.insert(p) {
                return Some((p, true));
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::full_suite;
    use std::collections::HashSet;

    #[test]
    fn exact_counts_at_full_scale() {
        let spec = BenchmarkSpec::by_name("S9234").unwrap();
        let c = spec.generate(&GenerateConfig::default());
        assert_eq!(c.net_count(), 1486);
        assert_eq!(c.pin_count(), 4260);
        assert_eq!(c.layer_count(), 3);
    }

    #[test]
    fn deterministic_for_same_seed() {
        let spec = BenchmarkSpec::by_name("S5378").unwrap();
        let cfg = GenerateConfig::quick(11);
        let a = spec.generate(&cfg);
        let b = spec.generate(&cfg);
        assert_eq!(a, b);
    }

    #[test]
    fn different_seed_changes_circuit() {
        let spec = BenchmarkSpec::by_name("S5378").unwrap();
        let a = spec.generate(&GenerateConfig::quick(1));
        let b = spec.generate(&GenerateConfig::quick(2));
        assert_ne!(a, b);
    }

    #[test]
    fn pins_unique_and_inside_outline() {
        let spec = BenchmarkSpec::by_name("DMA").unwrap();
        let c = spec.generate(&GenerateConfig::quick(3));
        let mut seen = HashSet::new();
        for net in c.nets() {
            for pin in net.pins() {
                assert!(c.outline().contains(pin.position));
                assert!(seen.insert(pin.position), "duplicate pin at {}", pin.position);
            }
        }
    }

    #[test]
    fn aspect_ratio_roughly_preserved() {
        let spec = BenchmarkSpec::by_name("Primary2").unwrap();
        let c = spec.generate(&GenerateConfig::quick(5));
        let got = c.outline().width() as f64 / c.outline().height() as f64;
        assert!((got / spec.aspect() - 1.0).abs() < 0.1, "aspect {got} vs {}", spec.aspect());
    }

    #[test]
    fn every_benchmark_generates_at_quick_scale() {
        for spec in full_suite() {
            let c = spec.generate(&GenerateConfig::quick(1));
            assert!(c.net_count() >= 4);
            assert!(c.pin_count() >= 2 * c.net_count());
            // Grids must comfortably contain several stitch periods (15).
            assert!(c.outline().width() >= 30);
            assert!(c.outline().height() >= 30);
        }
    }

    #[test]
    fn most_nets_are_local() {
        let spec = BenchmarkSpec::by_name("S38417").unwrap();
        let c = spec.generate(&GenerateConfig::quick(7));
        let min_dim = c.outline().width().min(c.outline().height());
        let local = c
            .nets()
            .iter()
            .filter(|n| n.hpwl() < min_dim / 2)
            .count();
        assert!(
            local * 10 >= c.net_count() * 7,
            "expected >=70% local nets, got {local}/{}",
            c.net_count()
        );
    }
}
