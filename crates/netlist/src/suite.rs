//! Published benchmark statistics (Tables I–II of the paper).

use crate::{Circuit, GenerateConfig};

/// Which published suite a benchmark belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Suite {
    /// The nine MCNC circuits (Table I), 3 routing layers, 36 nm features.
    Mcnc,
    /// The five Faraday industry circuits (Table II), 6 layers, 32 nm.
    Faraday,
}

impl std::fmt::Display for Suite {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Suite::Mcnc => write!(f, "MCNC"),
            Suite::Faraday => write!(f, "Faraday"),
        }
    }
}

/// Published statistics of one benchmark circuit.
///
/// `width_um`/`height_um` are the physical dimensions from the paper; the
/// generator uses only their *aspect ratio* and derives the track grid from
/// the pin count at a target utilisation (see [`GenerateConfig`]).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BenchmarkSpec {
    /// Circuit name as printed in the paper.
    pub name: &'static str,
    /// Owning suite.
    pub suite: Suite,
    /// Published width in µm.
    pub width_um: f64,
    /// Published height in µm.
    pub height_um: f64,
    /// Number of routing layers.
    pub layers: u8,
    /// Number of nets.
    pub nets: usize,
    /// Number of pins.
    pub pins: usize,
}

impl BenchmarkSpec {
    /// Looks a benchmark up by its (case-insensitive) published name.
    ///
    /// ```
    /// use mebl_netlist::BenchmarkSpec;
    /// assert!(BenchmarkSpec::by_name("dma").is_some());
    /// assert!(BenchmarkSpec::by_name("nope").is_none());
    /// ```
    pub fn by_name(name: &str) -> Option<BenchmarkSpec> {
        full_suite()
            .into_iter()
            .find(|s| s.name.eq_ignore_ascii_case(name))
    }

    /// Aspect ratio width/height.
    pub fn aspect(&self) -> f64 {
        self.width_um / self.height_um
    }

    /// Generates the synthetic circuit for this spec.
    pub fn generate(&self, config: &GenerateConfig) -> Circuit {
        crate::generate::generate(self, config)
    }

    /// Like [`BenchmarkSpec::generate`], surfacing generator shortcuts
    /// as degradation records (same circuit, bit for bit).
    pub fn generate_with_events(
        &self,
        config: &GenerateConfig,
    ) -> (Circuit, Vec<mebl_control::Degradation>) {
        crate::generate::generate_with_events(self, config)
    }

    /// The six "hard" MCNC benchmarks used in Table IV (the s-circuits,
    /// which are the only ones with vertex overflow in global routing).
    pub fn is_hard_mcnc(&self) -> bool {
        matches!(
            self.name,
            "S5378" | "S9234" | "S13207" | "S15850" | "S38417" | "S38584"
        )
    }
}

/// The nine MCNC benchmarks of Table I.
pub fn mcnc_suite() -> Vec<BenchmarkSpec> {
    use Suite::Mcnc;
    vec![
        spec("Struct", Mcnc, 4903.0, 4904.0, 3, 1920, 5471),
        spec("Primary1", Mcnc, 7522.0, 4988.0, 3, 904, 2941),
        spec("Primary2", Mcnc, 10438.0, 6488.0, 3, 3029, 11226),
        spec("S5378", Mcnc, 435.0, 239.0, 3, 1694, 4818),
        spec("S9234", Mcnc, 404.0, 225.0, 3, 1486, 4260),
        spec("S13207", Mcnc, 660.0, 365.0, 3, 3781, 10776),
        spec("S15850", Mcnc, 705.0, 389.0, 3, 4472, 12793),
        spec("S38417", Mcnc, 1144.0, 619.0, 3, 11309, 32344),
        spec("S38584", Mcnc, 1295.0, 672.0, 3, 14754, 42931),
    ]
}

/// The five Faraday benchmarks of Table II.
pub fn faraday_suite() -> Vec<BenchmarkSpec> {
    use Suite::Faraday;
    vec![
        spec("DMA", Faraday, 408.4, 408.4, 6, 13256, 73982),
        spec("DSP1", Faraday, 706.0, 706.0, 6, 28447, 144872),
        spec("DSP2", Faraday, 642.8, 642.8, 6, 28431, 144703),
        spec("RISC1", Faraday, 1003.6, 1003.6, 6, 34034, 196677),
        spec("RISC2", Faraday, 959.6, 959.6, 6, 34034, 196670),
    ]
}

/// All fourteen benchmarks, MCNC first (paper table order).
pub fn full_suite() -> Vec<BenchmarkSpec> {
    let mut v = mcnc_suite();
    v.extend(faraday_suite());
    v
}

fn spec(
    name: &'static str,
    suite: Suite,
    width_um: f64,
    height_um: f64,
    layers: u8,
    nets: usize,
    pins: usize,
) -> BenchmarkSpec {
    BenchmarkSpec {
        name,
        suite,
        width_um,
        height_um,
        layers,
        nets,
        pins,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suite_sizes_match_paper() {
        assert_eq!(mcnc_suite().len(), 9);
        assert_eq!(faraday_suite().len(), 5);
        assert_eq!(full_suite().len(), 14);
    }

    #[test]
    fn hard_benchmarks_are_the_six_s_circuits() {
        let hard: Vec<&str> = full_suite()
            .into_iter()
            .filter(BenchmarkSpec::is_hard_mcnc)
            .map(|s| s.name)
            .collect();
        assert_eq!(
            hard,
            vec!["S5378", "S9234", "S13207", "S15850", "S38417", "S38584"]
        );
    }

    #[test]
    fn lookup_by_name_case_insensitive() {
        let s = BenchmarkSpec::by_name("risc1").unwrap();
        assert_eq!(s.nets, 34034);
        assert_eq!(s.layers, 6);
    }

    #[test]
    fn aspect_ratio() {
        let s = BenchmarkSpec::by_name("Primary1").unwrap();
        assert!((s.aspect() - 7522.0 / 4988.0).abs() < 1e-9);
    }

    #[test]
    fn pin_totals_match_table() {
        let total_mcnc: usize = mcnc_suite().iter().map(|s| s.pins).sum();
        assert_eq!(total_mcnc, 5471 + 2941 + 11226 + 4818 + 4260 + 10776 + 12793 + 32344 + 42931);
    }
}
