//! `mebl-route` — the stitch-aware routing framework for multiple e-beam
//! lithography (MEBL).
//!
//! This is the top-level crate of a Rust reproduction of
//! *Liu, Fang, Chang: "Stitch-Aware Routing for Multiple E-Beam
//! Lithography"* (DAC 2013 / IEEE TCAD 2015). It wires the per-stage
//! crates into the paper's two-pass bottom-up multilevel flow:
//!
//! 1. **Global routing** (`mebl-global`) — congestion + line-end aware
//!    tile routing, eqs. (1)–(3);
//! 2. **Layer/track assignment** (`mebl-assign`) — max-cut k-coloring
//!    layer assignment (eq. 4) and short-polygon-avoiding track
//!    assignment (ILP eqs. 5–9 / graph heuristic);
//! 3. **Detailed routing** (`mebl-detailed`) — stitch-aware weighted A\*
//!    (eq. 10) with stitch-aware net ordering and rip-up of failed nets.
//!
//! The [`Router`] facade runs the whole flow and produces a
//! [`RouteReport`] with the metrics the paper tabulates: routability,
//! `#VV` (via violations), `#SP` (short polygons), wirelength and CPU
//! time.
//!
//! # Quick start
//!
//! ```
//! use mebl_netlist::{BenchmarkSpec, GenerateConfig};
//! use mebl_route::{Router, RouterConfig};
//!
//! let circuit = BenchmarkSpec::by_name("S9234")
//!     .unwrap()
//!     .generate(&GenerateConfig::quick(7));
//! let outcome = Router::new(RouterConfig::stitch_aware()).route(&circuit);
//! assert!(outcome.report.routability() > 0.9);
//! assert_eq!(outcome.report.vertical_violations, 0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod budget;
mod report;

pub use budget::{RouteError, RunBudget};
pub use mebl_control::{CancelReason, CancelToken, Degradation, DegradationKind, Stage};
pub use report::{RouteReport, Stopwatch};

use mebl_assign::{assign_tracks, extract_panels, TrackConfig, TrackResult};
use mebl_detailed::{route_detailed, DetailedConfig, DetailedResult};
pub use mebl_detailed::SearchEngine;
use mebl_geom::Point;
use mebl_global::{route_circuit, GlobalConfig, GlobalResult};
use mebl_netlist::{Circuit, CircuitIssue};
use mebl_graph::FastSet;
pub use mebl_par::Pool;
use mebl_stitch::{StitchConfig, StitchPlan};

/// Configuration of the full routing flow.
#[derive(Debug, Clone, PartialEq)]
pub struct RouterConfig {
    /// Stitching-line geometry.
    pub stitch: StitchConfig,
    /// Global routing stage.
    pub global: GlobalConfig,
    /// Layer/track assignment stage.
    pub track: TrackConfig,
    /// Detailed routing stage.
    pub detailed: DetailedConfig,
    /// Resource bounds for the run (unlimited by default).
    pub budget: RunBudget,
    /// Worker pool shared by every stage (serial by default).
    ///
    /// The determinism contract (DESIGN.md §9): for an **unbudgeted**
    /// run, output is bit-identical for every pool width — every width
    /// executes the same speculative-batch algorithm with an ordered
    /// commit. A run with a wall-clock or expansion budget stays
    /// audit-clean and typed at every width, but which nets a
    /// mid-fan-out cancellation skips may vary with scheduling, so
    /// budgeted multi-threaded runs are not byte-reproducible.
    pub pool: Pool,
}

impl RouterConfig {
    /// The paper's full stitch-aware framework (all stages aware).
    pub fn stitch_aware() -> Self {
        Self {
            stitch: StitchConfig::default(),
            global: GlobalConfig::default(),
            track: TrackConfig::default(),
            detailed: DetailedConfig::default(),
            budget: RunBudget::default(),
            pool: Pool::serial(),
        }
    }

    /// The conventional baseline router of Table III: NTUgr-style global
    /// routing, conventional layer/track assignment and detailed routing.
    /// Hard MEBL constraints are still enforced in detailed routing (the
    /// paper's baseline rips up line-track segments and forbids vertical
    /// routing on lines), so the baseline differs in *objectives*, not
    /// legality.
    pub fn baseline() -> Self {
        Self {
            stitch: StitchConfig::default(),
            global: GlobalConfig::baseline(),
            track: TrackConfig {
                layer_mode: mebl_assign::LayerMode::MstBaseline,
                track_mode: mebl_assign::TrackMode::Baseline,
                ..TrackConfig::default()
            },
            detailed: DetailedConfig::without_stitch_consideration(),
            budget: RunBudget::default(),
            pool: Pool::serial(),
        }
    }

    /// Returns this configuration with `budget` installed.
    #[must_use]
    pub fn with_budget(mut self, budget: RunBudget) -> Self {
        self.budget = budget;
        self
    }

    /// Returns this configuration with an `n`-worker pool installed.
    #[must_use]
    pub fn with_threads(mut self, n: usize) -> Self {
        self.pool = Pool::new(n);
        self
    }

    /// Returns this configuration with `pool` installed.
    #[must_use]
    pub fn with_pool(mut self, pool: Pool) -> Self {
        self.pool = pool;
        self
    }

    /// Returns this configuration with the detailed-routing search
    /// `engine` installed ([`SearchEngine::Dial`] is the default; the
    /// legacy heap engine exists for differential testing).
    #[must_use]
    pub fn with_engine(mut self, engine: SearchEngine) -> Self {
        self.detailed.engine = engine;
        self
    }

    /// Checks the stitch geometry parameters that [`StitchPlan::new`]
    /// would otherwise reject by panicking.
    fn check_stitch(&self) -> Result<(), RouteError> {
        let s = &self.stitch;
        if s.period <= 0 {
            return Err(RouteError::InvalidConfig(format!(
                "stitch period must be positive (got {})",
                s.period
            )));
        }
        if s.epsilon < 0 {
            return Err(RouteError::InvalidConfig(format!(
                "epsilon must be non-negative (got {})",
                s.epsilon
            )));
        }
        if s.escape_width < s.epsilon {
            return Err(RouteError::InvalidConfig(format!(
                "escape width {} must contain the unfriendly region {}",
                s.escape_width, s.epsilon
            )));
        }
        Ok(())
    }
}

impl Default for RouterConfig {
    fn default() -> Self {
        Self::stitch_aware()
    }
}

/// Wall-clock time spent in each stage of a routing run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StageTimings {
    /// Global routing (pass 1).
    pub global: std::time::Duration,
    /// Panel extraction + layer/track assignment.
    pub assignment: std::time::Duration,
    /// Detailed routing (pass 2).
    pub detailed: std::time::Duration,
    /// Violation checking / report building.
    pub check: std::time::Duration,
}

/// Everything produced by one routing run.
#[derive(Debug, Clone)]
pub struct RoutingOutcome {
    /// The stitch plan the run used.
    pub plan: StitchPlan,
    /// Global routing result (pass 1).
    pub global: GlobalResult,
    /// Layer/track assignment result (intermediate stage).
    pub tracks: TrackResult,
    /// Detailed routing result (pass 2).
    pub detailed: DetailedResult,
    /// Aggregated paper-style metrics.
    pub report: RouteReport,
    /// Per-stage wall-clock breakdown.
    pub timings: StageTimings,
    /// Everything the run gave up or papered over, in the order it
    /// happened. Empty for a clean, unconstrained run.
    pub degradations: Vec<Degradation>,
    /// Number of workers the run fanned out to (1 = serial).
    pub parallelism: usize,
}

impl RoutingOutcome {
    /// Whether the run recorded any [`Degradation`]. A degraded outcome
    /// is still audit-clean — it just covers less than was asked for.
    pub fn is_degraded(&self) -> bool {
        !self.degradations.is_empty()
    }
}

/// The full two-pass stitch-aware router.
///
/// See [`RouterConfig`] for the stitch-aware/baseline presets; every stage
/// can also be configured independently for the ablation experiments
/// (Tables IV, VI, VII, VIII).
#[derive(Debug, Clone, Default)]
pub struct Router {
    config: RouterConfig,
}

impl Router {
    /// Creates a router with the given configuration.
    pub fn new(config: RouterConfig) -> Self {
        Self { config }
    }

    /// The active configuration.
    pub fn config(&self) -> &RouterConfig {
        &self.config
    }

    /// Routes a circuit through all three stages and checks the result.
    ///
    /// This entry point is infallible and keeps the pre-budget contract:
    /// with the default (unlimited) budget the output is bit-identical to
    /// earlier releases. Budget overruns and internal shortcuts come back
    /// as [`RoutingOutcome::degradations`], never as panics. Use
    /// [`Router::try_route`] to also get pre-flight validation and a
    /// typed error for runs that cannot produce a result at all.
    pub fn route(&self, circuit: &Circuit) -> RoutingOutcome {
        self.run_with(circuit, self.config.budget.arm())
    }

    /// Validates, then routes: the fallible front door of the flow.
    ///
    /// Returns `Err` only when the run can produce no result at all —
    /// a degenerate stitch configuration, a circuit that fails
    /// [`Circuit::validate`] with error-severity issues, or a budget
    /// that is already spent on arrival. Anything less fatal routes and
    /// reports what was skipped via [`RoutingOutcome::degradations`].
    pub fn try_route(&self, circuit: &Circuit) -> Result<RoutingOutcome, RouteError> {
        self.config.check_stitch()?;
        let issues = self.validate(circuit);
        if issues.iter().any(CircuitIssue::is_error) {
            return Err(RouteError::InvalidCircuit(issues));
        }
        if self.config.budget.is_dead_on_arrival() {
            return Err(RouteError::BudgetExhausted);
        }
        let token = self.config.budget.arm();
        if token.is_cancelled_now() {
            // A non-zero but too-tight deadline can expire between arming
            // and the first stage; surface that as the same typed error.
            return Err(RouteError::BudgetExhausted);
        }
        Ok(self.run_with(circuit, token))
    }

    /// Like [`Router::try_route`], but the run additionally stops when
    /// `interrupt` latches — for drivers (such as the routing service)
    /// that must be able to cancel in-flight work from outside.
    ///
    /// `interrupt` is observed, never mutated: degradations recorded by
    /// the run land on the run's own token, and cancelling the run does
    /// not latch `interrupt`. With an inert, never-cancelled interrupt
    /// this is behaviorally identical to [`Router::try_route`].
    pub fn try_route_under(
        &self,
        circuit: &Circuit,
        interrupt: &CancelToken,
    ) -> Result<RoutingOutcome, RouteError> {
        self.config.check_stitch()?;
        let issues = self.validate(circuit);
        if issues.iter().any(CircuitIssue::is_error) {
            return Err(RouteError::InvalidCircuit(issues));
        }
        if self.config.budget.is_dead_on_arrival() {
            return Err(RouteError::BudgetExhausted);
        }
        let token = self.config.budget.arm_under(interrupt);
        if token.is_cancelled_now() {
            // Already past the deadline, or the server is already
            // draining: same typed error either way.
            return Err(RouteError::BudgetExhausted);
        }
        Ok(self.run_with(circuit, token))
    }

    /// Pre-flight checks of `circuit` against this configuration's
    /// stitch geometry (pins on stitching lines are found relative to
    /// the plan the run would use).
    pub fn validate(&self, circuit: &Circuit) -> Vec<CircuitIssue> {
        if self.config.check_stitch().is_err() {
            return circuit.validate(&[]);
        }
        let plan = StitchPlan::new(circuit.outline(), self.config.stitch);
        circuit.validate(plan.lines())
    }

    /// Warning-severity pre-flight issues as [`Stage::Validate`]
    /// degradation records. Purely advisory: [`Router::try_route`]
    /// tolerates these, so they never enter
    /// [`RoutingOutcome::degradations`] or flip a run to degraded;
    /// drivers that want them visible surface them separately.
    pub fn validation_degradations(&self, circuit: &Circuit) -> Vec<Degradation> {
        self.validate(circuit)
            .iter()
            .filter(|issue| !issue.is_error())
            .map(|issue| {
                Degradation::new(
                    Stage::Validate,
                    DegradationKind::ValidationWarning,
                    issue.net,
                    issue.message.clone(),
                )
            })
            .collect()
    }

    /// Runs the three-stage flow with `token` threaded through every
    /// stage, draining whatever the stages recorded into the outcome.
    fn run_with(&self, circuit: &Circuit, token: CancelToken) -> RoutingOutcome {
        let start = Stopwatch::start();
        let plan = StitchPlan::new(circuit.outline(), self.config.stitch);
        let budget = self.config.budget;
        let mut timings = StageTimings::default();

        let t = Stopwatch::start();
        let mut global_config = self.config.global.clone();
        global_config.cancel = budget.stage_scope(&token);
        global_config.pool = self.config.pool;
        let global = route_circuit(circuit, &plan, &global_config);
        timings.global = t.elapsed();

        let t = Stopwatch::start();
        let panels = extract_panels(&global);
        let mut track_config = self.config.track.clone();
        track_config.cancel = budget.stage_scope(&token);
        track_config.pool = self.config.pool;
        let tracks = assign_tracks(
            &panels,
            &global.graph,
            &plan,
            circuit.layer_count(),
            &track_config,
        );
        timings.assignment = t.elapsed();

        let t = Stopwatch::start();
        let mut detailed_config = self.config.detailed.clone();
        detailed_config.cancel = budget.stage_scope(&token);
        detailed_config.pool = self.config.pool;
        let detailed = route_detailed(circuit, &plan, &global.graph, &tracks, &detailed_config);
        timings.detailed = t.elapsed();

        let t = Stopwatch::start();
        let mut report = build_report(circuit, &plan, &detailed, start.elapsed());
        timings.check = t.elapsed();
        // Stamp the true total (build_report ran before check finished).
        report.elapsed = start.elapsed();

        let degradations = token.take_degradations();
        RoutingOutcome {
            plan,
            global,
            tracks,
            detailed,
            report,
            timings,
            degradations,
            parallelism: self.config.pool.workers(),
        }
    }
}

/// Checks every routed net and aggregates the paper's table metrics.
/// Failed nets contribute nothing (the paper notes the baseline's lower
/// #VV comes from exactly this).
#[must_use]
pub fn build_report(
    circuit: &Circuit,
    plan: &StitchPlan,
    detailed: &DetailedResult,
    elapsed: std::time::Duration,
) -> RouteReport {
    let mut report = RouteReport {
        total_nets: circuit.net_count(),
        routed_nets: detailed.routed_count,
        elapsed,
        ..RouteReport::default()
    };
    for (i, geom) in detailed.geometry.iter().enumerate() {
        if !detailed.routed[i] {
            continue;
        }
        let pins: FastSet<Point> = circuit.nets()[i]
            .pins()
            .iter()
            .map(|p| p.position)
            .collect();
        let v = mebl_stitch::check_geometry(plan, geom, |p| pins.contains(&p));
        report.via_violations += v.via_violations;
        report.via_violations_off_pin += v.via_violations_off_pin;
        report.vertical_violations += v.vertical_violations;
        report.short_polygons += v.short_polygons;
        report.wirelength += v.wirelength;
        report.vias += v.via_count;
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use mebl_netlist::{BenchmarkSpec, GenerateConfig};

    fn quick(name: &str, seed: u64) -> Circuit {
        BenchmarkSpec::by_name(name)
            .unwrap()
            .generate(&GenerateConfig::quick(seed))
    }

    #[test]
    fn stitch_aware_flow_routes_and_is_hard_clean() {
        let c = quick("S5378", 3);
        let out = Router::new(RouterConfig::stitch_aware()).route(&c);
        assert!(out.report.routability() > 0.9, "{}", out.report.routability());
        assert_eq!(out.report.vertical_violations, 0);
        assert_eq!(out.report.via_violations_off_pin, 0);
    }

    #[test]
    fn baseline_flow_also_hard_clean_but_more_short_polygons() {
        let c = quick("S5378", 3);
        let aware = Router::new(RouterConfig::stitch_aware()).route(&c);
        let base = Router::new(RouterConfig::baseline()).route(&c);
        assert_eq!(base.report.vertical_violations, 0);
        assert_eq!(base.report.via_violations_off_pin, 0);
        assert!(
            aware.report.short_polygons <= base.report.short_polygons,
            "aware {} vs baseline {}",
            aware.report.short_polygons,
            base.report.short_polygons
        );
    }

    #[test]
    fn report_counts_only_routed_nets() {
        let c = quick("S9234", 5);
        let out = Router::new(RouterConfig::stitch_aware()).route(&c);
        assert!(out.report.routed_nets <= out.report.total_nets);
        assert_eq!(
            out.report.routed_nets,
            out.detailed.routed.iter().filter(|&&r| r).count()
        );
    }

    #[test]
    fn stage_timings_cover_elapsed() {
        let c = quick("S5378", 8);
        let out = Router::default().route(&c);
        let sum = out.timings.global + out.timings.assignment + out.timings.detailed + out.timings.check;
        assert!(sum <= out.report.elapsed, "stages cannot exceed total");
        // The four timed stages account for the bulk of the run (plan
        // construction and bookkeeping are the only code outside them).
        assert!(
            sum.as_secs_f64() >= out.report.elapsed.as_secs_f64() * 0.5,
            "stages {sum:?} vs total {:?}",
            out.report.elapsed
        );
        assert!(out.timings.detailed > std::time::Duration::ZERO);
    }

    #[test]
    fn outcome_parts_are_consistent() {
        let c = quick("Primary1", 2);
        let out = Router::default().route(&c);
        assert_eq!(out.global.routes.len(), c.net_count());
        assert_eq!(out.detailed.geometry.len(), c.net_count());
        assert_eq!(out.plan.outline(), c.outline());
    }

    #[test]
    fn unconstrained_run_records_no_degradations() {
        let c = quick("S5378", 3);
        let out = Router::default().route(&c);
        assert!(!out.is_degraded(), "unexpected: {:?}", out.degradations);
    }

    #[test]
    fn dead_budget_is_a_typed_error() {
        let c = quick("S5378", 3);
        let config = RouterConfig::stitch_aware().with_budget(RunBudget::with_max_expansions(0));
        assert!(matches!(
            Router::new(config).try_route(&c),
            Err(RouteError::BudgetExhausted)
        ));
    }

    #[test]
    fn expansion_cap_degrades_instead_of_failing() {
        let c = quick("S5378", 3);
        let config = RouterConfig::stitch_aware().with_budget(RunBudget::with_max_expansions(500));
        let out = Router::new(config)
            .try_route(&c)
            .expect("capped run still produces an outcome");
        assert!(out.is_degraded(), "a 500-expansion cap must bite");
        assert!(out
            .degradations
            .iter()
            .any(|d| d.kind == DegradationKind::BudgetExhausted));
        // Partial results keep their shape: one entry per net.
        assert_eq!(out.global.routes.len(), c.net_count());
        assert_eq!(out.detailed.geometry.len(), c.net_count());
    }

    #[test]
    fn degenerate_stitch_config_is_reported_not_panicked() {
        let c = quick("S5378", 3);
        let mut config = RouterConfig::stitch_aware();
        config.stitch.period = 0;
        match Router::new(config).try_route(&c) {
            Err(RouteError::InvalidConfig(msg)) => assert!(msg.contains("period")),
            other => panic!("expected InvalidConfig, got {other:?}"),
        }
    }

    #[test]
    fn validate_flags_pin_on_stitch_line_as_warning() {
        use mebl_geom::{Layer, Point, Rect};
        use mebl_netlist::{Net, Pin};
        let net = Net::new(
            "a",
            vec![
                Pin::new(Point::new(15, 3), Layer::new(0)),
                Pin::new(Point::new(40, 9), Layer::new(0)),
            ],
        );
        let c = Circuit::new("demo", Rect::new(0, 0, 59, 19), 3, vec![net]);
        let router = Router::default();
        let issues = router.validate(&c);
        assert!(issues.iter().any(|i| !i.is_error()));
        assert!(!issues.iter().any(CircuitIssue::is_error));
        // Warnings alone must not block routing.
        assert!(router.try_route(&c).is_ok());
    }
}
