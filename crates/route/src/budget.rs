//! Run budgets and the typed failure model of the routing flow.

use crate::Stopwatch;
use mebl_control::{CancelToken, DeadlineProbe};
use mebl_netlist::CircuitIssue;
use std::time::Duration;

/// Resource bounds for one routing run.
///
/// The default budget is unlimited and adds no overhead beyond one
/// atomic load per cooperative check; results are bit-identical to an
/// unbudgeted run. When a bound is set, the run degrades gracefully
/// instead of failing: stages stop at net/pass boundaries, skipped work
/// is recorded as [`Degradation`](mebl_control::Degradation)s on the
/// outcome, and the partial result still satisfies every hard MEBL
/// constraint (see `tests/robustness.rs`).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RunBudget {
    /// Wall-clock deadline for the whole run. The clock starts when the
    /// run starts; the single sanctioned clock site ([`Stopwatch`])
    /// keeps deadline probes out of the determinism-linted crates.
    pub time: Option<Duration>,
    /// Wall-clock ceiling per pipeline stage. A stage that exceeds it
    /// stops early without consuming the rest of the run's budget.
    pub stage_time: Option<Duration>,
    /// Cap on total search-node expansions (global + detailed A\*).
    /// Deterministic, unlike wall-clock bounds — preferred in tests.
    pub max_expansions: Option<u64>,
}

impl RunBudget {
    /// No bounds (the default).
    pub fn unlimited() -> Self {
        Self::default()
    }

    /// Budget with only a wall-clock deadline.
    pub fn with_time(limit: Duration) -> Self {
        Self {
            time: Some(limit),
            ..Self::default()
        }
    }

    /// Budget with only an expansion cap.
    pub fn with_max_expansions(cap: u64) -> Self {
        Self {
            max_expansions: Some(cap),
            ..Self::default()
        }
    }

    /// Whether no bound is set.
    pub fn is_unlimited(&self) -> bool {
        self.time.is_none() && self.stage_time.is_none() && self.max_expansions.is_none()
    }

    /// Whether the budget is spent before any work can happen.
    pub fn is_dead_on_arrival(&self) -> bool {
        self.time == Some(Duration::ZERO)
            || self.stage_time == Some(Duration::ZERO)
            || self.max_expansions == Some(0)
    }

    /// Arms a run-wide [`CancelToken`] for this budget. The deadline
    /// clock starts now.
    ///
    /// Public so out-of-crate drivers (e.g. the delta router) can run
    /// individual stages under the same budget machinery the full flow
    /// uses.
    pub fn arm(&self) -> CancelToken {
        let deadline: Option<DeadlineProbe> = self.time.map(|limit| {
            let sw = Stopwatch::start();
            Box::new(move || sw.elapsed() >= limit) as DeadlineProbe
        });
        CancelToken::armed(self.max_expansions, deadline)
    }

    /// Arms a run-wide [`CancelToken`] that also honors an external
    /// `interrupt` token: the run cancels when either this budget's
    /// deadline passes or `interrupt` latches. A service uses this to
    /// compose server shutdown into every in-flight job without giving
    /// jobs a way to cancel each other — `interrupt` stays owned by the
    /// caller; only its cancelled state is observed.
    pub fn arm_under(&self, interrupt: &CancelToken) -> CancelToken {
        let time_probe = self.time.map(|limit| {
            let sw = Stopwatch::start();
            move || sw.elapsed() >= limit
        });
        let interrupt = interrupt.clone();
        let probe: DeadlineProbe = Box::new(move || {
            interrupt.is_cancelled_now() || time_probe.as_ref().is_some_and(|p| p())
        });
        CancelToken::armed(self.max_expansions, Some(probe))
    }

    /// Scopes `token` with this budget's per-stage deadline, if any.
    /// The stage clock starts now.
    pub fn stage_scope(&self, token: &CancelToken) -> CancelToken {
        match self.stage_time {
            Some(limit) => {
                let sw = Stopwatch::start();
                token.with_stage_deadline(Box::new(move || sw.elapsed() >= limit))
            }
            None => token.clone(),
        }
    }
}

/// Typed failure of [`Router::try_route`](crate::Router::try_route).
///
/// Degraded-but-usable outcomes are *not* errors — they come back as a
/// [`RoutingOutcome`](crate::RoutingOutcome) with recorded
/// degradations. An error means the run produced no result at all.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RouteError {
    /// The router configuration itself is unusable (e.g. a non-positive
    /// stitch period).
    InvalidConfig(String),
    /// Pre-flight validation found error-severity issues; the full list
    /// is attached.
    InvalidCircuit(Vec<CircuitIssue>),
    /// The budget was exhausted before any routing could start.
    BudgetExhausted,
}

impl std::fmt::Display for RouteError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RouteError::InvalidConfig(msg) => write!(f, "invalid configuration: {msg}"),
            RouteError::InvalidCircuit(issues) => {
                let errors: Vec<&CircuitIssue> =
                    issues.iter().filter(|i| i.is_error()).collect();
                match errors.split_first() {
                    Some((first, [])) => write!(f, "invalid circuit: {first}"),
                    Some((first, rest)) => {
                        write!(f, "invalid circuit: {first} (+{} more)", rest.len())
                    }
                    None => write!(f, "invalid circuit"),
                }
            }
            RouteError::BudgetExhausted => {
                write!(f, "budget exhausted before routing could start")
            }
        }
    }
}

impl std::error::Error for RouteError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unlimited_budget_is_default_and_not_dead() {
        let b = RunBudget::default();
        assert!(b.is_unlimited());
        assert!(!b.is_dead_on_arrival());
        assert_eq!(b, RunBudget::unlimited());
    }

    #[test]
    fn zero_bounds_are_dead_on_arrival() {
        assert!(RunBudget::with_time(Duration::ZERO).is_dead_on_arrival());
        assert!(RunBudget::with_max_expansions(0).is_dead_on_arrival());
        assert!(!RunBudget::with_max_expansions(1).is_dead_on_arrival());
    }

    #[test]
    fn armed_token_enforces_expansion_cap() {
        let token = RunBudget::with_max_expansions(5).arm();
        assert!(!token.charge_expansions(4));
        assert!(token.charge_expansions(1));
        assert!(token.is_cancelled());
    }

    #[test]
    fn deadline_probe_uses_the_stopwatch() {
        // A zero deadline fires on the first unconditional probe.
        let token = RunBudget::with_time(Duration::ZERO).arm();
        assert!(token.is_cancelled_now());
    }

    #[test]
    fn stage_scope_trips_only_the_scoped_clone() {
        let budget = RunBudget {
            stage_time: Some(Duration::ZERO),
            ..RunBudget::default()
        };
        let token = budget.arm();
        let staged = budget.stage_scope(&token);
        assert!(staged.is_cancelled_now());
        assert!(!token.is_cancelled_now());
    }

    #[test]
    fn error_messages_are_single_line() {
        for e in [
            RouteError::InvalidConfig("stitch period must be positive".into()),
            RouteError::BudgetExhausted,
        ] {
            assert!(!e.to_string().contains('\n'));
        }
    }
}
