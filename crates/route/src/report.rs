//! Aggregated routing metrics in the paper's table format.

use std::time::{Duration, Instant};

/// The one sanctioned wall-clock reader of the routing flow.
///
/// All stage timing goes through this type so the rest of the workspace
/// stays free of direct `Instant::now` calls (enforced by `xtask lint`):
/// routing output must be a pure function of its inputs, and clock reads
/// sprinkled through library code are where nondeterminism creeps in.
#[derive(Debug, Clone, Copy)]
pub struct Stopwatch {
    started: Instant,
}

impl Stopwatch {
    /// Starts a stopwatch at the current instant.
    #[must_use]
    pub fn start() -> Self {
        Self {
            started: Instant::now(),
        }
    }

    /// Time elapsed since [`Stopwatch::start`].
    #[must_use]
    pub fn elapsed(&self) -> Duration {
        self.started.elapsed()
    }
}

/// The per-circuit metrics reported in Tables III, VII and VIII:
/// routability, via violations (`#VV`), short polygons (`#SP`), plus
/// wirelength, via count and CPU time.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RouteReport {
    /// Nets in the circuit.
    pub total_nets: usize,
    /// Successfully routed nets.
    pub routed_nets: usize,
    /// Vias on stitching lines over routed nets (`#VV`).
    pub via_violations: usize,
    /// Via violations not at a fixed pin (must be 0 for a legal run).
    pub via_violations_off_pin: usize,
    /// Vertical wires riding a stitching line (must be 0).
    pub vertical_violations: usize,
    /// Short polygons over routed nets (`#SP`).
    pub short_polygons: usize,
    /// Total routed wirelength in pitches.
    pub wirelength: u64,
    /// Total via count.
    pub vias: usize,
    /// Wall-clock routing time.
    pub elapsed: Duration,
}

impl RouteReport {
    /// Routability: routed / total nets (1.0 for an empty circuit).
    #[must_use]
    pub fn routability(&self) -> f64 {
        if self.total_nets == 0 {
            1.0
        } else {
            self.routed_nets as f64 / self.total_nets as f64
        }
    }

    /// `true` when no hard MEBL constraint is violated.
    #[must_use]
    pub fn hard_clean(&self) -> bool {
        self.vertical_violations == 0 && self.via_violations_off_pin == 0
    }

    /// Formats one table row: `Rout.(%)  #VV  #SP  CPU(s)`.
    #[must_use]
    pub fn table_row(&self) -> String {
        format!(
            "{:6.2} {:6} {:6} {:8.2}",
            self.routability() * 100.0,
            self.via_violations,
            self.short_polygons,
            self.elapsed.as_secs_f64()
        )
    }
}

impl std::fmt::Display for RouteReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "routed {}/{} ({:.2}%), #VV {}, #SP {}, WL {}, vias {}, {:.2}s",
            self.routed_nets,
            self.total_nets,
            self.routability() * 100.0,
            self.via_violations,
            self.short_polygons,
            self.wirelength,
            self.vias,
            self.elapsed.as_secs_f64()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn routability_fraction() {
        let r = RouteReport {
            total_nets: 200,
            routed_nets: 199,
            ..RouteReport::default()
        };
        assert!((r.routability() - 0.995).abs() < 1e-12);
    }

    #[test]
    fn empty_circuit_fully_routable() {
        assert_eq!(RouteReport::default().routability(), 1.0);
    }

    #[test]
    fn hard_clean_logic() {
        let mut r = RouteReport::default();
        assert!(r.hard_clean());
        r.via_violations = 5; // tolerated pin violations
        assert!(r.hard_clean());
        r.vertical_violations = 1;
        assert!(!r.hard_clean());
    }

    #[test]
    fn display_nonempty() {
        let r = RouteReport::default();
        assert!(r.to_string().contains("routed"));
        assert!(!r.table_row().is_empty());
    }
}
