//! Stitch-aware layer assignment and short-polygon-avoiding track
//! assignment (paper §III-B and §III-C).
//!
//! After 2-D global routing, every net's route decomposes into maximal
//! straight **runs** over global tiles. This crate:
//!
//! 1. Extracts [`PanelSegment`]s — the runs of each column (or row)
//!    panel — with their horizontal **continuations** at each end
//!    ([`panels`]), which determine whether an end can become a *bad end*.
//! 2. Builds the **segment conflict graph** with the eq. (4) weights
//!    `w = D_segment + D_end` ([`conflict`]).
//! 3. Performs **layer assignment** by max-cut k-coloring: the
//!    maximum-spanning-tree baseline of Chen et al. \[4\] and the paper's
//!    iterated maximum-weight-k-colorable-subset heuristic with
//!    bipartite-matching group merges ([`layer`]).
//! 4. Performs **track assignment** within each (panel, layer): a
//!    conventional stitch-oblivious baseline, the paper's graph-based
//!    heuristic with dogleg bad-end resolution driven by min/max track
//!    constraint graphs, and an exact branch-and-bound substitute for the
//!    CPLEX ILP of eqs. (5)–(9) ([`track`], [`ilp`]).
//!
//! Random layer-assignment instances for the Table V/VI experiments live
//! in [`instances`].

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod conflict;
pub mod ilp;
pub mod instances;
pub mod layer;
pub mod panels;
pub mod track;

pub use conflict::{ConflictGraph, SegmentInterval};
pub use instances::{instance_stats, random_instances, InstanceStats};
pub use layer::{assignment_cost, layer_assign_mst, layer_assign_ours};
pub use panels::{extract_panels, Continuation, PanelSegment, Panels};
pub use track::{
    assign_tracks, AssignedSeg, LayerMode, TrackConfig, TrackMode, TrackResult,
};
