//! Random layer-assignment instances (Tables V–VI).
//!
//! The paper evaluates the two max-cut k-coloring heuristics on 50 randomly
//! generated panel instances "with the same numbers of intervals and global
//! tiles", characterised only by their segment / line-end densities
//! (Table V). This module provides a seeded generator tuned to land in the
//! same density regime (max segment density ≈ 11–12, average ≈ 5–6).

use crate::SegmentInterval;
use mebl_testkit::{Rng, Xoshiro256pp};

/// Density statistics over a set of instances (Table V columns).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct InstanceStats {
    /// Mean (over instances) of the per-instance maximum segment density.
    pub max_segment_density: f64,
    /// Mean of the per-instance average segment density.
    pub avg_segment_density: f64,
    /// Mean of the per-instance maximum line-end density.
    pub max_end_density: f64,
    /// Mean of the per-instance average line-end density.
    pub avg_end_density: f64,
}

/// Generates `count` random panel instances of `segments` intervals over
/// `rows` global tiles.
///
/// Interval lengths are geometric-ish (short segments dominate, as in real
/// panels) and positions uniform.
pub fn random_instances(
    count: usize,
    segments: usize,
    rows: u32,
    seed: u64,
) -> Vec<Vec<SegmentInterval>> {
    assert!(rows >= 2, "need at least two tiles");
    let mut rng = Xoshiro256pp::from_seed(seed);
    (0..count)
        .map(|_| {
            (0..segments)
                .map(|_| {
                    // Geometric-ish length with mean ~ rows/6.
                    let mut len = 1u32;
                    while len < rows - 1 && rng.gen_bool(1.0 - 6.0 / f64::from(rows)) {
                        len += 1;
                    }
                    let lo = rng.gen_range(0..rows - len);
                    SegmentInterval::new(lo, lo + len)
                })
                .collect()
        })
        .collect()
}

/// Computes Table V-style density statistics for a set of instances.
pub fn instance_stats(instances: &[Vec<SegmentInterval>], rows: u32) -> InstanceStats {
    let mut stats = InstanceStats::default();
    if instances.is_empty() {
        return stats;
    }
    for inst in instances {
        let mut seg = vec![0u32; rows as usize];
        let mut end = vec![0u32; rows as usize];
        for iv in inst {
            for r in iv.lo..=iv.hi {
                seg[r as usize] += 1;
            }
            end[iv.lo as usize] += 1;
            if iv.hi != iv.lo {
                end[iv.hi as usize] += 1;
            }
        }
        let n = rows as f64;
        stats.max_segment_density += f64::from(*seg.iter().max().unwrap_or(&0));
        stats.avg_segment_density += seg.iter().map(|&d| f64::from(d)).sum::<f64>() / n;
        stats.max_end_density += f64::from(*end.iter().max().unwrap_or(&0));
        stats.avg_end_density += end.iter().map(|&d| f64::from(d)).sum::<f64>() / n;
    }
    let c = instances.len() as f64;
    stats.max_segment_density /= c;
    stats.avg_segment_density /= c;
    stats.max_end_density /= c;
    stats.avg_end_density /= c;
    stats
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic() {
        let a = random_instances(5, 20, 30, 42);
        let b = random_instances(5, 20, 30, 42);
        assert_eq!(a, b);
    }

    #[test]
    fn distinct_seeds_differ() {
        let a = random_instances(5, 20, 30, 42);
        let b = random_instances(5, 20, 30, 43);
        assert_ne!(a, b);
    }

    #[test]
    fn instances_fit_in_rows() {
        for inst in random_instances(10, 25, 30, 7) {
            for iv in inst {
                assert!(iv.hi < 30);
            }
        }
    }

    #[test]
    fn stats_in_table_v_regime() {
        // Paper Table V: max segment density 11.68, avg 5.72; max line-end
        // density 6.06, avg 2.00. Our generator targets the same regime
        // (within a factor ~2).
        let instances = random_instances(50, 25, 30, 2013);
        let s = instance_stats(&instances, 30);
        assert!(
            (6.0..=18.0).contains(&s.max_segment_density),
            "max seg density {}",
            s.max_segment_density
        );
        assert!(
            (3.0..=9.0).contains(&s.avg_segment_density),
            "avg seg density {}",
            s.avg_segment_density
        );
        assert!(
            (2.0..=10.0).contains(&s.max_end_density),
            "max end density {}",
            s.max_end_density
        );
        assert!(
            (1.0..=4.0).contains(&s.avg_end_density),
            "avg end density {}",
            s.avg_end_density
        );
    }

    #[test]
    fn empty_instances_give_zero_stats() {
        let s = instance_stats(&[], 10);
        assert_eq!(s, InstanceStats::default());
    }
}
