//! Short-polygon-avoiding track assignment (paper §III-C).
//!
//! Within each (column panel, vertical layer) group, every segment needs an
//! exact x track. A **bad end** is a segment end whose track sits in a
//! stitch unfriendly region while the attached horizontal wire crosses that
//! stitching line — the precursor of a short polygon. Three algorithms:
//!
//! * **Baseline** — conventional left-edge first-fit that ignores
//!   stitching lines entirely; segments landing on a line track are ripped
//!   up (net falls back to direct detailed routing), exactly like the
//!   baseline router in the paper's Table VII.
//! * **Graph heuristic** — the paper's §III-C2: longer segments are placed
//!   next to stitching lines first (outermost tracks), then bad ends are
//!   resolved with doglegs; the feasible dogleg window `[m, M]` of each end
//!   interval comes from the minimum/maximum track constraint graphs
//!   solved by DAG longest path (Fig. 11(d)).
//! * **ILP (exact)** — see [`crate::ilp`]; dispatched via
//!   [`TrackMode::IlpExact`].

use crate::panels::{Continuation, PanelSegment, Panels};
use crate::{layer_assign_mst, layer_assign_ours, ConflictGraph, SegmentInterval};
use mebl_control::{CancelToken, Degradation, DegradationKind, Stage};
use mebl_geom::Coord;
use mebl_global::TileGraph;
use mebl_par::Pool;
use mebl_stitch::StitchPlan;
use std::collections::BTreeSet;

/// Which layer-assignment heuristic to run before track assignment.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LayerMode {
    /// Maximum-spanning-tree heuristic of \[4\] (baseline).
    MstBaseline,
    /// The paper's iterated k-colorable-subset heuristic.
    Ours,
}

/// Which track-assignment algorithm to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TrackMode {
    /// Stitch-oblivious left-edge first fit.
    Baseline,
    /// The paper's graph-based dogleg heuristic.
    GraphHeuristic,
    /// Exact branch-and-bound over the multicommodity model (the CPLEX
    /// substitute), with a search-node budget per panel group; exceeding
    /// the budget anywhere marks the whole run as timed out.
    IlpExact {
        /// Maximum branch-and-bound nodes per panel group.
        node_budget: u64,
    },
}

/// Configuration of the assignment stage.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TrackConfig {
    /// Layer-assignment heuristic.
    pub layer_mode: LayerMode,
    /// Track-assignment algorithm.
    pub track_mode: TrackMode,
    /// Cooperative cancellation/budget handle. Inert by default; when
    /// armed, cancellation takes effect at panel-group boundaries:
    /// skipped groups place no segments, so their nets reach detailed
    /// routing seedless and are routed pin-to-pin.
    pub cancel: CancelToken,
    /// Worker pool for per-panel fan-out. Panels are independent; the
    /// ordered merge reproduces the serial segment order exactly, so
    /// results are bit-identical regardless of worker count
    /// (DESIGN.md §9).
    pub pool: Pool,
}

impl Default for TrackConfig {
    fn default() -> Self {
        Self {
            layer_mode: LayerMode::Ours,
            track_mode: TrackMode::GraphHeuristic,
            cancel: CancelToken::default(),
            pool: Pool::serial(),
        }
    }
}

/// A segment with assigned layer and track(s).
///
/// `pieces` partitions the tile range `[lo, hi]`; each piece carries the
/// absolute track coordinate it occupies. A straight segment has one
/// piece; a doglegged segment has several.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AssignedSeg {
    /// Net index.
    pub net: usize,
    /// `true` for horizontal (row panel) segments.
    pub horizontal: bool,
    /// Column (vertical) or row (horizontal) panel index.
    pub panel: u32,
    /// Colour index within the orientation's layer set (0-based); the
    /// n-th vertical colour maps to the n-th vertical layer.
    pub layer_color: usize,
    /// Covered tile range along the panel.
    pub lo: u32,
    /// Covered tile range along the panel (inclusive).
    pub hi: u32,
    /// `(tile_lo, tile_hi, track)` pieces partitioning `[lo, hi]`.
    pub pieces: Vec<(u32, u32, Coord)>,
    /// Continuation at the `lo` end.
    pub lo_cont: Continuation,
    /// Continuation at the `hi` end.
    pub hi_cont: Continuation,
}

impl AssignedSeg {
    /// Track of the piece containing tile `t`.
    ///
    /// `pieces` partitions `[lo, hi]` by construction. The function is
    /// total anyway: for a `t` outside every piece it answers with the
    /// nearest piece's track (and `0` for a pieceless segment, which
    /// cannot be built through this crate's APIs), so a malformed
    /// segment degrades to a conservative answer instead of panicking
    /// mid-flow.
    pub fn track_at(&self, t: u32) -> Coord {
        let mut nearest: Option<(u32, Coord)> = None;
        for &(a, b, x) in &self.pieces {
            if a <= t && t <= b {
                return x;
            }
            let d = if t < a { a - t } else { t - b };
            match nearest {
                Some((best, _)) if best <= d => {}
                _ => nearest = Some((d, x)),
            }
        }
        nearest.map_or(0, |(_, x)| x)
    }

    /// Whether the end at `lo` (`end_hi == false`) or `hi` is a bad end
    /// under the given plan.
    pub fn end_is_bad(&self, plan: &StitchPlan, end_hi: bool) -> bool {
        let (tile, cont) = if end_hi {
            (self.hi, self.hi_cont)
        } else {
            (self.lo, self.lo_cont)
        };
        is_bad_track(plan, self.track_at(tile), cont)
    }
}

/// Whether track `x` makes an end with continuation `cont` a bad end:
/// `x` lies in some line's unfriendly region and the horizontal
/// continuation crosses that line.
pub(crate) fn is_bad_track(plan: &StitchPlan, x: Coord, cont: Continuation) -> bool {
    let eps = plan.config().epsilon;
    let Some(line) = plan.nearest_line(x) else {
        return false;
    };
    if (x - line).abs() > eps {
        return false;
    }
    if x == line {
        // On the line itself: forbidden for other reasons; as an end track
        // it is categorically bad.
        return cont != Continuation::None;
    }
    if line < x {
        cont.crosses_left()
    } else {
        cont.crosses_right()
    }
}

/// Result of track assignment over all panels.
#[derive(Debug, Clone, Default)]
pub struct TrackResult {
    /// Successfully assigned segments (both orientations).
    pub segments: Vec<AssignedSeg>,
    /// Nets with at least one unplaceable segment; their panel wiring is
    /// ripped up and the whole net is routed directly in detailed routing.
    pub failed_nets: BTreeSet<usize>,
    /// Number of bad ends remaining after assignment (drives the
    /// stitch-aware detailed-routing net order).
    pub bad_ends: usize,
    /// `true` when an [`TrackMode::IlpExact`] run exhausted its node
    /// budget somewhere (reported as "NA" in Table VII).
    pub timed_out: bool,
}

/// One panel's contribution to the merged [`TrackResult`].
///
/// Workers assign panels independently against a fresh local result;
/// fragments are merged back in panel order, which reproduces the
/// serial segment order exactly.
struct PanelFragment {
    /// Panel skipped by cancellation: contributes nothing.
    skipped: bool,
    /// Column panel solved by [`TrackMode::IlpExact`] — participates in
    /// the run-wide timeout cascade at merge time.
    exact_column: bool,
    /// Nets of every segment this panel would have placed (colours in
    /// range only), used to fail them when the cascade discards it.
    member_nets: Vec<usize>,
    segments: Vec<AssignedSeg>,
    failed_nets: BTreeSet<usize>,
    timed_out: bool,
}

/// Runs layer assignment then track assignment over all panels.
pub fn assign_tracks(
    panels: &Panels,
    graph: &TileGraph,
    plan: &StitchPlan,
    layers: u8,
    config: &TrackConfig,
) -> TrackResult {
    let v_layers = usize::from(layers) / 2;
    let h_layers = usize::from(layers).div_ceil(2);
    let mut result = TrackResult::default();

    // Job list: every non-empty panel, column panels (vertical segments,
    // stitch-aware) first, then row panels (horizontal segments,
    // conventional — stitching lines are vertical and do not constrain
    // horizontal tracks). This is the serial iteration order, which the
    // ordered merge below reproduces.
    struct PanelJob<'a> {
        column: bool,
        panel: u32,
        segs: &'a [PanelSegment],
    }
    let jobs: Vec<PanelJob> = panels
        .columns
        .iter()
        .enumerate()
        .filter(|(_, segs)| !segs.is_empty())
        .map(|(i, segs)| PanelJob {
            column: true,
            panel: i as u32,
            segs,
        })
        .chain(
            panels
                .rows
                .iter()
                .enumerate()
                .filter(|(_, segs)| !segs.is_empty())
                .map(|(i, segs)| PanelJob {
                    column: false,
                    panel: i as u32,
                    segs,
                }),
        )
        .collect();

    let fragments: Vec<PanelFragment> = config.pool.par_map_indexed(&jobs, |_, job| {
        // Cancellation commits at panel boundaries: a skipped panel
        // places no segments, so its nets fall through to seedless
        // pin-to-pin detailed routing.
        if config.cancel.is_cancelled() {
            return PanelFragment {
                skipped: true,
                exact_column: false,
                member_nets: Vec::new(),
                segments: Vec::new(),
                failed_nets: BTreeSet::new(),
                timed_out: false,
            };
        }
        let (extent, k) = if job.column {
            (graph.rows(), v_layers)
        } else {
            (graph.cols(), h_layers)
        };
        let colors = color_panel(job.segs, extent, k, config.layer_mode, job.column);
        let mut local = TrackResult::default();
        for layer_color in 0..k {
            let members: Vec<&PanelSegment> = job
                .segs
                .iter()
                .zip(&colors)
                .filter(|&(_, &c)| c == layer_color)
                .map(|(s, _)| s)
                .collect();
            if members.is_empty() {
                continue;
            }
            if job.column {
                assign_column_group(
                    job.panel,
                    layer_color,
                    &members,
                    graph,
                    plan,
                    config.track_mode,
                    &config.cancel,
                    &mut local,
                );
            } else {
                assign_row_group(job.panel, layer_color, &members, graph, &mut local);
            }
        }
        PanelFragment {
            skipped: false,
            exact_column: job.column
                && matches!(config.track_mode, TrackMode::IlpExact { .. }),
            member_nets: job
                .segs
                .iter()
                .zip(&colors)
                .filter(|&(_, &c)| c < k)
                .map(|(s, _)| s.net)
                .collect(),
            segments: local.segments,
            failed_nets: local.failed_nets,
            timed_out: local.timed_out,
        }
    });

    let mut skipped_groups = 0usize;
    for frag in fragments {
        if frag.skipped {
            skipped_groups += 1;
            continue;
        }
        if result.timed_out && frag.exact_column {
            // Once any exact group has timed out the run is "NA"
            // (Table VII): every later column panel's members fail, just
            // as the serial group-by-group skip would have produced.
            result.failed_nets.extend(frag.member_nets);
            continue;
        }
        result.segments.extend(frag.segments);
        result.failed_nets.extend(frag.failed_nets);
        result.timed_out |= frag.timed_out;
    }

    if skipped_groups > 0 {
        config.cancel.record(Degradation::new(
            Stage::Assign,
            DegradationKind::BudgetExhausted,
            None,
            format!("{skipped_groups} panels skipped; their nets route pin-to-pin"),
        ));
    }

    result.bad_ends = result
        .segments
        .iter()
        .filter(|s| !s.horizontal)
        .map(|s| {
            usize::from(s.end_is_bad(plan, false)) + usize::from(s.end_is_bad(plan, true))
        })
        .sum();
    result
}

/// Layer-assigns a panel's segments, returning a colour per segment.
fn color_panel(
    segs: &[PanelSegment],
    extent: u32,
    k: usize,
    mode: LayerMode,
    count_line_ends: bool,
) -> Vec<usize> {
    if k <= 1 {
        return vec![0; segs.len()];
    }
    let ivs: Vec<SegmentInterval> = segs
        .iter()
        .map(|s| SegmentInterval::new(s.lo, s.hi))
        .collect();
    let graph = ConflictGraph::build(&ivs, extent, count_line_ends);
    match mode {
        LayerMode::MstBaseline => layer_assign_mst(&graph, k),
        LayerMode::Ours => layer_assign_ours(&graph, k),
    }
}

/// Track assignment for one (column, layer) group.
#[allow(clippy::too_many_arguments)]
fn assign_column_group(
    col: u32,
    layer_color: usize,
    members: &[&PanelSegment],
    graph: &TileGraph,
    plan: &StitchPlan,
    mode: TrackMode,
    cancel: &CancelToken,
    result: &mut TrackResult,
) {
    let span = graph.col_span(col);
    // Usable tracks: baseline keeps line tracks (and pays for it later).
    let tracks: Vec<Coord> = match mode {
        TrackMode::Baseline => span.iter().collect(),
        _ => span.iter().filter(|&x| !plan.is_on_line(x)).collect(),
    };
    if tracks.is_empty() {
        for s in members {
            result.failed_nets.insert(s.net);
        }
        return;
    }

    match mode {
        TrackMode::Baseline => {
            assign_straight(
                col,
                layer_color,
                members,
                graph.rows(),
                &tracks,
                OrderPolicy::LeftEdge,
                result,
            );
            // Rip up segments that landed on a stitching-line track.
            let mut keep = Vec::new();
            for seg in result.segments.drain(..) {
                let on_line = !seg.horizontal
                    && seg.panel == col
                    && seg.layer_color == layer_color
                    && seg.pieces.iter().any(|&(_, _, x)| plan.is_on_line(x));
                if on_line {
                    result.failed_nets.insert(seg.net);
                } else {
                    keep.push(seg);
                }
            }
            result.segments = keep;
        }
        TrackMode::GraphHeuristic => {
            let start = result.segments.len();
            let occupancy = assign_straight(
                col,
                layer_color,
                members,
                graph.rows(),
                &tracks,
                OrderPolicy::LongFirstOutermost,
                result,
            );
            resolve_bad_ends_with_doglegs(
                &mut result.segments[start..],
                occupancy,
                &tracks,
                graph.rows(),
                plan,
                cancel,
            );
        }
        TrackMode::IlpExact { node_budget } => {
            // Once any group has timed out the run is "NA" (Table VII);
            // skip the remaining exact solves instead of burning budget.
            if result.timed_out {
                for s in members {
                    result.failed_nets.insert(s.net);
                }
                return;
            }
            let timed_out = crate::ilp::assign_group_exact(
                col,
                layer_color,
                members,
                graph.rows(),
                &tracks,
                plan,
                node_budget,
                result,
            );
            result.timed_out |= timed_out;
        }
    }
}

/// Horizontal (row panel) groups: first-fit on y tracks; no stitch logic.
fn assign_row_group(
    row: u32,
    layer_color: usize,
    members: &[&PanelSegment],
    graph: &TileGraph,
    result: &mut TrackResult,
) {
    let tracks: Vec<Coord> = graph.row_span(row).iter().collect();
    let mut order: Vec<usize> = (0..members.len()).collect();
    order.sort_by_key(|&i| (members[i].lo, members[i].hi, members[i].net));
    let cols = graph.cols() as usize;
    let mut occupancy = vec![false; tracks.len() * cols];
    for &i in &order {
        let s = members[i];
        let free = (0..tracks.len()).find(|&t| {
            (s.lo..=s.hi).all(|c| !occupancy[t * cols + c as usize])
        });
        match free {
            Some(t) => {
                for c in s.lo..=s.hi {
                    occupancy[t * cols + c as usize] = true;
                }
                result.segments.push(AssignedSeg {
                    net: s.net,
                    horizontal: true,
                    panel: row,
                    layer_color,
                    lo: s.lo,
                    hi: s.hi,
                    pieces: vec![(s.lo, s.hi, tracks[t])],
                    lo_cont: Continuation::None,
                    hi_cont: Continuation::None,
                });
            }
            None => {
                result.failed_nets.insert(s.net);
            }
        }
    }
}

enum OrderPolicy {
    /// Conventional left-edge: ascending start, first (lowest) free track.
    LeftEdge,
    /// Paper §III-C2: longest segments first, placed on the outermost
    /// (stitch-line-adjacent) free track.
    LongFirstOutermost,
}

/// Straight (one piece per segment) assignment. Returns the occupancy
/// matrix `rows x tracks` with the index (into the freshly pushed
/// segments) +1, 0 = free.
fn assign_straight(
    panel: u32,
    layer_color: usize,
    members: &[&PanelSegment],
    rows: u32,
    tracks: &[Coord],
    policy: OrderPolicy,
    result: &mut TrackResult,
) -> Vec<u32> {
    let t_count = tracks.len();
    let base = result.segments.len();
    let mut occupancy = vec![0u32; rows as usize * t_count];
    let mut order: Vec<usize> = (0..members.len()).collect();
    let preference: Vec<usize> = match policy {
        OrderPolicy::LeftEdge => {
            order.sort_by_key(|&i| (members[i].lo, members[i].hi, members[i].net));
            (0..t_count).collect()
        }
        OrderPolicy::LongFirstOutermost => {
            order.sort_by_key(|&i| {
                (
                    std::cmp::Reverse(members[i].tile_len()),
                    members[i].lo,
                    members[i].net,
                )
            });
            // 0, T-1, 1, T-2, ... : outermost tracks first.
            let mut pref = Vec::with_capacity(t_count);
            let (mut a, mut b) = (0usize, t_count - 1);
            while a <= b {
                pref.push(a);
                if a != b {
                    pref.push(b);
                }
                a += 1;
                if b == 0 {
                    break;
                }
                b -= 1;
            }
            pref
        }
    };

    for &i in &order {
        let s = members[i];
        let free = preference.iter().copied().find(|&t| {
            (s.lo..=s.hi).all(|r| occupancy[r as usize * t_count + t] == 0)
        });
        match free {
            Some(t) => {
                // Group-local 1-based index (the dogleg resolver receives
                // only this group's slice of `result.segments`).
                let seg_idx = (result.segments.len() - base) as u32 + 1;
                for r in s.lo..=s.hi {
                    occupancy[r as usize * t_count + t] = seg_idx;
                }
                result.segments.push(AssignedSeg {
                    net: s.net,
                    horizontal: false,
                    panel,
                    layer_color,
                    lo: s.lo,
                    hi: s.hi,
                    pieces: vec![(s.lo, s.hi, tracks[t])],
                    lo_cont: s.lo_cont,
                    hi_cont: s.hi_cont,
                });
            }
            None => {
                result.failed_nets.insert(s.net);
            }
        }
    }
    occupancy
}

/// Dogleg refinement (paper Fig. 11): for each remaining bad end, move the
/// end-tile piece to a friendly track inside the `[m, M]` window given by
/// the min/max track constraint graphs.
///
/// `group` are the segments just pushed for this (panel, layer); the
/// occupancy matrix indexes them 1-based in push order.
fn resolve_bad_ends_with_doglegs(
    group: &mut [AssignedSeg],
    mut occupancy: Vec<u32>,
    tracks: &[Coord],
    _rows: u32,
    plan: &StitchPlan,
    cancel: &CancelToken,
) {
    let t_count = tracks.len();

    for idx in 0..group.len() {
        for end_hi in [false, true] {
            if !group[idx].end_is_bad(plan, end_hi) {
                continue;
            }
            let (end_tile, cont) = if end_hi {
                (group[idx].hi, group[idx].hi_cont)
            } else {
                (group[idx].lo, group[idx].lo_cont)
            };
            // Zero-length dogleg impossible: segment must keep >= 1 tile
            // on the main track.
            if group[idx].lo == group[idx].hi {
                continue;
            }
            let main = group[idx].track_at(end_tile);
            // Assigned tracks come from `tracks` by construction; if the
            // lookup misses, leave the bad end in place and surface it
            // rather than panicking.
            let Some(main_t) = tracks.iter().position(|&t| t == main) else {
                cancel.record(Degradation::new(
                    Stage::Assign,
                    DegradationKind::InternalFallback,
                    Some(group[idx].net),
                    format!("dogleg skipped: track {main} missing from panel track set"),
                ));
                continue;
            };

            // Feasible window [m, M] from the constraint graphs.
            let (m, big_m) = feasible_window(group, idx, end_tile, &occupancy, t_count, plan, tracks, cont);

            // Candidate tracks: inside the window, friendly for this end,
            // free in the end tile row; nearest to the main track wins
            // (fewest/cheapest bends, the greedy of Fig. 11(e)).
            let row_base = end_tile as usize * t_count;
            let candidate = (m..=big_m)
                .filter(|&t| t < t_count)
                .filter(|&t| occupancy[row_base + t] == 0 || occupancy[row_base + t] == idx as u32 + 1)
                .filter(|&t| !is_bad_track(plan, tracks[t], cont))
                .min_by_key(|&t| t.abs_diff(main_t));
            let Some(new_t) = candidate else {
                continue; // bad end stays; detailed routing may still fix it
            };
            if new_t == main_t {
                continue;
            }
            // Shrink the end piece off the end tile and add the dogleg.
            // Every segment covers its own end tile; if the piece list is
            // somehow inconsistent, leave this end untouched.
            let Some(pos) = group[idx]
                .pieces
                .iter()
                .position(|&(a, b, _)| a <= end_tile && end_tile <= b)
            else {
                continue;
            };
            // Re-point occupancy and split the piece.
            occupancy[row_base + main_t] = 0;
            occupancy[row_base + new_t] = idx as u32 + 1;
            let seg = &mut group[idx];
            let (a, b, x) = seg.pieces[pos];
            if a == b {
                // Single-tile piece (the other end was already doglegged):
                // re-track it in place instead of splitting.
                seg.pieces[pos] = (a, b, tracks[new_t]);
            } else if end_hi {
                seg.pieces[pos] = (a, b - 1, x);
                seg.pieces.insert(pos + 1, (end_tile, end_tile, tracks[new_t]));
            } else {
                seg.pieces[pos] = (a + 1, b, x);
                seg.pieces.insert(pos, (end_tile, end_tile, tracks[new_t]));
            }
        }
    }
}

/// Computes the feasible track window `[m, M]` of the end-tile interval of
/// `group[idx]` using the minimum/maximum track constraint graphs
/// (Fig. 11(d)), restricted to intervals overlapping the end tile row.
#[allow(clippy::too_many_arguments)]
fn feasible_window(
    _group: &[AssignedSeg],
    idx: usize,
    end_tile: u32,
    occupancy: &[u32],
    t_count: usize,
    plan: &StitchPlan,
    tracks: &[Coord],
    cont: Continuation,
) -> (usize, usize) {
    // Intervals sharing the end tile row, ordered by their current track.
    let row_base = end_tile as usize * t_count;
    let mut on_row: Vec<(usize, usize)> = (0..t_count)
        .filter_map(|t| {
            let occ = occupancy[row_base + t];
            (occ != 0).then(|| (occ as usize - 1, t))
        })
        .collect();
    on_row.sort_by_key(|&(_, t)| t);

    let n = on_row.len();
    // A segment always occupies its own end row; fall back to the
    // unconstrained window if the occupancy map disagrees.
    let Some(me) = on_row.iter().position(|&(g, _)| g == idx) else {
        return (0, t_count - 1);
    };

    // Minimum track constraint graph: nodes = intervals on this row in
    // track order; edge (i -> i+1) weight 1 (must be strictly right of the
    // previous one); a dummy source edge of weight eps when the interval's
    // end is bad on the leftmost tracks.
    let eps = plan.config().epsilon as i64;
    let mut min_edges: Vec<(usize, usize, i64)> = Vec::new();
    let mut sources: Vec<(usize, i64)> = Vec::new();
    for (i, &(g, _)) in on_row.iter().enumerate() {
        if i + 1 < n {
            min_edges.push((i, i + 1, 1));
        }
        let c = if g == idx { cont } else { Continuation::Both };
        // Bad on the left edge of the track range?
        let left_bad = is_bad_track(plan, tracks[0], c);
        sources.push((i, if left_bad && g == idx { eps } else { 0 }));
    }
    // The chain graph is acyclic by construction; an unconstrained window
    // is the safe answer if longest-path analysis ever rejects it.
    let Some(m_dist) = mebl_graph::longest_paths(n, &min_edges, &sources) else {
        return (0, t_count - 1);
    };

    // Maximum graph: mirrored.
    let mut max_edges: Vec<(usize, usize, i64)> = Vec::new();
    let mut max_sources: Vec<(usize, i64)> = Vec::new();
    for (i, &(g, _)) in on_row.iter().enumerate() {
        if i + 1 < n {
            max_edges.push((i + 1, i, 1));
        }
        let c = if g == idx { cont } else { Continuation::Both };
        let right_bad = is_bad_track(plan, tracks[t_count - 1], c);
        max_sources.push((i, if right_bad && g == idx { eps } else { 0 }));
    }
    let Some(max_dist) = mebl_graph::longest_paths(n, &max_edges, &max_sources) else {
        return (0, t_count - 1);
    };

    let m = m_dist[me].max(0) as usize;
    let big_m = (t_count as i64 - 1 - max_dist[me].max(0)).max(0) as usize;
    (m, big_m.max(m.min(t_count - 1)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use mebl_geom::Rect;
    use mebl_stitch::StitchConfig;

    fn plan() -> StitchPlan {
        StitchPlan::new(Rect::new(0, 0, 89, 89), StitchConfig::default())
    }

    fn graph(plan: &StitchPlan) -> TileGraph {
        TileGraph::new(Rect::new(0, 0, 89, 89), 15, 3, plan, true)
    }

    fn vseg(net: usize, col: u32, lo: u32, hi: u32, lc: Continuation, hc: Continuation) -> PanelSegment {
        PanelSegment {
            net,
            panel: col,
            lo,
            hi,
            lo_cont: lc,
            hi_cont: hc,
        }
    }

    fn panels_with(columns: Vec<Vec<PanelSegment>>, rows_n: usize) -> Panels {
        Panels {
            columns,
            rows: vec![Vec::new(); rows_n],
        }
    }

    #[test]
    fn bad_track_logic() {
        let p = plan();
        // Line at 15; eps 1. Track 16: unfriendly on the right side of 15.
        assert!(is_bad_track(&p, 16, Continuation::Left));
        assert!(!is_bad_track(&p, 16, Continuation::Right));
        assert!(is_bad_track(&p, 16, Continuation::Both));
        assert!(!is_bad_track(&p, 16, Continuation::None));
        // Track 14: unfriendly on the left side of 15.
        assert!(is_bad_track(&p, 14, Continuation::Right));
        assert!(!is_bad_track(&p, 14, Continuation::Left));
        // Track 18: friendly.
        assert!(!is_bad_track(&p, 18, Continuation::Both));
    }

    #[test]
    fn straight_assignment_no_overlap_on_same_track() {
        let p = plan();
        let g = graph(&p);
        let mut cols = vec![Vec::new(); g.cols() as usize];
        cols[1] = vec![
            vseg(0, 1, 0, 3, Continuation::None, Continuation::None),
            vseg(1, 1, 2, 5, Continuation::None, Continuation::None),
            vseg(2, 1, 0, 5, Continuation::None, Continuation::None),
        ];
        let panels = panels_with(cols, g.rows() as usize);
        let res = assign_tracks(&panels, &g, &p, 3, &TrackConfig::default());
        assert_eq!(res.segments.len(), 3);
        assert!(res.failed_nets.is_empty());
        // Overlapping rows must be on distinct tracks.
        for i in 0..3 {
            for j in (i + 1)..3 {
                let (a, b) = (&res.segments[i], &res.segments[j]);
                let lo = a.lo.max(b.lo);
                let hi = a.hi.min(b.hi);
                for r in lo..=hi.min(a.hi).min(b.hi) {
                    if a.lo <= r && r <= a.hi && b.lo <= r && r <= b.hi {
                        assert_ne!(a.track_at(r), b.track_at(r), "row {r}");
                    }
                }
            }
        }
        // No segment on a stitch line track.
        for s in &res.segments {
            for &(_, _, x) in &s.pieces {
                assert!(!p.is_on_line(x));
            }
        }
    }

    #[test]
    fn baseline_rips_up_line_track_segments() {
        let p = plan();
        let g = graph(&p);
        // Column 1 spans x [15, 29]; fill it with 15 overlapping segments
        // so the left-edge baseline must use track 15 (the stitch line).
        let mut cols = vec![Vec::new(); g.cols() as usize];
        cols[1] = (0..15)
            .map(|i| vseg(i, 1, 0, 5, Continuation::None, Continuation::None))
            .collect();
        let panels = panels_with(cols, g.rows() as usize);
        let res = assign_tracks(
            &panels,
            &g,
            &p,
            3,
            &TrackConfig {
                layer_mode: LayerMode::MstBaseline,
                track_mode: TrackMode::Baseline,
                ..TrackConfig::default()
            },
        );
        assert!(
            !res.failed_nets.is_empty(),
            "a segment must land on x=15 and be ripped up"
        );
        assert_eq!(res.segments.len() + res.failed_nets.len(), 15);
    }

    #[test]
    fn graph_heuristic_doglegs_away_bad_end() {
        let p = plan();
        let g = graph(&p);
        // One long segment in column 1 whose hi end continues left
        // (crossing line 15 when placed on track 16).
        let mut cols = vec![Vec::new(); g.cols() as usize];
        cols[1] = vec![vseg(0, 1, 0, 4, Continuation::None, Continuation::Left)];
        let panels = panels_with(cols, g.rows() as usize);
        let res = assign_tracks(&panels, &g, &p, 3, &TrackConfig::default());
        assert_eq!(res.segments.len(), 1);
        assert_eq!(
            res.bad_ends, 0,
            "dogleg must fix the single bad end: {:?}",
            res.segments[0]
        );
    }

    #[test]
    fn saturated_group_reports_failures() {
        let p = plan();
        let g = graph(&p);
        // 20 fully-overlapping segments in a 15-track column (14 usable):
        // at least 6 must fail.
        let mut cols = vec![Vec::new(); g.cols() as usize];
        cols[1] = (0..20)
            .map(|i| vseg(i, 1, 0, 5, Continuation::None, Continuation::None))
            .collect();
        let panels = panels_with(cols, g.rows() as usize);
        let res = assign_tracks(&panels, &g, &p, 3, &TrackConfig::default());
        assert_eq!(res.failed_nets.len(), 6);
        assert_eq!(res.segments.len(), 14);
    }

    #[test]
    fn horizontal_segments_assigned_by_first_fit() {
        let p = plan();
        let g = graph(&p);
        let mut rows = vec![Vec::new(); g.rows() as usize];
        rows[2] = vec![
            vseg(0, 2, 0, 3, Continuation::None, Continuation::None),
            vseg(1, 2, 1, 4, Continuation::None, Continuation::None),
        ];
        let panels = Panels {
            columns: vec![Vec::new(); g.cols() as usize],
            rows,
        };
        let res = assign_tracks(&panels, &g, &p, 3, &TrackConfig::default());
        assert_eq!(res.segments.len(), 2);
        assert!(res.segments.iter().all(|s| s.horizontal));
        // Overlapping segments must differ in layer or in track.
        let (a, b) = (&res.segments[0], &res.segments[1]);
        assert!(
            a.layer_color != b.layer_color || a.pieces[0].2 != b.pieces[0].2,
            "overlapping horizontal segments share (layer, track)"
        );
    }

    #[test]
    fn track_at_spans_pieces() {
        let seg = AssignedSeg {
            net: 0,
            horizontal: false,
            panel: 0,
            layer_color: 0,
            lo: 0,
            hi: 4,
            pieces: vec![(0, 3, 7), (4, 4, 10)],
            lo_cont: Continuation::None,
            hi_cont: Continuation::None,
        };
        assert_eq!(seg.track_at(0), 7);
        assert_eq!(seg.track_at(3), 7);
        assert_eq!(seg.track_at(4), 10);
    }
}
