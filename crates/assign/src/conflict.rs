//! Segment conflict graph with eq. (4) weights.

/// A segment's tile-interval along its panel (rows for a column panel).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SegmentInterval {
    /// First covered tile, inclusive.
    pub lo: u32,
    /// Last covered tile, inclusive (`>= lo`).
    pub hi: u32,
}

impl SegmentInterval {
    /// Creates an interval.
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi`.
    pub fn new(lo: u32, hi: u32) -> Self {
        assert!(lo <= hi, "interval endpoints out of order");
        Self { lo, hi }
    }

    /// Tile-wise overlap (closed intervals).
    pub fn overlaps(&self, other: &SegmentInterval) -> bool {
        self.lo <= other.hi && other.lo <= self.hi
    }
}

/// The conflict graph of one panel: a vertex per segment, an edge per
/// overlapping pair, weighted by eq. (4):
///
/// `w(vi, vj) = D_segment(vi, vj) + D_end(vi, vj)`
///
/// where `D_segment` is the maximum segment density over the tiles where
/// the two segments overlap and `D_end` the maximum line-end density over
/// the tiles where both have a line end (column panels only — row panels
/// drop the second term, as stitching lines are vertical).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConflictGraph {
    /// The segment intervals (vertex order).
    pub intervals: Vec<SegmentInterval>,
    /// Weighted conflict edges `(i, j, w)`, `i < j`.
    pub edges: Vec<(usize, usize, i64)>,
    /// Per-vertex weight: sum of incident edge weights (the selection
    /// weight used by the paper's k-colorable-subset heuristic).
    pub vertex_weight: Vec<i64>,
}

impl ConflictGraph {
    /// Builds the conflict graph over `intervals` spanning tiles
    /// `0..rows`. `count_line_ends` enables the `D_end` term (used for
    /// column panels, dropped for row panels).
    ///
    /// # Panics
    ///
    /// Panics if any interval exceeds `rows`.
    pub fn build(intervals: &[SegmentInterval], rows: u32, count_line_ends: bool) -> Self {
        let mut seg_density = vec![0i64; rows as usize];
        let mut end_density = vec![0i64; rows as usize];
        for iv in intervals {
            assert!(iv.hi < rows, "interval beyond panel extent");
            for r in iv.lo..=iv.hi {
                seg_density[r as usize] += 1;
            }
            end_density[iv.lo as usize] += 1;
            if iv.hi != iv.lo {
                end_density[iv.hi as usize] += 1;
            }
        }

        let mut edges = Vec::new();
        let mut vertex_weight = vec![0i64; intervals.len()];
        for i in 0..intervals.len() {
            for j in (i + 1)..intervals.len() {
                let (a, b) = (&intervals[i], &intervals[j]);
                if !a.overlaps(b) {
                    continue;
                }
                let lo = a.lo.max(b.lo);
                let hi = a.hi.min(b.hi);
                let d_seg = (lo..=hi)
                    .map(|r| seg_density[r as usize])
                    .max()
                    .unwrap_or(0);
                let d_end = if count_line_ends {
                    let ends_a = [a.lo, a.hi];
                    let ends_b = [b.lo, b.hi];
                    ends_a
                        .iter()
                        .filter(|r| ends_b.contains(r))
                        .map(|&r| end_density[r as usize])
                        .max()
                        .unwrap_or(0)
                } else {
                    0
                };
                let w = d_seg + d_end;
                edges.push((i, j, w));
                vertex_weight[i] += w;
                vertex_weight[j] += w;
            }
        }
        Self {
            intervals: intervals.to_vec(),
            edges,
            vertex_weight,
        }
    }

    /// Number of vertices.
    pub fn len(&self) -> usize {
        self.intervals.len()
    }

    /// `true` when the graph has no vertices.
    pub fn is_empty(&self) -> bool {
        self.intervals.is_empty()
    }

    /// Maximum segment density over the panel (clique number of the
    /// interval graph).
    pub fn max_density(&self, rows: u32) -> i64 {
        let mut density = vec![0i64; rows as usize];
        for iv in &self.intervals {
            for r in iv.lo..=iv.hi {
                density[r as usize] += 1;
            }
        }
        density.into_iter().max().unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disjoint_segments_no_edges() {
        let ivs = [SegmentInterval::new(0, 1), SegmentInterval::new(3, 4)];
        let g = ConflictGraph::build(&ivs, 6, true);
        assert!(g.edges.is_empty());
        assert_eq!(g.vertex_weight, vec![0, 0]);
    }

    #[test]
    fn overlap_weight_counts_segment_density() {
        // Three segments all covering tile 2: density there is 3.
        let ivs = [
            SegmentInterval::new(0, 2),
            SegmentInterval::new(2, 4),
            SegmentInterval::new(1, 3),
        ];
        let g = ConflictGraph::build(&ivs, 6, false);
        assert_eq!(g.edges.len(), 3);
        // Pair (0,1) overlaps only at tile 2 where density = 3.
        let w01 = g.edges.iter().find(|e| (e.0, e.1) == (0, 1)).unwrap().2;
        assert_eq!(w01, 3);
    }

    #[test]
    fn line_end_term_added_for_shared_end_rows() {
        // Two segments sharing the end tile 2 (end density 2 there).
        let ivs = [SegmentInterval::new(0, 2), SegmentInterval::new(2, 4)];
        let with = ConflictGraph::build(&ivs, 6, true);
        let without = ConflictGraph::build(&ivs, 6, false);
        assert_eq!(without.edges[0].2, 2); // D_segment only
        assert_eq!(with.edges[0].2, 2 + 2); // + D_end at tile 2
    }

    #[test]
    fn no_shared_end_rows_means_zero_dend() {
        // Overlapping but ends at different tiles.
        let ivs = [SegmentInterval::new(0, 3), SegmentInterval::new(1, 4)];
        let g = ConflictGraph::build(&ivs, 6, true);
        let g2 = ConflictGraph::build(&ivs, 6, false);
        assert_eq!(g.edges[0].2, g2.edges[0].2);
    }

    #[test]
    fn vertex_weight_sums_incident_edges() {
        let ivs = [
            SegmentInterval::new(0, 5),
            SegmentInterval::new(0, 2),
            SegmentInterval::new(3, 5),
        ];
        let g = ConflictGraph::build(&ivs, 6, false);
        // Vertex 0 conflicts with both others; 1 and 2 don't conflict.
        assert_eq!(g.edges.len(), 2);
        assert_eq!(
            g.vertex_weight[0],
            g.vertex_weight[1] + g.vertex_weight[2]
        );
    }

    #[test]
    fn max_density_is_clique_number() {
        let ivs = [
            SegmentInterval::new(0, 4),
            SegmentInterval::new(1, 3),
            SegmentInterval::new(2, 2),
            SegmentInterval::new(4, 5),
        ];
        let g = ConflictGraph::build(&ivs, 6, false);
        assert_eq!(g.max_density(6), 3);
    }

    #[test]
    fn point_interval_end_counted_once() {
        let ivs = [SegmentInterval::new(2, 2), SegmentInterval::new(2, 2)];
        let g = ConflictGraph::build(&ivs, 4, true);
        // seg density 2 at tile 2; end density 2 (each point segment
        // deposits one end, not two).
        assert_eq!(g.edges[0].2, 2 + 2);
    }

    #[test]
    #[should_panic(expected = "beyond panel extent")]
    fn interval_outside_rows_rejected() {
        let _ = ConflictGraph::build(&[SegmentInterval::new(0, 9)], 5, true);
    }
}
