//! Panel extraction: per-column / per-row segments with continuations.

use mebl_global::{GlobalResult, TileRun};

/// How a vertical segment continues horizontally at one of its ends.
///
/// The continuation decides whether a track position makes the end a *bad
/// end*: an end is only dangerous when the attached horizontal wire is cut
/// by the stitching line whose unfriendly region the end sits in
/// (Fig. 7(b), segment C).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Continuation {
    /// The net terminates here (pin tile) — no horizontal wire to cut.
    None,
    /// A horizontal run leaves toward smaller columns.
    Left,
    /// A horizontal run leaves toward larger columns.
    Right,
    /// Horizontal runs leave in both directions (T/X junction).
    Both,
}

impl Continuation {
    /// Merges a newly discovered direction into the current value.
    fn with(self, right: bool) -> Self {
        match (self, right) {
            (Continuation::None, false) => Continuation::Left,
            (Continuation::None, true) => Continuation::Right,
            (Continuation::Left, true) | (Continuation::Right, false) => Continuation::Both,
            (c, _) => c,
        }
    }

    /// Whether a horizontal wire attached here would cross a stitching
    /// line located to the **left** of the end's track.
    pub fn crosses_left(self) -> bool {
        matches!(self, Continuation::Left | Continuation::Both)
    }

    /// Whether a horizontal wire attached here would cross a stitching
    /// line located to the **right** of the end's track.
    pub fn crosses_right(self) -> bool {
        matches!(self, Continuation::Right | Continuation::Both)
    }
}

/// A vertical (column-panel) or horizontal (row-panel) segment: one global
/// run of one net, with end metadata.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct PanelSegment {
    /// Net index in the circuit.
    pub net: usize,
    /// Panel index: column for vertical segments, row for horizontal.
    pub panel: u32,
    /// First covered tile index along the panel (row for vertical
    /// segments, column for horizontal), inclusive.
    pub lo: u32,
    /// Last covered tile index, inclusive; always `> lo`.
    pub hi: u32,
    /// Continuation at the `lo` end (vertical segments only; horizontal
    /// segments carry [`Continuation::None`]).
    pub lo_cont: Continuation,
    /// Continuation at the `hi` end.
    pub hi_cont: Continuation,
}

impl PanelSegment {
    /// Number of tiles covered.
    pub fn tile_len(&self) -> u32 {
        self.hi - self.lo + 1
    }

    /// Whether two segments of the same panel overlap in some tile.
    pub fn overlaps(&self, other: &PanelSegment) -> bool {
        debug_assert_eq!(self.panel, other.panel);
        self.lo <= other.hi && other.lo <= self.hi
    }
}

/// All panel segments of a routed circuit, grouped by direction.
#[derive(Debug, Clone, Default)]
pub struct Panels {
    /// Vertical segments, grouped per column panel (index = column).
    pub columns: Vec<Vec<PanelSegment>>,
    /// Horizontal segments, grouped per row panel (index = row).
    pub rows: Vec<Vec<PanelSegment>>,
}

impl Panels {
    /// Total number of vertical segments.
    pub fn vertical_count(&self) -> usize {
        self.columns.iter().map(Vec::len).sum()
    }

    /// Total number of horizontal segments.
    pub fn horizontal_count(&self) -> usize {
        self.rows.iter().map(Vec::len).sum()
    }
}

/// Decomposes every net's global route into panel segments.
///
/// A vertical run covering tile rows `r0..=r1` in column `c` becomes a
/// vertical [`PanelSegment`]; its continuations record whether the same
/// net has a horizontal run touching the junction tile on either side.
pub fn extract_panels(global: &GlobalResult) -> Panels {
    let graph = &global.graph;
    let mut panels = Panels {
        columns: vec![Vec::new(); graph.cols() as usize],
        rows: vec![Vec::new(); graph.rows() as usize],
    };

    for (net, route) in global.routes.iter().enumerate() {
        let runs = route.runs(graph);
        // Horizontal coverage per (row, col) junction for continuation
        // lookup: for each horizontal run, which columns it touches.
        let h_runs: Vec<&TileRun> = runs.iter().filter(|r| r.horizontal).collect();
        let cont_at = |col: u32, row: u32| -> Continuation {
            let mut c = Continuation::None;
            for h in &h_runs {
                if h.fixed == row && h.lo <= col && col <= h.hi {
                    if col > h.lo {
                        c = c.with(false);
                    }
                    if col < h.hi {
                        c = c.with(true);
                    }
                }
            }
            c
        };

        for run in &runs {
            if run.horizontal {
                panels.rows[run.fixed as usize].push(PanelSegment {
                    net,
                    panel: run.fixed,
                    lo: run.lo,
                    hi: run.hi,
                    lo_cont: Continuation::None,
                    hi_cont: Continuation::None,
                });
            } else {
                panels.columns[run.fixed as usize].push(PanelSegment {
                    net,
                    panel: run.fixed,
                    lo: run.lo,
                    hi: run.hi,
                    lo_cont: cont_at(run.fixed, run.lo),
                    hi_cont: cont_at(run.fixed, run.hi),
                });
            }
        }
    }
    panels
}

#[cfg(test)]
mod tests {
    use super::*;
    use mebl_geom::{Layer, Point, Rect};
    use mebl_netlist::{Circuit, Net, Pin};
    use mebl_stitch::{StitchConfig, StitchPlan};

    fn pin(x: i32, y: i32) -> Pin {
        Pin::new(Point::new(x, y), Layer::new(0))
    }

    fn route(nets: Vec<Net>) -> GlobalResult {
        let outline = Rect::new(0, 0, 89, 89);
        let plan = StitchPlan::new(outline, StitchConfig::default());
        let c = Circuit::new("t", outline, 3, nets);
        mebl_global::route_circuit(&c, &plan, &mebl_global::GlobalConfig::default())
    }

    #[test]
    fn continuation_merge_table() {
        use Continuation::*;
        assert_eq!(None.with(false), Left);
        assert_eq!(None.with(true), Right);
        assert_eq!(Left.with(true), Both);
        assert_eq!(Right.with(false), Both);
        assert_eq!(Both.with(true), Both);
        assert_eq!(Left.with(false), Left);
    }

    #[test]
    fn crossing_predicates() {
        use Continuation::*;
        assert!(Left.crosses_left() && !Left.crosses_right());
        assert!(Right.crosses_right() && !Right.crosses_left());
        assert!(Both.crosses_left() && Both.crosses_right());
        assert!(!None.crosses_left() && !None.crosses_right());
    }

    #[test]
    fn l_shaped_net_has_one_v_and_one_h_segment() {
        // Pins at tiles (0,0) and (4,4): route is L-shaped (or staircase).
        let res = route(vec![Net::new("a", vec![pin(2, 2), pin(70, 70)])]);
        let p = extract_panels(&res);
        assert!(p.vertical_count() >= 1);
        assert!(p.horizontal_count() >= 1);
        // Every vertical segment spans > 0 tiles and lives in its column.
        for (c, col) in p.columns.iter().enumerate() {
            for s in col {
                assert_eq!(s.panel as usize, c);
                assert!(s.hi > s.lo);
            }
        }
    }

    #[test]
    fn straight_vertical_net_ends_have_no_continuation() {
        let res = route(vec![Net::new("a", vec![pin(2, 2), pin(2, 80)])]);
        let p = extract_panels(&res);
        assert_eq!(p.vertical_count(), 1);
        assert_eq!(p.horizontal_count(), 0);
        let seg = &p.columns[0][0];
        assert_eq!(seg.lo_cont, Continuation::None);
        assert_eq!(seg.hi_cont, Continuation::None);
    }

    #[test]
    fn corner_junction_gets_directional_continuation() {
        // L route: vertical in one column then horizontal to the right.
        let res = route(vec![Net::new("a", vec![pin(2, 2), pin(80, 80)])]);
        let p = extract_panels(&res);
        // At least one vertical end must see a horizontal continuation.
        let any_cont = p
            .columns
            .iter()
            .flatten()
            .any(|s| s.lo_cont != Continuation::None || s.hi_cont != Continuation::None);
        assert!(any_cont, "L-shaped route must have a junction continuation");
    }

    #[test]
    fn overlap_is_tilewise() {
        let a = PanelSegment {
            net: 0,
            panel: 1,
            lo: 0,
            hi: 3,
            lo_cont: Continuation::None,
            hi_cont: Continuation::None,
        };
        let b = PanelSegment { net: 1, lo: 3, hi: 5, ..a };
        let c = PanelSegment { net: 2, lo: 4, hi: 5, ..a };
        assert!(a.overlaps(&b));
        assert!(!a.overlaps(&c));
        assert_eq!(a.tile_len(), 4);
    }
}
