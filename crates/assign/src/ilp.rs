//! Exact track assignment: branch-and-bound over the multicommodity model.
//!
//! The paper formulates short-polygon-avoiding track assignment as an ILP
//! over a multicommodity flow graph (eqs. 5–9) and solves it with CPLEX.
//! CPLEX is proprietary, so this module solves the same model with an
//! exact branch-and-bound search:
//!
//! * Each segment (commodity) picks a **path**: a main track plus optional
//!   end-tile doglegs `(lo_track, main_track, hi_track)` — the path family
//!   the flow graph of Fig. 10 expresses (source edge, track run, target
//!   edge), with path cost `Σ w(u,v) = |lo−main| + |hi−main|` matching the
//!   track-difference edge weights of the objective (eq. 5).
//! * Source/target edges into bad-end tracks are removed (the paper's bad
//!   end rule); when a segment has *no* clean candidate, bad ends are
//!   re-admitted with a large penalty so the instance stays feasible.
//! * Vertex capacity (eq. 8) and crossing prevention (eq. 9) are enforced
//!   pairwise during search.
//!
//! The search is exact given the node budget; exceeding the budget
//! anywhere reports a timeout, mirroring the `> 100000 s` "NA" entries of
//! Table VII on the big circuits.

use crate::panels::{Continuation, PanelSegment};
use crate::track::{is_bad_track, AssignedSeg, TrackResult};
use mebl_geom::Coord;
use mebl_stitch::StitchPlan;

/// Penalty for an unavoidable bad end (kept finite so saturated panels
/// stay feasible, dominating any wirelength cost).
const BAD_END_PENALTY: i64 = 1_000;
/// Penalty for dropping a segment entirely (net failure).
const DROP_PENALTY: i64 = 100_000;

#[derive(Debug, Clone, Copy)]
struct Candidate {
    lo_t: usize,
    main_t: usize,
    hi_t: usize,
    cost: i64,
}

/// Track of candidate `c` of a segment at row `r`.
fn track_at(c: &Candidate, seg: &PanelSegment, r: u32) -> usize {
    if r == seg.lo {
        c.lo_t
    } else if r == seg.hi {
        c.hi_t
    } else {
        c.main_t
    }
}

/// Whether two placed candidates conflict: shared (row, track) vertex
/// (eq. 8) or crossing jogs at the same row boundary (eq. 9).
fn conflicts(a: &Candidate, sa: &PanelSegment, b: &Candidate, sb: &PanelSegment) -> bool {
    let lo = sa.lo.max(sb.lo);
    let hi = sa.hi.min(sb.hi);
    if lo > hi {
        return false;
    }
    for r in lo..=hi {
        if track_at(a, sa, r) == track_at(b, sb, r) {
            return true;
        }
    }
    // Jogs between consecutive rows: interval overlap means a crossing (or
    // a touch, which the grid cannot realise either).
    let jogs = |c: &Candidate, s: &PanelSegment| -> Vec<(u32, usize, usize)> {
        let mut v = Vec::new();
        if s.lo != s.hi {
            if c.lo_t != c.main_t {
                v.push((s.lo, c.lo_t.min(c.main_t), c.lo_t.max(c.main_t)));
            }
            if c.hi_t != c.main_t {
                v.push((s.hi - 1, c.hi_t.min(c.main_t), c.hi_t.max(c.main_t)));
            }
        }
        v
    };
    for (ra, alo, ahi) in jogs(a, sa) {
        for &(rb, blo, bhi) in &jogs(b, sb) {
            if ra == rb && alo <= bhi && blo <= ahi {
                return true;
            }
        }
    }
    false
}

/// Builds the candidate list of one segment, cheapest first.
fn candidates(
    seg: &PanelSegment,
    tracks: &[Coord],
    plan: &StitchPlan,
) -> Vec<Candidate> {
    let t_count = tracks.len();
    let clean = |t: usize, cont: Continuation| !is_bad_track(plan, tracks[t], cont);
    let mut out = Vec::new();
    let single_tile = seg.lo == seg.hi;
    for main in 0..t_count {
        let lo_choices: Vec<usize> = if single_tile {
            vec![main]
        } else {
            (0..t_count).collect()
        };
        for &lo_t in &lo_choices {
            let hi_choices: Vec<usize> = if single_tile {
                vec![main]
            } else {
                (0..t_count).collect()
            };
            for &hi_t in &hi_choices {
                let mut cost =
                    (lo_t.abs_diff(main) + hi_t.abs_diff(main)) as i64;
                if !clean(lo_t, seg.lo_cont) {
                    cost = cost.saturating_add(BAD_END_PENALTY);
                }
                if !clean(hi_t, seg.hi_cont) {
                    cost = cost.saturating_add(BAD_END_PENALTY);
                }
                out.push(Candidate {
                    lo_t,
                    main_t: main,
                    hi_t,
                    cost,
                });
            }
        }
    }
    out.sort_by_key(|c| c.cost);
    // Keep the search tractable: a dogleg further than the unfriendly
    // width + 2 tracks from the main run never helps the objective.
    let span = plan.config().epsilon as usize + 2;
    out.retain(|c| c.lo_t.abs_diff(c.main_t) <= span && c.hi_t.abs_diff(c.main_t) <= span);
    out
}

struct Search<'a> {
    segs: &'a [&'a PanelSegment],
    cands: Vec<Vec<Candidate>>,
    /// Minimum candidate cost per segment (admissible completion bound).
    min_cost: Vec<i64>,
    chosen: Vec<Option<usize>>,
    best: Option<(i64, Vec<Option<usize>>)>,
    nodes: u64,
    budget: u64,
}

impl Search<'_> {
    fn run(&mut self) {
        self.dfs(0, 0);
    }

    fn dfs(&mut self, depth: usize, cost: i64) {
        if self.nodes >= self.budget {
            return;
        }
        if depth == self.segs.len() {
            if self.best.as_ref().is_none_or(|(b, _)| cost < *b) {
                self.best = Some((cost, self.chosen.clone()));
            }
            return;
        }
        // Bound: optimistic completion of remaining segments.
        let bound: i64 = self.min_cost[depth..].iter().sum();
        if let Some((b, _)) = &self.best {
            if cost.saturating_add(bound) >= *b {
                return;
            }
        }
        // Try candidates cheapest-first, then dropping the segment. The
        // node budget meters *candidate attempts* — the unit of real work.
        for ci in 0..self.cands[depth].len() {
            self.nodes += 1;
            if self.nodes >= self.budget {
                return;
            }
            let cand = self.cands[depth][ci];
            if let Some((b, _)) = &self.best {
                let optimistic = cost
                    .saturating_add(cand.cost)
                    .saturating_add(bound)
                    .saturating_sub(self.min_cost[depth]);
                if optimistic >= *b {
                    break; // candidates are sorted: nothing cheaper follows
                }
            }
            let clash = (0..depth).any(|j| {
                self.chosen[j].is_some_and(|cj| {
                    conflicts(&self.cands[j][cj], self.segs[j], &cand, self.segs[depth])
                })
            });
            if clash {
                continue;
            }
            self.chosen[depth] = Some(ci);
            self.dfs(depth + 1, cost.saturating_add(cand.cost));
            self.chosen[depth] = None;
            if self.nodes >= self.budget {
                return;
            }
        }
        // Dropping the segment (net failure) keeps the model feasible.
        self.chosen[depth] = None;
        self.dfs(depth + 1, cost.saturating_add(DROP_PENALTY));
        self.chosen[depth] = None;
    }
}

/// Solves one (column, layer) group exactly. Returns `true` when the node
/// budget was exhausted (timeout).
#[allow(clippy::too_many_arguments)]
pub(crate) fn assign_group_exact(
    col: u32,
    layer_color: usize,
    members: &[&PanelSegment],
    _rows: u32,
    tracks: &[Coord],
    plan: &StitchPlan,
    node_budget: u64,
    result: &mut TrackResult,
) -> bool {
    let mut order: Vec<usize> = (0..members.len()).collect();
    // Longer segments first: they are the most constrained commodities.
    order.sort_by_key(|&i| (std::cmp::Reverse(members[i].tile_len()), members[i].lo));
    let segs: Vec<&PanelSegment> = order.iter().map(|&i| members[i]).collect();

    let cands: Vec<Vec<Candidate>> = segs
        .iter()
        .map(|s| candidates(s, tracks, plan))
        .collect();
    let min_cost: Vec<i64> = cands
        .iter()
        .map(|c| c.first().map_or(DROP_PENALTY, |c0| c0.cost))
        .collect();

    let mut search = Search {
        segs: &segs,
        cands,
        min_cost,
        chosen: vec![None; segs.len()],
        best: None,
        nodes: 0,
        budget: node_budget,
    };
    search.run();
    let timed_out = search.nodes >= search.budget;

    let Some((_, chosen)) = search.best else {
        // Budget hit before any leaf: fall back to dropping everything.
        for s in &segs {
            result.failed_nets.insert(s.net);
        }
        return true;
    };

    for (k, s) in segs.iter().enumerate() {
        match chosen[k] {
            Some(ci) => {
                let c = search.cands[k][ci];
                let mut pieces: Vec<(u32, u32, Coord)> = Vec::new();
                if s.lo == s.hi {
                    pieces.push((s.lo, s.hi, tracks[c.main_t]));
                } else {
                    if c.lo_t != c.main_t {
                        pieces.push((s.lo, s.lo, tracks[c.lo_t]));
                    }
                    let main_lo = if c.lo_t != c.main_t { s.lo + 1 } else { s.lo };
                    let main_hi = if c.hi_t != c.main_t { s.hi - 1 } else { s.hi };
                    // Both ends doglegged on a 2-tile segment leaves no
                    // middle piece.
                    if main_lo <= main_hi {
                        pieces.push((main_lo, main_hi, tracks[c.main_t]));
                    }
                    if c.hi_t != c.main_t {
                        pieces.push((s.hi, s.hi, tracks[c.hi_t]));
                    }
                }
                result.segments.push(AssignedSeg {
                    net: s.net,
                    horizontal: false,
                    panel: col,
                    layer_color,
                    lo: s.lo,
                    hi: s.hi,
                    pieces,
                    lo_cont: s.lo_cont,
                    hi_cont: s.hi_cont,
                });
            }
            None => {
                result.failed_nets.insert(s.net);
            }
        }
    }
    timed_out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::track::{assign_tracks, TrackConfig, TrackMode};
    use crate::Panels;
    use mebl_geom::Rect;
    use mebl_global::TileGraph;
    use mebl_stitch::{StitchConfig, StitchPlan};

    fn setup() -> (StitchPlan, TileGraph) {
        let outline = Rect::new(0, 0, 89, 89);
        let plan = StitchPlan::new(outline, StitchConfig::default());
        let graph = TileGraph::new(outline, 15, 3, &plan, true);
        (plan, graph)
    }

    fn vseg(net: usize, col: u32, lo: u32, hi: u32, lc: Continuation, hc: Continuation) -> PanelSegment {
        PanelSegment { net, panel: col, lo, hi, lo_cont: lc, hi_cont: hc }
    }

    fn ilp_config() -> TrackConfig {
        TrackConfig {
            track_mode: TrackMode::IlpExact { node_budget: 200_000 },
            ..TrackConfig::default()
        }
    }

    fn run(cols: Vec<Vec<PanelSegment>>, cfg: &TrackConfig) -> crate::TrackResult {
        let (plan, graph) = setup();
        let panels = Panels {
            columns: {
                let mut v = vec![Vec::new(); graph.cols() as usize];
                for (i, c) in cols.into_iter().enumerate() {
                    v[i] = c;
                }
                v
            },
            rows: vec![Vec::new(); graph.rows() as usize],
        };
        assign_tracks(&panels, &graph, &plan, 3, cfg)
    }

    #[test]
    fn single_segment_gets_zero_cost_straight_track() {
        let res = run(
            vec![vec![], vec![vseg(0, 1, 0, 4, Continuation::None, Continuation::None)]],
            &ilp_config(),
        );
        assert!(!res.timed_out);
        assert_eq!(res.segments.len(), 1);
        assert_eq!(res.segments[0].pieces.len(), 1, "no dogleg needed");
        assert_eq!(res.bad_ends, 0);
    }

    #[test]
    fn ilp_avoids_bad_end_with_dogleg() {
        // hi end continues Left: bad if placed at x=16 etc. With a free
        // column the ILP must find a clean solution.
        let res = run(
            vec![vec![], vec![vseg(0, 1, 0, 4, Continuation::None, Continuation::Left)]],
            &ilp_config(),
        );
        assert!(!res.timed_out);
        assert_eq!(res.segments.len(), 1);
        assert_eq!(res.bad_ends, 0);
    }

    #[test]
    fn ilp_matches_heuristic_on_clean_instances() {
        let segs = vec![
            vseg(0, 1, 0, 5, Continuation::None, Continuation::Left),
            vseg(1, 1, 1, 4, Continuation::Right, Continuation::None),
            vseg(2, 1, 2, 5, Continuation::Both, Continuation::Both),
        ];
        let ilp = run(vec![vec![], segs.clone()], &ilp_config());
        let heur = run(vec![vec![], segs], &TrackConfig::default());
        assert!(!ilp.timed_out);
        assert_eq!(ilp.segments.len(), 3);
        assert_eq!(ilp.bad_ends, 0);
        // The heuristic may or may not reach zero, but never beats exact.
        assert!(heur.bad_ends >= ilp.bad_ends);
    }

    #[test]
    fn tiny_budget_times_out() {
        let segs: Vec<PanelSegment> = (0..8)
            .map(|i| vseg(i, 1, 0, 5, Continuation::Both, Continuation::Both))
            .collect();
        let res = run(
            vec![vec![], segs],
            &TrackConfig {
                track_mode: TrackMode::IlpExact { node_budget: 3 },
                ..TrackConfig::default()
            },
        );
        assert!(res.timed_out);
    }

    #[test]
    fn crossing_jogs_rejected() {
        // Two 2-tile segments that would both jog at the same boundary in
        // crossing directions if naively assigned; the exact solver must
        // produce a conflict-free solution.
        let segs = vec![
            vseg(0, 1, 0, 1, Continuation::Left, Continuation::Right),
            vseg(1, 1, 0, 1, Continuation::Right, Continuation::Left),
        ];
        let res = run(vec![vec![], segs], &ilp_config());
        assert_eq!(res.segments.len(), 2);
        // Verify no shared (row, track).
        for r in 0..=1u32 {
            assert_ne!(
                res.segments[0].track_at(r),
                res.segments[1].track_at(r),
                "row {r}"
            );
        }
    }

    #[test]
    fn saturated_panel_accepts_bad_ends_over_drops() {
        // 14 usable tracks, 14 segments with Both continuations: every
        // track near the lines is bad, but dropping is worse. Saturated
        // panels are exactly where exact search explodes, so a timeout is
        // an acceptable outcome (the paper's CPLEX "NA" cases); otherwise
        // the solution must keep every segment and carry bad ends.
        let segs: Vec<PanelSegment> = (0..14)
            .map(|i| vseg(i, 1, 0, 3, Continuation::Both, Continuation::Both))
            .collect();
        let res = run(
            vec![vec![], segs],
            &TrackConfig {
                track_mode: TrackMode::IlpExact { node_budget: 300_000 },
                ..TrackConfig::default()
            },
        );
        if !res.timed_out {
            assert!(res.failed_nets.is_empty(), "failed: {:?}", res.failed_nets);
            assert!(res.bad_ends > 0, "a full panel cannot be bad-end-free");
        }
    }
}
