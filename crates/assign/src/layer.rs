//! Layer assignment by max-cut k-coloring of the conflict graph.

use crate::ConflictGraph;
use mebl_graph::{
    max_weight_k_colorable, maximum_spanning_tree, min_cost_perfect_matching, Edge,
    WeightedInterval,
};

/// Cost of a k-coloring of the conflict graph: the total weight of edges
/// whose endpoints share a colour (smaller is better; the max-cut
/// objective is its complement).
///
/// # Panics
///
/// Panics if `colors` is shorter than the vertex count.
pub fn assignment_cost(graph: &ConflictGraph, colors: &[usize]) -> i64 {
    assert!(colors.len() >= graph.len(), "missing colours");
    graph
        .edges
        .iter()
        .filter(|&&(i, j, _)| colors[i] == colors[j])
        .map(|&(_, _, w)| w)
        .sum()
}

/// The baseline heuristic of Chen et al. \[4\]: build a maximum spanning
/// tree of the conflict graph and colour the tree by level (`depth mod k`).
///
/// Exact for `k = 2` in spirit (a tree is 2-colorable with zero internal
/// conflict), but degrades as `k` grows because only tree edges are
/// considered — the effect Table VI quantifies.
///
/// # Panics
///
/// Panics if `k == 0`.
pub fn layer_assign_mst(graph: &ConflictGraph, k: usize) -> Vec<usize> {
    assert!(k > 0);
    let n = graph.len();
    let edges: Vec<Edge> = graph
        .edges
        .iter()
        .map(|&(i, j, w)| Edge::new(i, j, w))
        .collect();
    let picked = maximum_spanning_tree(n, &edges);

    let mut adj: Vec<Vec<usize>> = vec![Vec::new(); n];
    for &e in &picked {
        let Edge { u, v, .. } = edges[e];
        adj[u].push(v);
        adj[v].push(u);
    }

    // BFS each tree from its smallest-index root; colour = depth mod k.
    let mut colors = vec![usize::MAX; n];
    for root in 0..n {
        if colors[root] != usize::MAX {
            continue;
        }
        colors[root] = 0;
        let mut queue = std::collections::VecDeque::from([root]);
        while let Some(u) = queue.pop_front() {
            for &v in &adj[u] {
                if colors[v] == usize::MAX {
                    colors[v] = (colors[u] + 1) % k;
                    queue.push_back(v);
                }
            }
        }
    }
    colors
}

/// The paper's heuristic: iteratively extract the maximum-weight
/// k-colorable vertex subset (vertex weight = incident conflict weight in
/// the *remaining* graph, solved exactly on interval graphs via min-cost
/// flow), then merge the subset's colour groups into the accumulated
/// groups with a minimum-weight perfect bipartite matching (Fig. 9(c)–(e)).
///
/// # Panics
///
/// Panics if `k == 0`.
pub fn layer_assign_ours(graph: &ConflictGraph, k: usize) -> Vec<usize> {
    assert!(k > 0);
    let n = graph.len();
    let mut colors = vec![usize::MAX; n];
    let mut remaining: Vec<bool> = vec![true; n];
    let mut remaining_count = n;
    // Accumulated colour groups (k of them).
    let mut groups: Vec<Vec<usize>> = vec![Vec::new(); k];
    let mut first = true;

    while remaining_count > 0 {
        // Vertex weights over the remaining graph (+1 so isolated vertices
        // are still selected — selecting them is free and maximises use of
        // each extraction round).
        let mut weight = vec![1i64; n];
        for &(i, j, w) in &graph.edges {
            if remaining[i] && remaining[j] {
                weight[i] += w;
                weight[j] += w;
            }
        }
        let idx: Vec<usize> = (0..n).filter(|&i| remaining[i]).collect();
        let ivs: Vec<WeightedInterval> = idx
            .iter()
            .map(|&i| {
                let s = graph.intervals[i];
                WeightedInterval::new(i64::from(s.lo), i64::from(s.hi), weight[i])
            })
            .collect();
        let sel = max_weight_k_colorable(&ivs, k);
        assert!(
            !sel.selected.is_empty(),
            "k-colorable selection cannot be empty while vertices remain"
        );

        // Colour groups of this round's selection.
        let mut new_groups: Vec<Vec<usize>> = vec![Vec::new(); k];
        for (slot, &local) in sel.selected.iter().enumerate() {
            new_groups[sel.colors[slot]].push(idx[local]);
        }
        for &local in &sel.selected {
            remaining[idx[local]] = false;
            remaining_count -= 1;
        }

        if first {
            groups = new_groups;
            first = false;
        } else {
            // Merge with minimum total conflict weight between groups.
            let cost: Vec<Vec<i64>> = (0..k)
                .map(|gi| {
                    (0..k)
                        .map(|gj| conflict_between(graph, &groups[gi], &new_groups[gj]))
                        .collect()
                })
                .collect();
            let (assign, _) = min_cost_perfect_matching(&cost);
            for (gi, &gj) in assign.iter().enumerate() {
                let members = std::mem::take(&mut new_groups[gj]);
                groups[gi].extend(members);
            }
        }
    }

    for (color, group) in groups.iter().enumerate() {
        for &v in group {
            colors[v] = color;
        }
    }
    debug_assert!(colors.iter().all(|&c| c < k));
    colors
}

/// Orders colour groups onto physical layers to minimise vias: groups
/// sharing many nets go to *closer* layers (the assignment method of \[4\]
/// the paper adopts after k-coloring, §III-B).
///
/// `net_of[v]` is the net of segment `v`; `colors[v]` its colour. Returns
/// `perm` with `perm[color] = layer rank`, chosen (by exhaustive
/// permutation — k is small) to minimise Σ over same-net group pairs of
/// their layer distance.
///
/// # Panics
///
/// Panics if `k > 8` (factorial search) or the slices differ in length.
pub fn order_groups_for_vias(colors: &[usize], net_of: &[usize], k: usize) -> Vec<usize> {
    assert!(k <= 8, "exhaustive permutation only practical for small k");
    assert_eq!(colors.len(), net_of.len());
    if k <= 1 {
        return vec![0; k.max(1)][..k].to_vec();
    }
    // share[a][b] = number of nets with segments in both groups a and b.
    let mut nets_of_group: Vec<std::collections::BTreeSet<usize>> =
        vec![std::collections::BTreeSet::new(); k];
    for (v, &c) in colors.iter().enumerate() {
        nets_of_group[c].insert(net_of[v]);
    }
    let mut share = vec![vec![0i64; k]; k];
    for a in 0..k {
        for b in (a + 1)..k {
            let s = nets_of_group[a].intersection(&nets_of_group[b]).count() as i64;
            share[a][b] = s;
            share[b][a] = s;
        }
    }
    // Exhaustive search over permutations (Heap's algorithm via simple
    // recursion) for minimum Σ share * |rank_a - rank_b|.
    let mut perm: Vec<usize> = (0..k).collect();
    let mut best_perm = perm.clone();
    let mut best_cost = i64::MAX;
    permute(&mut perm, 0, &mut |p| {
        let mut cost = 0i64;
        for a in 0..k {
            for b in (a + 1)..k {
                cost = cost.saturating_add(share[a][b] * (p[a] as i64 - p[b] as i64).abs());
            }
        }
        if cost < best_cost {
            best_cost = cost;
            best_perm = p.to_vec();
        }
    });
    best_perm
}

fn permute(perm: &mut Vec<usize>, i: usize, visit: &mut impl FnMut(&[usize])) {
    if i == perm.len() {
        visit(perm);
        return;
    }
    for j in i..perm.len() {
        perm.swap(i, j);
        permute(perm, i + 1, visit);
        perm.swap(i, j);
    }
}

/// Total conflict-edge weight between two vertex sets.
fn conflict_between(graph: &ConflictGraph, a: &[usize], b: &[usize]) -> i64 {
    graph
        .edges
        .iter()
        .filter(|&&(i, j, _)| {
            (a.contains(&i) && b.contains(&j)) || (a.contains(&j) && b.contains(&i))
        })
        .map(|&(_, _, w)| w)
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SegmentInterval;
    use mebl_testkit::prop::{ints, vecs};
    use mebl_testkit::{prop_assert, prop_assert_eq, prop_check};

    fn graph(ivs: &[(u32, u32)], rows: u32) -> ConflictGraph {
        let ivs: Vec<SegmentInterval> =
            ivs.iter().map(|&(a, b)| SegmentInterval::new(a, b)).collect();
        ConflictGraph::build(&ivs, rows, true)
    }

    #[test]
    fn fig9_style_example_ours_beats_mst() {
        // A clique-ish pattern where tree colouring wastes colours: five
        // segments stacked over a common tile window.
        let g = graph(&[(0, 6), (0, 3), (2, 5), (3, 6), (1, 4)], 8);
        for k in 2..=4 {
            let ours = layer_assign_ours(&g, k);
            let mst = layer_assign_mst(&g, k);
            assert!(
                assignment_cost(&g, &ours) <= assignment_cost(&g, &mst),
                "k={k}: ours {} vs mst {}",
                assignment_cost(&g, &ours),
                assignment_cost(&g, &mst)
            );
        }
    }

    #[test]
    fn enough_colors_gives_zero_cost() {
        // Max density 3: with k = 3 a perfect assignment exists and the
        // exact subset extraction finds it in one round.
        let g = graph(&[(0, 4), (1, 3), (2, 2)], 6);
        let ours = layer_assign_ours(&g, 3);
        assert_eq!(assignment_cost(&g, &ours), 0);
    }

    #[test]
    fn disjoint_segments_any_k_zero_cost() {
        let g = graph(&[(0, 1), (3, 4), (6, 7)], 9);
        for algo in [layer_assign_mst, layer_assign_ours] {
            let colors = algo(&g, 2);
            assert_eq!(assignment_cost(&g, &colors), 0);
        }
    }

    #[test]
    fn all_vertices_colored_within_k() {
        let g = graph(&[(0, 5), (1, 5), (2, 5), (3, 5), (4, 5), (5, 5)], 7);
        for k in 1..=4 {
            for colors in [layer_assign_mst(&g, k), layer_assign_ours(&g, k)] {
                assert_eq!(colors.len(), g.len());
                assert!(colors.iter().all(|&c| c < k), "k={k}, colors={colors:?}");
            }
        }
    }

    #[test]
    fn empty_graph_ok() {
        let g = graph(&[], 4);
        assert!(layer_assign_ours(&g, 3).is_empty());
        assert!(layer_assign_mst(&g, 3).is_empty());
    }

    #[test]
    fn mst_two_coloring_of_a_path_is_perfect() {
        // Path-shaped conflicts: 0-1, 1-2, 2-3 (chained overlaps).
        let g = graph(&[(0, 2), (2, 4), (4, 6), (6, 8)], 9);
        let colors = layer_assign_mst(&g, 2);
        assert_eq!(assignment_cost(&g, &colors), 0);
    }

    /// On random instances, the paper's heuristic never loses to MST
    /// by more than a small factor, and never produces invalid colours.
    #[test]
    fn prop_ours_valid_and_competitive() {
        prop_check!(
            (ints(2usize..5), vecs((ints(0u32..12), ints(0u32..12)), 1..14)),
            |(k, raw)| {
                let ivs: Vec<SegmentInterval> = raw
                    .into_iter()
                    .map(|(a, b)| SegmentInterval::new(a.min(b), a.max(b)))
                    .collect();
                let g = ConflictGraph::build(&ivs, 12, true);
                let ours = layer_assign_ours(&g, k);
                let mst = layer_assign_mst(&g, k);
                prop_assert!(ours.iter().all(|&c| c < k));
                prop_assert!(mst.iter().all(|&c| c < k));
                // Both must colour every vertex.
                prop_assert_eq!(ours.len(), g.len());
            }
        );
    }
}
