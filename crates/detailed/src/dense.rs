//! Flat dense-grid search state for the detailed router.
//!
//! The hot path routes every net over the same [`DetailedGrid`], so the
//! per-search machinery here is built once and reused: a [`CostField`]
//! precomputes the stitch-aware step costs of eq. (10) per grid column
//! (they depend only on x), and a [`DialSolver`] owns flat dist/parent
//! arrays with epoch-stamped validity plus a [`BucketQueue`] ring, so a
//! new search costs an epoch bump instead of an allocation storm.
//!
//! Costs are quantized integers: each step cost is computed in α units
//! and clamped to [`MAX_STEP_Q`], which bounds the bucket ring while
//! preserving the ordering of all in-range configurations (the paper's
//! defaults use single-digit weights). The heuristic unit is clamped
//! identically, so it stays a consistent lower bound per planar step.

use crate::DetailedGrid;
use mebl_control::CancelToken;
use mebl_geom::{Coord, Point};
use mebl_graph::{BucketQueue, FastSet};
use mebl_stitch::StitchPlan;

/// Per-step cost ceiling in quantized α units. Costs above this clamp
/// saturate: ordering among saturated steps is lost, but every
/// in-range configuration (the paper's single-digit weights, and any
/// α·via_cost + β below the ceiling) is ranked exactly.
pub(crate) const MAX_STEP_Q: u64 = 4096;

/// Precomputed per-column step costs for one routing run.
///
/// Stitch geometry depends only on the x coordinate, so the weighted
/// costs of eq. (10) collapse into three arrays indexed by local
/// column: whether the column is a stitching line (hard constraints),
/// the planar step cost into the column (α, plus γ inside an escape
/// region when stitch costs are on), and the via step cost within the
/// column (α·via_cost, plus β inside an unfriendly region).
pub(crate) struct CostField {
    on_line: Vec<bool>,
    planar: Vec<u32>,
    via: Vec<u32>,
    h_unit: u64,
    /// Bucket-ring span: the largest key increment a single expansion
    /// can produce (step plus heuristic drift).
    pub(crate) span: u64,
}

/// Packs local coordinates into the queue-payload word
/// (`x | y<<20 | l<<40`). 20 bits per axis covers any grid whose
/// occupancy array fits in memory; neighbour coordinates are a single
/// add/subtract on the packed word, mirroring node-id arithmetic.
#[inline]
fn pack(x: u32, y: u32, l: u32) -> u64 {
    u64::from(x) | u64::from(y) << 20 | u64::from(l) << 40
}

/// Decodes a packed coordinate word into `(x, y, layer)`.
#[inline]
fn unpack(c: u64) -> (u32, u32, u32) {
    (
        (c & 0xf_ffff) as u32,
        ((c >> 20) & 0xf_ffff) as u32,
        (c >> 40) as u32,
    )
}

impl CostField {
    /// Builds the cost layers for `grid` under `plan` and the given
    /// weights. Saturating arithmetic plus the [`MAX_STEP_Q`] clamp
    /// keep arbitrary `u64` configuration values safe.
    pub(crate) fn build(
        grid: &DetailedGrid,
        plan: &StitchPlan,
        alpha: u64,
        beta: u64,
        gamma: u64,
        via_cost: u64,
        stitch_costs: bool,
    ) -> Self {
        let width = grid.width() as usize;
        let x0 = grid.outline().x0();
        let mut on_line = Vec::with_capacity(width);
        let mut planar = Vec::with_capacity(width);
        let mut via = Vec::with_capacity(width);
        for lx in 0..width {
            let wx = x0 + lx as Coord;
            on_line.push(plan.is_on_line(wx));
            let mut p = alpha;
            if stitch_costs && plan.in_escape_region(wx) {
                p = p.saturating_add(gamma);
            }
            planar.push(p.min(MAX_STEP_Q) as u32);
            let mut v = alpha.saturating_mul(via_cost);
            if stitch_costs && plan.in_unfriendly_region(wx) {
                v = v.saturating_add(beta);
            }
            via.push(v.min(MAX_STEP_Q) as u32);
        }
        let max_step = planar
            .iter()
            .chain(via.iter())
            .copied()
            .max()
            .unwrap_or(1);
        Self {
            on_line,
            planar,
            via,
            // The clamp is monotone, so h_unit <= every planar step and
            // the heuristic stays consistent.
            h_unit: alpha.min(MAX_STEP_Q),
            span: 2 * u64::from(max_step),
        }
    }
}

/// An inclusive window of local grid coordinates, clamped in-bounds.
///
/// The search never expands outside its window; staged widening on
/// failure re-runs the search with a larger margin. Clamping guarantees
/// `x0 <= x1 < width` and `y0 <= y1 < height` for any input box, so
/// windowed index arithmetic cannot leave the grid.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GridWindow {
    /// Leftmost column.
    pub x0: u32,
    /// Rightmost column.
    pub x1: u32,
    /// Bottom row.
    pub y0: u32,
    /// Top row.
    pub y1: u32,
}

impl GridWindow {
    /// Expands `bbox` (as `(x0, y0, x1, y1)` local coordinates, corners
    /// in either order) by `margin` and clamps it to a `width` ×
    /// `height` grid. Both dimensions must be nonzero.
    pub fn clamped(width: u32, height: u32, bbox: (i64, i64, i64, i64), margin: i64) -> Self {
        assert!(width > 0 && height > 0, "window over an empty grid");
        let m = margin.max(0);
        let cx = |v: i64| v.clamp(0, i64::from(width) - 1) as u32;
        let cy = |v: i64| v.clamp(0, i64::from(height) - 1) as u32;
        let (ax, ay, bx, by) = bbox;
        Self {
            x0: cx(ax.min(bx).saturating_sub(m)),
            x1: cx(ax.max(bx).saturating_add(m)),
            y0: cy(ay.min(by).saturating_sub(m)),
            y1: cy(ay.max(by).saturating_add(m)),
        }
    }

    /// Whether the local coordinate lies inside the window.
    pub fn contains(&self, x: u32, y: u32) -> bool {
        self.x0 <= x && x <= self.x1 && self.y0 <= y && y <= self.y1
    }
}

/// Reusable Dial-search state sized to the grid on first use.
///
/// Validity of per-cell state is tracked by an epoch stamp, so starting
/// a new search is O(1): bump the epoch, clear the queue. Each cell's
/// whole search record packs into one `u64` — `tag(26) | dist(32) |
/// dir(3) | flags(3)` — so a relaxation is a single 8-byte load and
/// store. The parent pointer is a move *direction* rather than a node
/// id: path reconstruction walks inverse moves from the target, which
/// is exactly as expressive and 29 bits cheaper. Queue payloads are
/// packed coordinate words (see [`pack`]): the pop loop recovers `(x,
/// y, layer)` without dividing and rebuilds the node id with two
/// multiplies.
///
/// `dist` is a saturating 32-bit quantity in quantized α units: with
/// the [`MAX_STEP_Q`] per-step clamp, saturation needs a million-step
/// path at the ceiling cost, far outside any real window, and a
/// saturated search still terminates (distances just stop ordering
/// beyond the cap).
pub(crate) struct DialSolver {
    cells: Vec<u64>,
    epoch: u32,
    queue: BucketQueue<u64>,
}

/// Cell flag: the cell has a valid distance/direction this epoch.
const DISCOVERED: u64 = 1;
/// Cell flag: the cell was popped with its final distance.
const CLOSED: u64 = 2;
/// Cell flag: the cell belongs to a target component.
const TARGET: u64 = 4;
/// Bit offset of the 3-bit arrival direction in a cell word.
const DIR_SHIFT: u32 = 3;
/// Bit offset of the 32-bit distance in a cell word.
const DIST_SHIFT: u32 = 6;
/// Bit offset of the 26-bit epoch tag in a cell word.
const TAG_SHIFT: u32 = 38;
/// Mask selecting the epoch tag of a cell word.
const TAG_MASK: u64 = !0 << TAG_SHIFT;
/// Mask selecting the flag bits of a cell word.
const FLAGS_MASK: u64 = 7;
/// Arrival direction of a search source (no parent).
const DIR_SOURCE: u64 = 6;
/// Node-id deltas per direction: -x, +x, -y, +y, -z, +z. The y and z
/// strides are grid-dependent and patched in per search.
#[inline]
fn dir_deltas(w: u32, wh: u32) -> [i64; 6] {
    [
        -1,
        1,
        -i64::from(w),
        i64::from(w),
        -i64::from(wh),
        i64::from(wh),
    ]
}

impl DialSolver {
    /// Creates a solver whose bucket ring covers key increments up to
    /// `span` (see [`CostField::span`]). Arrays grow lazily to the grid.
    pub(crate) fn new(span: u64) -> Self {
        Self {
            cells: Vec::new(),
            epoch: 0,
            queue: BucketQueue::with_span(span),
        }
    }

    /// Opens a fresh search epoch over a grid of `cells` cells.
    fn begin(&mut self, cells: usize) {
        if self.cells.len() < cells {
            self.cells.resize(cells, 0);
        }
        self.epoch += 1;
        if self.epoch >= 1 << (64 - TAG_SHIFT) {
            // One full clear every 2^26 searches keeps stale tags from
            // a previous wrap-around epoch out of the new one.
            self.cells.fill(0);
            self.epoch = 1;
        }
        self.queue.clear();
    }

    /// Stitch-aware shortest path (eq. 10) from any of `sources` to any
    /// cell of any component in `target_comps`, restricted to the
    /// bounding box of the endpoints plus `margin`.
    ///
    /// Matches the legacy engine's contract: the returned path includes
    /// the source cell it grew from and ends at the reached target;
    /// `None` on exhaustion (window, `node_cap`) or cancellation.
    /// `sources` must be sorted for deterministic tie-breaking.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn find_path(
        &mut self,
        grid: &DetailedGrid,
        field: &CostField,
        net: u32,
        own_pins: &FastSet<Point>,
        sources: &[u32],
        target_comps: &[FastSet<u32>],
        margin: Coord,
        node_cap: usize,
        cancel: &CancelToken,
    ) -> Option<Vec<u32>> {
        if sources.is_empty() || target_comps.iter().all(FastSet::is_empty) {
            return None;
        }
        let w = grid.width();
        let rows = grid.height();
        let wh = w * rows;
        let layers = u32::from(grid.layers());
        let (ox, oy) = (grid.outline().x0(), grid.outline().y0());
        self.begin(grid.cell_count());

        let tag = u64::from(self.epoch) << TAG_SHIFT;
        // Cold-path decomposition for endpoint setup; the pop loop
        // never divides (coordinates ride along in the queue payload).
        let local = |c: u32| -> (u32, u32, u32) {
            let x = c % w;
            let rest = c / w;
            (x, rest % rows, rest / rows)
        };
        // One bounding box per target component: `h` takes the minimum
        // over them, which stays admissible and consistent (a minimum
        // of 1-Lipschitz lower bounds) while being far tighter than the
        // union box whenever the components are spread apart — the
        // union box often *contains* the source, flattening `h` to zero
        // over a wide region. Box count is capped so `h` stays O(1);
        // overflow components fold into the last box, which only
        // loosens (never breaks) the bound.
        const MAX_H_BOXES: usize = 8;
        let mut bbox = (i64::MAX, i64::MAX, i64::MIN, i64::MIN);
        let mut boxes: [(u32, u32, u32, u32); MAX_H_BOXES] =
            [(u32::MAX, u32::MAX, 0, 0); MAX_H_BOXES];
        let mut nboxes = 0usize;
        for comp in target_comps {
            if comp.is_empty() {
                continue;
            }
            let slot = nboxes.min(MAX_H_BOXES - 1);
            for &t in comp {
                // `begin` bumped the epoch, so every word is stale here
                // and a plain store marks the target.
                self.cells[t as usize] = tag | TARGET;
                let (x, y, _) = local(t);
                let b = &mut boxes[slot];
                *b = (b.0.min(x), b.1.min(y), b.2.max(x), b.3.max(y));
                bbox = (
                    bbox.0.min(i64::from(x)),
                    bbox.1.min(i64::from(y)),
                    bbox.2.max(i64::from(x)),
                    bbox.3.max(i64::from(y)),
                );
            }
            nboxes = (nboxes + 1).min(MAX_H_BOXES);
        }
        for &c in sources {
            let (x, y, _) = local(c);
            bbox = (
                bbox.0.min(i64::from(x)),
                bbox.1.min(i64::from(y)),
                bbox.2.max(i64::from(x)),
                bbox.3.max(i64::from(y)),
            );
        }
        let win = GridWindow::clamped(w, rows, (bbox.0, bbox.1, bbox.2, bbox.3), i64::from(margin));

        // Manhattan distance to the nearest target-component bounding
        // box, in clamped α units — admissible and consistent (each
        // planar step costs at least `h_unit` and moves one grid unit).
        let boxes = &boxes[..nboxes];
        let h = |x: u32, y: u32| -> u64 {
            let mut best = u32::MAX;
            for b in boxes {
                let dx = b.0.saturating_sub(x).max(x.saturating_sub(b.2));
                let dy = b.1.saturating_sub(y).max(y.saturating_sub(b.3));
                best = best.min(dx + dy);
                if best == 0 {
                    break;
                }
            }
            u64::from(best) * field.h_unit
        };

        for &s in sources {
            // Components are disjoint, so a source is never a target.
            self.cells[s as usize] = tag | (DIR_SOURCE << DIR_SHIFT) | DISCOVERED;
            let (x, y, l) = local(s);
            self.queue.push(h(x, y), pack(x, y, l));
        }

        let mut expanded = 0usize;
        while let Some((_key, packed)) = self.queue.pop() {
            let (x, y, l) = unpack(packed);
            let u = (l * rows + y) * w + x;
            let ui = u as usize;
            // Queued cells always carry the current epoch tag. The
            // heuristic is consistent, so the first pop of a cell has
            // its final distance; later entries are superseded
            // duplicates.
            let m = self.cells[ui];
            if m & CLOSED != 0 {
                continue;
            }
            self.cells[ui] = m | CLOSED;
            if m & TARGET != 0 {
                return Some(self.reconstruct(u, w, wh));
            }
            let du = (m >> DIST_SHIFT) as u32;
            expanded += 1;
            if expanded > node_cap {
                return None;
            }
            // Charge the run budget and honour cancellation mid-search:
            // a `None` return rips the net up like any failed
            // connection, so aborting never leaves partial geometry.
            if cancel.charge_expansions(1) {
                return None;
            }

            let lx = x as usize;
            let src_on_line = field.on_line[lx];
            // Via moves keep (x, y), so both share this pop's h value;
            // planar moves shift a coordinate and re-evaluate.
            let hxy = h(x, y);
            // Candidate moves as (node, packed coordinates, step cost);
            // neighbour coordinates are one add on the packed word.
            // Hard constraints (no riding a stitching line vertically;
            // vias on a line only at own pins) are keyed on the source
            // cell, exactly like the legacy engine. Vias are queued
            // *before* planar moves: the bucket queue pops LIFO among
            // equal keys, so equal-cost ties continue in-plane rather
            // than hop layers first.
            let mut cand = [(0u32, 0u64, 0u32, 0u64); 4];
            let mut nc = 0usize;
            let z_ok = !src_on_line
                || own_pins.contains(&Point::new(ox + x as Coord, oy + y as Coord));
            if z_ok {
                if l > 0 {
                    cand[nc] = (u - wh, packed - (1 << 40), field.via[lx], 4);
                    nc += 1;
                }
                if l + 1 < layers {
                    cand[nc] = (u + wh, packed + (1 << 40), field.via[lx], 5);
                    nc += 1;
                }
            }
            if l.is_multiple_of(2) {
                if x > win.x0 {
                    cand[nc] = (u - 1, packed - 1, field.planar[lx - 1], 0);
                    nc += 1;
                }
                if x < win.x1 {
                    cand[nc] = (u + 1, packed + 1, field.planar[lx + 1], 1);
                    nc += 1;
                }
            } else if !src_on_line {
                if y > win.y0 {
                    cand[nc] = (u - w, packed - (1 << 20), field.planar[lx], 2);
                    nc += 1;
                }
                if y < win.y1 {
                    cand[nc] = (u + w, packed + (1 << 20), field.planar[lx], 3);
                    nc += 1;
                }
            }
            for &(v, q, step, dir) in &cand[..nc] {
                let vi = v as usize;
                if !grid.passable(v, net) {
                    continue;
                }
                let nd = du.saturating_add(step);
                let cv = self.cells[vi];
                // Flags survive only under the current epoch tag; a
                // stale word means "untouched, keep the target bit off".
                let flags = if cv & TAG_MASK == tag { cv & FLAGS_MASK } else { 0 };
                if flags & DISCOVERED == 0 || nd < (cv >> DIST_SHIFT) as u32 {
                    self.cells[vi] = tag
                        | u64::from(nd) << DIST_SHIFT
                        | dir << DIR_SHIFT
                        | flags
                        | DISCOVERED;
                    let hq = if dir >= 4 {
                        hxy
                    } else {
                        let (qx, qy, _) = unpack(q);
                        h(qx, qy)
                    };
                    self.queue.push(u64::from(nd) + hq, q);
                }
            }
        }
        None
    }

    /// Walks inverse arrival moves from `target` back to the source
    /// that seeded it.
    fn reconstruct(&self, target: u32, w: u32, wh: u32) -> Vec<u32> {
        let deltas = dir_deltas(w, wh);
        let mut path = vec![target];
        let mut cur = target;
        loop {
            let dir = (self.cells[cur as usize] >> DIR_SHIFT) & 7;
            if dir == DIR_SOURCE {
                break;
            }
            cur = (i64::from(cur) - deltas[dir as usize]) as u32;
            path.push(cur);
        }
        path.reverse();
        path
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mebl_geom::{GridPoint, Layer, Rect};
    use mebl_stitch::StitchConfig;

    fn setup() -> (DetailedGrid, StitchPlan) {
        let outline = Rect::new(0, 0, 39, 29);
        (
            DetailedGrid::new(outline, 3),
            StitchPlan::new(outline, StitchConfig::default()),
        )
    }

    fn field_for(grid: &DetailedGrid, plan: &StitchPlan) -> CostField {
        CostField::build(grid, plan, 1, 10, 5, 2, true)
    }

    fn comps(cells: &[u32]) -> Vec<FastSet<u32>> {
        vec![cells.iter().copied().collect()]
    }

    #[test]
    fn window_clamps_any_box() {
        let win = GridWindow::clamped(10, 8, (-50, -50, 500, 500), 1 << 40);
        assert_eq!(win, GridWindow { x0: 0, x1: 9, y0: 0, y1: 7 });
        let tight = GridWindow::clamped(10, 8, (3, 2, 5, 4), 1);
        assert_eq!(tight, GridWindow { x0: 2, x1: 6, y0: 1, y1: 5 });
        assert!(tight.contains(2, 1));
        assert!(!tight.contains(7, 3));
    }

    #[test]
    fn finds_a_shortest_l_path() {
        let (grid, plan) = setup();
        let field = field_for(&grid, &plan);
        let mut solver = DialSolver::new(field.span);
        let src = grid.node(GridPoint::new(2, 2, Layer::new(0)));
        let dst = grid.node(GridPoint::new(8, 2, Layer::new(0)));
        let path = solver
            .find_path(
                &grid,
                &field,
                0,
                &FastSet::default(),
                &[src],
                &comps(&[dst]),
                18,
                60_000,
                &CancelToken::default(),
            )
            .expect("path");
        assert_eq!(path.first(), Some(&src));
        assert_eq!(path.last(), Some(&dst));
        assert_eq!(path.len(), 7, "straight run on one layer");
    }

    #[test]
    fn epoch_reuse_is_clean_across_searches() {
        let (mut grid, plan) = setup();
        let field = field_for(&grid, &plan);
        let mut solver = DialSolver::new(field.span);
        let a = grid.node(GridPoint::new(1, 1, Layer::new(0)));
        let b = grid.node(GridPoint::new(6, 1, Layer::new(0)));
        let first = solver
            .find_path(&grid, &field, 0, &FastSet::default(), &[a], &comps(&[b]), 18, 60_000, &CancelToken::default())
            .expect("first path");
        // Occupy a cell of the first path for a foreign net: the second
        // search (same solver, new epoch) must route around it.
        grid.occupy(first[3], 9);
        let second = solver
            .find_path(&grid, &field, 0, &FastSet::default(), &[a], &comps(&[b]), 18, 60_000, &CancelToken::default())
            .expect("second path");
        assert!(!second.contains(&first[3]), "stale state leaked across epochs");
    }

    #[test]
    fn node_cap_exhausts_to_none() {
        let (grid, plan) = setup();
        let field = field_for(&grid, &plan);
        let mut solver = DialSolver::new(field.span);
        let src = grid.node(GridPoint::new(0, 0, Layer::new(0)));
        let dst = grid.node(GridPoint::new(30, 25, Layer::new(2)));
        let found = solver.find_path(
            &grid,
            &field,
            0,
            &FastSet::default(),
            &[src],
            &comps(&[dst]),
            18,
            1,
            &CancelToken::default(),
        );
        assert!(found.is_none());
    }

    #[test]
    fn window_blocks_detours_outside_margin() {
        let (mut grid, plan) = setup();
        let field = field_for(&grid, &plan);
        let mut solver = DialSolver::new(field.span);
        // Wall off a column across the whole window height on every layer
        // so the only way around is outside the zero-margin window.
        for y in 0..grid.height() {
            for l in 0..3u8 {
                let p = GridPoint::new(5, y as Coord, Layer::new(l));
                grid.occupy(grid.node(p), 7);
            }
        }
        let src = grid.node(GridPoint::new(2, 10, Layer::new(0)));
        let dst = grid.node(GridPoint::new(9, 10, Layer::new(0)));
        let narrow = solver.find_path(
            &grid,
            &field,
            0,
            &FastSet::default(),
            &[src],
            &comps(&[dst]),
            0,
            60_000,
            &CancelToken::default(),
        );
        assert!(narrow.is_none(), "wall spans the entire zero-margin window");
    }
}
