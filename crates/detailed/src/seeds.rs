//! Seeding the detailed grid with track-assigned segments.

use mebl_assign::AssignedSeg;
use mebl_geom::{Coord, GridPoint, Layer};
use mebl_global::TileGraph;

/// Converts an assigned segment into concrete grid cells.
///
/// A vertical segment's pieces are realised as wire from the centre of its
/// first tile to the centre of its last tile on the piece's track; a
/// doglegged segment yields one cell run per piece (the jog between pieces
/// is left to detailed routing, which performs the segment-to-segment
/// connection with proper vias). Horizontal segments are realised
/// symmetrically. The n-th colour of an orientation maps to the n-th layer
/// of that orientation (vertical colours → layers 1, 3, 5…; horizontal →
/// 0, 2, 4…).
///
/// Each returned inner `Vec` is one connected cell run (a seed component).
pub fn realize_seeds(seg: &AssignedSeg, graph: &TileGraph) -> Vec<Vec<GridPoint>> {
    let layer = if seg.horizontal {
        Layer::new(2 * seg.layer_color as u8)
    } else {
        Layer::new(2 * seg.layer_color as u8 + 1)
    };
    let mut components = Vec::with_capacity(seg.pieces.len());
    for &(tile_lo, tile_hi, track) in &seg.pieces {
        debug_assert!(tile_lo <= tile_hi, "empty assigned piece");
        let start = tile_center(graph, seg.horizontal, tile_lo);
        let end = tile_center(graph, seg.horizontal, tile_hi);
        if end < start {
            continue;
        }
        let mut cells = Vec::with_capacity((end - start + 1) as usize);
        for c in start..=end {
            let p = if seg.horizontal {
                GridPoint::new(c, track, layer)
            } else {
                GridPoint::new(track, c, layer)
            };
            cells.push(p);
        }
        components.push(cells);
    }
    components
}

/// The realised anchor coordinate at tile `t`: the tile centre. Exact
/// junction points are refined by detailed routing's segment-to-segment
/// connection.
fn tile_center(graph: &TileGraph, horizontal: bool, t: u32) -> Coord {
    let span = if horizontal {
        graph.col_span(t)
    } else {
        graph.row_span(t)
    };
    (span.lo() + span.hi()) / 2
}

#[cfg(test)]
mod tests {
    use super::*;
    use mebl_assign::Continuation;
    use mebl_geom::Rect;
    use mebl_stitch::{StitchConfig, StitchPlan};

    fn graph() -> TileGraph {
        let outline = Rect::new(0, 0, 89, 89);
        let plan = StitchPlan::new(outline, StitchConfig::default());
        TileGraph::new(outline, 15, 3, &plan, true)
    }

    fn vseg(pieces: Vec<(u32, u32, i32)>, lo: u32, hi: u32) -> AssignedSeg {
        AssignedSeg {
            net: 0,
            horizontal: false,
            panel: 1,
            layer_color: 0,
            lo,
            hi,
            pieces,
            lo_cont: Continuation::None,
            hi_cont: Continuation::None,
        }
    }

    #[test]
    fn straight_vertical_seed_spans_tile_centres() {
        let g = graph();
        let seg = vseg(vec![(0, 3, 20)], 0, 3);
        let comps = realize_seeds(&seg, &g);
        assert_eq!(comps.len(), 1);
        let cells = &comps[0];
        // Tile row 0 centre y = 7, tile row 3 centre y = 52.
        assert_eq!(cells.first().unwrap().y, 7);
        assert_eq!(cells.last().unwrap().y, 52);
        assert!(cells.iter().all(|c| c.x == 20));
        assert!(cells.iter().all(|c| c.layer == Layer::new(1)));
        assert_eq!(cells.len(), 46);
    }

    #[test]
    fn dogleg_yields_two_components() {
        let g = graph();
        let seg = vseg(vec![(0, 2, 20), (3, 3, 25)], 0, 3);
        let comps = realize_seeds(&seg, &g);
        assert_eq!(comps.len(), 2);
        assert!(comps[0].iter().all(|c| c.x == 20));
        assert!(comps[1].iter().all(|c| c.x == 25));
    }

    #[test]
    fn horizontal_seed_on_even_layer() {
        let g = graph();
        let seg = AssignedSeg {
            net: 3,
            horizontal: true,
            panel: 2,
            layer_color: 1,
            lo: 1,
            hi: 4,
            pieces: vec![(1, 4, 33)],
            lo_cont: Continuation::None,
            hi_cont: Continuation::None,
        };
        let comps = realize_seeds(&seg, &g);
        assert_eq!(comps.len(), 1);
        assert!(comps[0].iter().all(|c| c.y == 33));
        assert!(comps[0].iter().all(|c| c.layer == Layer::new(2)));
    }

    #[test]
    fn vertical_color_maps_to_odd_layer() {
        let g = graph();
        let mut seg = vseg(vec![(0, 2, 20)], 0, 2);
        seg.layer_color = 1;
        let comps = realize_seeds(&seg, &g);
        assert!(comps[0].iter().all(|c| c.layer == Layer::new(3)));
    }
}
