//! The detailed routing grid: occupancy and legal moves.

use mebl_geom::{Coord, GridPoint, Layer, Rect};

/// The full 3-D track grid with per-cell net occupancy.
///
/// Cells are addressed by compact node ids. Occupancy stores `net + 1`
/// (0 = free). Layer directions follow the global convention: even layers
/// carry x-wires, odd layers y-wires; z-moves (vias) connect adjacent
/// layers.
#[derive(Debug, Clone)]
pub struct DetailedGrid {
    outline: Rect,
    width: u32,
    height: u32,
    layers: u8,
    occupancy: Vec<u32>,
}

impl DetailedGrid {
    /// Creates an empty grid over `outline` with `layers` routing layers.
    ///
    /// # Panics
    ///
    /// Panics if `layers < 2`.
    pub fn new(outline: Rect, layers: u8) -> Self {
        assert!(layers >= 2, "need at least two layers");
        let width = outline.width() as u32;
        let height = outline.height() as u32;
        Self {
            outline,
            width,
            height,
            layers,
            occupancy: vec![0; width as usize * height as usize * layers as usize],
        }
    }

    /// Chip outline.
    pub fn outline(&self) -> Rect {
        self.outline
    }

    /// Number of layers.
    pub fn layers(&self) -> u8 {
        self.layers
    }

    /// Grid width in tracks.
    pub fn width(&self) -> u32 {
        self.width
    }

    /// Grid height in tracks.
    pub fn height(&self) -> u32 {
        self.height
    }

    /// Total number of cells.
    pub fn cell_count(&self) -> usize {
        self.occupancy.len()
    }

    /// Compact node id of a grid point.
    ///
    /// # Panics
    ///
    /// Debug-panics if the point is outside the grid.
    pub fn node(&self, p: GridPoint) -> u32 {
        let x = (p.x - self.outline.x0()) as u32;
        let y = (p.y - self.outline.y0()) as u32;
        debug_assert!(x < self.width && y < self.height, "point outside grid");
        debug_assert!(p.layer.index() < self.layers);
        (u32::from(p.layer.index()) * self.height + y) * self.width + x
    }

    /// Grid point of a node id.
    pub fn point(&self, node: u32) -> GridPoint {
        let x = node % self.width;
        let rest = node / self.width;
        let y = rest % self.height;
        let l = rest / self.height;
        GridPoint::new(
            self.outline.x0() + x as Coord,
            self.outline.y0() + y as Coord,
            Layer::new(l as u8),
        )
    }

    /// Net occupying a node (`None` = free).
    pub fn occupant(&self, node: u32) -> Option<u32> {
        let v = self.occupancy[node as usize];
        (v != 0).then(|| v - 1)
    }

    /// Marks a node as occupied by `net`.
    pub fn occupy(&mut self, node: u32, net: u32) {
        self.occupancy[node as usize] = net + 1;
    }

    /// Frees a node.
    pub fn free(&mut self, node: u32) {
        self.occupancy[node as usize] = 0;
    }

    /// Whether `node` is free or already owned by `net`.
    pub fn passable(&self, node: u32, net: u32) -> bool {
        let v = self.occupancy[node as usize];
        v == 0 || v == net + 1
    }

    /// Writes the legal neighbour node ids of `node` into `out` and
    /// returns how many there are (at most four: two planar moves on
    /// the cell's own layer plus up to two z-moves). The node-id
    /// counterpart of [`DetailedGrid::moves`], for hot paths that never
    /// need world coordinates.
    pub fn node_moves(&self, node: u32, out: &mut [u32; 4]) -> usize {
        let w = self.width;
        let x = node % w;
        let rest = node / w;
        let y = rest % self.height;
        let l = rest / self.height;
        let wh = w * self.height;
        let mut n = 0;
        if l.is_multiple_of(2) {
            if x > 0 {
                out[n] = node - 1;
                n += 1;
            }
            if x + 1 < w {
                out[n] = node + 1;
                n += 1;
            }
        } else {
            if y > 0 {
                out[n] = node - w;
                n += 1;
            }
            if y + 1 < self.height {
                out[n] = node + w;
                n += 1;
            }
        }
        if l > 0 {
            out[n] = node - wh;
            n += 1;
        }
        if l + 1 < u32::from(self.layers) {
            out[n] = node + wh;
            n += 1;
        }
        n
    }

    /// The legal neighbour nodes of `p` respecting layer directions:
    /// x-moves on horizontal layers, y-moves on vertical layers, z-moves
    /// between adjacent layers. Bounds-checked; occupancy is *not*
    /// checked here.
    pub fn moves(&self, p: GridPoint) -> impl Iterator<Item = GridPoint> + '_ {
        let horizontal = p.layer.is_horizontal();
        let candidates = [
            // x moves (horizontal layers only)
            horizontal.then(|| GridPoint::new(p.x - 1, p.y, p.layer)),
            horizontal.then(|| GridPoint::new(p.x + 1, p.y, p.layer)),
            // y moves (vertical layers only)
            (!horizontal).then(|| GridPoint::new(p.x, p.y - 1, p.layer)),
            (!horizontal).then(|| GridPoint::new(p.x, p.y + 1, p.layer)),
            // z moves
            p.layer.below().map(|l| GridPoint::new(p.x, p.y, l)),
            (p.layer.index() + 1 < self.layers)
                .then(|| GridPoint::new(p.x, p.y, p.layer.above())),
        ];
        candidates
            .into_iter()
            .flatten()
            .filter(|q| self.outline.contains(q.point()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grid() -> DetailedGrid {
        DetailedGrid::new(Rect::new(0, 0, 9, 7), 3)
    }

    #[test]
    fn node_roundtrip() {
        let g = grid();
        for l in 0..3u8 {
            for y in 0..8 {
                for x in 0..10 {
                    let p = GridPoint::new(x, y, Layer::new(l));
                    assert_eq!(g.point(g.node(p)), p);
                }
            }
        }
    }

    #[test]
    fn nonzero_origin_roundtrip() {
        let g = DetailedGrid::new(Rect::new(5, 3, 14, 10), 2);
        let p = GridPoint::new(7, 9, Layer::new(1));
        assert_eq!(g.point(g.node(p)), p);
    }

    #[test]
    fn occupancy_lifecycle() {
        let mut g = grid();
        let n = g.node(GridPoint::new(2, 3, Layer::new(1)));
        assert_eq!(g.occupant(n), None);
        assert!(g.passable(n, 7));
        g.occupy(n, 7);
        assert_eq!(g.occupant(n), Some(7));
        assert!(g.passable(n, 7), "own cells stay passable");
        assert!(!g.passable(n, 8));
        g.free(n);
        assert_eq!(g.occupant(n), None);
    }

    #[test]
    fn moves_respect_layer_direction() {
        let g = grid();
        // Horizontal layer 0 at interior point: x±1 and z+1 = 3 moves.
        let m: Vec<GridPoint> = g.moves(GridPoint::new(5, 3, Layer::new(0))).collect();
        assert_eq!(m.len(), 3);
        assert!(m.iter().all(|q| q.y == 3));
        // Vertical layer 1: y±1, z±1 = 4 moves.
        let m: Vec<GridPoint> = g.moves(GridPoint::new(5, 3, Layer::new(1))).collect();
        assert_eq!(m.len(), 4);
        assert!(m.iter().all(|q| q.x == 5));
    }

    #[test]
    fn moves_clipped_at_boundary() {
        let g = grid();
        let m: Vec<GridPoint> = g.moves(GridPoint::new(0, 0, Layer::new(0))).collect();
        // x+1 and z+1 only.
        assert_eq!(m.len(), 2);
        let m: Vec<GridPoint> = g.moves(GridPoint::new(9, 7, Layer::new(2))).collect();
        // layer 2 horizontal: x-1 and z-1.
        assert_eq!(m.len(), 2);
        assert!(m.contains(&GridPoint::new(8, 7, Layer::new(2))));
        assert!(m.contains(&GridPoint::new(9, 7, Layer::new(1))));
    }

    #[test]
    fn node_moves_matches_point_moves_everywhere() {
        let g = DetailedGrid::new(Rect::new(3, 2, 12, 9), 3);
        let mut buf = [0u32; 4];
        for node in 0..g.cell_count() as u32 {
            let n = g.node_moves(node, &mut buf);
            let mut by_id: Vec<u32> = buf[..n].to_vec();
            by_id.sort_unstable();
            let mut by_point: Vec<u32> = g.moves(g.point(node)).map(|q| g.node(q)).collect();
            by_point.sort_unstable();
            assert_eq!(by_id, by_point, "node {node}");
        }
    }

    #[test]
    fn point_contains_check() {
        let g = DetailedGrid::new(Rect::new(0, 0, 4, 4), 2);
        assert_eq!(g.cell_count(), 50);
        assert_eq!(g.point(0), GridPoint::new(0, 0, Layer::new(0)));
    }
}
