//! Detailed routing: seeding, ordering, A\* connection, pruning.

use crate::{realize_seeds, DetailedGrid};
use mebl_assign::TrackResult;
use mebl_control::{CancelToken, Degradation, DegradationKind, Stage};
use mebl_geom::{Coord, GridPoint, Point, Rect, RouteGeometry, Segment, Via};
use mebl_global::TileGraph;
use mebl_netlist::Circuit;
use mebl_par::Pool;
use mebl_stitch::StitchPlan;
use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap, HashSet};

/// Configuration of stitch-aware detailed routing.
///
/// Paper defaults: α = 1, β = 10, γ = 5 (§IV-A), with β ≫ γ so vias avoid
/// stitch unfriendly regions far more strongly than paths avoid escape
/// regions.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DetailedConfig {
    /// Wirelength weight α of eq. (10).
    pub alpha: u64,
    /// Via-in-stitch-unfriendly-region weight β.
    pub beta: u64,
    /// Escape-region weight γ.
    pub gamma: u64,
    /// Cost of a z-move in α units (a via is dearer than a track step).
    pub via_cost: u64,
    /// Apply the stitch-aware weighted costs (β, γ). Hard constraints stay
    /// enforced either way, as in the paper's baseline.
    pub stitch_costs: bool,
    /// Use stitch-aware net ordering (more bad ends first).
    pub stitch_order: bool,
    /// Search-window margin around each connection's bounding box.
    pub margin: Coord,
    /// Node-expansion cap per A\* search.
    pub node_cap: usize,
    /// Window-growth retries before a connection is declared failed.
    pub retries: usize,
    /// Cooperative cancellation/budget handle. Inert by default; when
    /// armed, A\* searches abort mid-expansion (the aborted net is ripped
    /// up like any failed net) and remaining nets/rip-up rounds are
    /// skipped, keeping partial geometry audit-clean.
    pub cancel: CancelToken,
    /// Worker pool for speculative net batches. Every pool width runs
    /// the same batched algorithm with an ordered, conflict-checked
    /// commit, so unbudgeted results are bit-identical regardless of
    /// worker count (DESIGN.md §9).
    pub pool: Pool,
}

impl Default for DetailedConfig {
    fn default() -> Self {
        Self {
            alpha: 1,
            beta: 10,
            gamma: 5,
            via_cost: 2,
            stitch_costs: true,
            stitch_order: true,
            margin: 18,
            node_cap: 60_000,
            retries: 2,
            cancel: CancelToken::default(),
            pool: Pool::serial(),
        }
    }
}

impl DetailedConfig {
    /// The Table VIII baseline: no stitch-aware costs or ordering.
    pub fn without_stitch_consideration() -> Self {
        Self {
            stitch_costs: false,
            stitch_order: false,
            ..Self::default()
        }
    }
}

/// Outcome of detailed routing.
#[derive(Debug, Clone)]
pub struct DetailedResult {
    /// Final geometry per net (empty for failed nets).
    pub geometry: Vec<RouteGeometry>,
    /// Whether each net was fully connected.
    pub routed: Vec<bool>,
    /// Number of routed nets.
    pub routed_count: usize,
}

/// Routes all nets on the detailed grid.
///
/// Seeds from `tracks` are pre-placed (nets in `tracks.failed_nets` get no
/// seeds and are routed directly pin-to-pin); nets are ordered by bad-end
/// count when [`DetailedConfig::stitch_order`] is set; each net's
/// components are then joined by stitch-aware A\* and its final cell set is
/// pruned of dangling stubs before geometry extraction.
pub fn route_detailed(
    circuit: &Circuit,
    plan: &StitchPlan,
    graph: &TileGraph,
    tracks: &TrackResult,
    config: &DetailedConfig,
) -> DetailedResult {
    let n = circuit.net_count();
    let mut grid = DetailedGrid::new(circuit.outline(), circuit.layer_count());

    // Fixed pins block their cells for everyone else, and allow the
    // pin-owning net to drop vias on stitching lines.
    let mut pin_cells: Vec<Vec<u32>> = vec![Vec::new(); n];
    let mut pin_points: Vec<HashSet<Point>> = vec![HashSet::new(); n];
    for (id, net) in circuit.iter_nets() {
        for pin in net.pins() {
            let node = grid.node(pin.position.on_layer(pin.layer));
            grid.occupy(node, id.0);
            pin_cells[id.0 as usize].push(node);
            pin_points[id.0 as usize].insert(pin.position);
        }
    }

    // Place seeds; runs interrupted by foreign pins split into sub-runs.
    let mut seed_components: Vec<Vec<Vec<u32>>> = vec![Vec::new(); n];
    for seg in &tracks.segments {
        if tracks.failed_nets.contains(&seg.net) {
            continue;
        }
        for run in realize_seeds(seg, graph) {
            let mut current: Vec<u32> = Vec::new();
            for cell in run {
                let node = grid.node(cell);
                if grid.passable(node, seg.net as u32) {
                    grid.occupy(node, seg.net as u32);
                    current.push(node);
                } else if !current.is_empty() {
                    seed_components[seg.net].push(std::mem::take(&mut current));
                }
            }
            if !current.is_empty() {
                seed_components[seg.net].push(current);
            }
        }
    }

    // Net ordering: more bad ends first (stitch-aware), then shorter nets.
    let mut bad_ends = vec![0usize; n];
    for seg in &tracks.segments {
        if seg.horizontal || tracks.failed_nets.contains(&seg.net) {
            continue;
        }
        bad_ends[seg.net] += usize::from(seg.end_is_bad(plan, false))
            + usize::from(seg.end_is_bad(plan, true));
    }
    let mut order: Vec<usize> = (0..n).collect();
    if config.stitch_order {
        order.sort_by_key(|&i| (Reverse(bad_ends[i]), circuit.nets()[i].hpwl(), i));
    } else {
        order.sort_by_key(|&i| (circuit.nets()[i].hpwl(), i));
    }

    let mut result = DetailedResult {
        geometry: vec![RouteGeometry::new(); n],
        routed: vec![false; n],
        routed_count: 0,
    };

    route_pass(
        plan, config, &order, &mut grid, &pin_cells, &pin_points,
        &seed_components, &mut result,
    );

    // Final failed-net rip-up/reroute rounds: all failed nets' resources
    // are free now, and the expansion budget is raised — the "failed net
    // rip-up/rerouting" of the second bottom-up pass (Fig. 6).
    for round in 1..=2u32 {
        if result.routed_count == n {
            break;
        }
        if config.cancel.is_cancelled_now() {
            config.cancel.record(Degradation::new(
                Stage::Detailed,
                DegradationKind::BudgetExhausted,
                None,
                format!(
                    "rip-up/reroute rounds {round}..2 skipped ({} nets still failed)",
                    n - result.routed_count
                ),
            ));
            break;
        }
        let mut failed: Vec<usize> = order
            .iter()
            .copied()
            .filter(|&i| !result.routed[i])
            .collect();
        failed.sort_by_key(|&i| (circuit.nets()[i].hpwl(), i));
        let relaxed = DetailedConfig {
            node_cap: config.node_cap.checked_shl(2 * round).unwrap_or(usize::MAX),
            margin: config.margin.checked_shl(round).unwrap_or(Coord::MAX),
            ..config.clone()
        };
        let no_seeds: Vec<Vec<Vec<u32>>> = vec![Vec::new(); n];
        route_pass(
            plan, &relaxed, &failed, &mut grid, &pin_cells, &pin_points,
            &no_seeds, &mut result,
        );
    }
    result
}

/// Nets per speculative batch. Fixed (never derived from the worker
/// count) so batch membership — which determines which nets can race for
/// the same cells — stays identical for every `--threads` value.
const NET_BATCH: usize = 32;

/// Raw occupancy of a cell: 0 = free, `net + 1` = occupied.
fn raw_occupancy(grid: &DetailedGrid, node: u32) -> u32 {
    grid.occupant(node).map_or(0, |net| net + 1)
}

/// Writes a raw occupancy value back to a cell.
fn set_raw_occupancy(grid: &mut DetailedGrid, node: u32, value: u32) {
    if value == 0 {
        grid.free(node);
    } else {
        grid.occupy(node, value - 1);
    }
}

/// Journal of grid mutations made while routing one net speculatively.
///
/// Every occupy/free goes through the log, which remembers the cell's
/// prior raw occupancy, so the run can be (a) rolled back exactly and
/// (b) summarised as a first-touch delta to replay on the master grid.
#[derive(Default)]
struct ChangeLog {
    entries: Vec<(u32, u32)>,
}

impl ChangeLog {
    fn occupy(&mut self, grid: &mut DetailedGrid, node: u32, net: u32) {
        self.entries.push((node, raw_occupancy(grid, node)));
        grid.occupy(node, net);
    }

    fn free(&mut self, grid: &mut DetailedGrid, node: u32) {
        self.entries.push((node, raw_occupancy(grid, node)));
        grid.free(node);
    }

    /// Net effect as `(node, old, new)` raw values in first-touch order,
    /// no-op entries dropped.
    fn delta(&self, grid: &DetailedGrid) -> Vec<(u32, u32, u32)> {
        let mut first: HashMap<u32, u32> = HashMap::with_capacity(self.entries.len());
        let mut out: Vec<(u32, u32, u32)> = Vec::new();
        for &(node, old) in &self.entries {
            if let std::collections::hash_map::Entry::Vacant(e) = first.entry(node) {
                e.insert(old);
                out.push((node, old, 0));
            }
        }
        out.iter_mut()
            .for_each(|entry| entry.2 = raw_occupancy(grid, entry.0));
        out.retain(|&(_, old, new)| old != new);
        out
    }

    /// Restores every touched cell to its pre-log value.
    fn rollback(&self, grid: &mut DetailedGrid) {
        for &(node, old) in self.entries.iter().rev() {
            set_raw_occupancy(grid, node, old);
        }
    }
}

/// What one speculative net run wants to do to the master grid.
struct NetAttempt {
    routed: bool,
    geometry: RouteGeometry,
    delta: Vec<(u32, u32, u32)>,
}

/// One routing pass over `order` in deterministic speculative batches;
/// skips already-routed nets and updates `result` in place.
///
/// Per batch, each worker routes nets against a clone of the pre-batch
/// grid and rolls its clone back after every net; the deltas are then
/// committed sequentially in input order. A delta whose newly claimed
/// cells were taken by an earlier commit in the same batch is discarded
/// and the net re-routed inline against the live grid — a decision that
/// depends only on committed state, so the same code path yields the
/// same result for every pool width (a serial pool runs the fan-out
/// inline over one clone).
#[allow(clippy::too_many_arguments)]
fn route_pass(
    plan: &StitchPlan,
    config: &DetailedConfig,
    order: &[usize],
    grid: &mut DetailedGrid,
    pin_cells: &[Vec<u32>],
    pin_points: &[HashSet<Point>],
    seed_components: &[Vec<Vec<u32>>],
    result: &mut DetailedResult,
) {
    let pending: Vec<usize> = order
        .iter()
        .copied()
        .filter(|&net| !result.routed[net])
        .collect();
    let mut skipped = 0usize;
    for batch in pending.chunks(NET_BATCH) {
        // Budget checks commit at batch boundaries: a skipped net stays
        // unrouted (pins only), which downstream reporting and the audit
        // already treat as "failed nets contribute nothing".
        if config.cancel.is_cancelled() {
            skipped += batch.len();
            continue;
        }
        let snapshot: &DetailedGrid = grid;
        let attempts: Vec<NetAttempt> = config.pool.par_map_with(
            batch,
            || snapshot.clone(),
            |local, _, &net| {
                let mut log = ChangeLog::default();
                let (routed, geometry) = route_one_net(
                    plan, config, net, local, &mut log, pin_cells, pin_points,
                    seed_components,
                );
                let delta = log.delta(local);
                log.rollback(local);
                NetAttempt {
                    routed,
                    geometry,
                    delta,
                }
            },
        );
        for (&net, attempt) in batch.iter().zip(attempts) {
            // A speculative claim commits only if every cell it newly
            // occupies is still free on the master grid; frees touch the
            // net's own cells, which no batch peer can have changed.
            let clean = attempt
                .delta
                .iter()
                .all(|&(node, old, new)| old != 0 || new == 0 || grid.occupant(node).is_none());
            if clean {
                for &(node, _, new) in &attempt.delta {
                    set_raw_occupancy(grid, node, new);
                }
                if attempt.routed {
                    result.geometry[net] = attempt.geometry;
                    result.routed[net] = true;
                    result.routed_count += 1;
                }
            } else {
                // A batch peer won the race for shared cells: re-route
                // this net inline against the live grid, keeping changes.
                let mut log = ChangeLog::default();
                let (routed, geometry) = route_one_net(
                    plan, config, net, grid, &mut log, pin_cells, pin_points,
                    seed_components,
                );
                if routed {
                    result.geometry[net] = geometry;
                    result.routed[net] = true;
                    result.routed_count += 1;
                }
            }
        }
    }
    if skipped > 0 {
        config.cancel.record(Degradation::new(
            Stage::Detailed,
            DegradationKind::BudgetExhausted,
            None,
            format!("{skipped} nets skipped before detailed routing"),
        ));
    }
}

/// Routes a single net on `grid`, journaling every mutation in `log`.
/// Returns whether the net was fully connected and its geometry.
#[allow(clippy::too_many_arguments)]
fn route_one_net(
    plan: &StitchPlan,
    config: &DetailedConfig,
    net: usize,
    grid: &mut DetailedGrid,
    log: &mut ChangeLog,
    pin_cells: &[Vec<u32>],
    pin_points: &[HashSet<Point>],
    seed_components: &[Vec<Vec<u32>>],
) -> (bool, RouteGeometry) {
    let mut components: Vec<HashSet<u32>> = Vec::new();
    for &cell in &pin_cells[net] {
        components.push(HashSet::from([cell]));
    }
    for comp in &seed_components[net] {
        components.push(comp.iter().copied().collect());
    }
    merge_touching(grid, &mut components);

    let mut ok = connect_components(
        grid,
        log,
        plan,
        config,
        net as u32,
        &pin_points[net],
        &mut components,
    );
    if !ok && !seed_components[net].is_empty() {
        // Failed-net rip-up/reroute (second bottom-up pass of the
        // framework): drop the net's planned segments and route the
        // pins directly.
        for comp in components.drain(..) {
            for cell in comp {
                if !pin_cells[net].contains(&cell) {
                    log.free(grid, cell);
                }
            }
        }
        for &cell in &pin_cells[net] {
            components.push(HashSet::from([cell]));
        }
        merge_touching(grid, &mut components);
        ok = connect_components(
            grid,
            log,
            plan,
            config,
            net as u32,
            &pin_points[net],
            &mut components,
        );
    }
    // `ok` implies exactly one component remains.
    if let Some(full) = ok.then(|| components.pop()).flatten() {
        let mut cells = full.clone();
        prune_stubs(grid, &mut cells, &pin_cells[net]);
        // Free pruned cells on the grid.
        for &cell in &full {
            if !cells.contains(&cell) {
                log.free(grid, cell);
            }
        }
        (true, extract_geometry(grid, &cells))
    } else {
        // Rip up everything except the fixed pins.
        for comp in &components {
            for &cell in comp {
                if !pin_cells[net].contains(&cell) {
                    log.free(grid, cell);
                }
            }
        }
        if config.cancel.is_cancelled() {
            config.cancel.record(Degradation::new(
                Stage::Detailed,
                DegradationKind::BudgetExhausted,
                Some(net),
                "net abandoned mid-search and ripped up",
            ));
        }
        (false, RouteGeometry::new())
    }
}

/// Merges components that already touch (seed overlapping a pin etc.).
fn merge_touching(grid: &DetailedGrid, components: &mut Vec<HashSet<u32>>) {
    let mut merged = true;
    while merged {
        merged = false;
        'outer: for i in 0..components.len() {
            for j in (i + 1)..components.len() {
                let touch = components[i].iter().any(|&c| {
                    let p = grid.point(c);
                    grid.moves(p).any(|q| components[j].contains(&grid.node(q)))
                        || components[j].contains(&c)
                });
                if touch {
                    let other = components.swap_remove(j);
                    components[i].extend(other);
                    merged = true;
                    break 'outer;
                }
            }
        }
    }
}

/// Connects all components of a net; `true` on success (exactly one
/// component remains, left at the back of `components`).
fn connect_components(
    grid: &mut DetailedGrid,
    log: &mut ChangeLog,
    plan: &StitchPlan,
    config: &DetailedConfig,
    net: u32,
    own_pins: &HashSet<Point>,
    components: &mut Vec<HashSet<u32>>,
) -> bool {
    while components.len() > 1 {
        // Smallest component as source. A plain fold (first minimum wins,
        // matching `min_by_key`) keeps this total: the loop guard makes
        // `components` non-empty.
        let mut src_idx = 0usize;
        for i in 1..components.len() {
            if components[i].len() < components[src_idx].len() {
                src_idx = i;
            }
        }
        let source = components.swap_remove(src_idx);
        let mut targets: HashSet<u32> = HashSet::new();
        for comp in components.iter() {
            targets.extend(comp.iter().copied());
        }

        let mut found = None;
        for attempt in 0..=config.retries {
            // Retries widen the window *and* the expansion budget: the
            // stitch-aware weighted costs flatten the search frontier, so
            // congested regions near stitching lines need more nodes.
            let relaxed = DetailedConfig {
                node_cap: config
                    .node_cap
                    .checked_shl(2 * attempt as u32)
                    .unwrap_or(usize::MAX),
                ..config.clone()
            };
            let margin = config
                .margin
                .checked_shl(attempt as u32)
                .unwrap_or(Coord::MAX);
            if let Some(path) =
                astar(grid, plan, &relaxed, net, own_pins, &source, &targets, margin)
            {
                found = Some(path);
                break;
            }
        }
        let Some(path) = found else {
            components.push(source);
            return false;
        };
        // Occupy path cells and merge.
        let Some(&reached) = path.last() else {
            // A* paths are non-empty by construction; treat a breach as a
            // failed connection and surface it.
            config.cancel.record(Degradation::new(
                Stage::Detailed,
                DegradationKind::InternalFallback,
                Some(net as usize),
                "connection dropped: search returned an empty path",
            ));
            components.push(source);
            return false;
        };
        for &cell in &path {
            log.occupy(grid, cell, net);
        }
        let Some(dst_idx) = components.iter().position(|c| c.contains(&reached)) else {
            // The path must end in a target component; treat a breach as a
            // failed connection and surface it.
            config.cancel.record(Degradation::new(
                Stage::Detailed,
                DegradationKind::InternalFallback,
                Some(net as usize),
                "connection dropped: path ended outside every target component",
            ));
            components.push(source);
            return false;
        };
        let mut merged = source;
        merged.extend(path);
        let dst = components.swap_remove(dst_idx);
        merged.extend(dst);
        components.push(merged);
    }
    true
}

/// Cost scale: one α unit = 10 cost points.
const UNIT: u64 = 10;

/// Stitch-aware A\* (eq. 10) from `source` cells to any cell of `targets`.
/// Returns the path including the reached target, excluding source cells
/// already owned.
#[allow(clippy::too_many_arguments)]
fn astar(
    grid: &DetailedGrid,
    plan: &StitchPlan,
    config: &DetailedConfig,
    net: u32,
    own_pins: &HashSet<Point>,
    source: &HashSet<u32>,
    targets: &HashSet<u32>,
    margin: Coord,
) -> Option<Vec<u32>> {
    // Search window: bbox of endpoints plus margin.
    let mut window = Rect::bounding(
        source
            .iter()
            .chain(targets.iter())
            .map(|&c| grid.point(c).point()),
    )?;
    window = window.expand(margin).intersect(grid.outline())?;
    // Target bbox for the admissible multi-target heuristic.
    let tbox = Rect::bounding(targets.iter().map(|&c| grid.point(c).point()))?;
    let h = |p: GridPoint| -> u64 {
        let dx = if p.x < tbox.x0() {
            tbox.x0() - p.x
        } else if p.x > tbox.x1() {
            p.x - tbox.x1()
        } else {
            0
        };
        let dy = if p.y < tbox.y0() {
            tbox.y0() - p.y
        } else if p.y > tbox.y1() {
            p.y - tbox.y1()
        } else {
            0
        };
        (dx + dy) as u64 * UNIT * config.alpha
    };

    let mut dist: HashMap<u32, u64> = HashMap::with_capacity(1024);
    let mut prev: HashMap<u32, u32> = HashMap::with_capacity(1024);
    let mut heap: BinaryHeap<Reverse<(u64, u32)>> = BinaryHeap::new();
    // Sorted source insertion keeps tie-breaking (and thus paths)
    // deterministic despite HashSet iteration order.
    let mut sorted_sources: Vec<u32> = source.iter().copied().collect();
    sorted_sources.sort_unstable();
    for s in sorted_sources {
        dist.insert(s, 0);
        heap.push(Reverse((h(grid.point(s)), s)));
    }

    let mut expanded = 0usize;
    while let Some(Reverse((_, u))) = heap.pop() {
        if targets.contains(&u) {
            // Reconstruct.
            let mut path = vec![u];
            let mut cur = u;
            while let Some(&p) = prev.get(&cur) {
                path.push(p);
                cur = p;
            }
            path.reverse();
            return Some(path);
        }
        expanded += 1;
        if expanded > config.node_cap {
            return None;
        }
        // Charge the run budget and honour cancellation mid-search: a
        // `None` return rips the net up like any failed connection, so
        // aborting here never leaves partial geometry behind.
        if config.cancel.charge_expansions(1) {
            return None;
        }
        let du = dist[&u];
        let pu = grid.point(u);
        for q in grid.moves(pu) {
            if !window.contains(q.point()) {
                continue;
            }
            let v = grid.node(q);
            if !grid.passable(v, net) {
                continue;
            }
            let z_move = q.layer != pu.layer;
            let y_move = q.y != pu.y;
            // Hard constraints: never ride a stitching line vertically;
            // z-moves on a line only at the net's own pins.
            if plan.is_on_line(pu.x) {
                if y_move {
                    continue;
                }
                if z_move && !own_pins.contains(&pu.point()) {
                    continue;
                }
            }
            let mut step = if z_move {
                UNIT * config.alpha * config.via_cost
            } else {
                UNIT * config.alpha
            };
            if config.stitch_costs {
                if z_move && plan.in_unfriendly_region(q.x) {
                    step += UNIT * config.beta;
                }
                if !z_move && plan.in_escape_region(q.x) {
                    step += UNIT * config.gamma;
                }
            }
            let nd = du + step;
            if dist.get(&v).is_none_or(|&old| nd < old) {
                dist.insert(v, nd);
                prev.insert(v, u);
                heap.push(Reverse((nd + h(q), v)));
            }
        }
    }
    None
}

/// Iteratively removes dangling non-pin cells (degree <= 1 in the net's
/// own cell set) — unused seed overhangs become antenna stubs otherwise.
fn prune_stubs(grid: &DetailedGrid, cells: &mut HashSet<u32>, pins: &[u32]) {
    let pin_set: HashSet<u32> = pins.iter().copied().collect();
    let degree = |cells: &HashSet<u32>, c: u32| -> usize {
        grid.moves(grid.point(c))
            .filter(|q| cells.contains(&grid.node(*q)))
            .count()
    };
    let mut queue: Vec<u32> = cells
        .iter()
        .copied()
        .filter(|&c| !pin_set.contains(&c) && degree(cells, c) <= 1)
        .collect();
    while let Some(c) = queue.pop() {
        if !cells.remove(&c) {
            continue;
        }
        for q in grid.moves(grid.point(c)) {
            let qn = grid.node(q);
            if cells.contains(&qn) && !pin_set.contains(&qn) && degree(cells, qn) <= 1 {
                queue.push(qn);
            }
        }
    }
}

/// Converts a net's final cell set into wire segments and vias.
fn extract_geometry(grid: &DetailedGrid, cells: &HashSet<u32>) -> RouteGeometry {
    let mut geom = RouteGeometry::new();
    // Sorted cell order makes the emitted via list deterministic.
    let mut sorted_cells: Vec<u32> = cells.iter().copied().collect();
    sorted_cells.sort_unstable();
    // Group by (layer, track).
    let mut by_track: HashMap<(u8, Coord), Vec<Coord>> = HashMap::new();
    for &c in &sorted_cells {
        let p = grid.point(c);
        if p.layer.is_horizontal() {
            by_track.entry((p.layer.index(), p.y)).or_default().push(p.x);
        } else {
            by_track.entry((p.layer.index(), p.x)).or_default().push(p.y);
        }
        // Vias: emit when the cell above is also present.
        if p.layer.index() + 1 < grid.layers() {
            let above = GridPoint::new(p.x, p.y, p.layer.above());
            if cells.contains(&grid.node(above)) {
                geom.push_via(Via::new(p.x, p.y, p.layer));
            }
        }
    }
    let mut tracks: Vec<((u8, Coord), Vec<Coord>)> = by_track.into_iter().collect();
    tracks.sort_unstable_by_key(|&(key, _)| key);
    for (key, mut coords) in tracks {
        coords.sort_unstable();
        coords.dedup();
        let (layer_idx, track) = key;
        let layer = mebl_geom::Layer::new(layer_idx);
        let mut i = 0;
        while i < coords.len() {
            let start = coords[i];
            let mut end = start;
            while i + 1 < coords.len() && coords[i + 1] == end + 1 {
                end += 1;
                i += 1;
            }
            if end > start {
                let seg = if layer.is_horizontal() {
                    Segment::horizontal(layer, track, start, end)
                } else {
                    Segment::vertical(layer, track, start, end)
                };
                geom.push_segment(seg);
            }
            i += 1;
        }
    }
    geom
}

#[cfg(test)]
mod tests {
    use super::*;
    use mebl_assign::{assign_tracks, extract_panels, TrackConfig};
    use mebl_geom::Layer;
    use mebl_netlist::{Net, Pin};
    use mebl_stitch::StitchConfig;

    fn pin(x: i32, y: i32) -> Pin {
        Pin::new(Point::new(x, y), Layer::new(0))
    }

    fn route(nets: Vec<Net>, config: &DetailedConfig) -> (Circuit, StitchPlan, DetailedResult) {
        let outline = Rect::new(0, 0, 89, 89);
        let plan = StitchPlan::new(outline, StitchConfig::default());
        let circuit = Circuit::new("t", outline, 3, nets);
        let global = mebl_global::route_circuit(&circuit, &plan, &mebl_global::GlobalConfig::default());
        let panels = extract_panels(&global);
        let tracks = assign_tracks(&panels, &global.graph, &plan, 3, &TrackConfig::default());
        let res = route_detailed(&circuit, &plan, &global.graph, &tracks, config);
        (circuit, plan, res)
    }

    fn assert_connected(c: &Circuit, net: usize, geom: &RouteGeometry) {
        // Every pin must be reachable through the geometry: check that the
        // union of cells covered by segments+vias+pins is connected and
        // touches all pins.
        let mut cells: HashSet<GridPoint> = HashSet::new();
        for s in geom.segments() {
            cells.extend(s.points());
        }
        for v in geom.vias() {
            cells.insert(GridPoint::new(v.x, v.y, v.lower));
            cells.insert(GridPoint::new(v.x, v.y, v.upper()));
        }
        for p in c.nets()[net].pins() {
            cells.insert(p.position.on_layer(p.layer));
        }
        // BFS from the first pin.
        let start = c.nets()[net].pins()[0].position.on_layer(Layer::new(0));
        let mut seen = HashSet::from([start]);
        let mut queue = vec![start];
        while let Some(p) = queue.pop() {
            let neighbours = [
                GridPoint::new(p.x - 1, p.y, p.layer),
                GridPoint::new(p.x + 1, p.y, p.layer),
                GridPoint::new(p.x, p.y - 1, p.layer),
                GridPoint::new(p.x, p.y + 1, p.layer),
                GridPoint::new(p.x, p.y, Layer::new(p.layer.index().wrapping_sub(1))),
                GridPoint::new(p.x, p.y, p.layer.above()),
            ];
            for q in neighbours {
                if cells.contains(&q) && seen.insert(q) {
                    queue.push(q);
                }
            }
        }
        for p in c.nets()[net].pins() {
            assert!(
                seen.contains(&p.position.on_layer(p.layer)),
                "pin {} unreachable",
                p.position
            );
        }
    }

    #[test]
    fn routes_simple_two_pin_net() {
        let (c, plan, res) = route(
            vec![Net::new("a", vec![pin(2, 2), pin(40, 40)])],
            &DetailedConfig::default(),
        );
        assert_eq!(res.routed_count, 1);
        assert_connected(&c, 0, &res.geometry[0]);
        let v = mebl_stitch::check_geometry(&plan, &res.geometry[0], |_| false);
        assert!(v.hard_clean(), "{v:?}");
    }

    #[test]
    fn routes_multi_pin_net() {
        let (c, plan, res) = route(
            vec![Net::new("a", vec![pin(2, 2), pin(70, 10), pin(40, 80), pin(85, 85)])],
            &DetailedConfig::default(),
        );
        assert_eq!(res.routed_count, 1);
        assert_connected(&c, 0, &res.geometry[0]);
        let v = mebl_stitch::check_geometry(&plan, &res.geometry[0], |_| false);
        assert_eq!(v.vertical_violations, 0);
    }

    #[test]
    fn several_nets_no_shorts() {
        let nets = vec![
            Net::new("a", vec![pin(2, 2), pin(60, 60)]),
            Net::new("b", vec![pin(5, 60), pin(60, 5)]),
            Net::new("c", vec![pin(30, 2), pin(30, 85)]),
        ];
        let (c, _, res) = route(nets, &DetailedConfig::default());
        assert_eq!(res.routed_count, 3);
        // No two nets may share a cell.
        let mut seen: HashMap<GridPoint, usize> = HashMap::new();
        for (i, g) in res.geometry.iter().enumerate() {
            for s in g.segments() {
                for p in s.points() {
                    if let Some(&other) = seen.get(&p) {
                        assert_eq!(other, i, "short between nets {other} and {i} at {p}");
                    }
                    seen.insert(p, i);
                }
            }
        }
        for i in 0..3 {
            assert_connected(&c, i, &res.geometry[i]);
        }
    }

    #[test]
    fn hard_constraints_always_hold_even_without_stitch_costs() {
        let nets: Vec<Net> = (0..8)
            .map(|i| {
                Net::new(
                    format!("n{i}"),
                    vec![pin(10 + i * 3, 5 + i * 2), pin(50 + i * 4, 70 - i * 3)],
                )
            })
            .collect();
        let (c, plan, res) = route(nets, &DetailedConfig::without_stitch_consideration());
        assert!(res.routed_count >= 7);
        for (i, g) in res.geometry.iter().enumerate() {
            if !res.routed[i] {
                continue;
            }
            let pins: HashSet<Point> = c.nets()[i].pins().iter().map(|p| p.position).collect();
            let v = mebl_stitch::check_geometry(&plan, g, |p| pins.contains(&p));
            assert!(v.hard_clean(), "net {i}: {v:?}");
        }
    }

    #[test]
    fn pin_on_stitch_line_gets_via_violation_but_stays_legal() {
        // Pin exactly on line x = 15; net must go vertical somewhere, so a
        // via at the pin is required and counted as a (tolerated) #VV.
        let (c, plan, res) = route(
            vec![Net::new("a", vec![pin(15, 5), pin(15, 70)])],
            &DetailedConfig::default(),
        );
        assert_eq!(res.routed_count, 1);
        let pins: HashSet<Point> = c.nets()[0].pins().iter().map(|p| p.position).collect();
        let v = mebl_stitch::check_geometry(&plan, &res.geometry[0], |p| pins.contains(&p));
        assert!(v.hard_clean(), "{v:?}");
        assert!(v.vertical_violations == 0);
    }

    #[test]
    fn stitch_costs_reduce_short_polygons() {
        // A congested pattern around a stitch line: nets whose natural
        // turn points sit in unfriendly regions.
        let mut nets = Vec::new();
        for i in 0..12 {
            nets.push(Net::new(
                format!("n{i}"),
                vec![pin(3 + i, 10 + i * 5), pin(17, 12 + i * 5)],
            ));
        }
        let (c, plan, aware) = route(nets.clone(), &DetailedConfig::default());
        let (_, _, blind) = route(nets, &DetailedConfig::without_stitch_consideration());
        let count = |res: &DetailedResult| -> usize {
            res.geometry
                .iter()
                .enumerate()
                .map(|(i, g)| {
                    let pins: HashSet<Point> =
                        c.nets()[i].pins().iter().map(|p| p.position).collect();
                    mebl_stitch::check_geometry(&plan, g, |p| pins.contains(&p)).short_polygons
                })
                .sum()
        };
        assert!(
            count(&aware) <= count(&blind),
            "aware {} vs blind {}",
            count(&aware),
            count(&blind)
        );
    }

    #[test]
    fn failed_connection_reports_unrouted() {
        // A net whose second pin is walled off by a dense blocker net
        // cannot fail here (grid is generous), so instead verify the
        // node-cap fallback: a tiny cap forces failure.
        let (_, _, res) = route(
            vec![Net::new("a", vec![pin(2, 2), pin(80, 80)])],
            &DetailedConfig {
                node_cap: 1,
                retries: 0,
                ..DetailedConfig::default()
            },
        );
        assert_eq!(res.routed_count, 0);
        assert!(res.geometry[0].is_empty());
    }

    #[test]
    fn geometry_has_no_dangling_stubs() {
        let (c, _, res) = route(
            vec![Net::new("a", vec![pin(2, 2), pin(70, 70)])],
            &DetailedConfig::default(),
        );
        // Every segment endpoint must either carry a via, meet another
        // segment, or be a pin.
        let g = &res.geometry[0];
        let pins: HashSet<Point> = c.nets()[0].pins().iter().map(|p| p.position).collect();
        for s in g.segments() {
            let (a, b) = s.endpoints();
            for end in [a, b] {
                let has_via = g.has_via_at(end, s.layer);
                let meets = g
                    .segments()
                    .iter()
                    .filter(|o| *o != s)
                    .any(|o| o.layer == s.layer && o.contains_point(end));
                let is_pin = s.layer.index() == 0 && pins.contains(&end);
                assert!(
                    has_via || meets || is_pin,
                    "dangling end {end} of {s:?}"
                );
            }
        }
    }
}
