//! Detailed routing: seeding, ordering, dense-grid search, pruning.

use crate::dense::{CostField, DialSolver};
use crate::{realize_seeds, DetailedGrid};
use mebl_assign::TrackResult;
use mebl_control::{CancelToken, Degradation, DegradationKind, Stage};
use mebl_geom::{Coord, GridPoint, Point, Rect, RouteGeometry, Segment, Via};
use mebl_global::TileGraph;
use mebl_netlist::Circuit;
use mebl_graph::{FastMap, FastSet, UnionFind};
use mebl_par::Pool;
use mebl_stitch::StitchPlan;
use std::cmp::Reverse;
use std::collections::hash_map::Entry;

/// Which shortest-path engine connects net components.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SearchEngine {
    /// Dense-grid Dial search: flat arrays, precomputed per-column cost
    /// layers, an integer bucket queue, and solver state reused across
    /// nets. The production hot path.
    #[default]
    Dial,
    /// The pre-rewrite heap-based A\*, retained as the differential
    /// oracle for `tests/router_equivalence.rs`. Slower; identical cost
    /// model up to a constant scale factor.
    LegacyHeap,
}

/// Configuration of stitch-aware detailed routing.
///
/// Paper defaults: α = 1, β = 10, γ = 5 (§IV-A), with β ≫ γ so vias avoid
/// stitch unfriendly regions far more strongly than paths avoid escape
/// regions.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DetailedConfig {
    /// Wirelength weight α of eq. (10).
    pub alpha: u64,
    /// Via-in-stitch-unfriendly-region weight β.
    pub beta: u64,
    /// Escape-region weight γ.
    pub gamma: u64,
    /// Cost of a z-move in α units (a via is dearer than a track step).
    pub via_cost: u64,
    /// Apply the stitch-aware weighted costs (β, γ). Hard constraints stay
    /// enforced either way, as in the paper's baseline.
    pub stitch_costs: bool,
    /// Use stitch-aware net ordering (more bad ends first).
    pub stitch_order: bool,
    /// Search-window margin around each connection's bounding box.
    pub margin: Coord,
    /// Node-expansion cap per search.
    pub node_cap: usize,
    /// Window-growth retries before a connection is declared failed.
    pub retries: usize,
    /// Shortest-path engine; [`SearchEngine::Dial`] unless a test pits
    /// the engines against each other.
    pub engine: SearchEngine,
    /// Cooperative cancellation/budget handle. Inert by default; when
    /// armed, searches abort mid-expansion (the aborted net is ripped
    /// up like any failed net) and remaining nets/rip-up rounds are
    /// skipped, keeping partial geometry audit-clean.
    pub cancel: CancelToken,
    /// Worker pool for speculative net batches. Every pool width runs
    /// the same batched algorithm with an ordered, conflict-checked
    /// commit, so unbudgeted results are bit-identical regardless of
    /// worker count (DESIGN.md §9).
    pub pool: Pool,
}

impl Default for DetailedConfig {
    fn default() -> Self {
        Self {
            alpha: 1,
            beta: 10,
            gamma: 5,
            via_cost: 2,
            stitch_costs: true,
            stitch_order: true,
            margin: 8,
            node_cap: 60_000,
            retries: 3,
            engine: SearchEngine::Dial,
            cancel: CancelToken::default(),
            pool: Pool::serial(),
        }
    }
}

impl DetailedConfig {
    /// The Table VIII baseline: no stitch-aware costs or ordering.
    pub fn without_stitch_consideration() -> Self {
        Self {
            stitch_costs: false,
            stitch_order: false,
            ..Self::default()
        }
    }
}

/// Sentinel occupant for blockage cells. The stored raw occupancy is
/// `BLOCKAGE_NET + 1 == u32::MAX`, far above any real net index, so
/// blockage cells are impassable to every net and are never freed by
/// rip-up (which always names a concrete net).
pub const BLOCKAGE_NET: u32 = u32::MAX - 1;

/// Marks every cell covered by the circuit's blockages, on all layers,
/// as owned by [`BLOCKAGE_NET`]. Runs before pins are placed, so a pin
/// inside a blockage (already a validation error upstream) still ends up
/// owned by its net rather than silently walling the net in.
fn occupy_blockages(grid: &mut DetailedGrid, circuit: &Circuit) {
    for b in circuit.blockages() {
        for l in 0..grid.layers() {
            let layer = mebl_geom::Layer::new(l);
            for y in b.y0()..=b.y1() {
                for x in b.x0()..=b.x1() {
                    let node = grid.node(GridPoint::new(x, y, layer));
                    grid.occupy(node, BLOCKAGE_NET);
                }
            }
        }
    }
}

/// Outcome of detailed routing.
#[derive(Debug, Clone)]
pub struct DetailedResult {
    /// Final geometry per net (empty for failed nets).
    pub geometry: Vec<RouteGeometry>,
    /// Whether each net was fully connected.
    pub routed: Vec<bool>,
    /// Number of routed nets.
    pub routed_count: usize,
}

/// Routes all nets on the detailed grid.
///
/// Seeds from `tracks` are pre-placed (nets in `tracks.failed_nets` get no
/// seeds and are routed directly pin-to-pin); nets are ordered by bad-end
/// count when [`DetailedConfig::stitch_order`] is set; each net's
/// components are then joined by stitch-aware shortest paths and its final
/// cell set is pruned of dangling stubs before geometry extraction.
///
/// The per-column cost layers are built once here and shared by every
/// search; each worker keeps one reusable [`DialSolver`] so routing a net
/// costs an epoch bump, not an allocation storm.
pub fn route_detailed(
    circuit: &Circuit,
    plan: &StitchPlan,
    graph: &TileGraph,
    tracks: &TrackResult,
    config: &DetailedConfig,
) -> DetailedResult {
    let n = circuit.net_count();
    let mut grid = DetailedGrid::new(circuit.outline(), circuit.layer_count());
    let field = CostField::build(
        &grid,
        plan,
        config.alpha,
        config.beta,
        config.gamma,
        config.via_cost,
        config.stitch_costs,
    );
    let mut solver = DialSolver::new(field.span);
    occupy_blockages(&mut grid, circuit);

    // Fixed pins block their cells for everyone else, and allow the
    // pin-owning net to drop vias on stitching lines.
    let mut pin_cells: Vec<Vec<u32>> = vec![Vec::new(); n];
    let mut pin_points: Vec<FastSet<Point>> = vec![FastSet::default(); n];
    for (id, net) in circuit.iter_nets() {
        for pin in net.pins() {
            let node = grid.node(pin.position.on_layer(pin.layer));
            grid.occupy(node, id.0);
            pin_cells[id.0 as usize].push(node);
            pin_points[id.0 as usize].insert(pin.position);
        }
    }

    // Place seeds; runs interrupted by foreign pins split into sub-runs.
    let mut seed_components: Vec<Vec<Vec<u32>>> = vec![Vec::new(); n];
    for seg in &tracks.segments {
        if tracks.failed_nets.contains(&seg.net) {
            continue;
        }
        for run in realize_seeds(seg, graph) {
            let mut current: Vec<u32> = Vec::new();
            for cell in run {
                let node = grid.node(cell);
                if grid.passable(node, seg.net as u32) {
                    grid.occupy(node, seg.net as u32);
                    current.push(node);
                } else if !current.is_empty() {
                    seed_components[seg.net].push(std::mem::take(&mut current));
                }
            }
            if !current.is_empty() {
                seed_components[seg.net].push(current);
            }
        }
    }

    // Net ordering: more bad ends first (stitch-aware), then shorter nets.
    let mut bad_ends = vec![0usize; n];
    for seg in &tracks.segments {
        if seg.horizontal || tracks.failed_nets.contains(&seg.net) {
            continue;
        }
        bad_ends[seg.net] += usize::from(seg.end_is_bad(plan, false))
            + usize::from(seg.end_is_bad(plan, true));
    }
    let mut order: Vec<usize> = (0..n).collect();
    if config.stitch_order {
        order.sort_by_key(|&i| (Reverse(bad_ends[i]), circuit.nets()[i].hpwl(), i));
    } else {
        order.sort_by_key(|&i| (circuit.nets()[i].hpwl(), i));
    }

    let mut result = DetailedResult {
        geometry: vec![RouteGeometry::new(); n],
        routed: vec![false; n],
        routed_count: 0,
    };

    route_pass(
        plan, &field, config, &order, &mut grid, &mut solver, &pin_cells,
        &pin_points, &seed_components, &mut result,
    );

    // Final failed-net rip-up/reroute rounds: all failed nets' resources
    // are free now, and the expansion budget is raised — the "failed net
    // rip-up/rerouting" of the second bottom-up pass (Fig. 6).
    for round in 1..=2u32 {
        if result.routed_count == n {
            break;
        }
        if config.cancel.is_cancelled_now() {
            config.cancel.record(Degradation::new(
                Stage::Detailed,
                DegradationKind::BudgetExhausted,
                None,
                format!(
                    "rip-up/reroute rounds {round}..2 skipped ({} nets still failed)",
                    n - result.routed_count
                ),
            ));
            break;
        }
        let mut failed: Vec<usize> = order
            .iter()
            .copied()
            .filter(|&i| !result.routed[i])
            .collect();
        failed.sort_by_key(|&i| (circuit.nets()[i].hpwl(), i));
        let relaxed = DetailedConfig {
            node_cap: config.node_cap.checked_shl(2 * round).unwrap_or(usize::MAX),
            margin: config.margin.checked_shl(round).unwrap_or(Coord::MAX),
            ..config.clone()
        };
        let no_seeds: Vec<Vec<Vec<u32>>> = vec![Vec::new(); n];
        route_pass(
            plan, &field, &relaxed, &failed, &mut grid, &mut solver, &pin_cells,
            &pin_points, &no_seeds, &mut result,
        );
    }

    // Final blocker rip-up: a net still failed here survived a complete
    // search of its fully widened window, so it is walled in by routed
    // nets and no further widening can help. One serial round (identical
    // at every worker count by construction): price other nets' cells
    // instead of forbidding them, rip up the blockers along the cheapest
    // soft path, route the walled-in net through the freed corridor,
    // then reroute the ripped nets around it. Nets still unrouted
    // afterwards fall through to the degradation records below.
    if result.routed_count < n && !config.cancel.is_cancelled_now() {
        blocker_ripup_round(
            circuit, plan, &field, config, &mut grid, &mut solver, &pin_cells, &pin_points,
            &FastSet::default(), &order, &mut result,
        );
    }

    // Surface window-widening exhaustion: every net still unrouted after
    // the final round gets one recorded degradation, in net-index order
    // so the record stream never depends on worker scheduling. Runs that
    // were budget-cancelled skip this — their failed nets already carry
    // budget-exhausted records.
    if result.routed_count < n && !config.cancel.is_cancelled_now() {
        for net in 0..n {
            if !result.routed[net] {
                config.cancel.record(Degradation::new(
                    Stage::Detailed,
                    DegradationKind::SearchExhausted,
                    Some(net),
                    "search window widening exhausted; net left unrouted",
                ));
            }
        }
    }
    result
}

/// Incrementally routes only the nets whose `preserved` entry is `None`,
/// reconstructing grid occupancy from every preserved net's geometry.
///
/// `preserved[i] = Some((routed, geometry))` keeps net `i` exactly as the
/// prior outcome left it — including a preserved *failure*, which is not
/// retried; `None` marks net `i` as a target for (re-)routing. Preserved
/// occupancy is rebuilt from segment points and via endpoints plus every
/// net's pins, which is exactly the state the prior detailed run left
/// behind (geometry extraction frees all other cells), so ripping up the
/// target nets is an exact-inverse undo.
///
/// Target nets route seedless (pin-to-pin, like rip-up rounds) through
/// the same deterministic batched passes, relaxed rounds and blocker
/// rip-up as [`route_detailed`] — except rip-up victims are restricted
/// to target nets and preserved geometry is frozen, so a delta run never
/// disturbs what it promised to keep.
///
/// # Panics
///
/// Panics if `preserved.len() != circuit.net_count()`.
pub fn route_incremental(
    circuit: &Circuit,
    plan: &StitchPlan,
    config: &DetailedConfig,
    preserved: &[Option<(bool, RouteGeometry)>],
) -> DetailedResult {
    let n = circuit.net_count();
    assert!(
        preserved.len() == n,
        "preserved state must cover every net"
    );
    let mut grid = DetailedGrid::new(circuit.outline(), circuit.layer_count());
    let field = CostField::build(
        &grid,
        plan,
        config.alpha,
        config.beta,
        config.gamma,
        config.via_cost,
        config.stitch_costs,
    );
    let mut solver = DialSolver::new(field.span);
    occupy_blockages(&mut grid, circuit);

    let mut result = DetailedResult {
        geometry: vec![RouteGeometry::new(); n],
        routed: vec![false; n],
        routed_count: 0,
    };

    // Re-occupy preserved geometry first, then pins: a pin cell always
    // ends up owned by the pin's net, matching [`route_detailed`].
    let mut frozen: FastSet<u32> = FastSet::default();
    for (i, kept) in preserved.iter().enumerate() {
        let Some((routed, geometry)) = kept else {
            continue;
        };
        for seg in geometry.segments() {
            for gp in seg.points() {
                let node = grid.node(gp);
                grid.occupy(node, i as u32);
                frozen.insert(node);
            }
        }
        for via in geometry.vias() {
            for gp in [
                GridPoint::new(via.x, via.y, via.lower),
                GridPoint::new(via.x, via.y, via.upper()),
            ] {
                let node = grid.node(gp);
                grid.occupy(node, i as u32);
                frozen.insert(node);
            }
        }
        result.geometry[i] = geometry.clone();
        result.routed[i] = *routed;
        if *routed {
            result.routed_count += 1;
        }
    }
    let mut pin_cells: Vec<Vec<u32>> = vec![Vec::new(); n];
    let mut pin_points: Vec<FastSet<Point>> = vec![FastSet::default(); n];
    for (id, net) in circuit.iter_nets() {
        for pin in net.pins() {
            let node = grid.node(pin.position.on_layer(pin.layer));
            grid.occupy(node, id.0);
            pin_cells[id.0 as usize].push(node);
            pin_points[id.0 as usize].insert(pin.position);
        }
    }

    let mut targets: Vec<usize> = (0..n).filter(|&i| preserved[i].is_none()).collect();
    let target_count = targets.len();
    targets.sort_by_key(|&i| (circuit.nets()[i].hpwl(), i));

    let no_seeds: Vec<Vec<Vec<u32>>> = vec![Vec::new(); n];
    route_pass(
        plan, &field, config, &targets, &mut grid, &mut solver, &pin_cells,
        &pin_points, &no_seeds, &mut result,
    );

    let routed_targets =
        |result: &DetailedResult| targets.iter().filter(|&&i| result.routed[i]).count();
    for round in 1..=2u32 {
        if routed_targets(&result) == target_count {
            break;
        }
        if config.cancel.is_cancelled_now() {
            config.cancel.record(Degradation::new(
                Stage::Detailed,
                DegradationKind::BudgetExhausted,
                None,
                format!(
                    "rip-up/reroute rounds {round}..2 skipped ({} nets still failed)",
                    target_count - routed_targets(&result)
                ),
            ));
            break;
        }
        let mut failed: Vec<usize> = targets
            .iter()
            .copied()
            .filter(|&i| !result.routed[i])
            .collect();
        failed.sort_by_key(|&i| (circuit.nets()[i].hpwl(), i));
        let relaxed = DetailedConfig {
            node_cap: config.node_cap.checked_shl(2 * round).unwrap_or(usize::MAX),
            margin: config.margin.checked_shl(round).unwrap_or(Coord::MAX),
            ..config.clone()
        };
        route_pass(
            plan, &field, &relaxed, &failed, &mut grid, &mut solver, &pin_cells,
            &pin_points, &no_seeds, &mut result,
        );
    }

    if routed_targets(&result) < target_count && !config.cancel.is_cancelled_now() {
        blocker_ripup_round(
            circuit, plan, &field, config, &mut grid, &mut solver, &pin_cells, &pin_points,
            &frozen, &targets, &mut result,
        );
    }

    if !config.cancel.is_cancelled_now() {
        // Net-index order, matching `route_detailed`'s record stream.
        let mut missing: Vec<usize> = targets
            .iter()
            .copied()
            .filter(|&i| !result.routed[i])
            .collect();
        missing.sort_unstable();
        for net in missing {
            config.cancel.record(Degradation::new(
                Stage::Detailed,
                DegradationKind::SearchExhausted,
                Some(net),
                "search window widening exhausted; net left unrouted",
            ));
        }
    }
    result
}

/// Nets per speculative batch. Fixed (never derived from the worker
/// count) so batch membership — which determines which nets can race for
/// the same cells — stays identical for every `--threads` value.
const NET_BATCH: usize = 32;

/// Raw occupancy of a cell: 0 = free, `net + 1` = occupied.
fn raw_occupancy(grid: &DetailedGrid, node: u32) -> u32 {
    grid.occupant(node).map_or(0, |net| net + 1)
}

/// Writes a raw occupancy value back to a cell.
fn set_raw_occupancy(grid: &mut DetailedGrid, node: u32, value: u32) {
    if value == 0 {
        grid.free(node);
    } else {
        grid.occupy(node, value - 1);
    }
}

/// Journal of grid mutations made while routing one net speculatively.
///
/// Every occupy/free goes through the log, which remembers the cell's
/// prior raw occupancy, so the run can be (a) rolled back exactly and
/// (b) summarised as a first-touch delta to replay on the master grid.
#[derive(Default)]
struct ChangeLog {
    entries: Vec<(u32, u32)>,
}

impl ChangeLog {
    fn occupy(&mut self, grid: &mut DetailedGrid, node: u32, net: u32) {
        self.entries.push((node, raw_occupancy(grid, node)));
        grid.occupy(node, net);
    }

    fn free(&mut self, grid: &mut DetailedGrid, node: u32) {
        self.entries.push((node, raw_occupancy(grid, node)));
        grid.free(node);
    }

    /// Net effect as `(node, old, new)` raw values in first-touch order,
    /// no-op entries dropped.
    fn delta(&self, grid: &DetailedGrid) -> Vec<(u32, u32, u32)> {
        let mut first: FastMap<u32, u32> =
            FastMap::with_capacity_and_hasher(self.entries.len(), Default::default());
        let mut out: Vec<(u32, u32, u32)> = Vec::new();
        for &(node, old) in &self.entries {
            if let Entry::Vacant(e) = first.entry(node) {
                e.insert(old);
                out.push((node, old, 0));
            }
        }
        out.iter_mut()
            .for_each(|entry| entry.2 = raw_occupancy(grid, entry.0));
        out.retain(|&(_, old, new)| old != new);
        out
    }

    /// Restores every touched cell to its pre-log value.
    fn rollback(&self, grid: &mut DetailedGrid) {
        for &(node, old) in self.entries.iter().rev() {
            set_raw_occupancy(grid, node, old);
        }
    }
}

/// What one speculative net run wants to do to the master grid.
struct NetAttempt {
    routed: bool,
    geometry: RouteGeometry,
    delta: Vec<(u32, u32, u32)>,
}

/// One routing pass over `order` in deterministic speculative batches;
/// skips already-routed nets and updates `result` in place.
///
/// Per batch, each worker routes nets against a clone of the pre-batch
/// grid (with its own reusable solver) and rolls its clone back after
/// every net; the deltas are then committed sequentially in input order.
/// A delta whose newly claimed cells were taken by an earlier commit in
/// the same batch is discarded and the net re-routed inline against the
/// live grid — a decision that depends only on committed state, so the
/// same code path yields the same result for every pool width (a serial
/// pool runs the fan-out inline over one clone).
#[allow(clippy::too_many_arguments)]
fn route_pass(
    plan: &StitchPlan,
    field: &CostField,
    config: &DetailedConfig,
    order: &[usize],
    grid: &mut DetailedGrid,
    solver: &mut DialSolver,
    pin_cells: &[Vec<u32>],
    pin_points: &[FastSet<Point>],
    seed_components: &[Vec<Vec<u32>>],
    result: &mut DetailedResult,
) {
    let pending: Vec<usize> = order
        .iter()
        .copied()
        .filter(|&net| !result.routed[net])
        .collect();
    let mut skipped = 0usize;
    for batch in pending.chunks(NET_BATCH) {
        // Budget checks commit at batch boundaries: a skipped net stays
        // unrouted (pins only), which downstream reporting and the audit
        // already treat as "failed nets contribute nothing".
        if config.cancel.is_cancelled() {
            skipped += batch.len();
            continue;
        }
        let snapshot: &DetailedGrid = grid;
        let attempts: Vec<NetAttempt> = config.pool.par_map_with(
            batch,
            || (snapshot.clone(), DialSolver::new(field.span)),
            |ctx, _, &net| {
                let (local, scratch) = ctx;
                let mut log = ChangeLog::default();
                let (routed, geometry) = route_one_net(
                    plan, field, config, net, local, scratch, &mut log, pin_cells,
                    pin_points, seed_components,
                );
                let delta = log.delta(local);
                log.rollback(local);
                NetAttempt {
                    routed,
                    geometry,
                    delta,
                }
            },
        );
        for (&net, attempt) in batch.iter().zip(attempts) {
            // A speculative claim commits only if every cell it newly
            // occupies is still free on the master grid; frees touch the
            // net's own cells, which no batch peer can have changed.
            let clean = attempt
                .delta
                .iter()
                .all(|&(node, old, new)| old != 0 || new == 0 || grid.occupant(node).is_none());
            if clean {
                for &(node, _, new) in &attempt.delta {
                    set_raw_occupancy(grid, node, new);
                }
                if attempt.routed {
                    result.geometry[net] = attempt.geometry;
                    result.routed[net] = true;
                    result.routed_count += 1;
                }
            } else {
                // A batch peer won the race for shared cells: re-route
                // this net inline against the live grid, keeping changes.
                let mut log = ChangeLog::default();
                let (routed, geometry) = route_one_net(
                    plan, field, config, net, grid, solver, &mut log, pin_cells,
                    pin_points, seed_components,
                );
                if routed {
                    result.geometry[net] = geometry;
                    result.routed[net] = true;
                    result.routed_count += 1;
                }
            }
        }
    }
    if skipped > 0 {
        config.cancel.record(Degradation::new(
            Stage::Detailed,
            DegradationKind::BudgetExhausted,
            None,
            format!("{skipped} nets skipped before detailed routing"),
        ));
    }
}

/// Routes a single net on `grid`, journaling every mutation in `log`.
/// Returns whether the net was fully connected and its geometry.
#[allow(clippy::too_many_arguments)]
fn route_one_net(
    plan: &StitchPlan,
    field: &CostField,
    config: &DetailedConfig,
    net: usize,
    grid: &mut DetailedGrid,
    solver: &mut DialSolver,
    log: &mut ChangeLog,
    pin_cells: &[Vec<u32>],
    pin_points: &[FastSet<Point>],
    seed_components: &[Vec<Vec<u32>>],
) -> (bool, RouteGeometry) {
    let mut components: Vec<FastSet<u32>> = Vec::new();
    for &cell in &pin_cells[net] {
        components.push(std::iter::once(cell).collect());
    }
    for comp in &seed_components[net] {
        components.push(comp.iter().copied().collect());
    }
    merge_touching(grid, &mut components);

    let mut ok = connect_components(
        grid,
        solver,
        log,
        plan,
        field,
        config,
        net as u32,
        &pin_points[net],
        &mut components,
    );
    if !ok && !seed_components[net].is_empty() {
        // Failed-net rip-up/reroute (second bottom-up pass of the
        // framework): drop the net's planned segments and route the
        // pins directly.
        for comp in components.drain(..) {
            for cell in comp {
                if !pin_cells[net].contains(&cell) {
                    log.free(grid, cell);
                }
            }
        }
        for &cell in &pin_cells[net] {
            components.push(std::iter::once(cell).collect());
        }
        merge_touching(grid, &mut components);
        ok = connect_components(
            grid,
            solver,
            log,
            plan,
            field,
            config,
            net as u32,
            &pin_points[net],
            &mut components,
        );
    }
    // `ok` implies exactly one component remains.
    if let Some(full) = ok.then(|| components.pop()).flatten() {
        let mut cells = full.clone();
        prune_stubs(grid, &mut cells, &pin_cells[net]);
        // Free pruned cells on the grid.
        for &cell in &full {
            if !cells.contains(&cell) {
                log.free(grid, cell);
            }
        }
        (true, extract_geometry(grid, &cells))
    } else {
        // Rip up everything except the fixed pins.
        for comp in &components {
            for &cell in comp {
                if !pin_cells[net].contains(&cell) {
                    log.free(grid, cell);
                }
            }
        }
        if config.cancel.is_cancelled() {
            config.cancel.record(Degradation::new(
                Stage::Detailed,
                DegradationKind::BudgetExhausted,
                Some(net),
                "net abandoned mid-search and ripped up",
            ));
        }
        (false, RouteGeometry::new())
    }
}

/// Merges components that already touch (seed overlapping a pin etc.).
///
/// Near-linear: one ownership map over every cell, a union-find join
/// per shared cell or adjacent pair, then a single regroup pass that
/// keeps each surviving component at its first original position.
fn merge_touching(grid: &DetailedGrid, components: &mut Vec<FastSet<u32>>) {
    let k = components.len();
    if k <= 1 {
        return;
    }
    let total: usize = components.iter().map(FastSet::len).sum();
    let mut owner: FastMap<u32, u32> = FastMap::with_capacity_and_hasher(total, Default::default());
    let mut uf = UnionFind::new(k);
    for (i, comp) in components.iter().enumerate() {
        for &c in comp {
            match owner.entry(c) {
                Entry::Vacant(e) => {
                    e.insert(i as u32);
                }
                Entry::Occupied(e) => {
                    uf.union(i, *e.get() as usize);
                }
            }
        }
    }
    let mut buf = [0u32; 4];
    for (&c, &i) in &owner {
        let n = grid.node_moves(c, &mut buf);
        for &q in &buf[..n] {
            if let Some(&j) = owner.get(&q) {
                uf.union(i as usize, j as usize);
            }
        }
    }
    if uf.component_count() == k {
        return;
    }
    let mut slot: Vec<usize> = vec![usize::MAX; k];
    let mut out: Vec<FastSet<u32>> = Vec::with_capacity(k);
    for (i, comp) in components.drain(..).enumerate() {
        let r = uf.find(i);
        if slot[r] == usize::MAX {
            slot[r] = out.len();
            out.push(comp);
        } else {
            out[slot[r]].extend(comp);
        }
    }
    *components = out;
}

/// Connects all components of a net; `true` on success (exactly one
/// component remains, left at the back of `components`).
#[allow(clippy::too_many_arguments)]
fn connect_components(
    grid: &mut DetailedGrid,
    solver: &mut DialSolver,
    log: &mut ChangeLog,
    plan: &StitchPlan,
    field: &CostField,
    config: &DetailedConfig,
    net: u32,
    own_pins: &FastSet<Point>,
    components: &mut Vec<FastSet<u32>>,
) -> bool {
    while components.len() > 1 {
        // Smallest component as source. A plain fold (first minimum wins,
        // matching `min_by_key`) keeps this total: the loop guard makes
        // `components` non-empty.
        let mut src_idx = 0usize;
        for i in 1..components.len() {
            if components[i].len() < components[src_idx].len() {
                src_idx = i;
            }
        }
        let source = components.swap_remove(src_idx);
        // Sorted source order keeps tie-breaking (and thus paths)
        // deterministic despite set iteration order. The Dial solver
        // takes the remaining components as targets directly (it marks
        // them in its own stamp array and keeps one heuristic box per
        // component); only the legacy oracle needs a flattened set.
        let mut src_nodes: Vec<u32> = source.iter().copied().collect();
        src_nodes.sort_unstable();
        enum EngineInputs {
            Dial,
            Heap(FastSet<u32>),
        }
        let inputs = match config.engine {
            SearchEngine::Dial => EngineInputs::Dial,
            SearchEngine::LegacyHeap => {
                EngineInputs::Heap(components.iter().flat_map(|c| c.iter().copied()).collect())
            }
        };

        let mut found = None;
        for attempt in 0..=config.retries {
            // Retries widen the window *and* the expansion budget: the
            // stitch-aware weighted costs flatten the search frontier, so
            // congested regions near stitching lines need more nodes.
            let node_cap = config
                .node_cap
                .checked_shl(2 * attempt as u32)
                .unwrap_or(usize::MAX);
            let margin = config
                .margin
                .checked_shl(attempt as u32)
                .unwrap_or(Coord::MAX);
            let path = match &inputs {
                EngineInputs::Dial => solver.find_path(
                    grid, field, net, own_pins, &src_nodes, components, margin, node_cap,
                    &config.cancel,
                ),
                EngineInputs::Heap(targets) => legacy_astar(
                    grid, plan, config, net, own_pins, &src_nodes, targets, margin, node_cap,
                ),
            };
            if let Some(p) = path {
                found = Some(p);
                break;
            }
        }
        let Some(path) = found else {
            components.push(source);
            return false;
        };
        // Occupy path cells and merge.
        let Some(&reached) = path.last() else {
            // Search paths are non-empty by construction; treat a breach
            // as a failed connection and surface it.
            config.cancel.record(Degradation::new(
                Stage::Detailed,
                DegradationKind::InternalFallback,
                Some(net as usize),
                "connection dropped: search returned an empty path",
            ));
            components.push(source);
            return false;
        };
        for &cell in &path {
            log.occupy(grid, cell, net);
        }
        let Some(dst_idx) = components.iter().position(|c| c.contains(&reached)) else {
            // The path must end in a target component; treat a breach as a
            // failed connection and surface it.
            config.cancel.record(Degradation::new(
                Stage::Detailed,
                DegradationKind::InternalFallback,
                Some(net as usize),
                "connection dropped: path ended outside every target component",
            ));
            components.push(source);
            return false;
        };
        let mut merged = source;
        merged.extend(path);
        let dst = components.swap_remove(dst_idx);
        merged.extend(dst);
        components.push(merged);
    }
    true
}

/// The pre-dense-grid engine: windowed stitch-aware A\* (eq. 10) on the
/// generic heap-based search in `mebl-graph`, from `source` cells to any
/// cell of `targets`. Kept as the [`SearchEngine::LegacyHeap`] oracle
/// for the differential harness; its cost model is the Dial solver's
/// scaled by a constant factor, so both engines rank paths identically
/// up to tie-breaking. Returns the path including the source cell it
/// grew from and the reached target.
#[allow(clippy::too_many_arguments)]
fn legacy_astar(
    grid: &DetailedGrid,
    plan: &StitchPlan,
    config: &DetailedConfig,
    net: u32,
    own_pins: &FastSet<Point>,
    sources: &[u32],
    targets: &FastSet<u32>,
    margin: Coord,
    node_cap: usize,
) -> Option<Vec<u32>> {
    /// Historic cost scale: one α unit = 10 cost points.
    const UNIT: u64 = 10;
    /// Virtual start node fanning out to every source at zero cost.
    const START: u32 = u32::MAX;

    // Search window: bbox of endpoints plus margin.
    let window = Rect::bounding(
        sources
            .iter()
            .chain(targets.iter())
            .map(|&c| grid.point(c).point()),
    )?
    .expand(margin)
    .intersect(grid.outline())?;
    // Target bbox for the admissible multi-target heuristic.
    let tbox = Rect::bounding(targets.iter().map(|&c| grid.point(c).point()))?;
    let h = |p: GridPoint| -> u64 {
        let dx = if p.x < tbox.x0() {
            tbox.x0() - p.x
        } else if p.x > tbox.x1() {
            p.x - tbox.x1()
        } else {
            0
        };
        let dy = if p.y < tbox.y0() {
            tbox.y0() - p.y
        } else if p.y > tbox.y1() {
            p.y - tbox.y1()
        } else {
            0
        };
        ((dx + dy) as u64).saturating_mul(UNIT).saturating_mul(config.alpha)
    };

    // `sources` arrives sorted from `connect_components`.
    let mut expanded = 0usize;
    let mut aborted = false;
    let found = mebl_graph::astar(
        START,
        |&u: &u32| -> Vec<(u32, u64)> {
            if u == START {
                return sources.iter().map(|&s| (s, 0)).collect();
            }
            expanded += 1;
            // Charge the run budget and honour cancellation mid-search:
            // an aborted search rips the net up like any failed
            // connection, so partial geometry never leaks out.
            if expanded > node_cap || config.cancel.charge_expansions(1) {
                aborted = true;
                return Vec::new();
            }
            let pu = grid.point(u);
            let mut out = Vec::with_capacity(4);
            for q in grid.moves(pu) {
                if !window.contains(q.point()) {
                    continue;
                }
                let v = grid.node(q);
                if !grid.passable(v, net) {
                    continue;
                }
                let z_move = q.layer != pu.layer;
                let y_move = q.y != pu.y;
                // Hard constraints: never ride a stitching line
                // vertically; z-moves on a line only at the net's pins.
                if plan.is_on_line(pu.x) {
                    if y_move {
                        continue;
                    }
                    if z_move && !own_pins.contains(&pu.point()) {
                        continue;
                    }
                }
                let mut step = if z_move {
                    UNIT.saturating_mul(config.alpha).saturating_mul(config.via_cost)
                } else {
                    UNIT.saturating_mul(config.alpha)
                };
                if config.stitch_costs {
                    if z_move && plan.in_unfriendly_region(q.x) {
                        step = step.saturating_add(UNIT.saturating_mul(config.beta));
                    }
                    if !z_move && plan.in_escape_region(q.x) {
                        step = step.saturating_add(UNIT.saturating_mul(config.gamma));
                    }
                }
                out.push((v, step));
            }
            out
        },
        |&u| if u == START { 0 } else { h(grid.point(u)) },
        |&u| u != START && targets.contains(&u),
    );
    if aborted {
        return None;
    }
    let (mut path, _) = found?;
    path.retain(|&c| c != START);
    Some(path)
}

/// Soft-search cost for entering a cell owned by another net: far above
/// any realistic hard-path cost, so the search minimises the number of
/// blocking cells first and ordinary wire cost second.
const BLOCK_PENALTY: u64 = 1 << 32;

/// One rip-up/reroute round for walled-in nets (see the call site in
/// [`route_detailed`]). Serial on the master grid in deterministic net
/// order, so the outcome never depends on the worker count.
///
/// Only nets in `candidates` are recovered or ripped as blockers; cells
/// in `frozen` (preserved geometry in an incremental run) and blockage
/// cells are hard obstacles even for the soft search.
#[allow(clippy::too_many_arguments)]
fn blocker_ripup_round(
    circuit: &Circuit,
    plan: &StitchPlan,
    field: &CostField,
    config: &DetailedConfig,
    grid: &mut DetailedGrid,
    solver: &mut DialSolver,
    pin_cells: &[Vec<u32>],
    pin_points: &[FastSet<Point>],
    frozen: &FastSet<u32>,
    candidates: &[usize],
    result: &mut DetailedResult,
) {
    let n = pin_cells.len();
    // Other nets' pins can never be ripped up, and neither can blockage
    // cells or preserved geometry; the soft search treats them all as
    // hard obstacles.
    let mut all_pins: FastSet<u32> = pin_cells.iter().flatten().copied().collect();
    all_pins.extend(frozen.iter().copied());
    for node in 0..grid.cell_count() as u32 {
        if grid.occupant(node) == Some(BLOCKAGE_NET) {
            all_pins.insert(node);
        }
    }
    let rippable: FastSet<usize> = candidates.iter().copied().collect();
    let no_seeds: Vec<Vec<Vec<u32>>> = vec![Vec::new(); n];
    // The soft search and the recovery attempts get the expansion budget
    // one widening step past the retry ladder's last rung — still
    // proportional to the configured cap, so starved runs stay starved.
    let cap = config
        .node_cap
        .checked_shl(2 * (config.retries as u32 + 1))
        .unwrap_or(usize::MAX);
    // A margin the size of the grid makes any window cover the whole
    // outline after clamping, without overflowing coordinate arithmetic.
    let full_margin = grid.width().max(grid.height()) as Coord;
    let relaxed = DetailedConfig {
        node_cap: cap,
        margin: full_margin,
        retries: 0,
        ..config.clone()
    };
    let mut failed: Vec<usize> = candidates
        .iter()
        .copied()
        .filter(|&i| !result.routed[i])
        .collect();
    failed.sort_unstable();
    failed.dedup();
    failed.sort_by_key(|&i| (circuit.nets()[i].hpwl(), i));
    for net in failed {
        if result.routed[net] || config.cancel.is_cancelled_now() {
            continue;
        }
        // A few rip-up iterations per net: each either removes at least
        // one blocking net, routes the net, or proves it hopeless.
        let mut ripped: Vec<usize> = Vec::new();
        for _ in 0..4 {
            // Current components: the net's pins (failed nets own
            // nothing else), merged where they already touch.
            let mut components: Vec<FastSet<u32>> = pin_cells[net]
                .iter()
                .map(|&c| std::iter::once(c).collect())
                .collect();
            merge_touching(grid, &mut components);
            if components.len() <= 1 {
                break;
            }
            let mut src_idx = 0usize;
            for i in 1..components.len() {
                if components[i].len() < components[src_idx].len() {
                    src_idx = i;
                }
            }
            let source = components.swap_remove(src_idx);
            let mut src_nodes: Vec<u32> = source.iter().copied().collect();
            src_nodes.sort_unstable();
            let targets: FastSet<u32> = components.iter().flatten().copied().collect();
            let Some(path) = soft_astar(
                grid, plan, config, net as u32, &pin_points[net], &src_nodes, &targets,
                &all_pins, cap,
            ) else {
                break;
            };
            let mut blockers: Vec<usize> = path
                .iter()
                .filter_map(|&c| grid.occupant(c))
                .filter(|&o| o != net as u32 && o != BLOCKAGE_NET)
                .map(|o| o as usize)
                .filter(|o| rippable.contains(o))
                .collect();
            blockers.sort_unstable();
            blockers.dedup();
            for &b in &blockers {
                rip_net(grid, b, &pin_cells[b], result);
                ripped.push(b);
            }
            let mut log = ChangeLog::default();
            let (ok, geometry) = route_one_net(
                plan, field, &relaxed, net, grid, solver, &mut log, pin_cells, pin_points,
                &no_seeds,
            );
            if ok {
                result.geometry[net] = geometry;
                result.routed[net] = true;
                result.routed_count += 1;
                break;
            }
            if blockers.is_empty() {
                break;
            }
        }
        // Reroute the ripped nets around the recovered wire, in net
        // order; any that fail now stay failed and get recorded by the
        // caller.
        ripped.sort_unstable();
        ripped.dedup();
        for b in ripped {
            if result.routed[b] || config.cancel.is_cancelled_now() {
                continue;
            }
            let mut log = ChangeLog::default();
            let (ok, geometry) = route_one_net(
                plan, field, config, b, grid, solver, &mut log, pin_cells, pin_points,
                &no_seeds,
            );
            if ok {
                result.geometry[b] = geometry;
                result.routed[b] = true;
                result.routed_count += 1;
            }
        }
    }
}

/// Rips a routed net back to its pins: frees every grid cell it owns
/// except the pins and clears its published result.
fn rip_net(grid: &mut DetailedGrid, net: usize, pins: &[u32], result: &mut DetailedResult) {
    if !result.routed[net] {
        return;
    }
    let pin_set: FastSet<u32> = pins.iter().copied().collect();
    for node in 0..grid.cell_count() as u32 {
        if grid.occupant(node) == Some(net as u32) && !pin_set.contains(&node) {
            grid.free(node);
        }
    }
    result.geometry[net] = RouteGeometry::new();
    result.routed[net] = false;
    result.routed_count -= 1;
}

/// Last-ditch variant of [`legacy_astar`] for walled-in nets: cells
/// owned by other nets are traversable at [`BLOCK_PENALTY`] apiece
/// (their pins stay hard), over the whole grid rather than a window, so
/// the cheapest result names a minimal corridor of blockers to rip up.
/// Shares the hard stitch rules and expansion accounting with the hard
/// searches.
#[allow(clippy::too_many_arguments)]
fn soft_astar(
    grid: &DetailedGrid,
    plan: &StitchPlan,
    config: &DetailedConfig,
    net: u32,
    own_pins: &FastSet<Point>,
    sources: &[u32],
    targets: &FastSet<u32>,
    all_pins: &FastSet<u32>,
    node_cap: usize,
) -> Option<Vec<u32>> {
    const UNIT: u64 = 10;
    const START: u32 = u32::MAX;
    let tbox = Rect::bounding(targets.iter().map(|&c| grid.point(c).point()))?;
    let h = |p: GridPoint| -> u64 {
        let dx = if p.x < tbox.x0() {
            tbox.x0() - p.x
        } else if p.x > tbox.x1() {
            p.x - tbox.x1()
        } else {
            0
        };
        let dy = if p.y < tbox.y0() {
            tbox.y0() - p.y
        } else if p.y > tbox.y1() {
            p.y - tbox.y1()
        } else {
            0
        };
        ((dx + dy) as u64).saturating_mul(UNIT).saturating_mul(config.alpha)
    };

    let mut expanded = 0usize;
    let mut aborted = false;
    let found = mebl_graph::astar(
        START,
        |&u: &u32| -> Vec<(u32, u64)> {
            if u == START {
                return sources.iter().map(|&s| (s, 0)).collect();
            }
            expanded += 1;
            if expanded > node_cap || config.cancel.charge_expansions(1) {
                aborted = true;
                return Vec::new();
            }
            let pu = grid.point(u);
            let mut out = Vec::with_capacity(4);
            for q in grid.moves(pu) {
                let v = grid.node(q);
                let blocked = !grid.passable(v, net);
                if blocked && all_pins.contains(&v) {
                    continue;
                }
                let z_move = q.layer != pu.layer;
                let y_move = q.y != pu.y;
                // Hard constraints: never ride a stitching line
                // vertically; z-moves on a line only at the net's pins.
                if plan.is_on_line(pu.x) {
                    if y_move {
                        continue;
                    }
                    if z_move && !own_pins.contains(&pu.point()) {
                        continue;
                    }
                }
                let mut step = if z_move {
                    UNIT.saturating_mul(config.alpha).saturating_mul(config.via_cost)
                } else {
                    UNIT.saturating_mul(config.alpha)
                };
                if config.stitch_costs {
                    if z_move && plan.in_unfriendly_region(q.x) {
                        step = step.saturating_add(UNIT.saturating_mul(config.beta));
                    }
                    if !z_move && plan.in_escape_region(q.x) {
                        step = step.saturating_add(UNIT.saturating_mul(config.gamma));
                    }
                }
                if blocked {
                    step = step.saturating_add(BLOCK_PENALTY);
                }
                out.push((v, step));
            }
            out
        },
        |&u| if u == START { 0 } else { h(grid.point(u)) },
        |&u| u != START && targets.contains(&u),
    );
    if aborted {
        return None;
    }
    let (mut path, _) = found?;
    path.retain(|&c| c != START);
    Some(path)
}

/// Iteratively removes dangling non-pin cells (degree <= 1 in the net's
/// own cell set) — unused seed overhangs become antenna stubs otherwise.
/// The removal fixpoint is unique, so worklist order never shows in the
/// result.
fn prune_stubs(grid: &DetailedGrid, cells: &mut FastSet<u32>, pins: &[u32]) {
    let pin_set: FastSet<u32> = pins.iter().copied().collect();
    let degree = |cells: &FastSet<u32>, c: u32| -> usize {
        let mut buf = [0u32; 4];
        let n = grid.node_moves(c, &mut buf);
        buf[..n].iter().filter(|q| cells.contains(q)).count()
    };
    let mut queue: Vec<u32> = cells
        .iter()
        .copied()
        .filter(|&c| !pin_set.contains(&c) && degree(cells, c) <= 1)
        .collect();
    let mut buf = [0u32; 4];
    while let Some(c) = queue.pop() {
        if !cells.remove(&c) {
            continue;
        }
        let n = grid.node_moves(c, &mut buf);
        for &qn in &buf[..n] {
            if cells.contains(&qn) && !pin_set.contains(&qn) && degree(cells, qn) <= 1 {
                queue.push(qn);
            }
        }
    }
}

/// Converts a net's final cell set into wire segments and vias.
fn extract_geometry(grid: &DetailedGrid, cells: &FastSet<u32>) -> RouteGeometry {
    let mut geom = RouteGeometry::new();
    // Sorted cell order makes the emitted via list deterministic.
    let mut sorted_cells: Vec<u32> = cells.iter().copied().collect();
    sorted_cells.sort_unstable();
    let wh = grid.width() * grid.height();
    // One `(layer, track, coord)` triple per cell; sorting groups the
    // triples into maximal runs without any hash-map traffic.
    let mut runs: Vec<(u8, Coord, Coord)> = Vec::with_capacity(sorted_cells.len());
    for &c in &sorted_cells {
        let p = grid.point(c);
        if p.layer.is_horizontal() {
            runs.push((p.layer.index(), p.y, p.x));
        } else {
            runs.push((p.layer.index(), p.x, p.y));
        }
        // Vias: emit when the cell above is also present.
        if p.layer.index() + 1 < grid.layers() && cells.contains(&(c + wh)) {
            geom.push_via(Via::new(p.x, p.y, p.layer));
        }
    }
    runs.sort_unstable();
    let mut i = 0;
    while i < runs.len() {
        let (layer_idx, track, start) = runs[i];
        let mut end = start;
        while i + 1 < runs.len() {
            let (l2, t2, c2) = runs[i + 1];
            if l2 != layer_idx || t2 != track || c2 != end + 1 {
                break;
            }
            end = c2;
            i += 1;
        }
        if end > start {
            let layer = mebl_geom::Layer::new(layer_idx);
            let seg = if layer.is_horizontal() {
                Segment::horizontal(layer, track, start, end)
            } else {
                Segment::vertical(layer, track, start, end)
            };
            geom.push_segment(seg);
        }
        i += 1;
    }
    geom
}

#[cfg(test)]
mod tests {
    use super::*;
    use mebl_assign::{assign_tracks, extract_panels, TrackConfig};
    use mebl_geom::Layer;
    use mebl_netlist::{Net, Pin};
    use mebl_stitch::StitchConfig;
    use std::collections::{HashMap, HashSet};

    fn pin(x: i32, y: i32) -> Pin {
        Pin::new(Point::new(x, y), Layer::new(0))
    }

    fn route(nets: Vec<Net>, config: &DetailedConfig) -> (Circuit, StitchPlan, DetailedResult) {
        let outline = Rect::new(0, 0, 89, 89);
        let plan = StitchPlan::new(outline, StitchConfig::default());
        let circuit = Circuit::new("t", outline, 3, nets);
        let global = mebl_global::route_circuit(&circuit, &plan, &mebl_global::GlobalConfig::default());
        let panels = extract_panels(&global);
        let tracks = assign_tracks(&panels, &global.graph, &plan, 3, &TrackConfig::default());
        let res = route_detailed(&circuit, &plan, &global.graph, &tracks, config);
        (circuit, plan, res)
    }

    fn assert_connected(c: &Circuit, net: usize, geom: &RouteGeometry) {
        // Every pin must be reachable through the geometry: check that the
        // union of cells covered by segments+vias+pins is connected and
        // touches all pins.
        let mut cells: HashSet<GridPoint> = HashSet::new();
        for s in geom.segments() {
            cells.extend(s.points());
        }
        for v in geom.vias() {
            cells.insert(GridPoint::new(v.x, v.y, v.lower));
            cells.insert(GridPoint::new(v.x, v.y, v.upper()));
        }
        for p in c.nets()[net].pins() {
            cells.insert(p.position.on_layer(p.layer));
        }
        // BFS from the first pin.
        let start = c.nets()[net].pins()[0].position.on_layer(Layer::new(0));
        let mut seen = HashSet::from([start]);
        let mut queue = vec![start];
        while let Some(p) = queue.pop() {
            let neighbours = [
                GridPoint::new(p.x - 1, p.y, p.layer),
                GridPoint::new(p.x + 1, p.y, p.layer),
                GridPoint::new(p.x, p.y - 1, p.layer),
                GridPoint::new(p.x, p.y + 1, p.layer),
                GridPoint::new(p.x, p.y, Layer::new(p.layer.index().wrapping_sub(1))),
                GridPoint::new(p.x, p.y, p.layer.above()),
            ];
            for q in neighbours {
                if cells.contains(&q) && seen.insert(q) {
                    queue.push(q);
                }
            }
        }
        for p in c.nets()[net].pins() {
            assert!(
                seen.contains(&p.position.on_layer(p.layer)),
                "pin {} unreachable",
                p.position
            );
        }
    }

    #[test]
    fn routes_simple_two_pin_net() {
        let (c, plan, res) = route(
            vec![Net::new("a", vec![pin(2, 2), pin(40, 40)])],
            &DetailedConfig::default(),
        );
        assert_eq!(res.routed_count, 1);
        assert_connected(&c, 0, &res.geometry[0]);
        let v = mebl_stitch::check_geometry(&plan, &res.geometry[0], |_| false);
        assert!(v.hard_clean(), "{v:?}");
    }

    #[test]
    fn routes_multi_pin_net() {
        let (c, plan, res) = route(
            vec![Net::new("a", vec![pin(2, 2), pin(70, 10), pin(40, 80), pin(85, 85)])],
            &DetailedConfig::default(),
        );
        assert_eq!(res.routed_count, 1);
        assert_connected(&c, 0, &res.geometry[0]);
        let v = mebl_stitch::check_geometry(&plan, &res.geometry[0], |_| false);
        assert_eq!(v.vertical_violations, 0);
    }

    #[test]
    fn several_nets_no_shorts() {
        let nets = vec![
            Net::new("a", vec![pin(2, 2), pin(60, 60)]),
            Net::new("b", vec![pin(5, 60), pin(60, 5)]),
            Net::new("c", vec![pin(30, 2), pin(30, 85)]),
        ];
        let (c, _, res) = route(nets, &DetailedConfig::default());
        assert_eq!(res.routed_count, 3);
        // No two nets may share a cell.
        let mut seen: HashMap<GridPoint, usize> = HashMap::new();
        for (i, g) in res.geometry.iter().enumerate() {
            for s in g.segments() {
                for p in s.points() {
                    if let Some(&other) = seen.get(&p) {
                        assert_eq!(other, i, "short between nets {other} and {i} at {p}");
                    }
                    seen.insert(p, i);
                }
            }
        }
        for i in 0..3 {
            assert_connected(&c, i, &res.geometry[i]);
        }
    }

    #[test]
    fn hard_constraints_always_hold_even_without_stitch_costs() {
        let nets: Vec<Net> = (0..8)
            .map(|i| {
                Net::new(
                    format!("n{i}"),
                    vec![pin(10 + i * 3, 5 + i * 2), pin(50 + i * 4, 70 - i * 3)],
                )
            })
            .collect();
        let (c, plan, res) = route(nets, &DetailedConfig::without_stitch_consideration());
        assert!(res.routed_count >= 7);
        for (i, g) in res.geometry.iter().enumerate() {
            if !res.routed[i] {
                continue;
            }
            let pins: HashSet<Point> = c.nets()[i].pins().iter().map(|p| p.position).collect();
            let v = mebl_stitch::check_geometry(&plan, g, |p| pins.contains(&p));
            assert!(v.hard_clean(), "net {i}: {v:?}");
        }
    }

    #[test]
    fn pin_on_stitch_line_gets_via_violation_but_stays_legal() {
        // Pin exactly on line x = 15; net must go vertical somewhere, so a
        // via at the pin is required and counted as a (tolerated) #VV.
        let (c, plan, res) = route(
            vec![Net::new("a", vec![pin(15, 5), pin(15, 70)])],
            &DetailedConfig::default(),
        );
        assert_eq!(res.routed_count, 1);
        let pins: HashSet<Point> = c.nets()[0].pins().iter().map(|p| p.position).collect();
        let v = mebl_stitch::check_geometry(&plan, &res.geometry[0], |p| pins.contains(&p));
        assert!(v.hard_clean(), "{v:?}");
        assert!(v.vertical_violations == 0);
    }

    #[test]
    fn stitch_costs_reduce_short_polygons() {
        // A congested pattern around a stitch line: nets whose natural
        // turn points sit in unfriendly regions.
        let mut nets = Vec::new();
        for i in 0..12 {
            nets.push(Net::new(
                format!("n{i}"),
                vec![pin(3 + i, 10 + i * 5), pin(17, 12 + i * 5)],
            ));
        }
        let (c, plan, aware) = route(nets.clone(), &DetailedConfig::default());
        let (_, _, blind) = route(nets, &DetailedConfig::without_stitch_consideration());
        let count = |res: &DetailedResult| -> usize {
            res.geometry
                .iter()
                .enumerate()
                .map(|(i, g)| {
                    let pins: HashSet<Point> =
                        c.nets()[i].pins().iter().map(|p| p.position).collect();
                    mebl_stitch::check_geometry(&plan, g, |p| pins.contains(&p)).short_polygons
                })
                .sum()
        };
        assert!(
            count(&aware) <= count(&blind),
            "aware {} vs blind {}",
            count(&aware),
            count(&blind)
        );
    }

    #[test]
    fn failed_connection_reports_unrouted() {
        // A net whose second pin is walled off by a dense blocker net
        // cannot fail here (grid is generous), so instead verify the
        // node-cap fallback: a tiny cap forces failure.
        let (_, _, res) = route(
            vec![Net::new("a", vec![pin(2, 2), pin(80, 80)])],
            &DetailedConfig {
                node_cap: 1,
                retries: 0,
                ..DetailedConfig::default()
            },
        );
        assert_eq!(res.routed_count, 0);
        assert!(res.geometry[0].is_empty());
    }

    #[test]
    fn legacy_engine_routes_and_stays_hard_clean() {
        let (c, plan, res) = route(
            vec![
                Net::new("a", vec![pin(2, 2), pin(40, 40)]),
                Net::new("b", vec![pin(5, 60), pin(60, 5)]),
            ],
            &DetailedConfig {
                engine: SearchEngine::LegacyHeap,
                ..DetailedConfig::default()
            },
        );
        assert_eq!(res.routed_count, 2);
        for i in 0..2 {
            assert_connected(&c, i, &res.geometry[i]);
            let pins: HashSet<Point> = c.nets()[i].pins().iter().map(|p| p.position).collect();
            let v = mebl_stitch::check_geometry(&plan, &res.geometry[i], |p| pins.contains(&p));
            assert!(v.hard_clean(), "net {i}: {v:?}");
        }
    }

    #[test]
    fn engines_route_the_same_nets_on_a_small_case() {
        let nets: Vec<Net> = (0..6)
            .map(|i| {
                Net::new(
                    format!("n{i}"),
                    vec![pin(4 + i * 5, 8 + i * 7), pin(60 - i * 4, 75 - i * 9)],
                )
            })
            .collect();
        let (_, _, dial) = route(nets.clone(), &DetailedConfig::default());
        let (_, _, legacy) = route(
            nets,
            &DetailedConfig {
                engine: SearchEngine::LegacyHeap,
                ..DetailedConfig::default()
            },
        );
        assert_eq!(dial.routed_count, legacy.routed_count);
        assert_eq!(dial.routed, legacy.routed);
    }

    #[test]
    fn blockages_are_avoided() {
        let outline = Rect::new(0, 0, 89, 89);
        let plan = StitchPlan::new(outline, StitchConfig::default());
        // A wall across the net's straight-line path, with room around it.
        let blockage = Rect::new(40, 10, 42, 70);
        let circuit = Circuit::with_blockages(
            "t",
            outline,
            3,
            vec![Net::new("a", vec![pin(2, 30), pin(80, 30)])],
            vec![blockage],
        );
        let global =
            mebl_global::route_circuit(&circuit, &plan, &mebl_global::GlobalConfig::default());
        let panels = extract_panels(&global);
        let tracks = assign_tracks(&panels, &global.graph, &plan, 3, &TrackConfig::default());
        let res = route_detailed(
            &circuit,
            &plan,
            &global.graph,
            &tracks,
            &DetailedConfig::default(),
        );
        assert_eq!(res.routed_count, 1);
        let g = &res.geometry[0];
        for s in g.segments() {
            for p in s.points() {
                assert!(!blockage.contains(p.point()), "segment cell {p:?} in blockage");
            }
        }
        for v in g.vias() {
            assert!(
                !blockage.contains(Point::new(v.x, v.y)),
                "via ({}, {}) in blockage",
                v.x,
                v.y
            );
        }
    }

    #[test]
    fn incremental_preserves_and_reroutes() {
        let nets = vec![
            Net::new("a", vec![pin(2, 2), pin(60, 60)]),
            Net::new("b", vec![pin(5, 60), pin(60, 5)]),
            Net::new("c", vec![pin(30, 2), pin(30, 85)]),
        ];
        let (c, plan, full) = route(nets, &DetailedConfig::default());
        assert_eq!(full.routed_count, 3);

        // All preserved: the result must be exactly the prior one.
        let all: Vec<Option<(bool, RouteGeometry)>> = (0..3)
            .map(|i| Some((full.routed[i], full.geometry[i].clone())))
            .collect();
        let same = route_incremental(&c, &plan, &DetailedConfig::default(), &all);
        assert_eq!(same.routed, full.routed);
        for i in 0..3 {
            assert_eq!(same.geometry[i], full.geometry[i], "net {i}");
        }

        // One target: nets 0 and 2 stay untouched, net 1 re-routes.
        let mut partial = all;
        partial[1] = None;
        let inc = route_incremental(&c, &plan, &DetailedConfig::default(), &partial);
        assert_eq!(inc.routed_count, 3);
        assert_eq!(inc.geometry[0], full.geometry[0]);
        assert_eq!(inc.geometry[2], full.geometry[2]);
        assert_connected(&c, 1, &inc.geometry[1]);
        // No shorts between the re-routed net and the preserved ones.
        let mut seen: HashMap<GridPoint, usize> = HashMap::new();
        for (i, g) in inc.geometry.iter().enumerate() {
            for s in g.segments() {
                for p in s.points() {
                    if let Some(&other) = seen.get(&p) {
                        assert_eq!(other, i, "short between nets {other} and {i} at {p}");
                    }
                    seen.insert(p, i);
                }
            }
        }
    }

    #[test]
    fn geometry_has_no_dangling_stubs() {
        let (c, _, res) = route(
            vec![Net::new("a", vec![pin(2, 2), pin(70, 70)])],
            &DetailedConfig::default(),
        );
        // Every segment endpoint must either carry a via, meet another
        // segment, or be a pin.
        let g = &res.geometry[0];
        let pins: HashSet<Point> = c.nets()[0].pins().iter().map(|p| p.position).collect();
        for s in g.segments() {
            let (a, b) = s.endpoints();
            for end in [a, b] {
                let has_via = g.has_via_at(end, s.layer);
                let meets = g
                    .segments()
                    .iter()
                    .filter(|o| *o != s)
                    .any(|o| o.layer == s.layer && o.contains_point(end));
                let is_pin = s.layer.index() == 0 && pins.contains(&end);
                assert!(
                    has_via || meets || is_pin,
                    "dangling end {end} of {s:?}"
                );
            }
        }
    }
}
