//! Stitch-aware detailed routing (paper §III-D).
//!
//! The final stage realises every net on the full track grid. Assigned
//! segments from track assignment are pre-placed as **seeds**; a dense-grid
//! Dial (bucket-queue) search — with precomputed per-column cost layers and
//! solver state reused across nets — then performs pin-to-segment and
//! segment-to-segment connection with the stitch-aware weighted grid cost
//! of eq. (10):
//!
//! `Cgrid(j) = Cgrid(i) + α·Cwl(i,j) + β·Cvsu(i,j) + γ·Cesc(j)`
//!
//! * `Cwl` — wirelength (and via) cost of the step;
//! * `Cvsu` — large cost for a z-move (via) inside a stitch unfriendly
//!   region, so line ends avoid landing vias there;
//! * `Cesc` — cost for occupying the **escape region** (the four tracks
//!   nearest a stitching line), reserving it for paths that must cross.
//!
//! Hard constraints are enforced structurally: wires may only cross a
//! stitching line in the x-direction, and z-moves on a line are allowed
//! only at the net's own fixed pins. **Stitch-aware net ordering** routes
//! nets with more bad ends first (Fig. 14). Both stitch levers can be
//! switched off ([`DetailedConfig`]) to reproduce the "w/o stitch
//! consideration" detailed router of Table VIII.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod dense;
mod grid;
mod router;
mod seeds;

pub use dense::GridWindow;
pub use grid::DetailedGrid;
pub use router::{
    route_detailed, route_incremental, DetailedConfig, DetailedResult, SearchEngine, BLOCKAGE_NET,
};
pub use seeds::realize_seeds;
