//! MEBL016 fixture: a library root without the safety attribute.
pub fn f() {}
