#![forbid(unsafe_code)]
//! MEBL016 fixture: the safety attribute is present.
pub fn f() {}
