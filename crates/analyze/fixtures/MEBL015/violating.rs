#![forbid(unsafe_code)]
//! MEBL015 fixture: `RouteError::Lost` is built but never matched.
use mebl_route::RouteError;
pub fn emit(ok: bool) -> RouteError {
    if ok {
        RouteError::Seen(String::new())
    } else {
        RouteError::Lost
    }
}
pub fn show(e: &RouteError) -> u8 {
    match e {
        RouteError::Seen(_) => 1,
        _ => 2,
    }
}
