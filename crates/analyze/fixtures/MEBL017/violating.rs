//! MEBL017 fixture: direct filesystem access outside the persistence
//! layer.
pub fn f(path: &str) -> bool {
    std::fs::metadata(path).is_ok()
}
