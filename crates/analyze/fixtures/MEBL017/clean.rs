//! MEBL017 fixture: durable state flows through the store API instead
//! of raw filesystem calls.
pub fn f(payload: &[u8]) -> usize {
    payload.len()
}
