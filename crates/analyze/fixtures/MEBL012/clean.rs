#![forbid(unsafe_code)]
//! MEBL012 fixture: dependencies point strictly down.
pub fn f(x: u32) -> u32 {
    x
}
