#![forbid(unsafe_code)]
//! MEBL012 fixture: a foundation crate reaching up into the engine.
use mebl_route::Router;
pub fn f(_r: Router) {}
