//! MEBL007 fixture: a raw socket outside the service crate.
pub fn f() {
    let _ = std::net::TcpListener::bind("127.0.0.1:0");
}
