//! MEBL007 fixture: wire traffic goes through the testkit client.
pub fn f(body: &str) -> usize {
    body.len()
}
