//! MEBL003 fixture: a wall-clock read outside the sanctioned sites.
pub fn f() -> std::time::Instant {
    std::time::Instant::now()
}
