//! MEBL003 fixture: timing is delegated to the report stopwatch.
pub fn f(elapsed_us: u64) -> u64 {
    elapsed_us
}
