//! MEBL001 fixture: panics in library code.
pub fn f(x: Option<u32>) -> u32 {
    x.unwrap()
}
