//! MEBL001 fixture: the None case is handled.
pub fn f(x: Option<u32>) -> u32 {
    x.unwrap_or(0)
}
