//! MEBL004 fixture: the library returns data instead of printing.
pub fn f(x: u32) -> String {
    format!("x = {x}")
}
