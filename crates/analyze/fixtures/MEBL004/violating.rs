//! MEBL004 fixture: debug prints in a library crate.
pub fn f(x: u32) {
    println!("x = {x}");
}
