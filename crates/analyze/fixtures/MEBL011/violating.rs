//! MEBL011 fixture: raw arithmetic on cost-typed values.
pub fn bound(cost: i64, drop_penalty: i64) -> i64 {
    cost + drop_penalty
}
