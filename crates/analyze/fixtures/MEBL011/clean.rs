//! MEBL011 fixture: saturating cost arithmetic.
pub fn bound(cost: i64, drop_penalty: i64) -> i64 {
    cost.saturating_add(drop_penalty)
}
