//! MEBL010 fixture: ordered map, deterministic iteration.
use std::collections::BTreeMap;
pub fn f() -> usize {
    let m: BTreeMap<u32, u32> = BTreeMap::new();
    m.len()
}
