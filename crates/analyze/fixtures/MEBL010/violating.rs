//! MEBL010 fixture: a std hash map in library code.
use std::collections::HashMap;
pub fn f() -> usize {
    let m: HashMap<u32, u32> = HashMap::new();
    m.len()
}
