//! MEBL002 fixture: an asserted-unreachable fallback.
pub fn f(x: u32) -> u32 {
    match x {
        0 => 1,
        _ => unreachable!("callers pass zero"),
    }
}
