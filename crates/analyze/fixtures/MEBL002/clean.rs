//! MEBL002 fixture: the impossible branch is a typed error.
pub fn f(x: u32) -> Result<u32, String> {
    match x {
        0 => Ok(1),
        other => Err(format!("unexpected {other}")),
    }
}
