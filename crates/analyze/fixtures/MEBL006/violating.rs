//! MEBL006 fixture: an ad-hoc thread.
pub fn f() {
    std::thread::spawn(|| {});
}
