//! MEBL006 fixture: fan-out goes through the deterministic pool.
pub fn f(work: Vec<u32>) -> Vec<u32> {
    work
}
