//! MEBL018 fixture: dialing a worker directly instead of going through
//! the coordinator.
pub fn f(addr: &str) -> bool {
    std::net::TcpStream::connect(addr).is_ok()
}
