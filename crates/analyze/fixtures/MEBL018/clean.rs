//! MEBL018 fixture: the listening side of a socket is fine; only
//! outbound connects are confined to the coordinator.
pub fn f() -> bool {
    std::net::TcpListener::bind("127.0.0.1:0").is_ok()
}
