//! MEBL008 fixture: a heap back in the detailed router.
use std::collections::BinaryHeap;
pub fn f() -> BinaryHeap<u32> {
    BinaryHeap::new()
}
