//! MEBL008 fixture: the hot path stays on the bucket queue.
pub fn f(frontier: &mut Vec<u32>) -> Option<u32> {
    frontier.pop()
}
