#![forbid(unsafe_code)]
//! MEBL014 fixture: `RouteError::Lost` is matched but never built.
use mebl_route::RouteError;
pub fn emit() -> RouteError {
    RouteError::Seen(String::new())
}
pub fn show(e: &RouteError) -> u8 {
    match e {
        RouteError::Seen(_) => 1,
        RouteError::Lost => 2,
    }
}
