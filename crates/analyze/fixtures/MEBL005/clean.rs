// TODO(#12): tracked follow-up with an owner
pub fn f() {}
