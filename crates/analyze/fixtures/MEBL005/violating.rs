// TODO: make this faster someday
pub fn f() {}
