//! The workspace model: every source file (lexed, with line views),
//! every crate manifest (name + dependency edges), the layering
//! declaration and the allowlist text.
//!
//! Rules never touch the filesystem — they see only this model, which
//! makes every rule testable against synthetic in-memory workspaces.

use std::path::{Path, PathBuf};

use crate::lexer::Token;
use crate::manifest::{parse_cargo_toml, parse_layering, Layering, Manifest};
use crate::view::CodeView;

/// Workspace-relative path of the allowlist file.
pub const ALLOWLIST_PATH: &str = "crates/xtask/lint-allow.txt";

/// Workspace-relative path of the layering declaration.
pub const LAYERING_PATH: &str = "crates/analyze/layering.toml";

/// Crates whose whole purpose is user-facing I/O.
pub const BINARY_CRATES: &[&str] = &["cli", "xtask"];

/// Crates that are test/bench infrastructure.
pub const HARNESS_CRATES: &[&str] = &["bench", "testkit"];

/// The crate short name a workspace-relative path belongs to, if any
/// (root `tests/` files belong to no crate).
#[must_use]
pub fn crate_of(rel: &str) -> Option<&str> {
    rel.strip_prefix("crates/")?.split('/').next()
}

/// One lexed source file.
#[derive(Debug)]
pub struct SourceFile {
    /// Workspace-relative path with `/` separators.
    pub rel: String,
    /// Full source text.
    pub text: String,
    /// Total token stream (see [`crate::lexer`]).
    pub tokens: Vec<Token>,
    /// Synchronized raw/code/test-mask line views.
    pub view: CodeView,
}

impl SourceFile {
    /// Lexes `text` into a model file.
    #[must_use]
    pub fn new(rel: &str, text: &str) -> SourceFile {
        let (tokens, view) = CodeView::new(text);
        SourceFile {
            rel: rel.to_string(),
            text: text.to_string(),
            tokens,
            view,
        }
    }
}

/// One workspace crate, read from `crates/<short>/Cargo.toml`.
#[derive(Debug, Clone)]
pub struct CrateInfo {
    /// Directory name under `crates/` (`geom`).
    pub short: String,
    /// Package name (`mebl-geom`).
    pub name: String,
    /// Rust identifier form (`mebl_geom`), as seen in `use` paths.
    pub ident: String,
    /// `[dependencies]` on workspace crates, by package name.
    pub deps: Vec<String>,
    /// `[dev-dependencies]` on workspace crates, by package name.
    pub dev_deps: Vec<String>,
    /// Whether the crate has a `src/lib.rs`.
    pub has_lib: bool,
}

impl CrateInfo {
    /// Builds a crate record from a parsed manifest.
    #[must_use]
    pub fn from_manifest(short: &str, m: &Manifest, has_lib: bool) -> CrateInfo {
        CrateInfo {
            short: short.to_string(),
            name: m.name.clone(),
            ident: m.name.replace('-', "_"),
            deps: m.deps.clone(),
            dev_deps: m.dev_deps.clone(),
            has_lib,
        }
    }
}

/// The full analysis input.
#[derive(Debug)]
pub struct Workspace {
    /// All crates, sorted by short name.
    pub crates: Vec<CrateInfo>,
    /// All source files, sorted by relative path.
    pub files: Vec<SourceFile>,
    /// The parsed layering declaration.
    pub layering: Layering,
    /// Raw allowlist text (empty when the file is absent).
    pub allow_text: String,
}

impl Workspace {
    /// Loads the workspace rooted at `root` from disk.
    pub fn load(root: &Path) -> Result<Workspace, String> {
        let mut crates = Vec::new();
        let crates_dir = root.join("crates");
        let entries = std::fs::read_dir(&crates_dir)
            .map_err(|e| format!("cannot read {}: {e}", crates_dir.display()))?;
        let mut dirs: Vec<PathBuf> = entries
            .flatten()
            .map(|e| e.path())
            .filter(|p| p.is_dir())
            .collect();
        dirs.sort();
        for dir in dirs {
            let manifest_path = dir.join("Cargo.toml");
            if !manifest_path.is_file() {
                continue;
            }
            let short = dir
                .file_name()
                .map(|n| n.to_string_lossy().to_string())
                .unwrap_or_default();
            let text = std::fs::read_to_string(&manifest_path)
                .map_err(|e| format!("cannot read crates/{short}/Cargo.toml: {e}"))?;
            let rel = format!("crates/{short}/Cargo.toml");
            let manifest = parse_cargo_toml(&rel, &text)?;
            let has_lib = dir.join("src/lib.rs").is_file();
            crates.push(CrateInfo::from_manifest(&short, &manifest, has_lib));
        }

        let mut paths = Vec::new();
        collect_rust_files(&root.join("crates"), &mut paths);
        collect_rust_files(&root.join("tests"), &mut paths);
        paths.sort();
        let mut files = Vec::new();
        for path in &paths {
            let rel = path
                .strip_prefix(root)
                .unwrap_or(path)
                .to_string_lossy()
                .replace('\\', "/");
            let text = std::fs::read_to_string(path)
                .map_err(|e| format!("cannot read {rel}: {e}"))?;
            files.push(SourceFile::new(&rel, &text));
        }

        let layering_path = root.join(LAYERING_PATH);
        let layering_text = std::fs::read_to_string(&layering_path)
            .map_err(|e| format!("cannot read {LAYERING_PATH}: {e}"))?;
        let layering = parse_layering(LAYERING_PATH, &layering_text)?;

        let allow_text = std::fs::read_to_string(root.join(ALLOWLIST_PATH)).unwrap_or_default();

        Ok(Workspace {
            crates,
            files,
            layering,
            allow_text,
        })
    }

    /// Builds a synthetic workspace for tests: `files` are
    /// `(rel_path, source)` pairs, `manifests` are
    /// `(short_name, cargo_toml_text)` pairs, `layering_toml` is the
    /// declaration text.
    pub fn in_memory(
        files: &[(&str, &str)],
        manifests: &[(&str, &str)],
        layering_toml: &str,
    ) -> Result<Workspace, String> {
        let mut crates = Vec::new();
        for (short, text) in manifests {
            let rel = format!("crates/{short}/Cargo.toml");
            let manifest = parse_cargo_toml(&rel, text)?;
            let has_lib = files.iter().any(|(f, _)| f == &format!("crates/{short}/src/lib.rs"));
            crates.push(CrateInfo::from_manifest(short, &manifest, has_lib));
        }
        crates.sort_by(|a, b| a.short.cmp(&b.short));
        let mut model_files: Vec<SourceFile> = files
            .iter()
            .map(|(rel, text)| SourceFile::new(rel, text))
            .collect();
        model_files.sort_by(|a, b| a.rel.cmp(&b.rel));
        let layering = parse_layering(LAYERING_PATH, layering_toml)?;
        Ok(Workspace {
            crates,
            files: model_files,
            layering,
            allow_text: String::new(),
        })
    }

    /// Looks up a crate record by short name.
    #[must_use]
    pub fn crate_by_short(&self, short: &str) -> Option<&CrateInfo> {
        self.crates.iter().find(|c| c.short == short)
    }

    /// Looks up a crate record by `use`-path identifier (`mebl_geom`).
    #[must_use]
    pub fn crate_by_ident(&self, ident: &str) -> Option<&CrateInfo> {
        self.crates.iter().find(|c| c.ident == ident)
    }
}

/// Recursively collects `.rs` files, skipping build output (`target`)
/// and the analyzer's fixture corpus (`fixtures` directories hold
/// deliberately violating sources).
fn collect_rust_files(dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return;
    };
    for entry in entries.flatten() {
        let path = entry.path();
        if path.is_dir() {
            if path
                .file_name()
                .is_some_and(|n| n == "target" || n == "fixtures")
            {
                continue;
            }
            collect_rust_files(&path, out);
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const LAYERS: &str = "\
[[layer]]
name = \"foundation\"
crates = [\"geom\"]
[[layer]]
name = \"app\"
crates = [\"cli\"]
";

    #[test]
    fn crate_of_classifies_paths() {
        assert_eq!(crate_of("crates/geom/src/lib.rs"), Some("geom"));
        assert_eq!(crate_of("tests/flow.rs"), None);
        assert_eq!(crate_of("README.md"), None);
    }

    #[test]
    fn in_memory_workspace_builds() {
        let ws = Workspace::in_memory(
            &[
                ("crates/geom/src/lib.rs", "#![forbid(unsafe_code)]\n"),
                ("crates/cli/src/main.rs", "fn main() {}\n"),
            ],
            &[
                ("geom", "[package]\nname = \"mebl-geom\"\n"),
                (
                    "cli",
                    "[package]\nname = \"mebl-cli\"\n[dependencies]\nmebl-geom.workspace = true\n",
                ),
            ],
            LAYERS,
        )
        .unwrap();
        assert_eq!(ws.crates.len(), 2);
        let cli = ws.crate_by_short("cli").unwrap();
        assert_eq!(cli.deps, vec!["mebl-geom"]);
        assert!(!cli.has_lib);
        assert!(ws.crate_by_short("geom").unwrap().has_lib);
        assert_eq!(ws.crate_by_ident("mebl_geom").unwrap().short, "geom");
        assert_eq!(ws.layering.index_of("cli"), Some(1));
        assert_eq!(ws.files[0].rel, "crates/cli/src/main.rs");
    }
}
