//! Layering rules: MEBL012 (dependency and `use` edges must point to a
//! strictly lower layer) and MEBL013 (the layering declaration must
//! cover the workspace exactly).

use crate::diag::{Diagnostic, Severity};
use crate::lexer::TokenKind;
use crate::workspace::{crate_of, Workspace, LAYERING_PATH};

fn decl_diag(message: String) -> Diagnostic {
    Diagnostic {
        code: "MEBL013",
        rule: "layering-decl",
        severity: Severity::Error,
        file: LAYERING_PATH.to_string(),
        line: 0,
        col: 0,
        message,
    }
}

/// Runs the layering checks over the whole workspace.
pub fn check(ws: &Workspace, out: &mut Vec<Diagnostic>) {
    // MEBL013: the declaration must list every workspace crate exactly
    // once and nothing else.
    for krate in &ws.crates {
        let hits = ws
            .layering
            .layers
            .iter()
            .filter(|l| l.crates.contains(&krate.short))
            .count();
        match hits {
            0 => out.push(decl_diag(format!(
                "workspace crate `{}` is not placed in any layer; add it to a [[layer]]",
                krate.short
            ))),
            1 => {}
            _ => out.push(decl_diag(format!(
                "crate `{}` is declared in {hits} layers; it must appear exactly once",
                krate.short
            ))),
        }
    }
    for layer in &ws.layering.layers {
        for declared in &layer.crates {
            if ws.crate_by_short(declared).is_none() {
                out.push(decl_diag(format!(
                    "layer `{}` declares `{declared}`, which is not a workspace crate",
                    layer.name
                )));
            }
        }
    }

    // MEBL012 over manifest edges: [dependencies] must point strictly
    // down; [dev-dependencies] are exempt (test-only edges cannot leak
    // into shipped artifacts).
    for krate in &ws.crates {
        let Some(from) = ws.layering.index_of(&krate.short) else {
            continue; // already reported by MEBL013
        };
        for dep in &krate.deps {
            let Some(target) = ws.crates.iter().find(|c| &c.name == dep) else {
                continue;
            };
            let Some(to) = ws.layering.index_of(&target.short) else {
                continue;
            };
            if to >= from {
                out.push(Diagnostic {
                    code: "MEBL012",
                    rule: "layering",
                    severity: Severity::Error,
                    file: format!("crates/{}/Cargo.toml", krate.short),
                    line: 0,
                    col: 0,
                    message: format!(
                        "`{}` (layer `{}`) depends on `{dep}` (layer `{}`); \
                         dependencies must point to a strictly lower layer",
                        krate.name,
                        ws.layering.name_of(from),
                        ws.layering.name_of(to)
                    ),
                });
            }
        }
    }

    // MEBL012 over `use`/path edges: any `mebl_*` identifier in non-test
    // code must resolve to a strictly lower layer. This catches paths
    // that reach a crate transitively (through a re-export or a macro)
    // without a direct manifest edge.
    for file in &ws.files {
        let Some(short) = crate_of(&file.rel) else {
            continue; // root tests/ are dev-dep territory
        };
        let Some(from) = ws.layering.index_of(short) else {
            continue;
        };
        for tok in &file.tokens {
            if tok.kind != TokenKind::Ident {
                continue;
            }
            let text = tok.text(&file.text);
            if !text.starts_with("mebl_") {
                continue;
            }
            if file.view.in_test_block(tok.line as usize) {
                continue;
            }
            let Some(target) = ws.crate_by_ident(text) else {
                continue;
            };
            if target.short == short {
                continue;
            }
            let Some(to) = ws.layering.index_of(&target.short) else {
                continue;
            };
            if to >= from {
                out.push(Diagnostic {
                    code: "MEBL012",
                    rule: "layering",
                    severity: Severity::Error,
                    file: file.rel.clone(),
                    line: tok.line as usize,
                    col: tok.col as usize,
                    message: format!(
                        "`{text}` (layer `{}`) referenced from layer `{}`; \
                         only strictly lower layers may be used",
                        ws.layering.name_of(to),
                        ws.layering.name_of(from)
                    ),
                });
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const LAYERS: &str = "\
[[layer]]
name = \"foundation\"
crates = [\"geom\", \"graph\"]
[[layer]]
name = \"engine\"
crates = [\"route\"]
[[layer]]
name = \"app\"
crates = [\"cli\"]
";

    fn ws(files: &[(&str, &str)], manifests: &[(&str, &str)]) -> Workspace {
        Workspace::in_memory(files, manifests, LAYERS).unwrap()
    }

    fn check_codes(ws: &Workspace) -> Vec<(&'static str, String)> {
        let mut out = Vec::new();
        check(ws, &mut out);
        out.into_iter().map(|d| (d.code, d.file)).collect()
    }

    const GEOM: (&str, &str) = ("geom", "[package]\nname = \"mebl-geom\"\n");
    const GRAPH: (&str, &str) = ("graph", "[package]\nname = \"mebl-graph\"\n");
    const CLI: (&str, &str) = (
        "cli",
        "[package]\nname = \"mebl-cli\"\n[dependencies]\nmebl-route.workspace = true\n",
    );

    #[test]
    fn clean_workspace_passes() {
        let route = (
            "route",
            "[package]\nname = \"mebl-route\"\n[dependencies]\nmebl-geom.workspace = true\n",
        );
        let w = ws(
            &[("crates/route/src/lib.rs", "use mebl_geom::Point;\n")],
            &[GEOM, GRAPH, route, CLI],
        );
        assert!(check_codes(&w).is_empty());
    }

    #[test]
    fn upward_and_sideways_manifest_deps_flagged() {
        let route = (
            "route",
            "[package]\nname = \"mebl-route\"\n[dependencies]\nmebl-cli.workspace = true\n",
        );
        let graph = (
            "graph",
            "[package]\nname = \"mebl-graph\"\n[dependencies]\nmebl-geom.workspace = true\n",
        );
        let w = ws(&[], &[GEOM, graph, route, CLI]);
        let codes = check_codes(&w);
        assert!(codes.contains(&("MEBL012", "crates/route/Cargo.toml".to_string())));
        assert!(codes.contains(&("MEBL012", "crates/graph/Cargo.toml".to_string())));
    }

    #[test]
    fn dev_deps_exempt() {
        let geom = (
            "geom",
            "[package]\nname = \"mebl-geom\"\n[dev-dependencies]\nmebl-route.workspace = true\n",
        );
        let route = ("route", "[package]\nname = \"mebl-route\"\n");
        let w = ws(&[], &[geom, GRAPH, route, CLI]);
        let codes = check_codes(&w);
        assert!(codes.iter().all(|(c, _)| *c != "MEBL012"), "{codes:?}");
    }

    #[test]
    fn upward_use_flagged_but_test_blocks_exempt() {
        let route = ("route", "[package]\nname = \"mebl-route\"\n");
        let w = ws(
            &[(
                "crates/geom/src/lib.rs",
                "use mebl_route::Router;\n#[cfg(test)]\nmod tests {\n    use mebl_route::Router;\n}\n",
            )],
            &[GEOM, GRAPH, route, CLI],
        );
        let out = check_codes(&w);
        let hits: Vec<_> = out.iter().filter(|(c, _)| *c == "MEBL012").collect();
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].1, "crates/geom/src/lib.rs");
    }

    #[test]
    fn declaration_drift_flagged() {
        // `serve` exists but is not declared; `route` is declared but
        // missing from the workspace.
        let serve = ("serve", "[package]\nname = \"mebl-serve\"\n");
        let w = ws(&[], &[GEOM, GRAPH, serve, CLI]);
        let codes = check_codes(&w);
        let decl: Vec<_> = codes.iter().filter(|(c, _)| *c == "MEBL013").collect();
        assert_eq!(decl.len(), 2, "{codes:?}");
    }
}
