//! MEBL017: `std::fs` is confined to the persistence layer.
//!
//! Durable state goes through `mebl_store::Store` (whose `Io` trait is
//! the injectable seam the fault harness drives), and the only other
//! legitimate direct filesystem users are the analyzer's workspace
//! walker and the binary/harness crates (CLI file arguments, xtask
//! drivers, bench report writers, testkit bench output). A stage or
//! service crate opening files directly would bypass crash recovery
//! and make its I/O invisible to fault injection.

use crate::diag::{Diagnostic, Severity};
use crate::workspace::{crate_of, SourceFile, BINARY_CRATES, HARNESS_CRATES};

use super::{col_at, find_token};

/// Library crates whose job *is* filesystem access: the crash-safe
/// store and the analyzer's workspace walker.
const FS_CRATES: &[&str] = &["store", "analyze"];

/// Whether the no-raw-fs rule applies to this file.
fn fs_rule_applies(rel: &str) -> bool {
    match crate_of(rel) {
        Some(c) => {
            !BINARY_CRATES.contains(&c) && !HARNESS_CRATES.contains(&c) && !FS_CRATES.contains(&c)
        }
        // Root `tests/` files are test code.
        None => false,
    }
}

/// Runs MEBL017 over one file.
pub fn check_file(file: &SourceFile, out: &mut Vec<Diagnostic>) {
    if !fs_rule_applies(file.rel.as_str()) {
        return;
    }
    for (idx, code) in file.view.code_lines.iter().enumerate() {
        if file.view.test_mask[idx] {
            continue;
        }
        if let Some(pos) = find_token(code, "std::fs") {
            out.push(Diagnostic {
                code: "MEBL017",
                rule: "no-raw-fs",
                severity: Severity::Error,
                file: file.rel.clone(),
                line: idx + 1,
                col: col_at(code, pos),
                message: "`std::fs` outside the persistence layer; durable state goes \
                          through `mebl_store::Store` (or its `Io` seam) so crash \
                          recovery and fault injection stay centralized"
                    .to_string(),
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workspace::Workspace;

    fn diags_for(rel: &str, src: &str) -> Vec<Diagnostic> {
        let short = rel
            .strip_prefix("crates/")
            .and_then(|r| r.split('/').next())
            .unwrap_or("geom");
        let manifest = format!("[package]\nname = \"mebl-{short}\"\n");
        let layering = format!("[[layer]]\nname = \"only\"\ncrates = [\"{short}\"]\n");
        let ws = Workspace::in_memory(&[(rel, src)], &[(short, &manifest)], &layering).unwrap();
        let mut out = Vec::new();
        check_file(&ws.files[0], &mut out);
        out
    }

    #[test]
    fn raw_fs_flagged_only_outside_the_persistence_layer() {
        let src = "pub fn f() { let _ = std::fs::read(\"x\"); }\n";
        let hits = diags_for("crates/route/src/api.rs", src);
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].code, "MEBL017");
        assert_eq!(hits[0].line, 1);

        for exempt in [
            "crates/store/src/io.rs",
            "crates/analyze/src/workspace.rs",
            "crates/cli/src/main.rs",
            "crates/xtask/src/servesmoke.rs",
            "crates/testkit/src/bench.rs",
            "crates/bench/benches/store.rs",
        ] {
            assert!(diags_for(exempt, src).is_empty(), "{exempt} should be exempt");
        }
    }

    #[test]
    fn test_blocks_are_exempt() {
        let src = "#[cfg(test)]\nmod tests {\n    #[test]\n    fn t() { let _ = std::fs::read(\"x\"); }\n}\n";
        assert!(diags_for("crates/route/src/api.rs", src).is_empty());
    }
}
