//! The rule families. Each module exposes `check_file` (per-file rules)
//! or `check` (workspace rules) pushing [`crate::diag::Diagnostic`]s.

pub mod clientnet;
pub mod determinism;
pub mod layering;
pub mod legacy;
pub mod rawfs;
pub mod taxonomy;
pub mod unsafecode;

/// Finds `token` in a blanked code line with a left identifier-boundary
/// guard (`print!(` must not fire on `println!(`), returning the byte
/// offset of the first acceptable occurrence. Tokens that start with a
/// non-identifier char (`.unwrap()`) legitimately follow identifiers and
/// skip the guard.
#[must_use]
pub(crate) fn find_token(code: &str, token: &str) -> Option<usize> {
    let guard = token
        .chars()
        .next()
        .is_some_and(|c| c.is_alphanumeric() || c == '_');
    let mut start = 0;
    while let Some(pos) = code[start..].find(token) {
        let at = start + pos;
        let prev_ok = !guard
            || at == 0
            || !code[..at]
                .chars()
                .next_back()
                .is_some_and(|c| c.is_alphanumeric() || c == '_');
        if prev_ok {
            return Some(at);
        }
        start = at + 1;
    }
    None
}

/// 1-based display column of byte offset `at` in `line`.
#[must_use]
pub(crate) fn col_at(line: &str, at: usize) -> usize {
    line.get(..at).map_or(at, |s| s.chars().count()) + 1
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn boundary_guard() {
        assert_eq!(find_token("println!(x)", "print!("), None);
        assert_eq!(find_token("print!(x)", "print!("), Some(0));
        assert_eq!(find_token("a.unwrap()", ".unwrap()"), Some(1));
        assert_eq!(find_token("xthread::spawn thread::spawn", "thread::spawn"), Some(15));
    }
}
