//! Determinism rules: MEBL010 (std `HashMap`/`HashSet` banned in
//! library code) and MEBL011 (raw `+`/`*` on cost-typed values in the
//! costed stages).

use crate::diag::{Diagnostic, Severity};
use crate::lexer::TokenKind;
use crate::workspace::{crate_of, SourceFile, BINARY_CRATES, HARNESS_CRATES};

use super::{col_at, find_token};

/// The sanctioned definition site for the deterministic hash maps.
const FX_SITE: &str = "crates/graph/src/fx.rs";

/// Crates whose arithmetic runs on saturating cost quantities.
const COSTED_CRATES: &[&str] = &["global", "detailed", "assign"];

fn hashmap_rule_applies(rel: &str) -> bool {
    match crate_of(rel) {
        Some(c) => {
            !BINARY_CRATES.contains(&c) && !HARNESS_CRATES.contains(&c) && rel != FX_SITE
        }
        None => false,
    }
}

/// Whether an identifier names a cost-typed quantity.
fn cost_like(name: &str) -> bool {
    let lower = name.to_ascii_lowercase();
    lower == "cost"
        || lower == "penalty"
        || lower.ends_with("_cost")
        || lower.ends_with("_penalty")
        || lower.starts_with("cost_")
        || lower.starts_with("penalty_")
}

/// Runs MEBL010 and MEBL011 over one file.
pub fn check_file(file: &SourceFile, out: &mut Vec<Diagnostic>) {
    let rel = file.rel.as_str();

    if hashmap_rule_applies(rel) {
        for (idx, code) in file.view.code_lines.iter().enumerate() {
            if file.view.test_mask[idx] {
                continue;
            }
            for tok in ["HashMap", "HashSet"] {
                if let Some(pos) = find_token(code, tok) {
                    out.push(Diagnostic {
                        code: "MEBL010",
                        rule: "no-std-hashmap",
                        severity: Severity::Error,
                        file: rel.to_string(),
                        line: idx + 1,
                        col: col_at(code, pos),
                        message: format!(
                            "std `{tok}` (randomized iteration order) in library code; \
                             use `mebl_graph::fx::{}` with a sorted drain, or `BTree{}`",
                            if tok == "HashMap" { "FastMap" } else { "FastSet" },
                            &tok[4..]
                        ),
                    });
                }
            }
        }
    }

    if crate_of(rel).is_some_and(|c| COSTED_CRATES.contains(&c)) {
        check_cost_arith(file, out);
    }
}

/// Flags raw `+`, `*`, `+=`, `*=` whose adjacent operand is cost-typed.
fn check_cost_arith(file: &SourceFile, out: &mut Vec<Diagnostic>) {
    let sig: Vec<_> = file.tokens.iter().filter(|t| !t.is_trivia()).collect();
    for i in 0..sig.len() {
        let tok = sig[i];
        if tok.kind != TokenKind::Punct {
            continue;
        }
        let op = tok.text(&file.text);
        if !matches!(op, "+" | "*" | "+=" | "*=") {
            continue;
        }
        if file.view.in_test_block(tok.line as usize) {
            continue;
        }
        let prev = i.checked_sub(1).map(|j| sig[j]);
        let next = sig.get(i + 1).copied();
        let ident_text = |t: Option<&&crate::lexer::Token>| -> Option<&str> {
            t.filter(|t| t.kind == TokenKind::Ident)
                .map(|t| t.text(&file.text))
        };
        let prev_cost = ident_text(prev.as_ref()).filter(|n| cost_like(n));
        let next_cost = ident_text(next.as_ref()).filter(|n| cost_like(n));
        let name = match (prev_cost, next_cost) {
            (Some(n), _) => n,
            (None, Some(n)) => {
                if op == "*" {
                    // `* cost` with no left operand is a dereference, not
                    // a multiply; require a binary-operator left context.
                    let binary_left = prev.is_some_and(|p| {
                        matches!(p.kind, TokenKind::Ident | TokenKind::Number)
                            || (p.kind == TokenKind::Punct
                                && matches!(p.text(&file.text), ")" | "]"))
                    });
                    if !binary_left {
                        continue;
                    }
                }
                n
            }
            (None, None) => continue,
        };
        out.push(Diagnostic {
            code: "MEBL011",
            rule: "raw-cost-arith",
            severity: Severity::Error,
            file: file.rel.clone(),
            line: tok.line as usize,
            col: tok.col as usize,
            message: format!(
                "raw `{op}` on cost-typed value `{name}`; use `saturating_add`/\
                 `saturating_mul` or the stage's clamped cost helpers"
            ),
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn codes(rel: &str, src: &str) -> Vec<&'static str> {
        let file = SourceFile::new(rel, src);
        let mut out = Vec::new();
        check_file(&file, &mut out);
        out.into_iter().map(|d| d.code).collect()
    }

    #[test]
    fn std_maps_flagged_in_library_code_only() {
        let src = "use std::collections::HashMap;\nfn f() { let m: HashMap<u32, u32> = HashMap::new(); }\n";
        assert_eq!(codes("crates/route/src/lib.rs", src), vec!["MEBL010"; 2]);
        assert!(codes("crates/cli/src/main.rs", src).is_empty());
        assert!(codes("crates/testkit/src/prop.rs", src).is_empty());
        assert!(codes("crates/graph/src/fx.rs", src).is_empty());
        assert!(codes("tests/flow.rs", src).is_empty());
    }

    #[test]
    fn std_maps_allowed_in_test_blocks_and_prose() {
        let gated = "#[cfg(test)]\nmod tests {\n    use std::collections::HashSet;\n}\n";
        assert!(codes("crates/route/src/lib.rs", gated).is_empty());
        let prose = "/// Unlike a `HashMap`, iteration here is ordered.\nfn f() {}\n";
        assert!(codes("crates/route/src/lib.rs", prose).is_empty());
    }

    #[test]
    fn fast_map_not_flagged() {
        let src = "use mebl_graph::fx::FastMap;\nfn f() { let m: FastMap<u32, u32> = FastMap::default(); }\n";
        assert!(codes("crates/detailed/src/router.rs", src).is_empty());
    }

    #[test]
    fn raw_cost_addition_flagged_in_costed_crates() {
        let src = "fn f(cost: i64, bound: i64) -> i64 { cost + bound }\n";
        assert_eq!(codes("crates/assign/src/ilp.rs", src), vec!["MEBL011"]);
        assert!(codes("crates/route/src/lib.rs", src).is_empty());
        let sat = "fn f(cost: i64, bound: i64) -> i64 { cost.saturating_add(bound) }\n";
        assert!(codes("crates/assign/src/ilp.rs", sat).is_empty());
    }

    #[test]
    fn compound_assign_and_multiply_flagged() {
        let src = "fn f(mut cost: i64) { cost += 1; }\n";
        assert_eq!(codes("crates/global/src/router.rs", src), vec!["MEBL011"]);
        let mul = "fn f(w: i64, step_penalty: i64) -> i64 { w * step_penalty }\n";
        assert_eq!(codes("crates/detailed/src/router.rs", mul), vec!["MEBL011"]);
    }

    #[test]
    fn deref_of_cost_not_flagged() {
        let src = "fn f(cost: &i64) -> i64 { let c = *cost; c }\n";
        assert!(codes("crates/assign/src/ilp.rs", src).is_empty());
        // Field projections still count as binary context.
        let field = "fn f(c: C, bound: i64) -> i64 { c.cost + bound }\n";
        assert_eq!(codes("crates/assign/src/ilp.rs", field), vec!["MEBL011"]);
    }

    #[test]
    fn unrelated_arithmetic_not_flagged() {
        let src = "fn f(a: i64, b: i64) -> i64 { a + b * 2 }\n";
        assert!(codes("crates/assign/src/ilp.rs", src).is_empty());
    }

    #[test]
    fn cost_arith_in_tests_exempt() {
        let gated = "#[cfg(test)]\nmod tests {\n    fn t(cost: i64) -> i64 { cost + 1 }\n}\n";
        assert!(codes("crates/assign/src/ilp.rs", gated).is_empty());
    }
}
