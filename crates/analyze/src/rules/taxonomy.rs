//! Taxonomy completeness: every variant of the tracked failure enums
//! must be constructed (MEBL014) and matched (MEBL015) somewhere outside
//! its defining file, so the typed failure model cannot silently rot.
//!
//! Occurrences are found as qualified `Enum::Variant` token triples in
//! non-test code and classified as *pattern* (match arm, `if let`,
//! `matches!`, comparison) or *construction* by local token context.

use crate::diag::{Diagnostic, Severity};
use crate::lexer::{Token, TokenKind};
use crate::workspace::{crate_of, SourceFile, Workspace};

/// The tracked enums: `(type name, defining file)`.
pub const TRACKED: &[(&str, &str)] = &[
    ("RouteError", "crates/route/src/budget.rs"),
    ("DegradationKind", "crates/control/src/lib.rs"),
    ("FindingKind", "crates/audit/src/finding.rs"),
];

/// How an occurrence uses the variant.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Usage {
    Construct,
    Match,
}

/// One variant definition site.
struct Variant {
    name: String,
    line: usize,
    col: usize,
}

/// Runs the taxonomy checks over the whole workspace.
pub fn check(ws: &Workspace, out: &mut Vec<Diagnostic>) {
    for &(enum_name, defining) in TRACKED {
        let Some(def_file) = ws.files.iter().find(|f| f.rel == defining) else {
            continue; // enum relocated: the config itself is checked by tests
        };
        let Some(variants) = extract_variants(def_file, enum_name) else {
            out.push(Diagnostic {
                code: "MEBL014",
                rule: "taxonomy-unconstructed",
                severity: Severity::Error,
                file: defining.to_string(),
                line: 0,
                col: 0,
                message: format!(
                    "tracked enum `{enum_name}` not found in {defining}; \
                     update the taxonomy configuration"
                ),
            });
            continue;
        };
        for variant in &variants {
            let mut constructed = false;
            let mut matched = false;
            for file in &ws.files {
                if file.rel == defining || crate_of(&file.rel).is_none() {
                    continue;
                }
                for usage in occurrences(file, enum_name, &variant.name) {
                    match usage {
                        Usage::Construct => constructed = true,
                        Usage::Match => matched = true,
                    }
                }
                if constructed && matched {
                    break;
                }
            }
            if !constructed {
                out.push(Diagnostic {
                    code: "MEBL014",
                    rule: "taxonomy-unconstructed",
                    severity: Severity::Error,
                    file: defining.to_string(),
                    line: variant.line,
                    col: variant.col,
                    message: format!(
                        "`{enum_name}::{}` is never constructed outside its defining \
                         module; emit it from a production path or delete the variant",
                        variant.name
                    ),
                });
            }
            if !matched {
                out.push(Diagnostic {
                    code: "MEBL015",
                    rule: "taxonomy-unmatched",
                    severity: Severity::Error,
                    file: defining.to_string(),
                    line: variant.line,
                    col: variant.col,
                    message: format!(
                        "`{enum_name}::{}` is never matched outside its defining \
                         module; discriminate it in a consumer (match arm, `if let`, \
                         `matches!` or comparison)",
                        variant.name
                    ),
                });
            }
        }
    }
}

/// Extracts the variant names (with definition spans) of `enum_name`
/// from its defining file's token stream.
fn extract_variants(file: &SourceFile, enum_name: &str) -> Option<Vec<Variant>> {
    let sig: Vec<&Token> = file.tokens.iter().filter(|t| !t.is_trivia()).collect();
    let text = file.text.as_str();
    // Find `enum <Name> ... {`.
    let mut open = None;
    for i in 0..sig.len().saturating_sub(1) {
        if sig[i].kind == TokenKind::Ident
            && sig[i].text(text) == "enum"
            && sig[i + 1].text(text) == enum_name
        {
            let mut j = i + 2;
            while j < sig.len() && sig[j].text(text) != "{" {
                j += 1;
            }
            if j < sig.len() {
                open = Some(j);
            }
            break;
        }
    }
    let open = open?;
    let mut variants = Vec::new();
    let mut depth = 0i32;
    let mut at_variant_start = true; // right after `{` or a top-level `,`
    let mut j = open;
    while j < sig.len() {
        let t = sig[j];
        let s = t.text(text);
        match s {
            "{" | "(" | "[" => depth += 1,
            "}" | ")" | "]" => {
                depth -= 1;
                if depth == 0 {
                    break; // closed the enum body
                }
            }
            "," if depth == 1 => at_variant_start = true,
            "#" if depth == 1 => {
                // Skip a variant attribute `#[...]`.
                if sig.get(j + 1).is_some_and(|n| n.text(text) == "[") {
                    let mut d = 0i32;
                    j += 1;
                    while j < sig.len() {
                        match sig[j].text(text) {
                            "[" => d += 1,
                            "]" => {
                                d -= 1;
                                if d == 0 {
                                    break;
                                }
                            }
                            _ => {}
                        }
                        j += 1;
                    }
                }
            }
            _ => {
                if depth == 1 && at_variant_start && t.kind == TokenKind::Ident {
                    variants.push(Variant {
                        name: s.to_string(),
                        line: t.line as usize,
                        col: t.col as usize,
                    });
                    at_variant_start = false;
                }
            }
        }
        j += 1;
    }
    Some(variants)
}

/// Finds and classifies `Enum::Variant` occurrences in non-test code.
fn occurrences(file: &SourceFile, enum_name: &str, variant: &str) -> Vec<Usage> {
    let sig: Vec<&Token> = file.tokens.iter().filter(|t| !t.is_trivia()).collect();
    let text = file.text.as_str();
    let mut out = Vec::new();
    for i in 0..sig.len().saturating_sub(2) {
        if sig[i].kind == TokenKind::Ident
            && sig[i].text(text) == enum_name
            && sig[i + 1].text(text) == "::"
            && sig[i + 2].kind == TokenKind::Ident
            && sig[i + 2].text(text) == variant
        {
            if file.view.in_test_block(sig[i].line as usize) {
                continue;
            }
            out.push(classify(&sig, text, i, i + 2));
        }
    }
    out
}

/// Decides whether the occurrence at `name_i..=var_i` is a pattern
/// (match) or an expression (construction).
fn classify(sig: &[&Token], text: &str, name_i: usize, var_i: usize) -> Usage {
    // `e == Enum::V` / `e != Enum::V`: comparison counts as a match.
    if name_i > 0 && matches!(sig[name_i - 1].text(text), "==" | "!=") {
        return Usage::Match;
    }

    // Skip a tuple payload after the variant: `Enum::V(x)`.
    let mut j = var_i + 1;
    if sig.get(j).is_some_and(|t| t.text(text) == "(") {
        let mut depth = 0i32;
        while j < sig.len() {
            match sig[j].text(text) {
                "(" | "[" | "{" => depth += 1,
                ")" | "]" | "}" => {
                    depth -= 1;
                    if depth == 0 {
                        j += 1;
                        break;
                    }
                }
                _ => {}
            }
            j += 1;
        }
    }
    // Step over closing delimiters of enclosing patterns
    // (`Ok(Err(Enum::V(_))) =>` walks `)` `)` before reaching `=>`).
    while j < sig.len() && matches!(sig[j].text(text), ")" | "]" | "}") {
        j += 1;
    }
    if let Some(t) = sig.get(j) {
        match t.text(text) {
            "=>" | "=" | "|" | "==" | "!=" => return Usage::Match,
            "if" => return Usage::Match, // match-arm guard
            _ => {}
        }
    }

    // `matches!(e, Enum::V)`: walk back to the group opener and look for
    // the macro name.
    let mut depth = 0i32;
    let mut k = name_i;
    let mut steps = 0;
    while k > 0 && steps < 64 {
        k -= 1;
        steps += 1;
        match sig[k].text(text) {
            ")" | "]" | "}" => depth += 1,
            "(" | "[" | "{" => {
                if depth == 0 {
                    if k >= 2
                        && sig[k - 1].text(text) == "!"
                        && sig[k - 2].text(text) == "matches"
                    {
                        return Usage::Match;
                    }
                    break;
                }
                depth -= 1;
            }
            _ => {}
        }
    }
    Usage::Construct
}

#[cfg(test)]
mod tests {
    use super::*;

    fn usages(src: &str, enum_name: &str, variant: &str) -> Vec<Usage> {
        let file = SourceFile::new("crates/x/src/lib.rs", src);
        occurrences(&file, enum_name, variant)
    }

    #[test]
    fn extracts_variants_with_payloads_and_attrs() {
        let src = "\
pub enum RouteError {
    /// Bad config.
    InvalidConfig(String),
    #[allow(dead_code)]
    InvalidCircuit(String),
    BudgetExhausted,
}
";
        let file = SourceFile::new("crates/route/src/budget.rs", src);
        let v = extract_variants(&file, "RouteError").unwrap();
        let names: Vec<&str> = v.iter().map(|x| x.name.as_str()).collect();
        assert_eq!(names, vec!["InvalidConfig", "InvalidCircuit", "BudgetExhausted"]);
        assert_eq!(v[0].line, 3);
        assert!(extract_variants(&file, "Missing").is_none());
    }

    #[test]
    fn constructions_classified() {
        for src in [
            "fn f() -> Result<(), E> { Err(E::BadInput(format!(\"x {}\", 1))) }\n",
            "fn f() { push(D { kind: K::Overflow, n: 1 }); }\n",
            "fn f() -> E { E::BadInput(\"x\".into()) }\n",
            "fn f(r: R) { r.map_err(|_| E::BadInput(s))?; }\n",
        ] {
            let (name, var) = if src.contains("K::") {
                ("K", "Overflow")
            } else {
                ("E", "BadInput")
            };
            assert_eq!(usages(src, name, var), vec![Usage::Construct], "{src}");
        }
    }

    #[test]
    fn patterns_classified() {
        for src in [
            "fn f(e: E) { match e { E::BadInput(m) => drop(m), _ => {} } }\n",
            "fn f(r: Result<Result<(), E>, E>) { if let Ok(Err(E::BadInput(_))) = r {} }\n",
            "fn f(e: E) -> bool { matches!(e, E::BadInput(_)) }\n",
            "fn f(e: E) -> bool { e == E::Overflow }\n",
            "fn f(e: E) -> bool { E::Overflow == e }\n",
            "fn f(e: E) { match e { E::Overflow | E::BadInput(_) => {}, _ => {} } }\n",
            "fn f(e: E) { match e { E::Overflow if hot() => {}, _ => {} } }\n",
            "fn f(e: E) { match e { e2 @ E::Overflow => drop(e2), _ => {} } }\n",
        ] {
            let var = if src.contains("Overflow") { "Overflow" } else { "BadInput" };
            let got = usages(src, "E", var);
            assert!(got.contains(&Usage::Match), "{src}: {got:?}");
        }
    }

    #[test]
    fn test_block_occurrences_ignored() {
        let src = "#[cfg(test)]\nmod tests {\n    fn t() { let _ = E::BadInput; }\n}\n";
        assert!(usages(src, "E", "BadInput").is_empty());
    }

    #[test]
    fn full_check_reports_missing_sides() {
        let layers = "[[layer]]\nname = \"a\"\ncrates = [\"route\", \"control\", \"audit\", \"x\"]\n";
        let defining = "\
pub enum RouteError {
    InvalidConfig(String),
    BudgetExhausted,
}
";
        // InvalidConfig is constructed and matched; BudgetExhausted only
        // constructed.
        let consumer = "\
fn emit() -> RouteError { RouteError::BudgetExhausted }
fn also() -> RouteError { RouteError::InvalidConfig(String::new()) }
fn show(e: &RouteError) -> i32 {
    match e {
        RouteError::InvalidConfig(_) => 2,
        _ => 3,
    }
}
";
        let ws = Workspace::in_memory(
            &[
                ("crates/route/src/budget.rs", defining),
                ("crates/x/src/lib.rs", consumer),
            ],
            &[
                ("route", "[package]\nname = \"mebl-route\"\n"),
                ("control", "[package]\nname = \"mebl-control\"\n"),
                ("audit", "[package]\nname = \"mebl-audit\"\n"),
                ("x", "[package]\nname = \"mebl-x\"\n"),
            ],
            layers,
        )
        .unwrap();
        let mut out = Vec::new();
        check(&ws, &mut out);
        // DegradationKind / FindingKind defining files are absent, so
        // only RouteError is checked.
        assert_eq!(out.len(), 1, "{out:?}");
        assert_eq!(out[0].code, "MEBL015");
        assert!(out[0].message.contains("BudgetExhausted"));
    }
}
