//! MEBL016: every crate with a `src/lib.rs` must carry
//! `#![forbid(unsafe_code)]`, turning the workspace's safe-Rust
//! convention into a checked invariant.

use crate::diag::{Diagnostic, Severity};
use crate::lexer::TokenKind;
use crate::workspace::Workspace;

/// Runs the forbid-unsafe check over the whole workspace.
pub fn check(ws: &Workspace, out: &mut Vec<Diagnostic>) {
    for krate in &ws.crates {
        if !krate.has_lib {
            continue;
        }
        let lib_rel = format!("crates/{}/src/lib.rs", krate.short);
        let Some(file) = ws.files.iter().find(|f| f.rel == lib_rel) else {
            continue;
        };
        let sig: Vec<_> = file.tokens.iter().filter(|t| !t.is_trivia()).collect();
        let text = file.text.as_str();
        let found = sig.windows(4).any(|w| {
            w[0].kind == TokenKind::Ident
                && w[0].text(text) == "forbid"
                && w[1].text(text) == "("
                && w[2].text(text) == "unsafe_code"
                && w[3].text(text) == ")"
        });
        if !found {
            out.push(Diagnostic {
                code: "MEBL016",
                rule: "forbid-unsafe",
                severity: Severity::Error,
                file: lib_rel,
                line: 1,
                col: 1,
                message: format!(
                    "library crate `{}` lacks `#![forbid(unsafe_code)]`; \
                     add the attribute at the top of lib.rs",
                    krate.name
                ),
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const LAYERS: &str = "[[layer]]\nname = \"a\"\ncrates = [\"geom\", \"cli\"]\n";

    #[test]
    fn missing_attribute_flagged_with_lib_only() {
        let ws = Workspace::in_memory(
            &[
                ("crates/geom/src/lib.rs", "pub fn f() {}\n"),
                ("crates/cli/src/main.rs", "fn main() {}\n"),
            ],
            &[
                ("geom", "[package]\nname = \"mebl-geom\"\n"),
                ("cli", "[package]\nname = \"mebl-cli\"\n"),
            ],
            LAYERS,
        )
        .unwrap();
        let mut out = Vec::new();
        check(&ws, &mut out);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].code, "MEBL016");
        assert_eq!(out[0].file, "crates/geom/src/lib.rs");
    }

    #[test]
    fn attribute_satisfies_the_rule() {
        let ws = Workspace::in_memory(
            &[(
                "crates/geom/src/lib.rs",
                "#![forbid(unsafe_code)]\npub fn f() {}\n",
            )],
            &[
                ("geom", "[package]\nname = \"mebl-geom\"\n"),
                ("cli", "[package]\nname = \"mebl-cli\"\n"),
            ],
            LAYERS,
        )
        .unwrap();
        let mut out = Vec::new();
        check(&ws, &mut out);
        assert!(out.is_empty());
    }
}
