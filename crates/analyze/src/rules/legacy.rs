//! The eight original lint rules (MEBL001–MEBL008), ported from the
//! retired string-stripping scanner onto the lexer-backed [`CodeView`].
//!
//! Message strings are byte-identical to the old scanner's so the
//! differential test (`tests/analyze_differential.rs`) can compare hit
//! streams exactly. The raw-line-scanned marker spellings are assembled
//! with `concat!` so the analyzer's own source never trips them.

use crate::diag::{Diagnostic, Severity};
use crate::workspace::{crate_of, SourceFile, BINARY_CRATES, HARNESS_CRATES};

use super::{col_at, find_token};

/// Files allowed to read wall clocks.
pub const CLOCK_SITES: &[&str] = &["crates/route/src/report.rs", "crates/testkit/src/bench.rs"];

const TASK_MARKERS: [&str; 2] = [concat!("TO", "DO"), concat!("FIX", "ME")];
const UNREACHABLE_MARK: &str = concat!("unreach", "able:");
const UNREACHABLE_MACRO: &str = concat!("unreach", "able!(");

/// Whether the no-panic / silent-fallback rules apply to this file.
fn panic_rule_applies(rel: &str) -> bool {
    match crate_of(rel) {
        Some(c) => !BINARY_CRATES.contains(&c) && !HARNESS_CRATES.contains(&c),
        // Root `tests/` files are test code.
        None => false,
    }
}

fn print_rule_applies(rel: &str) -> bool {
    match crate_of(rel) {
        Some(c) => !BINARY_CRATES.contains(&c) && c != "bench",
        None => false,
    }
}

fn clock_rule_applies(rel: &str) -> bool {
    !CLOCK_SITES.contains(&rel)
}

/// Only the pool implementation itself may start threads.
fn spawn_rule_applies(rel: &str) -> bool {
    crate_of(rel) != Some("par")
}

/// Only the service crate, the coordinator, and the testkit's loopback
/// client may touch raw sockets (MEBL018 further confines *outbound*
/// connects to the latter two).
fn net_rule_applies(rel: &str) -> bool {
    crate_of(rel) != Some("serve")
        && crate_of(rel) != Some("coord")
        && rel != "crates/testkit/src/client.rs"
}

fn diag(
    code: &'static str,
    rule: &'static str,
    file: &SourceFile,
    line: usize,
    col: usize,
    message: String,
) -> Diagnostic {
    Diagnostic {
        code,
        rule,
        severity: Severity::Error,
        file: file.rel.clone(),
        line,
        col,
        message,
    }
}

/// Runs MEBL001–MEBL008 over one file.
pub fn check_file(file: &SourceFile, out: &mut Vec<Diagnostic>) {
    let rel = file.rel.as_str();
    let panic_tokens = [".unwrap()", ".expect(", "panic!("];
    let clock_tokens = ["Instant::now", "SystemTime::now"];
    let print_tokens = ["println!(", "print!(", "dbg!("];

    for (idx, (raw, code)) in file
        .view
        .raw_lines
        .iter()
        .zip(file.view.code_lines.iter())
        .enumerate()
    {
        let line = idx + 1;
        let in_test = file.view.test_mask[idx];

        // todo-tag looks at raw text (comments included), tests too.
        for marker in TASK_MARKERS {
            if let Some(pos) = raw.find(marker) {
                let tagged = raw[pos..].starts_with(&format!("{marker}(#"));
                if !tagged {
                    out.push(diag(
                        "MEBL005",
                        "todo-tag",
                        file,
                        line,
                        col_at(raw, pos),
                        format!("untagged {marker}; write `{marker}(#<issue>): ...`"),
                    ));
                }
            }
        }

        // no-raw-spawn applies to test code as well, so check it before
        // the test-block exemption kicks in.
        if spawn_rule_applies(rel) {
            if let Some(pos) = find_token(code, "thread::spawn") {
                out.push(diag(
                    "MEBL006",
                    "no-raw-spawn",
                    file,
                    line,
                    col_at(code, pos),
                    "`thread::spawn` outside crates/par; fan out through \
                     `mebl_par::Pool` so results stay deterministic"
                        .to_string(),
                ));
            }
        }

        // no-raw-net covers test code too: loopback harnesses go
        // through `mebl_testkit::TestClient`, never raw sockets.
        if net_rule_applies(rel) {
            for tok in ["TcpListener", "TcpStream"] {
                if let Some(pos) = find_token(code, tok) {
                    out.push(diag(
                        "MEBL007",
                        "no-raw-net",
                        file,
                        line,
                        col_at(code, pos),
                        format!(
                            "`{tok}` outside crates/serve; speak HTTP through \
                             `mebl_testkit::TestClient` instead"
                        ),
                    ));
                }
            }
        }

        if in_test {
            continue;
        }
        // The Dial rewrite's structural guarantee: no heap in the
        // detailed-routing hot path (tests above are already exempt).
        if crate_of(rel) == Some("detailed") {
            if let Some(pos) = find_token(code, "BinaryHeap") {
                out.push(diag(
                    "MEBL008",
                    "no-binary-heap",
                    file,
                    line,
                    col_at(code, pos),
                    "`BinaryHeap` in crates/detailed; the hot path uses \
                     `mebl_graph::BucketQueue` (Dial) — see DESIGN.md §11"
                        .to_string(),
                ));
            }
        }
        if panic_rule_applies(rel) {
            for tok in panic_tokens {
                if let Some(pos) = find_token(code, tok) {
                    out.push(diag(
                        "MEBL001",
                        "no-panic",
                        file,
                        line,
                        col_at(code, pos),
                        format!("`{tok}` in library code; handle the None/Err case"),
                    ));
                }
            }
            // Silent fallbacks: both the macro and the comment convention
            // that marks a branch as impossible. The marker lives in
            // comments, so scan the raw line.
            let hit = find_token(code, UNREACHABLE_MACRO)
                .map(|p| col_at(code, p))
                .or_else(|| raw.find(UNREACHABLE_MARK).map(|p| col_at(raw, p)));
            if let Some(col) = hit {
                out.push(diag(
                    "MEBL002",
                    "silent-fallback",
                    file,
                    line,
                    col,
                    "asserted-unreachable fallback in library code; \
                     record a Degradation or return a typed error"
                        .to_string(),
                ));
            }
        }
        if clock_rule_applies(rel) {
            for tok in clock_tokens {
                if let Some(pos) = find_token(code, tok) {
                    out.push(diag(
                        "MEBL003",
                        "no-clock",
                        file,
                        line,
                        col_at(code, pos),
                        format!(
                            "`{tok}` outside the sanctioned timing sites ({})",
                            CLOCK_SITES.join(", ")
                        ),
                    ));
                }
            }
        }
        if print_rule_applies(rel) {
            for tok in print_tokens {
                if let Some(pos) = find_token(code, tok) {
                    out.push(diag(
                        "MEBL004",
                        "no-debug-print",
                        file,
                        line,
                        col_at(code, pos),
                        format!("`{tok}` in a library crate; return data instead"),
                    ));
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rules(rel: &str, src: &str) -> Vec<&'static str> {
        let file = SourceFile::new(rel, src);
        let mut out = Vec::new();
        check_file(&file, &mut out);
        out.into_iter().map(|d| d.rule).collect()
    }

    #[test]
    fn unwrap_in_library_code_flagged() {
        let src = "fn f() { let x = g().unwrap(); }\n";
        assert_eq!(rules("crates/geom/src/a.rs", src), vec!["no-panic"]);
    }

    #[test]
    fn unwrap_in_binary_and_harness_crates_allowed() {
        let src = "fn f() { let x = g().unwrap(); }\n";
        assert!(rules("crates/cli/src/main.rs", src).is_empty());
        assert!(rules("crates/testkit/src/prop.rs", src).is_empty());
        assert!(rules("crates/bench/src/main.rs", src).is_empty());
        assert!(rules("tests/flow.rs", src).is_empty());
    }

    #[test]
    fn unwrap_in_test_block_allowed_and_code_after_still_linted() {
        let src = "\
#[cfg(test)]
mod tests {
    fn t() { x.unwrap(); }
}

fn lib() { y.expect(\"boom\"); }
";
        let file = SourceFile::new("crates/geom/src/a.rs", src);
        let mut out = Vec::new();
        check_file(&file, &mut out);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].line, 6);
        assert_eq!(out[0].code, "MEBL001");
    }

    #[test]
    fn comments_strings_and_raw_strings_do_not_trigger() {
        let src = "\
/// Call `.unwrap()` at your peril. panic!(
// x.unwrap()
/* multi
   .expect( panic!( */
fn f() { let s = \".unwrap() panic!(\"; let r = r#\"dbg!(\"#; }
";
        assert!(rules("crates/geom/src/a.rs", src).is_empty());
    }

    #[test]
    fn unwrap_or_variants_not_flagged() {
        let src = "fn f() { g().unwrap_or(0); g().unwrap_or_else(|| 0); }\n";
        assert!(rules("crates/geom/src/a.rs", src).is_empty());
    }

    #[test]
    fn unreachable_macro_and_marker_flagged_in_library_code() {
        let src = format!("fn f() {{ match x {{ None => {}\"no\") }} }}\n", UNREACHABLE_MACRO);
        assert_eq!(rules("crates/geom/src/a.rs", &src), vec!["silent-fallback"]);
        let marked = format!("fn f() {{\n    // {} callers filter blanks\n    0\n}}\n", UNREACHABLE_MARK);
        assert_eq!(rules("crates/geom/src/a.rs", &marked), vec!["silent-fallback"]);
        assert!(rules("crates/cli/src/main.rs", &src).is_empty());
        assert!(rules("tests/flow.rs", &src).is_empty());
    }

    #[test]
    fn clock_flagged_outside_sanctioned_files() {
        let src = "fn f() { let t = std::time::Instant::now(); }\n";
        assert_eq!(rules("crates/global/src/router.rs", src), vec!["no-clock"]);
        assert!(rules("crates/route/src/report.rs", src).is_empty());
        assert!(rules("crates/testkit/src/bench.rs", src).is_empty());
    }

    #[test]
    fn debug_print_flagged_in_libraries_only() {
        let src = "fn f() { println!(\"x\"); dbg!(1); }\n";
        assert_eq!(
            rules("crates/route/src/lib.rs", src),
            vec!["no-debug-print", "no-debug-print"]
        );
        assert!(rules("crates/cli/src/main.rs", src).is_empty());
        assert!(rules("crates/bench/src/main.rs", src).is_empty());
    }

    #[test]
    fn println_does_not_match_print_token_twice() {
        let src = "fn f() { println!(\"x\"); }\n";
        assert_eq!(rules("crates/geom/src/a.rs", src).len(), 1);
    }

    #[test]
    fn todo_requires_issue_tag() {
        let src = format!(
            "// {m}: make this faster\n// {m}(#12): tracked\n// {f} fix me\n",
            m = TASK_MARKERS[0],
            f = TASK_MARKERS[1]
        );
        let file = SourceFile::new("crates/geom/src/a.rs", &src);
        let mut out = Vec::new();
        check_file(&file, &mut out);
        assert_eq!(out.len(), 2);
        assert!(out.iter().all(|d| d.rule == "todo-tag"));
        assert_eq!(out[0].line, 1);
        assert_eq!(out[1].line, 3);
    }

    #[test]
    fn raw_spawn_flagged_everywhere_but_par_even_in_tests() {
        let src = "fn f() { std::thread::spawn(|| {}); }\n";
        assert_eq!(rules("crates/global/src/router.rs", src), vec!["no-raw-spawn"]);
        assert_eq!(rules("crates/cli/src/main.rs", src), vec!["no-raw-spawn"]);
        assert_eq!(rules("tests/flow.rs", src), vec!["no-raw-spawn"]);
        assert!(rules("crates/par/src/lib.rs", src).is_empty());
        let gated = "#[cfg(test)]\nmod tests {\n    fn t() { std::thread::spawn(|| {}); }\n}\n";
        assert_eq!(rules("crates/geom/src/a.rs", gated), vec!["no-raw-spawn"]);
        // The pool's internal scoped `s.spawn(...)` is not the token.
        let scoped = "fn f(s: &S) { s.spawn(|| {}); }\n";
        assert!(rules("crates/geom/src/a.rs", scoped).is_empty());
    }

    #[test]
    fn raw_net_confined_to_serve_and_client() {
        let src = "fn f() { let l = std::net::TcpListener::bind(\"x\"); }\n";
        assert_eq!(rules("crates/route/src/lib.rs", src), vec!["no-raw-net"]);
        assert_eq!(rules("tests/serve.rs", src), vec!["no-raw-net"]);
        assert!(rules("crates/serve/src/lib.rs", src).is_empty());
        let stream = "fn f(s: std::net::TcpStream) {}\n";
        assert_eq!(rules("crates/audit/src/lib.rs", stream), vec!["no-raw-net"]);
        assert!(rules("crates/testkit/src/client.rs", stream).is_empty());
        assert!(rules("crates/coord/src/dispatch.rs", stream).is_empty());
    }

    #[test]
    fn binary_heap_banned_in_detailed_only() {
        let src = "use std::collections::BinaryHeap;\nfn f() { let h: BinaryHeap<u32> = BinaryHeap::new(); }\n";
        assert_eq!(
            rules("crates/detailed/src/router.rs", src),
            vec!["no-binary-heap"; 2]
        );
        assert!(rules("crates/graph/src/astar.rs", src).is_empty());
        let gated = "#[cfg(test)]\nmod tests {\n    use std::collections::BinaryHeap;\n}\n";
        assert!(rules("crates/detailed/src/dense.rs", gated).is_empty());
    }

    #[test]
    fn diagnostics_carry_columns() {
        let src = "fn f() { g().unwrap(); }\n";
        let file = SourceFile::new("crates/geom/src/a.rs", src);
        let mut out = Vec::new();
        check_file(&file, &mut out);
        assert_eq!(out.len(), 1);
        // `.unwrap()` starts at the `.` (byte 12, col 13).
        assert_eq!(out[0].col, 13);
    }
}
