//! MEBL018: outbound TCP connections are confined to the coordinator.
//!
//! MEBL007 (`no-raw-net`) already keeps raw sockets out of the routing
//! crates, but with the coordinator in the tree the *direction* of
//! socket use matters too: the service crate may listen, yet nothing in
//! the library tree except `crates/coord` (and the testkit's loopback
//! client, for harness traffic) may *dial*. A stage, witness, or
//! service crate opening outbound connections would smuggle untyped
//! distributed failure modes — hangs, partial reads, silent retries —
//! past the coordinator's bounded retry/backoff machinery and its
//! fault battery.

use crate::diag::{Diagnostic, Severity};
use crate::workspace::{crate_of, SourceFile};

use super::{col_at, find_token};

/// Whether the no-client-net rule applies to this file. Root `tests/`
/// are *not* exempt: harness traffic goes through
/// `mebl_testkit::TestClient`.
fn client_net_rule_applies(rel: &str) -> bool {
    crate_of(rel) != Some("coord") && rel != "crates/testkit/src/client.rs"
}

/// Runs MEBL018 over one file. The token prefix-matches
/// `TcpStream::connect_timeout` as well.
pub fn check_file(file: &SourceFile, out: &mut Vec<Diagnostic>) {
    if !client_net_rule_applies(file.rel.as_str()) {
        return;
    }
    for (idx, code) in file.view.code_lines.iter().enumerate() {
        if let Some(pos) = find_token(code, "TcpStream::connect") {
            out.push(Diagnostic {
                code: "MEBL018",
                rule: "no-client-net",
                severity: Severity::Error,
                file: file.rel.clone(),
                line: idx + 1,
                col: col_at(code, pos),
                message: "`TcpStream::connect` outside crates/coord; outbound worker \
                          traffic goes through `mebl_coord::Coordinator` (tests use \
                          `mebl_testkit::TestClient`) so retries, backoff and \
                          dead-marking stay typed and bounded"
                    .to_string(),
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workspace::Workspace;

    fn diags_for(rel: &str, src: &str) -> Vec<Diagnostic> {
        let short = rel
            .strip_prefix("crates/")
            .and_then(|r| r.split('/').next())
            .unwrap_or("geom");
        let manifest = format!("[package]\nname = \"mebl-{short}\"\n");
        let layering = format!("[[layer]]\nname = \"only\"\ncrates = [\"{short}\"]\n");
        let ws = Workspace::in_memory(&[(rel, src)], &[(short, &manifest)], &layering).unwrap();
        let mut out = Vec::new();
        check_file(&ws.files[0], &mut out);
        out
    }

    #[test]
    fn connect_flagged_outside_the_coordinator() {
        let src = "pub fn f() { let _ = std::net::TcpStream::connect(\"x\"); }\n";
        for flagged in [
            "crates/serve/src/lib.rs",
            "crates/route/src/lib.rs",
            "crates/cli/src/main.rs",
            "tests/shard.rs",
            "crates/testkit/src/fault.rs",
        ] {
            let hits = diags_for(flagged, src);
            assert_eq!(hits.len(), 1, "{flagged} should be flagged");
            assert_eq!(hits[0].code, "MEBL018");
        }
        for exempt in ["crates/coord/src/client.rs", "crates/testkit/src/client.rs"] {
            assert!(diags_for(exempt, src).is_empty(), "{exempt} should be exempt");
        }
    }

    #[test]
    fn connect_timeout_is_covered_and_listening_is_not() {
        let dial = "pub fn f() { let _ = TcpStream::connect_timeout(&a, t); }\n";
        assert_eq!(diags_for("crates/serve/src/lib.rs", dial).len(), 1);
        let listen = "pub fn f() { let _ = TcpListener::bind(\"127.0.0.1:0\"); }\n";
        assert!(diags_for("crates/serve/src/lib.rs", listen).is_empty());
    }
}
