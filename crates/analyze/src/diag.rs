//! Diagnostics: stable codes, severities, spans, and per-rule
//! documentation for `--explain`.

use std::fmt;

/// Severity of a diagnostic.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// Advisory: reported, does not fail the gate.
    Warning,
    /// Violation: fails the gate.
    Error,
}

impl Severity {
    /// SARIF level string for this severity.
    #[must_use]
    pub fn sarif_level(self) -> &'static str {
        match self {
            Severity::Warning => "warning",
            Severity::Error => "error",
        }
    }
}

/// One analyzer finding, anchored to a source location.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Stable diagnostic code (`MEBL001` …).
    pub code: &'static str,
    /// Human rule name (`no-panic` …), also the allowlist key.
    pub rule: &'static str,
    /// Severity class.
    pub severity: Severity,
    /// Workspace-relative file path.
    pub file: String,
    /// 1-based line (0 for file- or workspace-level findings).
    pub line: usize,
    /// 1-based column (0 when not meaningful).
    pub col: usize,
    /// Explanation shown to the developer.
    pub message: String,
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}:{}: {}[{}] ({}) {}",
            self.file,
            self.line,
            self.col,
            match self.severity {
                Severity::Error => "error",
                Severity::Warning => "warning",
            },
            self.code,
            self.rule,
            self.message
        )
    }
}

/// Static documentation of one rule, driving `--explain` and the SARIF
/// rule table.
#[derive(Debug, Clone, Copy)]
pub struct RuleInfo {
    /// Stable code (`MEBL001`).
    pub code: &'static str,
    /// Short kebab-case name (`no-panic`).
    pub name: &'static str,
    /// Default severity.
    pub severity: Severity,
    /// One-line summary.
    pub summary: &'static str,
    /// Full rationale printed by `--explain`.
    pub rationale: &'static str,
}

/// Every rule the engine knows, in code order.
pub const RULES: &[RuleInfo] = &[
    RuleInfo {
        code: "MEBL001",
        name: "no-panic",
        severity: Severity::Error,
        summary: "`.unwrap()`, `.expect(` and `panic!(` are banned in library code",
        rationale: "Library code must surface failure through the typed failure model \
                    (RouteError, Degradation, CircuitIssue) instead of tearing down the \
                    process. A panic inside the routing stages kills an entire service \
                    worker and, under `mebl serve`, turns one bad request into a 500 for \
                    every queued job behind it. Binaries (cli, xtask), the bench harness, \
                    the testkit, and `#[cfg(test)]` blocks are exempt; individually \
                    justified sites live in the shrink-only allowlist.",
    },
    RuleInfo {
        code: "MEBL002",
        name: "silent-fallback",
        severity: Severity::Error,
        summary: "asserted-unreachable branches (macro or comment marker) are banned in library code",
        rationale: "A branch asserted to never run either panics when it does run (use a \
                    typed error instead) or silently produces wrong data (record a \
                    Degradation instead). Both failure modes defeat the audit layer, which \
                    can only verify results it is allowed to see.",
    },
    RuleInfo {
        code: "MEBL003",
        name: "no-clock",
        severity: Severity::Error,
        summary: "`Instant::now` / `SystemTime::now` only in the sanctioned timing sites",
        rationale: "Routing output must be a pure function of (circuit, config, seed). A \
                    wall-clock read anywhere in the stages makes output \
                    time-dependent and breaks the byte-identical cache and thread-count \
                    determinism contracts. Timing lives in `route/src/report.rs` \
                    (Stopwatch) and `testkit/src/bench.rs` (the bench timer) only.",
    },
    RuleInfo {
        code: "MEBL004",
        name: "no-debug-print",
        severity: Severity::Error,
        summary: "`println!` / `print!` / `dbg!` are banned in library crates",
        rationale: "Library crates return data; user-facing output belongs to the \
                    binaries. A stray debug print corrupts `--json` output and the \
                    service's framed HTTP bodies.",
    },
    RuleInfo {
        code: "MEBL005",
        name: "todo-tag",
        severity: Severity::Error,
        summary: "task-marker comments must carry an issue tag, e.g. `TODO(#42): …`",
        rationale: "An untagged task marker has no owner and no expiry; it rots in \
                    place. Writing `TODO(#42): …` keeps every known gap traceable to \
                    an issue that can be scheduled or closed.",
    },
    RuleInfo {
        code: "MEBL006",
        name: "no-raw-spawn",
        severity: Severity::Error,
        summary: "`thread::spawn` is banned everywhere except crates/par",
        rationale: "Ad-hoc threads make output order scheduling-dependent. All fan-out \
                    goes through `mebl_par::Pool`, whose fixed chunking and in-input-order \
                    reduction keep results bit-identical at every worker count. The rule \
                    covers test code too: tests that want concurrency use a Pool.",
    },
    RuleInfo {
        code: "MEBL007",
        name: "no-raw-net",
        severity: Severity::Error,
        summary: "`TcpListener` / `TcpStream` are confined to crates/serve and the testkit client",
        rationale: "Wire behavior must have exactly one implementation on each side: the \
                    service crate speaks HTTP, and tests/smoke drivers speak through \
                    `mebl_testkit::TestClient`. A second socket stack is a second set of \
                    framing bugs.",
    },
    RuleInfo {
        code: "MEBL008",
        name: "no-binary-heap",
        severity: Severity::Error,
        summary: "`BinaryHeap` is banned in crates/detailed library code",
        rationale: "The detailed-routing hot path runs on the dense-grid bucket queue \
                    (`mebl_graph::BucketQueue`, DESIGN.md §11); a heap reappearing there \
                    is the 5x Dial rewrite quietly rotting. The reference implementations \
                    in crates/graph and differential tests keep their heaps.",
    },
    RuleInfo {
        code: "MEBL009",
        name: "stale-allowlist",
        severity: Severity::Error,
        summary: "allowlist entries that suppress nothing are errors",
        rationale: "The allowlist is shrink-only: every entry must still match a live \
                    violation, so burned-down sites automatically force their entries to \
                    be deleted and the list can never quietly grow stale.",
    },
    RuleInfo {
        code: "MEBL010",
        name: "no-std-hashmap",
        severity: Severity::Error,
        summary: "std `HashMap`/`HashSet` are banned in library crates",
        rationale: "`RandomState` seeds the hasher per process, so iteration order is \
                    different on every run — one `for` loop over such a map that leaks \
                    into output breaks the bit-identical determinism contract, and \
                    nothing in the type system stops a refactor from adding that loop. \
                    Use `mebl_graph::{FastMap, FastSet}` (deterministic FxHasher; drain \
                    through a sort when order reaches output) or `BTreeMap`/`BTreeSet` \
                    (always ordered). The sanctioned definition site is \
                    `crates/graph/src/fx.rs`; tests and binaries are exempt.",
    },
    RuleInfo {
        code: "MEBL011",
        name: "raw-cost-arith",
        severity: Severity::Error,
        summary: "unchecked `+`/`*` on cost-typed values in global/detailed/assign",
        rationale: "Stage costs are saturating fixed-point quantities: the global router \
                    clamps at MAX_STEP_COST and the Dial engine at MAX_STEP_Q precisely \
                    because near-capacity pricing once overflowed a u32 sentinel and \
                    produced wrong routes. Raw `+`/`*` on a cost-named value reintroduces \
                    that overflow; use `saturating_add`/`saturating_mul` (or the stage's \
                    clamped helpers) instead.",
    },
    RuleInfo {
        code: "MEBL012",
        name: "layering",
        severity: Severity::Error,
        summary: "crate dependencies and `mebl_*` uses must point to a strictly lower layer",
        rationale: "The crate DAG is declared once in crates/analyze/layering.toml — \
                    geom/graph/control at the bottom, serve/cli at the top. A manifest \
                    dependency or a `use mebl_*` that points sideways or upward collapses \
                    the architecture (e.g. a stage crate reaching into the service crate). \
                    `[dev-dependencies]` are exempt: test-only edges cannot leak into \
                    shipped artifacts.",
    },
    RuleInfo {
        code: "MEBL013",
        name: "layering-decl",
        severity: Severity::Error,
        summary: "layering.toml must list every workspace crate exactly once",
        rationale: "The layering declaration is only trustworthy if it is total: a crate \
                    missing from the declaration (or listed twice, or listed but \
                    nonexistent) means the DAG check silently skips edges. Adding a crate \
                    to the workspace requires placing it in a layer in the same change.",
    },
    RuleInfo {
        code: "MEBL014",
        name: "taxonomy-unconstructed",
        severity: Severity::Error,
        summary: "every tracked failure-taxonomy variant must be constructed outside its defining module",
        rationale: "RouteError, DegradationKind and FindingKind are the typed failure \
                    model: every variant exists because some production path emits it. A \
                    variant no code constructs is dead vocabulary — either the emitting \
                    path was lost in a refactor (a silent-fallback regression) or the \
                    variant should be deleted.",
    },
    RuleInfo {
        code: "MEBL015",
        name: "taxonomy-unmatched",
        severity: Severity::Error,
        summary: "every tracked failure-taxonomy variant must be matched outside its defining module",
        rationale: "A failure variant that no consumer discriminates is invisible: it \
                    collapses into a catch-all arm and the condition it names can rot \
                    without any test or exit-code noticing. Each variant must appear in a \
                    match arm, `if let`, `matches!` or comparison outside the module that \
                    defines it (the service's wire-code tables are the canonical \
                    consumers).",
    },
    RuleInfo {
        code: "MEBL016",
        name: "forbid-unsafe",
        severity: Severity::Error,
        summary: "every library crate must carry `#![forbid(unsafe_code)]`",
        rationale: "The workspace is 100% safe Rust by policy, and `forbid` (unlike \
                    `deny`) cannot be overridden further down the tree. The attribute was \
                    previously an unchecked convention; this rule makes a missing or \
                    removed attribute a gate failure.",
    },
    RuleInfo {
        code: "MEBL017",
        name: "no-raw-fs",
        severity: Severity::Error,
        summary: "`std::fs` is confined to the persistence layer (crates/store, \
                  crates/analyze, binaries and harnesses)",
        rationale: "All durable state flows through `mebl_store::Store`, whose `Io` \
                    trait is the single injectable seam the crash-matrix harness drives. \
                    A stage or service crate touching the filesystem directly would \
                    bypass valid-prefix recovery, checksum verification and fsync policy, \
                    and its failure modes would be invisible to fault injection. The \
                    analyzer's workspace walker, the CLI's file arguments and the \
                    bench/xtask drivers are the sanctioned direct users.",
    },
    RuleInfo {
        code: "MEBL018",
        name: "no-client-net",
        severity: Severity::Error,
        summary: "outbound TCP (`TcpStream::connect`) is confined to the coordinator \
                  (crates/coord) and the testkit's loopback client",
        rationale: "no-raw-net keeps sockets out of the routing crates; this rule pins \
                    the *dialing* side. The coordinator owns worker placement, health \
                    probing, bounded retry/backoff and dead-marking — a crate opening \
                    its own outbound connections would re-introduce untyped distributed \
                    failure modes (hangs, partial reads, silent retries) that its fault \
                    battery cannot see. Harness traffic goes through \
                    `mebl_testkit::TestClient`.",
    },
];

/// Looks up a rule by code (`MEBL010`) or name (`no-std-hashmap`).
#[must_use]
pub fn rule_info(key: &str) -> Option<&'static RuleInfo> {
    RULES
        .iter()
        .find(|r| r.code.eq_ignore_ascii_case(key) || r.name == key)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codes_are_unique_and_sequential() {
        for (i, rule) in RULES.iter().enumerate() {
            assert_eq!(rule.code, format!("MEBL{:03}", i + 1));
        }
    }

    #[test]
    fn lookup_by_code_and_name() {
        assert_eq!(rule_info("MEBL001").map(|r| r.name), Some("no-panic"));
        assert_eq!(rule_info("mebl010").map(|r| r.name), Some("no-std-hashmap"));
        assert_eq!(rule_info("layering").map(|r| r.code), Some("MEBL012"));
        assert!(rule_info("nope").is_none());
    }

    #[test]
    fn display_format() {
        let d = Diagnostic {
            code: "MEBL001",
            rule: "no-panic",
            severity: Severity::Error,
            file: "crates/geom/src/a.rs".into(),
            line: 3,
            col: 7,
            message: "x".into(),
        };
        assert_eq!(
            d.to_string(),
            "crates/geom/src/a.rs:3:7: error[MEBL001] (no-panic) x"
        );
    }
}
