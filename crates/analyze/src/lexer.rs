//! A total, zero-dependency Rust lexer with source spans.
//!
//! "Total" means [`lex`] accepts *any* byte string and always returns a
//! token stream that exactly partitions the input: `tokens[0].start ==
//! 0`, `tokens[i].end == tokens[i + 1].start`, and the last token ends
//! at `source.len()`. Malformed input (an unterminated string, a stray
//! control byte) degrades into `terminated: false` literals or
//! single-character [`TokenKind::Punct`] tokens — it never panics and
//! never stalls.
//!
//! The lexer resolves the classically fiddly cases the old token
//! scanner approximated line-by-line:
//!
//! * **raw strings** — `r"…"`, `r#"…"#` with any hash depth, plus the
//!   byte variants `br"…"`/`br#"…"#`;
//! * **nested block comments** — `/* a /* b */ c */` tracks depth, and
//!   `/** … */` / `/*! … */` are classified as doc comments;
//! * **char vs lifetime** — `'a'` is a char literal, `'a` (and
//!   `'static`, `'_`) are lifetimes, `'\''` and `'\u{1F600}'` are
//!   escaped chars;
//! * **multi-line strings** — a plain `"…"` literal may span lines
//!   (with or without a trailing `\` continuation); the old scanner
//!   reset its state at each newline and mis-read continuation lines
//!   as code.
//!
//! Every token carries `(start, end)` byte offsets plus the 1-based
//! line and column of its first byte, so diagnostics can point at
//! `file:line:col` without re-scanning.

/// Doc-comment flavor of a comment token.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Doc {
    /// A plain comment (`//`, `/* … */`).
    Plain,
    /// An outer doc comment (`///`, `/** … */`).
    Outer,
    /// An inner doc comment (`//!`, `/*! … */`).
    Inner,
}

/// What a lexed token is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokenKind {
    /// Horizontal and vertical whitespace, including newlines.
    Whitespace,
    /// A `//` comment running to end of line (newline excluded).
    LineComment(Doc),
    /// A `/* … */` comment, possibly nested and possibly unterminated.
    BlockComment {
        /// Doc flavor (`/**`, `/*!`).
        doc: Doc,
        /// `false` when the comment ran to end of input unclosed.
        terminated: bool,
    },
    /// A string literal: `"…"`, `b"…"`, or `c"…"` (may span lines).
    Str {
        /// `false` when the literal ran to end of input unclosed.
        terminated: bool,
    },
    /// A raw string literal `r"…"` / `r#"…"#` / `br#"…"#`.
    RawStr {
        /// Number of `#` marks in the delimiter.
        hashes: u8,
        /// `false` when the literal ran to end of input unclosed.
        terminated: bool,
    },
    /// A char or byte literal: `'x'`, `'\n'`, `b'x'`.
    Char,
    /// A lifetime such as `'a`, `'static`, `'_`.
    Lifetime,
    /// An identifier or keyword.
    Ident,
    /// A numeric literal (integer or float, any base, with suffix).
    Number,
    /// An operator or delimiter; multi-character operators (`::`,
    /// `=>`, `==`, `+=` …) are single tokens.
    Punct,
}

/// One lexed token. Offsets index into the original source.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Token {
    /// Token class.
    pub kind: TokenKind,
    /// Byte offset of the first byte.
    pub start: usize,
    /// Byte offset one past the last byte.
    pub end: usize,
    /// 1-based line of the first byte.
    pub line: u32,
    /// 1-based byte column of the first byte within its line.
    pub col: u32,
}

impl Token {
    /// The token's text within `source` (the string given to [`lex`]).
    #[must_use]
    pub fn text<'a>(&self, source: &'a str) -> &'a str {
        source.get(self.start..self.end).unwrap_or("")
    }

    /// Whether this token is a comment of any flavor.
    #[must_use]
    pub fn is_comment(&self) -> bool {
        matches!(
            self.kind,
            TokenKind::LineComment(_) | TokenKind::BlockComment { .. }
        )
    }

    /// Whether this token is trivia (whitespace or a comment): not part
    /// of the code token stream the rules scan.
    #[must_use]
    pub fn is_trivia(&self) -> bool {
        self.kind == TokenKind::Whitespace || self.is_comment()
    }
}

/// Multi-character operators, longest first so greedy matching is
/// correct (`..=` before `..`, `<<=` before `<<` before `<=`).
const MULTI_PUNCT: &[&str] = &[
    "<<=", ">>=", "..=", "...", "::", "->", "=>", "==", "!=", "<=", ">=", "&&", "||", "<<", ">>",
    "+=", "-=", "*=", "/=", "%=", "^=", "&=", "|=", "..",
];

/// Lexes `source` into a complete token stream. Total: never fails,
/// never panics, and the returned tokens exactly partition the input.
#[must_use]
pub fn lex(source: &str) -> Vec<Token> {
    Lexer {
        src: source,
        pos: 0,
        line: 1,
        col: 1,
        out: Vec::new(),
    }
    .run()
}

struct Lexer<'a> {
    src: &'a str,
    pos: usize,
    line: u32,
    col: u32,
    out: Vec<Token>,
}

impl<'a> Lexer<'a> {
    fn run(mut self) -> Vec<Token> {
        while self.pos < self.src.len() {
            let start = self.pos;
            let line = self.line;
            let col = self.col;
            let kind = self.next_kind();
            // Defensive progress guarantee: a lexer bug that consumes
            // nothing would loop forever; skip one char instead.
            if self.pos == start {
                self.bump();
            }
            self.out.push(Token {
                kind,
                start,
                end: self.pos,
                line,
                col,
            });
        }
        self.out
    }

    fn rest(&self) -> &'a str {
        self.src.get(self.pos..).unwrap_or("")
    }

    fn peek(&self) -> Option<char> {
        self.rest().chars().next()
    }

    fn peek2(&self) -> Option<char> {
        let mut it = self.rest().chars();
        it.next();
        it.next()
    }

    /// Advances one char, maintaining line/col bookkeeping.
    fn bump(&mut self) {
        if let Some(c) = self.peek() {
            self.pos += c.len_utf8();
            if c == '\n' {
                self.line += 1;
                self.col = 1;
            } else {
                self.col += c.len_utf8() as u32;
            }
        }
    }

    /// Advances `n` bytes of known-ASCII text.
    fn bump_ascii(&mut self, n: usize) {
        for _ in 0..n {
            self.bump();
        }
    }

    fn next_kind(&mut self) -> TokenKind {
        let Some(c) = self.peek() else {
            return TokenKind::Whitespace;
        };
        let rest = self.rest();

        if c.is_whitespace() {
            while self.peek().is_some_and(char::is_whitespace) {
                self.bump();
            }
            return TokenKind::Whitespace;
        }
        if rest.starts_with("//") {
            return self.line_comment();
        }
        if rest.starts_with("/*") {
            return self.block_comment();
        }
        // String-family prefixes must be checked before the generic
        // identifier path so `r"…"`, `br#"…"#`, `b"…"`, `b'…'` and
        // `c"…"` do not lex as an ident followed by a literal.
        if let Some(hashes) = raw_str_open(rest) {
            return self.raw_str(hashes);
        }
        if rest.starts_with("b\"") || rest.starts_with("c\"") {
            self.bump();
            return self.str_literal();
        }
        if rest.starts_with("b'") {
            self.bump();
            return self.char_or_lifetime();
        }
        if c == '"' {
            return self.str_literal();
        }
        if c == '\'' {
            return self.char_or_lifetime();
        }
        if c.is_alphabetic() || c == '_' {
            while self.peek().is_some_and(|c| c.is_alphanumeric() || c == '_') {
                self.bump();
            }
            return TokenKind::Ident;
        }
        if c.is_ascii_digit() {
            return self.number();
        }
        for op in MULTI_PUNCT {
            if rest.starts_with(op) {
                self.bump_ascii(op.len());
                return TokenKind::Punct;
            }
        }
        self.bump();
        TokenKind::Punct
    }

    fn line_comment(&mut self) -> TokenKind {
        let rest = self.rest();
        // `////…` is a plain comment; `///` (exactly) starts outer doc.
        let doc = if rest.starts_with("//!") {
            Doc::Inner
        } else if rest.starts_with("///") && !rest.starts_with("////") {
            Doc::Outer
        } else {
            Doc::Plain
        };
        while self.peek().is_some_and(|c| c != '\n') {
            self.bump();
        }
        TokenKind::LineComment(doc)
    }

    fn block_comment(&mut self) -> TokenKind {
        let rest = self.rest();
        // `/**/` is empty-plain, `/***` is plain; `/**x` is outer doc.
        let doc = if rest.starts_with("/*!") {
            Doc::Inner
        } else if rest.starts_with("/**") && !rest.starts_with("/***") && !rest.starts_with("/**/")
        {
            Doc::Outer
        } else {
            Doc::Plain
        };
        self.bump_ascii(2);
        let mut depth = 1u32;
        while depth > 0 {
            let rest = self.rest();
            if rest.is_empty() {
                return TokenKind::BlockComment {
                    doc,
                    terminated: false,
                };
            }
            if rest.starts_with("*/") {
                depth -= 1;
                self.bump_ascii(2);
            } else if rest.starts_with("/*") {
                depth += 1;
                self.bump_ascii(2);
            } else {
                self.bump();
            }
        }
        TokenKind::BlockComment {
            doc,
            terminated: true,
        }
    }

    /// Lexes a string body starting at the opening `"` (prefix already
    /// consumed). Strings may span lines; `\"` does not close.
    fn str_literal(&mut self) -> TokenKind {
        self.bump(); // opening quote
        loop {
            match self.peek() {
                None => return TokenKind::Str { terminated: false },
                Some('"') => {
                    self.bump();
                    return TokenKind::Str { terminated: true };
                }
                Some('\\') => {
                    self.bump();
                    self.bump(); // the escaped char (or EOF, handled above)
                }
                Some(_) => self.bump(),
            }
        }
    }

    /// Lexes `r"…"` / `r#"…"#` / `br##"…"##` given the hash count; the
    /// caller verified the opener is present.
    fn raw_str(&mut self, hashes: u8) -> TokenKind {
        // Consume prefix letters, hashes, and the opening quote.
        while self.peek().is_some_and(|c| c == 'r' || c == 'b') {
            self.bump();
        }
        self.bump_ascii(hashes as usize);
        self.bump(); // opening quote
        loop {
            match self.peek() {
                None => {
                    return TokenKind::RawStr {
                        hashes,
                        terminated: false,
                    }
                }
                Some('"') => {
                    // Check for `"` followed by `hashes` hash marks.
                    let tail = self.rest().get(1..).unwrap_or("");
                    let got = tail.bytes().take_while(|&b| b == b'#').count();
                    if got >= hashes as usize {
                        self.bump();
                        self.bump_ascii(hashes as usize);
                        return TokenKind::RawStr {
                            hashes,
                            terminated: true,
                        };
                    }
                    self.bump();
                }
                Some(_) => self.bump(),
            }
        }
    }

    /// Disambiguates `'a'` (char) from `'a` (lifetime) from `'\n'`
    /// (escaped char). Called at the `'`; a `b` prefix (byte literal)
    /// was already consumed by the caller if present.
    fn char_or_lifetime(&mut self) -> TokenKind {
        self.bump(); // the quote
        match self.peek() {
            None => TokenKind::Char,
            Some('\\') => {
                // Escaped char: consume `\`, the escape head, then scan
                // to the closing quote within the same line (handles
                // `\x41`, `\u{…}`).
                self.bump();
                self.bump();
                while let Some(c) = self.peek() {
                    if c == '\'' {
                        self.bump();
                        break;
                    }
                    if c == '\n' {
                        break; // malformed; do not swallow the file
                    }
                    self.bump();
                }
                TokenKind::Char
            }
            Some(c) if c.is_alphanumeric() || c == '_' => {
                if self.peek2() == Some('\'') {
                    // 'x' — a one-char literal.
                    self.bump();
                    self.bump();
                    TokenKind::Char
                } else {
                    // 'ident — a lifetime; consume the ident tail.
                    while self.peek().is_some_and(|c| c.is_alphanumeric() || c == '_') {
                        self.bump();
                    }
                    TokenKind::Lifetime
                }
            }
            Some(_) => {
                // A single punctuation char such as `'"'` or `'.'`.
                self.bump();
                if self.peek() == Some('\'') {
                    self.bump();
                }
                TokenKind::Char
            }
        }
    }

    fn number(&mut self) -> TokenKind {
        // Integer part: digits, `_`, radix letters and suffixes all
        // fold into one alnum run (`0xFF_u32`, `1e9`, `42usize`).
        while self.peek().is_some_and(|c| c.is_alphanumeric() || c == '_') {
            let at_exp_sign = matches!(self.peek(), Some('e' | 'E'))
                && matches!(self.peek2(), Some('+' | '-'));
            self.bump();
            if at_exp_sign {
                self.bump(); // the sign of `1e+9`
            }
        }
        // Fractional part: only when `.` is followed by a digit, so
        // `1..2` and `1.min(x)` do not swallow the dot.
        if self.peek() == Some('.') && self.peek2().is_some_and(|c| c.is_ascii_digit()) {
            self.bump();
            while self.peek().is_some_and(|c| c.is_alphanumeric() || c == '_') {
                let at_exp_sign = matches!(self.peek(), Some('e' | 'E'))
                    && matches!(self.peek2(), Some('+' | '-'));
                self.bump();
                if at_exp_sign {
                    self.bump();
                }
            }
        }
        TokenKind::Number
    }
}

/// If `s` opens a raw string (`r"`, `r#"`, `br##"` …), returns the hash
/// count (capped at 255 — deeper nesting is not valid Rust anyway).
fn raw_str_open(s: &str) -> Option<u8> {
    let body = s.strip_prefix("br").or_else(|| s.strip_prefix('r'))?;
    let hashes = body.bytes().take_while(|&b| b == b'#').count();
    if hashes > 255 {
        return None;
    }
    if body.get(hashes..)?.starts_with('"') {
        Some(hashes as u8)
    } else {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<TokenKind> {
        lex(src)
            .into_iter()
            .filter(|t| !t.is_trivia())
            .map(|t| t.kind)
            .collect()
    }

    fn partition_ok(src: &str) {
        let toks = lex(src);
        let mut pos = 0;
        for t in &toks {
            assert_eq!(t.start, pos, "gap before token at {pos} in {src:?}");
            assert!(t.end > t.start || src.is_empty());
            pos = t.end;
        }
        assert_eq!(pos, src.len(), "tokens do not cover {src:?}");
    }

    #[test]
    fn partitions_misc_sources() {
        for src in [
            "",
            "fn main() {}",
            "let s = \"multi\nline\";",
            "r##\"raw \"# inside\"##",
            "/* a /* b */ c */ x",
            "'a' 'b 'static '\\'' '\\u{1F600}'",
            "1.0e-9 0xFF_u32 1..2 1.min(2)",
            "b\"bytes\" b'x' br#\"raw bytes\"#",
            "weird \u{1F600} bytes \\ end",
            "\"unterminated",
            "/* unterminated",
            "r#\"unterminated",
        ] {
            partition_ok(src);
        }
    }

    #[test]
    fn raw_string_hash_depths() {
        let toks = lex("r#\"has \" quote\"# after");
        assert_eq!(
            toks[0].kind,
            TokenKind::RawStr {
                hashes: 1,
                terminated: true
            }
        );
        assert_eq!(toks[0].text("r#\"has \" quote\"# after"), "r#\"has \" quote\"#");
        // A closer with too few hashes does not terminate.
        let toks = lex("r##\"x\"# still\"##");
        assert_eq!(
            toks[0].kind,
            TokenKind::RawStr {
                hashes: 2,
                terminated: true
            }
        );
    }

    #[test]
    fn nested_block_comments_and_doc_flavors() {
        let toks = lex("/* a /* b */ c */x");
        assert_eq!(
            toks[0].kind,
            TokenKind::BlockComment {
                doc: Doc::Plain,
                terminated: true
            }
        );
        assert_eq!(toks[1].kind, TokenKind::Ident);
        assert_eq!(kinds("//! inner\n/// outer\n//// plain\n/** d */ /*! i */ /**/"), vec![]);
        let toks = lex("/// outer");
        assert_eq!(toks[0].kind, TokenKind::LineComment(Doc::Outer));
        let toks = lex("//! inner");
        assert_eq!(toks[0].kind, TokenKind::LineComment(Doc::Inner));
        let toks = lex("//// plain");
        assert_eq!(toks[0].kind, TokenKind::LineComment(Doc::Plain));
        let toks = lex("/** d */");
        assert_eq!(
            toks[0].kind,
            TokenKind::BlockComment {
                doc: Doc::Outer,
                terminated: true
            }
        );
    }

    #[test]
    fn char_vs_lifetime() {
        assert_eq!(kinds("'a'"), vec![TokenKind::Char]);
        assert_eq!(kinds("'a"), vec![TokenKind::Lifetime]);
        assert_eq!(kinds("'static"), vec![TokenKind::Lifetime]);
        assert_eq!(kinds("'_"), vec![TokenKind::Lifetime]);
        assert_eq!(kinds("'\\''"), vec![TokenKind::Char]);
        assert_eq!(kinds("'\"'"), vec![TokenKind::Char]);
        assert_eq!(kinds("'\\u{41}'"), vec![TokenKind::Char]);
        assert_eq!(
            kinds("&'a str"),
            vec![TokenKind::Punct, TokenKind::Lifetime, TokenKind::Ident]
        );
    }

    #[test]
    fn multiline_strings_stay_strings() {
        let src = "let s = \"line one \\\n    line two\"; x.unwrap();";
        let toks = lex(src);
        let s = toks
            .iter()
            .find(|t| matches!(t.kind, TokenKind::Str { .. }))
            .copied();
        let s = s.expect("string token");
        assert!(s.text(src).contains("line two"));
        assert!(s.text(src).ends_with('"'));
    }

    #[test]
    fn multi_char_puncts_are_single_tokens() {
        let texts: Vec<&str> = lex("a::b => c == d += e ..= f")
            .iter()
            .filter(|t| t.kind == TokenKind::Punct)
            .map(|t| t.text("a::b => c == d += e ..= f"))
            .collect();
        assert_eq!(texts, vec!["::", "=>", "==", "+=", "..="]);
    }

    #[test]
    fn line_and_col_tracking() {
        let src = "ab\n  cd \"s\ntill\" ef";
        let toks: Vec<Token> = lex(src).into_iter().filter(|t| !t.is_trivia()).collect();
        assert_eq!((toks[0].line, toks[0].col), (1, 1)); // ab
        assert_eq!((toks[1].line, toks[1].col), (2, 3)); // cd
        assert_eq!((toks[2].line, toks[2].col), (2, 6)); // the string
        assert_eq!((toks[3].line, toks[3].col), (3, 7)); // ef
    }

    #[test]
    fn numbers_do_not_eat_ranges_or_methods() {
        let src = "1..2 1.min(3) 2.0.max(x) 1e-9";
        let nums: Vec<&str> = lex(src)
            .iter()
            .filter(|t| t.kind == TokenKind::Number)
            .map(|t| t.text(src))
            .collect();
        assert_eq!(nums, vec!["1", "2", "1", "3", "2.0", "1e-9"]);
    }
}
