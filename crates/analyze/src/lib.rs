#![forbid(unsafe_code)]
//! `mebl-analyze`: the workspace's static-analysis subsystem.
//!
//! A zero-dependency library built from four pieces:
//!
//! * a total Rust **lexer** ([`lexer`]) that partitions any input into
//!   spanned tokens — raw strings, nested block comments, char-vs-
//!   lifetime disambiguation, doc comments;
//! * a **workspace model** ([`workspace`]) — every source file lexed
//!   with synchronized raw/code/test-mask line views, every crate
//!   manifest's dependency edges, the layering declaration
//!   (`crates/analyze/layering.toml`) and the allowlist;
//! * a **rule engine** ([`rules`]) emitting stable diagnostic codes
//!   (`MEBL001`…`MEBL017`, see [`diag::RULES`]) with `file:line:col`
//!   spans: the eight legacy lint rules, determinism (std hash maps,
//!   raw cost arithmetic), layering (declared crate DAG), taxonomy
//!   completeness (failure variants constructed *and* matched),
//!   forbid-unsafe verification and filesystem confinement;
//! * **renderers** ([`output`]) for text, JSON and SARIF 2.1.0.
//!
//! The shrink-only allowlist (`crates/xtask/lint-allow.txt`) carries
//! over from the old scanner unchanged: an entry suppresses one rule in
//! one file on raw lines containing a substring, and entries that
//! suppress nothing are themselves errors (MEBL009).

pub mod diag;
pub mod lexer;
pub mod manifest;
pub mod output;
pub mod rules;
pub mod view;
pub mod workspace;

pub use diag::{rule_info, Diagnostic, RuleInfo, Severity, RULES};
pub use workspace::Workspace;

/// An allowlist entry: suppresses `rule` in `path` on lines containing
/// `pattern`.
#[derive(Debug)]
struct AllowEntry {
    path: String,
    rule: String,
    pattern: String,
    used: bool,
}

/// Parses the allowlist text (format: `path | rule | substring`, one
/// entry per line, `#` comments).
fn parse_allowlist(text: &str) -> Result<Vec<AllowEntry>, String> {
    let mut entries = Vec::new();
    for (i, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let parts: Vec<&str> = line.splitn(3, '|').map(str::trim).collect();
        if parts.len() != 3 || parts.iter().any(|p| p.is_empty()) {
            return Err(format!(
                "{}:{}: malformed entry (want `path | rule | substring`)",
                workspace::ALLOWLIST_PATH,
                i + 1
            ));
        }
        entries.push(AllowEntry {
            path: parts[0].to_string(),
            rule: parts[1].to_string(),
            pattern: parts[2].to_string(),
            used: false,
        });
    }
    Ok(entries)
}

/// Runs every rule over the workspace, applies the allowlist, and
/// returns the surviving diagnostics sorted by `(file, line, col,
/// code)`. Stale allowlist entries surface as MEBL009.
pub fn analyze(ws: &Workspace) -> Result<Vec<Diagnostic>, String> {
    let mut allow = parse_allowlist(&ws.allow_text)?;
    let mut raw = Vec::new();
    for file in &ws.files {
        rules::legacy::check_file(file, &mut raw);
        rules::determinism::check_file(file, &mut raw);
        rules::rawfs::check_file(file, &mut raw);
        rules::clientnet::check_file(file, &mut raw);
    }
    rules::layering::check(ws, &mut raw);
    rules::taxonomy::check(ws, &mut raw);
    rules::unsafecode::check(ws, &mut raw);

    let mut diags = Vec::new();
    for d in raw {
        let suppressed = allow.iter_mut().find(|a| {
            a.path == d.file
                && a.rule == d.rule
                && ws
                    .files
                    .iter()
                    .find(|f| f.rel == d.file)
                    .and_then(|f| d.line.checked_sub(1).and_then(|i| f.view.raw_lines.get(i)))
                    .is_some_and(|l| l.contains(&a.pattern))
        });
        match suppressed {
            Some(entry) => entry.used = true,
            None => diags.push(d),
        }
    }
    for entry in &allow {
        if !entry.used {
            diags.push(Diagnostic {
                code: "MEBL009",
                rule: "stale-allowlist",
                severity: Severity::Error,
                file: workspace::ALLOWLIST_PATH.to_string(),
                line: 0,
                col: 0,
                message: format!(
                    "entry `{} | {} | {}` suppresses nothing; remove it",
                    entry.path, entry.rule, entry.pattern
                ),
            });
        }
    }
    diags.sort_by(|a, b| {
        (a.file.as_str(), a.line, a.col, a.code).cmp(&(b.file.as_str(), b.line, b.col, b.code))
    });
    Ok(diags)
}

#[cfg(test)]
mod tests {
    use super::*;

    const LAYERS: &str = "[[layer]]\nname = \"a\"\ncrates = [\"geom\"]\n";
    const GEOM_MANIFEST: (&str, &str) = ("geom", "[package]\nname = \"mebl-geom\"\n");

    fn ws_with(src: &str, allow: &str) -> Workspace {
        let lib = format!("#![forbid(unsafe_code)]\n{src}");
        let mut ws = Workspace::in_memory(
            &[("crates/geom/src/lib.rs", &lib)],
            &[GEOM_MANIFEST],
            LAYERS,
        )
        .unwrap();
        ws.allow_text = allow.to_string();
        ws
    }

    #[test]
    fn allowlist_suppresses_matching_violation() {
        let src = "fn f() { g().unwrap(); } // justified: see docs\n";
        let allow = "crates/geom/src/lib.rs | no-panic | justified: see docs\n";
        let diags = analyze(&ws_with(src, allow)).unwrap();
        assert!(diags.is_empty(), "{diags:?}");
    }

    #[test]
    fn stale_entry_is_an_error() {
        let allow = "crates/geom/src/lib.rs | no-panic | nothing matches this\n";
        let diags = analyze(&ws_with("fn f() {}\n", allow)).unwrap();
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].code, "MEBL009");
    }

    #[test]
    fn malformed_allowlist_is_a_hard_error() {
        assert!(analyze(&ws_with("fn f() {}\n", "just one field\n")).is_err());
        // Comments and blanks are fine.
        assert!(analyze(&ws_with("fn f() {}\n", "# comment\n\n")).is_ok());
    }

    #[test]
    fn diagnostics_sorted_by_location() {
        let src = "fn f() { g().unwrap(); }\nfn h() { i.expect(\"x\"); }\n";
        let diags = analyze(&ws_with(src, "")).unwrap();
        assert_eq!(diags.len(), 2);
        assert!(diags[0].line < diags[1].line);
    }
}
