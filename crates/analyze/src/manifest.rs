//! Minimal TOML readers for the two manifests the analyzer consumes:
//! crate `Cargo.toml`s (name + dependency edges) and the layering
//! declaration (`crates/analyze/layering.toml`).
//!
//! These are deliberately *not* general TOML parsers — they read the
//! narrow, idiomatic subset the workspace actually uses (section
//! headers, `key = "value"`, `key = [ "a", "b" ]`, `name.workspace =
//! true`, inline tables) and report anything else as an error so drift
//! is loud instead of silently ignored.

/// One crate manifest: its package name and `mebl-*` dependency edges.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Manifest {
    /// Package name as written (`mebl-geom`).
    pub name: String,
    /// `[dependencies]` entries naming workspace crates.
    pub deps: Vec<String>,
    /// `[dev-dependencies]` entries naming workspace crates.
    pub dev_deps: Vec<String>,
}

/// Parses one `Cargo.toml`. `rel` is used in error messages only.
pub fn parse_cargo_toml(rel: &str, text: &str) -> Result<Manifest, String> {
    let mut name = None;
    let mut deps = Vec::new();
    let mut dev_deps = Vec::new();
    let mut section = String::new();
    for (idx, raw) in text.lines().enumerate() {
        let line = strip_toml_comment(raw).trim().to_string();
        if line.is_empty() {
            continue;
        }
        if line.starts_with('[') {
            section = line.trim_matches(|c| c == '[' || c == ']').to_string();
            continue;
        }
        let Some((key, value)) = line.split_once('=') else {
            continue;
        };
        let key = key.trim();
        let value = value.trim();
        match section.as_str() {
            "package" if key == "name" => {
                name = Some(unquote(value).ok_or_else(|| {
                    format!("{rel}:{}: unquoted package name", idx + 1)
                })?);
            }
            "package" => {}
            "dependencies" | "dev-dependencies" => {
                // `mebl-geom.workspace = true` or `mebl-geom = { … }`.
                let dep = key.split('.').next().unwrap_or(key).trim().to_string();
                if dep.starts_with("mebl-") {
                    if section == "dependencies" {
                        deps.push(dep);
                    } else {
                        dev_deps.push(dep);
                    }
                }
            }
            _ => {}
        }
    }
    let name = name.ok_or_else(|| format!("{rel}: missing [package] name"))?;
    deps.sort();
    deps.dedup();
    dev_deps.sort();
    dev_deps.dedup();
    Ok(Manifest {
        name,
        deps,
        dev_deps,
    })
}

/// The declared architectural layering: an ordered bottom-to-top list
/// of named layers, each owning a set of crate short names.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Layering {
    /// Layers in declaration order; index 0 is the bottom.
    pub layers: Vec<Layer>,
}

/// One declared layer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Layer {
    /// Layer name (for diagnostics).
    pub name: String,
    /// Crate short names (directory names under `crates/`).
    pub crates: Vec<String>,
}

impl Layering {
    /// The layer index of `krate` (bottom = 0), if declared.
    #[must_use]
    pub fn index_of(&self, krate: &str) -> Option<usize> {
        self.layers
            .iter()
            .position(|l| l.crates.iter().any(|c| c == krate))
    }

    /// The layer name at `index`.
    #[must_use]
    pub fn name_of(&self, index: usize) -> &str {
        self.layers.get(index).map_or("?", |l| l.name.as_str())
    }
}

/// Parses `layering.toml`: a sequence of `[[layer]]` tables with
/// `name = "…"` and `crates = ["a", "b", …]` keys.
pub fn parse_layering(rel: &str, text: &str) -> Result<Layering, String> {
    let mut layering = Layering::default();
    let mut current: Option<Layer> = None;
    for (idx, raw) in text.lines().enumerate() {
        let line = strip_toml_comment(raw).trim().to_string();
        if line.is_empty() {
            continue;
        }
        let err = |msg: &str| format!("{rel}:{}: {msg}", idx + 1);
        if line == "[[layer]]" {
            if let Some(layer) = current.take() {
                layering.layers.push(layer);
            }
            current = Some(Layer {
                name: String::new(),
                crates: Vec::new(),
            });
            continue;
        }
        if line.starts_with('[') {
            return Err(err("only [[layer]] tables are allowed"));
        }
        let Some((key, value)) = line.split_once('=') else {
            return Err(err("expected `key = value`"));
        };
        let Some(layer) = current.as_mut() else {
            return Err(err("key outside any [[layer]] table"));
        };
        match key.trim() {
            "name" => {
                layer.name =
                    unquote(value.trim()).ok_or_else(|| err("name must be a quoted string"))?;
            }
            "crates" => {
                layer.crates = parse_string_array(value.trim())
                    .ok_or_else(|| err("crates must be an array of quoted strings"))?;
            }
            other => return Err(err(&format!("unknown key `{other}`"))),
        }
    }
    if let Some(layer) = current.take() {
        layering.layers.push(layer);
    }
    for layer in &layering.layers {
        if layer.name.is_empty() {
            return Err(format!("{rel}: a [[layer]] is missing its name"));
        }
    }
    Ok(layering)
}

fn strip_toml_comment(line: &str) -> &str {
    // Good enough for these manifests: no `#` appears inside strings.
    line.split('#').next().unwrap_or(line)
}

fn unquote(s: &str) -> Option<String> {
    let s = s.trim();
    let body = s.strip_prefix('"')?.strip_suffix('"')?;
    Some(body.to_string())
}

fn parse_string_array(s: &str) -> Option<Vec<String>> {
    let body = s.trim().strip_prefix('[')?.strip_suffix(']')?;
    let mut out = Vec::new();
    for part in body.split(',') {
        let part = part.trim();
        if part.is_empty() {
            continue; // trailing comma
        }
        out.push(unquote(part)?);
    }
    Some(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_workspace_style_manifest() {
        let text = "\
[package]
name = \"mebl-assign\"
version.workspace = true

[dependencies]
mebl-geom.workspace = true
mebl-graph = { path = \"../graph\" }

[dev-dependencies]
mebl-testkit.workspace = true

[[test]]
name = \"x\"
";
        let m = parse_cargo_toml("crates/assign/Cargo.toml", text).unwrap();
        assert_eq!(m.name, "mebl-assign");
        assert_eq!(m.deps, vec!["mebl-geom", "mebl-graph"]);
        assert_eq!(m.dev_deps, vec!["mebl-testkit"]);
    }

    #[test]
    fn missing_name_is_an_error() {
        assert!(parse_cargo_toml("x", "[dependencies]\n").is_err());
    }

    #[test]
    fn parses_layering() {
        let text = "\
# bottom to top
[[layer]]
name = \"foundation\"
crates = [\"geom\", \"graph\"]

[[layer]]
name = \"app\"
crates = [\"cli\"]
";
        let l = parse_layering("layering.toml", text).unwrap();
        assert_eq!(l.layers.len(), 2);
        assert_eq!(l.index_of("graph"), Some(0));
        assert_eq!(l.index_of("cli"), Some(1));
        assert_eq!(l.index_of("nope"), None);
        assert_eq!(l.name_of(1), "app");
    }

    #[test]
    fn layering_rejects_malformed_lines() {
        assert!(parse_layering("l", "name = \"x\"\n").is_err());
        assert!(parse_layering("l", "[[layer]]\nbogus_key = 1\n").is_err());
        assert!(parse_layering("l", "[[layer]]\ncrates = [unquoted]\n").is_err());
        assert!(parse_layering("l", "[[layer]]\ncrates = [\"a\"]\n").is_err()); // no name
    }
}
